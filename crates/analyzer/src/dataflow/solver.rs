//! Generic worklist fixpoint solver over join-semilattice domains.
//!
//! An [`Analysis`] supplies the domain ([`JoinSemiLattice`]), a direction,
//! and transfer functions; [`solve`] iterates one [`Cfg`] to a fixpoint and
//! returns the per-block states plus the iteration count (surfaced in the
//! `paradice-lint --json` stats block).
//!
//! Block states are `Option<State>`: `None` means *unreachable / not yet
//! computed* — the bottom element every domain gets for free, so domains
//! never have to encode reachability themselves.
//!
//! Interprocedural composition is cooperative: a transfer function that
//! needs a callee summary which is not available yet returns `false` from
//! [`Analysis::transfer_stmt`], the solver abandons that block for this
//! round, and the interprocedural driver ([`super::summary`]) re-solves the
//! function after the callee's summary has been computed. Call graphs here
//! are DAGs (the extractor reports recursion as `SH003` before any dataflow
//! pass runs), so this converges.

use std::collections::VecDeque;

use super::cfg::{Block, BlockId, Cfg, CfgStmt, SiteId, Terminator};
use crate::ir::Cond;

/// A join-semilattice: partial order expressed through a mutating join.
pub trait JoinSemiLattice: Clone {
    /// Joins `other` into `self`; returns whether `self` changed. The
    /// solver relies on this being monotone with finite ascending chains.
    fn join_with(&mut self, other: &Self) -> bool;
}

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// From the entry toward `Return`s (reaching-style analyses).
    Forward,
    /// From `Return`s toward the entry (liveness-style analyses).
    Backward,
}

/// A dataflow analysis: domain + direction + transfer functions.
pub trait Analysis {
    /// The abstract state attached to program points.
    type State: JoinSemiLattice;

    /// Flow direction; forward unless overridden.
    fn direction(&self) -> Direction {
        Direction::Forward
    }

    /// Applies one linear statement. For [`Direction::Backward`] the solver
    /// calls this in reverse statement order. Returns `false` when the
    /// statement cannot be transferred yet (callee summary pending) — the
    /// block is abandoned for this round.
    fn transfer_stmt(&self, site: SiteId, stmt: &CfgStmt, state: &mut Self::State) -> bool;

    /// Applies a terminator's own effects (e.g. a branch condition or loop
    /// trip count being evaluated). Called after the statements for forward
    /// analyses and before them for backward ones.
    fn transfer_term(&self, term: &Terminator, state: &mut Self::State) {
        let _ = (term, state);
    }

    /// Refines the state on one outgoing edge of a [`Terminator::Branch`]
    /// (forward only): `taken` tells which edge.
    fn transfer_branch(&self, cond: &Cond, taken: bool, state: &mut Self::State) {
        let _ = (cond, taken, state);
    }
}

/// The fixpoint: per-block states plus solver metadata.
#[derive(Debug, Clone)]
pub struct Solution<S> {
    /// Forward: state at each block's *entry*. Backward: state at each
    /// block's *exit*. `None` = unreachable (or abandoned on a pending
    /// callee summary).
    pub block_states: Vec<Option<S>>,
    /// Forward: join of states flowing into every `Return`. Backward: the
    /// state computed at the function entry. This is the function summary.
    pub boundary_out: Option<S>,
    /// Number of block visits until the fixpoint (the `--json` stats
    /// `iterations` counter).
    pub iterations: usize,
}

struct Worklist {
    queue: VecDeque<BlockId>,
    queued: Vec<bool>,
}

impl Worklist {
    fn new(len: usize) -> Worklist {
        Worklist {
            queue: VecDeque::new(),
            queued: vec![false; len],
        }
    }

    fn push(&mut self, block: BlockId) {
        if !self.queued[block.0] {
            self.queued[block.0] = true;
            self.queue.push_back(block);
        }
    }

    fn pop(&mut self) -> Option<BlockId> {
        let block = self.queue.pop_front()?;
        self.queued[block.0] = false;
        Some(block)
    }
}

fn join_into<S: JoinSemiLattice>(slot: &mut Option<S>, state: &S) -> bool {
    match slot {
        Some(existing) => existing.join_with(state),
        None => {
            *slot = Some(state.clone());
            true
        }
    }
}

/// Runs the statements of `block` over `state` in the analysis' direction.
/// Returns `false` when a transfer is blocked on a pending callee summary.
fn run_stmts<A: Analysis>(analysis: &A, block: &Block, state: &mut A::State) -> bool {
    match analysis.direction() {
        Direction::Forward => block
            .stmts
            .iter()
            .all(|(site, stmt)| analysis.transfer_stmt(*site, stmt, state)),
        Direction::Backward => block
            .stmts
            .iter()
            .rev()
            .all(|(site, stmt)| analysis.transfer_stmt(*site, stmt, state)),
    }
}

/// Iterates `cfg` to a fixpoint under `analysis`, seeding the boundary
/// (entry for forward, every `Return` for backward) with `boundary`.
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A, boundary: A::State) -> Solution<A::State> {
    match analysis.direction() {
        Direction::Forward => solve_forward(cfg, analysis, boundary),
        Direction::Backward => solve_backward(cfg, analysis, boundary),
    }
}

fn solve_forward<A: Analysis>(cfg: &Cfg, analysis: &A, boundary: A::State) -> Solution<A::State> {
    let mut states: Vec<Option<A::State>> = vec![None; cfg.blocks.len()];
    states[Cfg::ENTRY.0] = Some(boundary);
    let mut worklist = Worklist::new(cfg.blocks.len());
    worklist.push(Cfg::ENTRY);
    let mut boundary_out: Option<A::State> = None;
    let mut iterations = 0usize;

    while let Some(block_id) = worklist.pop() {
        iterations += 1;
        let Some(in_state) = states[block_id.0].clone() else {
            continue;
        };
        let block = &cfg.blocks[block_id.0];
        let mut state = in_state;
        if !run_stmts(analysis, block, &mut state) {
            continue; // pending callee summary; the driver re-solves later
        }
        analysis.transfer_term(&block.term, &mut state);
        match &block.term {
            Terminator::Return => {
                join_into(&mut boundary_out, &state);
            }
            Terminator::Jump(to) => {
                if join_into(&mut states[to.0], &state) {
                    worklist.push(*to);
                }
            }
            Terminator::Branch { cond, then_to, els_to } => {
                let mut then_state = state.clone();
                analysis.transfer_branch(cond, true, &mut then_state);
                if join_into(&mut states[then_to.0], &then_state) {
                    worklist.push(*then_to);
                }
                let mut els_state = state;
                analysis.transfer_branch(cond, false, &mut els_state);
                if join_into(&mut states[els_to.0], &els_state) {
                    worklist.push(*els_to);
                }
            }
            Terminator::LoopHead { body, exit, .. } => {
                if join_into(&mut states[body.0], &state) {
                    worklist.push(*body);
                }
                if join_into(&mut states[exit.0], &state) {
                    worklist.push(*exit);
                }
            }
        }
    }

    Solution {
        block_states: states,
        boundary_out,
        iterations,
    }
}

fn solve_backward<A: Analysis>(cfg: &Cfg, analysis: &A, boundary: A::State) -> Solution<A::State> {
    let preds = cfg.predecessors();
    let mut states: Vec<Option<A::State>> = vec![None; cfg.blocks.len()];
    let mut worklist = Worklist::new(cfg.blocks.len());
    for exit in cfg.exit_blocks() {
        states[exit.0] = Some(boundary.clone());
        worklist.push(exit);
    }
    let mut boundary_out: Option<A::State> = None;
    let mut iterations = 0usize;

    while let Some(block_id) = worklist.pop() {
        iterations += 1;
        let Some(out_state) = states[block_id.0].clone() else {
            continue;
        };
        let block = &cfg.blocks[block_id.0];
        let mut state = out_state;
        analysis.transfer_term(&block.term, &mut state);
        if !run_stmts(analysis, block, &mut state) {
            continue;
        }
        if block_id == Cfg::ENTRY {
            join_into(&mut boundary_out, &state);
        }
        for pred in &preds[block_id.0] {
            if join_into(&mut states[pred.0], &state) {
                worklist.push(*pred);
            }
        }
    }

    Solution {
        block_states: states,
        boundary_out,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::cfg::lower;
    use crate::ir::{Expr, Stmt, VarId};
    use std::collections::BTreeSet;

    /// Set-union lattice over fetched variables.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    struct VarSet(BTreeSet<u32>);

    impl JoinSemiLattice for VarSet {
        fn join_with(&mut self, other: &Self) -> bool {
            let before = self.0.len();
            self.0.extend(other.0.iter().copied());
            self.0.len() != before
        }
    }

    /// Forward: which variables have been fetched so far.
    struct FetchedVars;

    impl Analysis for FetchedVars {
        type State = VarSet;
        fn transfer_stmt(&self, _site: SiteId, stmt: &CfgStmt, state: &mut VarSet) -> bool {
            if let CfgStmt::Ir(Stmt::CopyFromUser { dst, .. }) = stmt {
                state.0.insert(dst.0);
            }
            true
        }
    }

    /// Backward: which variables are still fetched later.
    struct FetchedLater;

    impl Analysis for FetchedLater {
        type State = VarSet;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn transfer_stmt(&self, _site: SiteId, stmt: &CfgStmt, state: &mut VarSet) -> bool {
            if let CfgStmt::Ir(Stmt::CopyFromUser { dst, .. }) = stmt {
                state.0.insert(dst.0);
            }
            true
        }
    }

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    fn fetch(dst: u32) -> Stmt {
        Stmt::CopyFromUser {
            dst: v(dst),
            src: Expr::Arg,
            len: Expr::Const(8),
        }
    }

    #[test]
    fn forward_facts_merge_at_joins() {
        let cfg = lower(
            "f",
            &[
                Stmt::If {
                    cond: crate::ir::Cond::Eq(Expr::Arg, Expr::Const(0)),
                    then: vec![fetch(1)],
                    els: vec![fetch(2)],
                },
                fetch(3),
            ],
            None,
        );
        let sol = solve(&cfg, &FetchedVars, VarSet::default());
        let exit = sol.boundary_out.expect("reachable exit");
        assert_eq!(exit.0, BTreeSet::from([1, 2, 3]));
        assert!(sol.iterations >= cfg.blocks.len());
    }

    #[test]
    fn loop_body_reaches_fixpoint_not_double_walk() {
        let cfg = lower(
            "f",
            &[Stmt::ForRange {
                var: v(9),
                count: Expr::Const(4),
                body: vec![fetch(1)],
            }],
            None,
        );
        let sol = solve(&cfg, &FetchedVars, VarSet::default());
        // The loop body's entry state eventually contains its own fetch
        // (the back edge has been taken), and the solver terminated.
        let head = cfg
            .blocks
            .iter()
            .position(|b| matches!(b.term, Terminator::LoopHead { .. }))
            .unwrap();
        let Terminator::LoopHead { body, .. } = &cfg.blocks[head].term else {
            unreachable!()
        };
        assert!(sol.block_states[body.0].as_ref().unwrap().0.contains(&1));
        assert_eq!(sol.boundary_out.unwrap().0, BTreeSet::from([1]));
    }

    #[test]
    fn backward_sees_later_fetches() {
        let cfg = lower("f", &[fetch(1), fetch(2)], None);
        let sol = solve(&cfg, &FetchedLater, VarSet::default());
        // At the function entry, both fetches are still ahead.
        assert_eq!(sol.boundary_out.unwrap().0, BTreeSet::from([1, 2]));
    }

    #[test]
    fn unreachable_code_stays_bottom() {
        let cfg = lower(
            "f",
            &[
                Stmt::If {
                    cond: crate::ir::Cond::Eq(Expr::Arg, Expr::Const(0)),
                    then: vec![Stmt::Return],
                    els: vec![Stmt::Return],
                },
                fetch(7),
            ],
            None,
        );
        let sol = solve(&cfg, &FetchedVars, VarSet::default());
        let exit = sol.boundary_out.expect("returns are reachable");
        assert!(!exit.0.contains(&7));
    }

    #[test]
    fn blocked_transfer_leaves_no_partial_state() {
        struct AlwaysBlocked;
        impl Analysis for AlwaysBlocked {
            type State = VarSet;
            fn transfer_stmt(&self, _: SiteId, _: &CfgStmt, _: &mut VarSet) -> bool {
                false
            }
        }
        let cfg = lower("f", &[fetch(1), fetch(2)], None);
        let sol = solve(&cfg, &AlwaysBlocked, VarSet::default());
        assert!(sol.boundary_out.is_none());
    }
}
