//! The dataflow engine: CFG + fixpoint solver + function summaries.
//!
//! The extractor and the first-generation lint passes walk the tree IR
//! syntactically — fine for envelope questions, blind for anything
//! order-sensitive. This module gives the analyzer a conventional dataflow
//! stack instead:
//!
//! * [`cfg`] lowers a function body into basic blocks with explicit edges
//!   (`If` diamonds, `ForRange` back edges, `Return` exits, `SwitchCmd`
//!   resolved per command).
//! * [`solver`] runs any [`solver::Analysis`] — a join-semilattice domain
//!   plus transfer functions, forward or backward — to a worklist fixpoint
//!   over one CFG.
//! * [`reach`] is the concrete-state sibling: explicit-state bounded
//!   reachability over labelled transition systems (the powerset lattice as
//!   domain), powering `paradice-verify`'s protocol models with shortest
//!   counterexample traces.
//! * [`summary`] composes functions interprocedurally: `Call` sites
//!   substitute the callee's (entry ⊔, exit) summary instead of inlining,
//!   so a helper is analyzed once no matter how many call sites it has and
//!   fetch/consume/taint facts flow across helper boundaries.
//!
//! The flow-sensitive lint passes — double-fetch v2
//! ([`crate::lint::double_fetch`]), user-taint lengths
//! ([`crate::lint::taint`]) and the wire-protocol lint
//! ([`crate::lint::wire`]) — are thin domains on top of this engine; the
//! engine itself knows nothing about diagnostics.

pub mod cfg;
pub mod reach;
pub mod solver;
pub mod summary;
