//! Interprocedural function summaries.
//!
//! The extractor handles helpers by inlining; the dataflow engine must not
//! (inlining is exactly what the old double-fetch pass relied on, and what
//! made cross-helper reasoning quadratic). Instead each function gets a
//! *summary*: the join of every abstract state its callers pass in
//! (`boundary_in`) mapped to the state it produces (`summary`). A
//! [`Terminator`](super::cfg::Terminator)-free `Call` statement then
//! composes by substituting the callee's summary — no inlining, each
//! helper analyzed once per lint run no matter how many call sites it has.
//!
//! Summaries are context-insensitive: multiple call sites join their entry
//! states. For lint purposes this is the right trade — a *may*-style
//! finding in any calling context is worth reporting, and handler helper
//! graphs are tiny DAGs.
//!
//! [`solve_program`] drives the global fixpoint: it repeatedly re-solves
//! every known function until no entry state, summary, or solution changes.
//! Calls encountered mid-solve register the callee (lowering its body on
//! first sight) and seed its entry state; if the callee's summary is not
//! known yet the caller's block is abandoned for the round
//! ([`Analysis::transfer_stmt`] returning `false`) and recomputed after the
//! callee stabilizes. Call graphs are DAGs here — the orchestrator reports
//! recursion (`SH003`) before any dataflow pass runs — so a handful of
//! rounds suffice; a hard cap guards against non-monotone domains.

use std::cell::RefCell;
use std::collections::BTreeMap;

use super::cfg::{lower, Cfg};
use super::solver::{solve, Analysis, JoinSemiLattice, Solution};
use crate::ir::Handler;

/// One analyzed function: its CFG and the evolving summary.
#[derive(Debug, Clone)]
pub struct Proc<S> {
    /// Function name (`ioctl`, helper names, …).
    pub name: String,
    /// The lowered body.
    pub cfg: Cfg,
    /// Join of every state callers pass in (`None` until first called).
    pub boundary_in: Option<S>,
    /// Join of the function's boundary-out states across rounds.
    pub summary: Option<S>,
    /// The last intraprocedural fixpoint (for the reporting walk).
    pub solution: Option<Solution<S>>,
}

/// The function table one interprocedural run works over.
#[derive(Debug)]
pub struct ProcTable<S> {
    procs: Vec<Proc<S>>,
    by_name: BTreeMap<String, usize>,
    changed: bool,
}

impl<S: JoinSemiLattice> ProcTable<S> {
    /// An empty table.
    pub fn new() -> ProcTable<S> {
        ProcTable {
            procs: Vec::new(),
            by_name: BTreeMap::new(),
            changed: false,
        }
    }

    /// Registers a pre-lowered function (used for the entry slice).
    pub fn register(&mut self, cfg: Cfg) -> usize {
        let idx = self.procs.len();
        self.by_name.insert(cfg.name.clone(), idx);
        self.procs.push(Proc {
            name: cfg.name.clone(),
            cfg,
            boundary_in: None,
            summary: None,
            solution: None,
        });
        idx
    }

    /// The analyzed functions (reporting walks these after convergence).
    pub fn procs(&self) -> &[Proc<S>] {
        &self.procs
    }

    /// Total basic blocks across every analyzed function (stats).
    pub fn total_blocks(&self) -> usize {
        self.procs.iter().map(|p| p.cfg.blocks.len()).sum()
    }

    /// Transfers a `Call` through the callee's summary. Joins `state` into
    /// the callee's entry state, registering (and lowering) the callee on
    /// first sight. Returns `false` when the summary is not available yet —
    /// the caller's block is abandoned and re-solved next round. Calls to
    /// functions absent from the handler are no-ops (`SH006` is the
    /// orchestrator's to report).
    pub fn apply_call(
        &mut self,
        name: &str,
        handler: &Handler,
        cmd: Option<u32>,
        state: &mut S,
    ) -> bool {
        let idx = match self.by_name.get(name) {
            Some(idx) => *idx,
            None => match handler.function(name) {
                Some(function) => self.register(lower(name, &function.body, cmd)),
                None => return true,
            },
        };
        let proc = &mut self.procs[idx];
        let seeded = match &mut proc.boundary_in {
            Some(existing) => existing.join_with(state),
            None => {
                proc.boundary_in = Some(state.clone());
                true
            }
        };
        if seeded {
            self.changed = true;
        }
        match &self.procs[idx].summary {
            Some(summary) => {
                *state = summary.clone();
                true
            }
            None => false,
        }
    }
}

impl<S: JoinSemiLattice> Default for ProcTable<S> {
    fn default() -> Self {
        ProcTable::new()
    }
}

/// Cost counters from one interprocedural run.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterStats {
    /// Basic blocks across every analyzed function.
    pub blocks: usize,
    /// Total solver block-visits summed over all rounds.
    pub iterations: usize,
}

/// Rounds cap: helper graphs are DAGs a few levels deep; this bound is
/// never reached by a monotone analysis and merely stops a buggy domain
/// from hanging the lint.
const MAX_ROUNDS: usize = 64;

/// Runs `analysis` over `entry_cfg` and everything it (transitively)
/// calls, to a global fixpoint. The analysis' `transfer_stmt` must route
/// `Stmt::Call` through [`ProcTable::apply_call`] on this same `table`.
pub fn solve_program<A: Analysis>(
    analysis: &A,
    table: &RefCell<ProcTable<A::State>>,
    entry_cfg: Cfg,
    boundary: A::State,
) -> InterStats {
    {
        let mut t = table.borrow_mut();
        let entry_idx = t.register(entry_cfg);
        t.procs[entry_idx].boundary_in = Some(boundary);
    }
    let mut stats = InterStats::default();
    for _round in 0..MAX_ROUNDS {
        table.borrow_mut().changed = false;
        let mut any_summary_grew = false;
        let mut idx = 0;
        // The table can grow while we iterate (calls discover callees);
        // newly registered procs are picked up in the same round.
        loop {
            let job = {
                let t = table.borrow();
                if idx >= t.procs.len() {
                    break;
                }
                t.procs[idx]
                    .boundary_in
                    .clone()
                    .map(|b| (t.procs[idx].cfg.clone(), b))
            };
            if let Some((cfg, boundary_in)) = job {
                let solution = solve(&cfg, analysis, boundary_in);
                stats.iterations += solution.iterations;
                let mut t = table.borrow_mut();
                let proc = &mut t.procs[idx];
                if let Some(out) = &solution.boundary_out {
                    let grew = match &mut proc.summary {
                        Some(summary) => summary.join_with(out),
                        None => {
                            proc.summary = Some(out.clone());
                            true
                        }
                    };
                    any_summary_grew |= grew;
                }
                proc.solution = Some(solution);
            }
            idx += 1;
        }
        if !table.borrow().changed && !any_summary_grew {
            break;
        }
    }
    stats.blocks = table.borrow().total_blocks();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::cfg::{CfgStmt, SiteId};
    use crate::dataflow::solver::Direction;
    use crate::ir::{Expr, Function, Stmt, VarId};
    use std::collections::BTreeSet;

    /// Union-of-fetched-variables, routed through summaries at calls.
    #[derive(Debug, Clone, Default)]
    struct VarSet(BTreeSet<u32>);

    impl JoinSemiLattice for VarSet {
        fn join_with(&mut self, other: &Self) -> bool {
            let before = self.0.len();
            self.0.extend(other.0.iter().copied());
            self.0.len() != before
        }
    }

    struct Fetches<'a> {
        handler: &'a Handler,
        table: &'a RefCell<ProcTable<VarSet>>,
        direction: Direction,
    }

    impl Analysis for Fetches<'_> {
        type State = VarSet;
        fn direction(&self) -> Direction {
            self.direction
        }
        fn transfer_stmt(&self, _site: SiteId, stmt: &CfgStmt, state: &mut VarSet) -> bool {
            match stmt {
                CfgStmt::Ir(Stmt::CopyFromUser { dst, .. }) => {
                    state.0.insert(dst.0);
                    true
                }
                CfgStmt::Ir(Stmt::Call(name)) => {
                    self.table
                        .borrow_mut()
                        .apply_call(name, self.handler, None, state)
                }
                _ => true,
            }
        }
    }

    fn fetch(dst: u32) -> Stmt {
        Stmt::CopyFromUser {
            dst: VarId(dst),
            src: Expr::Arg,
            len: Expr::Const(8),
        }
    }

    fn handler_with_helpers() -> Handler {
        let mut functions = BTreeMap::new();
        functions.insert(
            "ioctl".to_owned(),
            Function {
                body: vec![fetch(0), Stmt::Call("a".to_owned()), Stmt::Call("b".to_owned())],
            },
        );
        functions.insert(
            "a".to_owned(),
            Function {
                body: vec![fetch(1), Stmt::Call("b".to_owned())],
            },
        );
        functions.insert("b".to_owned(), Function { body: vec![fetch(2)] });
        Handler::new("ioctl", functions)
    }

    #[test]
    fn summaries_compose_across_helpers() {
        let handler = handler_with_helpers();
        let table = RefCell::new(ProcTable::new());
        let analysis = Fetches {
            handler: &handler,
            table: &table,
            direction: Direction::Forward,
        };
        let entry = lower("ioctl", &handler.function("ioctl").unwrap().body, None);
        let stats = solve_program(&analysis, &table, entry, VarSet::default());
        let t = table.borrow();
        // Three functions analyzed, `b` only once despite two call sites.
        assert_eq!(t.procs().len(), 3);
        let entry_summary = t.procs()[0].summary.clone().unwrap();
        assert_eq!(entry_summary.0, BTreeSet::from([0, 1, 2]));
        // Helper `a` sees the entry's fetch in its entry state.
        let a = t.procs().iter().find(|p| p.name == "a").unwrap();
        assert!(a.boundary_in.as_ref().unwrap().0.contains(&0));
        assert!(stats.blocks >= 3);
        assert!(stats.iterations >= 3);
    }

    #[test]
    fn backward_summaries_see_later_helper_effects() {
        let handler = handler_with_helpers();
        let table = RefCell::new(ProcTable::new());
        let analysis = Fetches {
            handler: &handler,
            table: &table,
            direction: Direction::Backward,
        };
        let entry = lower("ioctl", &handler.function("ioctl").unwrap().body, None);
        solve_program(&analysis, &table, entry, VarSet::default());
        let t = table.borrow();
        // Backward through `ioctl`: at its entry, fetches of v0..v2 are all
        // still ahead (v1/v2 only via helper summaries).
        let entry_summary = t.procs()[0].summary.clone().unwrap();
        assert_eq!(entry_summary.0, BTreeSet::from([0, 1, 2]));
        // Inside `a`'s exit state, `b`'s later fetch (called again by the
        // entry after `a` returns) is visible.
        let a = t.procs().iter().find(|p| p.name == "a").unwrap();
        assert!(a.boundary_in.as_ref().unwrap().0.contains(&2));
    }

    #[test]
    fn unknown_callee_is_a_noop() {
        let handler = Handler::single(vec![Stmt::Call("ghost".to_owned()), fetch(3)]);
        let table = RefCell::new(ProcTable::new());
        let analysis = Fetches {
            handler: &handler,
            table: &table,
            direction: Direction::Forward,
        };
        let entry = lower("ioctl", &handler.function("ioctl").unwrap().body, None);
        solve_program(&analysis, &table, entry, VarSet::default());
        let t = table.borrow();
        assert_eq!(t.procs().len(), 1);
        assert_eq!(
            t.procs()[0].summary.clone().unwrap().0,
            BTreeSet::from([3])
        );
    }
}
