//! Just-in-time evaluation of extracted slices.
//!
//! "Offline execution is impossible for some memory operations, such as the
//! nested copies mentioned above. In this case, the CVD frontend identifies
//! the memory operation arguments just-in-time by executing the extracted
//! code at runtime" (paper §4.1).
//!
//! [`evaluate_slice`] interprets a specialized slice with the concrete ioctl
//! argument. Reads of user memory go through a [`UserReader`] — the frontend
//! reads the *calling process's own* memory, so this step needs no special
//! privileges — and produce the concrete operation list the frontend then
//! declares in the grant table.
//!
//! # Double-fetch defense
//!
//! A malicious (or merely racy) process could change a user buffer between
//! the JIT's grant-derivation read and a later read of the same address —
//! the classic double-fetch/TOCTOU hazard at cross-domain copy boundaries.
//! The evaluator therefore keeps a per-evaluation **byte-granular snapshot**
//! of everything it has read: re-reading an address yields the bytes of the
//! *first* fetch, so every value that feeds grant derivation is stable for
//! the lifetime of the evaluation. (The static half of the defense is the
//! `DF*` lint passes in [`crate::lint`], which flag handlers whose IR
//! re-fetches an already-consumed region at all.)

use std::collections::BTreeMap;
use std::fmt;

use crate::ir::{Cond, Expr, OpKind, Stmt, VarId};

/// Iteration safety valve for runtime loops (a malicious process could claim
/// a huge chunk count; the frontend refuses rather than spins).
const MAX_JIT_ITERATIONS: u64 = 1 << 20;

/// How the JIT reads the calling process's memory.
pub trait UserReader {
    /// Reads `buf.len()` bytes of user memory at `addr`.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` for unmapped addresses; the JIT surfaces it as
    /// [`JitError::BadUserRead`] and the ioctl will fail with `EFAULT`
    /// before ever reaching the driver.
    #[allow(clippy::result_unit_err)] // the only failure is EFAULT; callers map it
    fn read_user(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), ()>;
}

/// Errors during JIT evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JitError {
    /// A user-memory read failed.
    BadUserRead {
        /// The faulting address.
        addr: u64,
        /// The length requested.
        len: u64,
    },
    /// An expression referenced a variable that was never assigned.
    UnboundVariable {
        /// The variable.
        var: VarId,
    },
    /// A field read targeted a variable that is not a copied buffer, or ran
    /// past its end.
    BadFieldRead {
        /// The buffer variable.
        var: VarId,
    },
    /// A loop exceeded the iteration safety valve.
    IterationLimit,
    /// A `SwitchCmd` or `Call` survived specialization — slice corrupt.
    UnspecializedStatement,
}

impl fmt::Display for JitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitError::BadUserRead { addr, len } => {
                write!(f, "user read of {len} bytes at {addr:#x} failed")
            }
            JitError::UnboundVariable { var } => write!(f, "unbound variable {var}"),
            JitError::BadFieldRead { var } => write!(f, "bad field read from {var}"),
            JitError::IterationLimit => f.write_str("JIT iteration limit exceeded"),
            JitError::UnspecializedStatement => {
                f.write_str("slice contains unspecialized dispatch")
            }
        }
    }
}

impl std::error::Error for JitError {}

/// A fully concrete memory operation produced by JIT evaluation (or by
/// resolving a static template).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResolvedOp {
    /// Copy direction.
    pub kind: OpKind,
    /// User-space address.
    pub addr: u64,
    /// Byte length.
    pub len: u64,
}

#[derive(Debug, Clone)]
enum RtVal {
    Scalar(u64),
    Buffer(Vec<u8>),
}

struct JitState<'a> {
    arg: u64,
    cmd: u32,
    env: BTreeMap<VarId, RtVal>,
    ops: Vec<ResolvedOp>,
    reader: &'a mut dyn UserReader,
    iterations: u64,
    /// First-read-wins byte snapshot of user memory (double-fetch defense):
    /// any byte fetched once is pinned to its original value for the rest of
    /// the evaluation, even if the underlying [`UserReader`] would now return
    /// something else.
    snapshot: BTreeMap<u64, u8>,
}

fn eval(state: &JitState<'_>, expr: &Expr) -> Result<u64, JitError> {
    match expr {
        Expr::Const(value) => Ok(*value),
        Expr::Arg => Ok(state.arg),
        Expr::Cmd => Ok(u64::from(state.cmd)),
        Expr::Var(var) => match state.env.get(var) {
            Some(RtVal::Scalar(value)) => Ok(*value),
            Some(RtVal::Buffer(_)) => Err(JitError::BadFieldRead { var: *var }),
            None => Err(JitError::UnboundVariable { var: *var }),
        },
        Expr::Field {
            base,
            offset,
            width,
        } => {
            let bytes = match state.env.get(base) {
                Some(RtVal::Buffer(bytes)) => bytes,
                _ => return Err(JitError::BadFieldRead { var: *base }),
            };
            let start = *offset as usize;
            let end = start + *width as usize;
            let slice = bytes
                .get(start..end)
                .ok_or(JitError::BadFieldRead { var: *base })?;
            let mut raw = [0u8; 8];
            raw[..slice.len()].copy_from_slice(slice);
            Ok(u64::from_le_bytes(raw))
        }
        Expr::Add(a, b) => Ok(eval(state, a)?.wrapping_add(eval(state, b)?)),
        Expr::Mul(a, b) => Ok(eval(state, a)?.wrapping_mul(eval(state, b)?)),
    }
}

fn eval_cond(state: &JitState<'_>, cond: &Cond) -> Result<bool, JitError> {
    Ok(match cond {
        Cond::Eq(a, b) => eval(state, a)? == eval(state, b)?,
        Cond::Ne(a, b) => eval(state, a)? != eval(state, b)?,
        Cond::Lt(a, b) => eval(state, a)? < eval(state, b)?,
        Cond::Gt(a, b) => eval(state, a)? > eval(state, b)?,
    })
}

enum Flow {
    Continue,
    Return,
}

fn exec(stmts: &[Stmt], state: &mut JitState<'_>) -> Result<Flow, JitError> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { var, value } => {
                let value = eval(state, value)?;
                state.env.insert(*var, RtVal::Scalar(value));
            }
            Stmt::CopyFromUser { dst, src, len } => {
                let addr = eval(state, src)?;
                let len = eval(state, len)?;
                let mut bytes = vec![0u8; len as usize];
                state
                    .reader
                    .read_user(addr, &mut bytes)
                    .map_err(|()| JitError::BadUserRead { addr, len })?;
                // Double-fetch defense: overlay previously snapshotted bytes
                // (first read wins), then snapshot anything new. A re-fetch —
                // even partial/overlapping — can never observe values that
                // differ from what grant derivation already consumed.
                for (i, byte) in bytes.iter_mut().enumerate() {
                    let at = addr.wrapping_add(i as u64);
                    match state.snapshot.get(&at) {
                        Some(seen) => *byte = *seen,
                        None => {
                            state.snapshot.insert(at, *byte);
                        }
                    }
                }
                state.ops.push(ResolvedOp {
                    kind: OpKind::CopyFromUser,
                    addr,
                    len,
                });
                state.env.insert(*dst, RtVal::Buffer(bytes));
            }
            Stmt::CopyToUser { dst, len } => {
                let addr = eval(state, dst)?;
                let len = eval(state, len)?;
                state.ops.push(ResolvedOp {
                    kind: OpKind::CopyToUser,
                    addr,
                    len,
                });
            }
            Stmt::If { cond, then, els } => {
                let taken = eval_cond(state, cond)?;
                let body = if taken { then } else { els };
                match exec(body, state)? {
                    Flow::Continue => {}
                    Flow::Return => return Ok(Flow::Return),
                }
            }
            Stmt::ForRange { var, count, body } => {
                let count = eval(state, count)?;
                for i in 0..count {
                    state.iterations += 1;
                    if state.iterations > MAX_JIT_ITERATIONS {
                        return Err(JitError::IterationLimit);
                    }
                    state.env.insert(*var, RtVal::Scalar(i));
                    match exec(body, state)? {
                        Flow::Continue => {}
                        Flow::Return => return Ok(Flow::Return),
                    }
                }
            }
            Stmt::Return => return Ok(Flow::Return),
            Stmt::SwitchCmd { .. } | Stmt::Call(_) => {
                return Err(JitError::UnspecializedStatement)
            }
        }
    }
    Ok(Flow::Continue)
}

/// Evaluates a specialized slice against the concrete ioctl `arg`, reading
/// the caller's memory through `reader`, and returns the concrete operation
/// list to declare as grants.
///
/// # Errors
///
/// Propagates bad user reads, malformed slices and runaway loops.
pub fn evaluate_slice(
    slice: &[Stmt],
    cmd: u32,
    arg: u64,
    reader: &mut dyn UserReader,
) -> Result<Vec<ResolvedOp>, JitError> {
    let mut state = JitState {
        arg,
        cmd,
        env: BTreeMap::new(),
        ops: Vec::new(),
        reader,
        iterations: 0,
        snapshot: BTreeMap::new(),
    };
    exec(slice, &mut state)?;
    Ok(state.ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract_command, Extraction};
    use crate::ir::{Expr, Handler, VarId};

    /// User memory backed by a flat buffer starting at address 0x1000.
    struct FlatUser {
        base: u64,
        bytes: Vec<u8>,
    }

    impl UserReader for FlatUser {
        fn read_user(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), ()> {
            let start = addr.checked_sub(self.base).ok_or(())? as usize;
            let end = start.checked_add(buf.len()).ok_or(())?;
            let slice = self.bytes.get(start..end).ok_or(())?;
            buf.copy_from_slice(slice);
            Ok(())
        }
    }

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    #[test]
    fn nested_copy_resolves_against_user_data() {
        // Header at arg: { u64 buf_ptr; u32 buf_len; }. The JIT must read
        // the header to learn the second copy's arguments.
        let handler = Handler::single(vec![Stmt::SwitchCmd {
            arms: vec![(
                0x66,
                vec![
                    Stmt::CopyFromUser {
                        dst: v(0),
                        src: Expr::Arg,
                        len: Expr::Const(12),
                    },
                    Stmt::CopyFromUser {
                        dst: v(1),
                        src: Expr::field(v(0), 0, 8),
                        len: Expr::field(v(0), 8, 4),
                    },
                ],
            )],
            default: vec![Stmt::Return],
        }]);
        let slice = match extract_command(&handler, 0x66).unwrap() {
            Extraction::Jit { slice, .. } => slice,
            Extraction::Static(_) => panic!("nested command must be JIT"),
        };
        // User memory: header at 0x1000 pointing at 0x2000 with length 40.
        let mut header = Vec::new();
        header.extend_from_slice(&0x2000u64.to_le_bytes());
        header.extend_from_slice(&40u32.to_le_bytes());
        let mut user = FlatUser {
            base: 0x1000,
            bytes: {
                let mut bytes = vec![0u8; 0x2000];
                bytes[..12].copy_from_slice(&header);
                bytes
            },
        };
        let ops = evaluate_slice(&slice, 0x66, 0x1000, &mut user).unwrap();
        assert_eq!(
            ops,
            vec![
                ResolvedOp {
                    kind: OpKind::CopyFromUser,
                    addr: 0x1000,
                    len: 12,
                },
                ResolvedOp {
                    kind: OpKind::CopyFromUser,
                    addr: 0x2000,
                    len: 40,
                },
            ]
        );
    }

    #[test]
    fn data_dependent_branch_resolves_concretely() {
        // if (hdr.flag != 0) copy_to_user(arg+8, 64) else nothing.
        let slice = vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(4),
            },
            Stmt::If {
                cond: Cond::Ne(Expr::field(v(0), 0, 4), Expr::Const(0)),
                then: vec![Stmt::CopyToUser {
                    dst: Expr::add(Expr::Arg, Expr::Const(8)),
                    len: Expr::Const(64),
                }],
                els: vec![],
            },
        ];
        let mut on = FlatUser {
            base: 0,
            bytes: vec![1, 0, 0, 0],
        };
        let ops = evaluate_slice(&slice, 0, 0, &mut on).unwrap();
        assert_eq!(ops.len(), 2);
        let mut off = FlatUser {
            base: 0,
            bytes: vec![0, 0, 0, 0],
        };
        let ops = evaluate_slice(&slice, 0, 0, &mut off).unwrap();
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn data_dependent_loop_generates_per_chunk_ops() {
        // count at arg; then per-chunk copies at arg+8+i*16.
        let slice = vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(4),
            },
            Stmt::ForRange {
                var: v(1),
                count: Expr::field(v(0), 0, 4),
                body: vec![Stmt::CopyFromUser {
                    dst: v(2),
                    src: Expr::add(
                        Expr::Arg,
                        Expr::add(Expr::Const(8), Expr::mul(Expr::Var(v(1)), Expr::Const(16))),
                    ),
                    len: Expr::Const(16),
                }],
            },
        ];
        let mut user = FlatUser {
            base: 0x100,
            bytes: {
                let mut bytes = vec![0u8; 256];
                bytes[..4].copy_from_slice(&3u32.to_le_bytes());
                bytes
            },
        };
        let ops = evaluate_slice(&slice, 0, 0x100, &mut user).unwrap();
        assert_eq!(ops.len(), 4); // header + 3 chunks
        assert_eq!(ops[3].addr, 0x100 + 8 + 2 * 16);
    }

    #[test]
    fn bad_user_read_surfaces() {
        let slice = vec![Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(64),
        }];
        let mut tiny = FlatUser {
            base: 0,
            bytes: vec![0u8; 8],
        };
        assert_eq!(
            evaluate_slice(&slice, 0, 0, &mut tiny),
            Err(JitError::BadUserRead { addr: 0, len: 64 })
        );
    }

    #[test]
    fn runaway_loop_capped() {
        let slice = vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(8),
            },
            Stmt::ForRange {
                var: v(1),
                count: Expr::field(v(0), 0, 8),
                body: vec![Stmt::Assign {
                    var: v(2),
                    value: Expr::Const(0),
                }],
            },
        ];
        let mut user = FlatUser {
            base: 0,
            bytes: u64::MAX.to_le_bytes().to_vec(),
        };
        assert_eq!(
            evaluate_slice(&slice, 0, 0, &mut user),
            Err(JitError::IterationLimit)
        );
    }

    #[test]
    fn unspecialized_slice_rejected() {
        let slice = vec![Stmt::Call("helper".to_owned())];
        let mut user = FlatUser {
            base: 0,
            bytes: vec![],
        };
        assert_eq!(
            evaluate_slice(&slice, 0, 0, &mut user),
            Err(JitError::UnspecializedStatement)
        );
    }

    /// A hostile reader that returns *different* bytes every call — models a
    /// second thread flipping the buffer between fetches.
    struct MutatingUser {
        calls: u8,
    }

    impl UserReader for MutatingUser {
        fn read_user(&mut self, _addr: u64, buf: &mut [u8]) -> Result<(), ()> {
            self.calls = self.calls.wrapping_add(1);
            for byte in buf.iter_mut() {
                *byte = self.calls;
            }
            Ok(())
        }
    }

    #[test]
    fn repeated_reads_are_snapshotted() {
        // Fetch the same 8 bytes twice; a size field drawn from each copy
        // sizes a copy_to_user. Without the snapshot cache the second fetch
        // would observe mutated bytes and the two ops would disagree —
        // exactly the TOCTOU window the cache closes.
        let slice = vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(8),
            },
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::Arg,
                len: Expr::Const(8),
            },
            Stmt::CopyToUser {
                dst: Expr::Arg,
                len: Expr::field(v(0), 0, 4),
            },
            Stmt::CopyToUser {
                dst: Expr::Arg,
                len: Expr::field(v(1), 0, 4),
            },
        ];
        let mut user = MutatingUser { calls: 0 };
        let ops = evaluate_slice(&slice, 0, 0x1000, &mut user).unwrap();
        assert!(user.calls >= 2, "both fetches must hit the reader");
        // Both CopyToUser lengths derive from what should be identical data.
        assert_eq!(
            ops[2], ops[3],
            "snapshot cache must pin repeated reads to the first-fetched bytes"
        );
        // And the pinned value is the FIRST read's (calls == 1 → 0x01010101).
        assert_eq!(ops[2].len, 0x0101_0101);
    }

    #[test]
    fn overlapping_reads_are_snapshotted_bytewise() {
        // Second fetch overlaps the first by 4 bytes and extends past it.
        // The overlap must come from the snapshot; the extension is fresh.
        let slice = vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(8),
            },
            Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::add(Expr::Arg, Expr::Const(4)),
                len: Expr::Const(8),
            },
            // Overlapped half: must equal the first fetch's bytes (0x01s).
            Stmt::CopyToUser {
                dst: Expr::Arg,
                len: Expr::field(v(1), 0, 4),
            },
            // Fresh half: first read of those addresses (second call → 0x02s).
            Stmt::CopyToUser {
                dst: Expr::Arg,
                len: Expr::field(v(1), 4, 4),
            },
        ];
        let mut user = MutatingUser { calls: 0 };
        let ops = evaluate_slice(&slice, 0, 0x1000, &mut user).unwrap();
        assert_eq!(ops[2].len, 0x0101_0101);
        assert_eq!(ops[3].len, 0x0202_0202);
    }

    #[test]
    fn unbound_variable_rejected() {
        let slice = vec![Stmt::CopyToUser {
            dst: Expr::Var(v(42)),
            len: Expr::Const(1),
        }];
        let mut user = FlatUser {
            base: 0,
            bytes: vec![],
        };
        assert_eq!(
            evaluate_slice(&slice, 0, 0, &mut user),
            Err(JitError::UnboundVariable { var: v(42) })
        );
    }
}
