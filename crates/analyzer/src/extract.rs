//! The extraction pass: symbolic execution + specialization per command.
//!
//! For each ioctl command number, the analyzer symbolically executes the
//! handler IR with the command known and the pointer argument symbolic:
//!
//! * If every memory operation's address/length is constant or linear in the
//!   argument, and all control flow resolves statically, the command gets a
//!   [`Extraction::Static`] entry — the paper's offline-executed case, where
//!   "the CVD frontend can look up these entries to find the legitimate
//!   operations".
//! * Otherwise the command needs runtime information (most often **nested
//!   copies**, where a copied struct's fields feed the next copy's
//!   arguments) and gets an [`Extraction::Jit`] slice: the handler body
//!   specialized to the command, which the frontend evaluates just-in-time
//!   against the caller's memory (§4.1).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::ir::{Cond, Expr, Handler, OpKind, Stmt, VarId};

/// Maximum loop unrolling during static extraction; larger constant trip
/// counts fall back to JIT (still correct, just not precomputed). Public so
/// the lint suite can warn about loops that silently forfeit static entries.
pub const MAX_UNROLL: u64 = 64;

/// Maximum call-inlining depth (recursion guard). Public for the lint suite.
pub const MAX_CALL_DEPTH: usize = 16;

/// Errors from extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractionError {
    /// A `Call` referenced an unknown function.
    UnknownFunction {
        /// The missing name.
        name: String,
    },
    /// Call nesting exceeded the inlining depth limit (likely recursion).
    CallDepthExceeded,
}

impl fmt::Display for ExtractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractionError::UnknownFunction { name } => {
                write!(f, "handler calls unknown function {name:?}")
            }
            ExtractionError::CallDepthExceeded => {
                f.write_str("call depth exceeded during extraction (recursive driver?)")
            }
        }
    }
}

impl std::error::Error for ExtractionError {}

/// Address template of a statically-extracted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrTemplate {
    /// A fixed address (rare; fixed mappings).
    Abs(u64),
    /// The ioctl argument plus a constant offset — the common case, since
    /// the untyped pointer "holds the address of this data structure in the
    /// process memory" (§4.1).
    ArgPlus(u64),
}

impl AddrTemplate {
    /// Resolves the template against a concrete ioctl argument.
    pub fn resolve(self, arg: u64) -> u64 {
        match self {
            AddrTemplate::Abs(addr) => addr,
            AddrTemplate::ArgPlus(offset) => arg.wrapping_add(offset),
        }
    }
}

/// One statically-extracted memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpTemplate {
    /// Copy direction.
    pub kind: OpKind,
    /// Where in user memory.
    pub addr: AddrTemplate,
    /// How many bytes.
    pub len: u64,
}

/// The analyzer's verdict for one command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Extraction {
    /// All operations are known offline; the frontend looks them up.
    Static(Vec<OpTemplate>),
    /// Runtime data is needed; the frontend evaluates this specialized slice
    /// just-in-time (nested copies and data-dependent control flow).
    Jit {
        /// The handler body specialized to the command (calls inlined,
        /// dispatch resolved).
        slice: Vec<Stmt>,
        /// Whether the dynamic behaviour stems from *nested copies*
        /// (user-data-dependent copy arguments), the case the paper calls
        /// out for the Radeon driver.
        nested_copies: bool,
    },
}

impl Extraction {
    /// Whether this command could be fully resolved offline.
    pub fn is_static(&self) -> bool {
        matches!(self, Extraction::Static(_))
    }

    /// Whether this command exhibits nested copies.
    pub fn has_nested_copies(&self) -> bool {
        matches!(
            self,
            Extraction::Jit {
                nested_copies: true,
                ..
            }
        )
    }
}

/// A symbolic scalar during extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SymVal {
    /// A known constant.
    Const(u64),
    /// `arg + k`.
    ArgPlus(u64),
    /// Depends on data copied from user space (nested-copy signal).
    UserData,
    /// Unsupported combination (e.g. `arg * 2`).
    Opaque,
}

#[derive(Debug)]
struct SymState {
    env: BTreeMap<VarId, SymVal>,
    buffers: BTreeSet<VarId>,
    ops: Vec<OpTemplate>,
    dynamic: bool,
    nested: bool,
}

enum Flow {
    Continue,
    Return,
    /// Static extraction impossible; fall back to JIT.
    Dynamic,
}

fn eval(state: &SymState, cmd: u32, expr: &Expr) -> SymVal {
    match expr {
        Expr::Const(value) => SymVal::Const(*value),
        Expr::Arg => SymVal::ArgPlus(0),
        Expr::Cmd => SymVal::Const(u64::from(cmd)),
        Expr::Var(var) => state.env.get(var).copied().unwrap_or(SymVal::Opaque),
        Expr::Field { base, .. } => {
            if state.buffers.contains(base) {
                SymVal::UserData
            } else {
                SymVal::Opaque
            }
        }
        Expr::Add(a, b) => match (eval(state, cmd, a), eval(state, cmd, b)) {
            (SymVal::Const(x), SymVal::Const(y)) => SymVal::Const(x.wrapping_add(y)),
            (SymVal::ArgPlus(x), SymVal::Const(y)) | (SymVal::Const(y), SymVal::ArgPlus(x)) => {
                SymVal::ArgPlus(x.wrapping_add(y))
            }
            (SymVal::UserData, _) | (_, SymVal::UserData) => SymVal::UserData,
            _ => SymVal::Opaque,
        },
        Expr::Mul(a, b) => match (eval(state, cmd, a), eval(state, cmd, b)) {
            (SymVal::Const(x), SymVal::Const(y)) => SymVal::Const(x.wrapping_mul(y)),
            (SymVal::UserData, _) | (_, SymVal::UserData) => SymVal::UserData,
            _ => SymVal::Opaque,
        },
    }
}

fn eval_cond(state: &SymState, cmd: u32, cond: &Cond) -> Option<bool> {
    let (a, b, op): (&Expr, &Expr, fn(u64, u64) -> bool) = match cond {
        Cond::Eq(a, b) => (a, b, |x, y| x == y),
        Cond::Ne(a, b) => (a, b, |x, y| x != y),
        Cond::Lt(a, b) => (a, b, |x, y| x < y),
        Cond::Gt(a, b) => (a, b, |x, y| x > y),
    };
    match (eval(state, cmd, a), eval(state, cmd, b)) {
        (SymVal::Const(x), SymVal::Const(y)) => Some(op(x, y)),
        _ => None,
    }
}

fn cond_mentions_user_data(state: &SymState, cmd: u32, cond: &Cond) -> bool {
    let (a, b) = match cond {
        Cond::Eq(a, b) | Cond::Ne(a, b) | Cond::Lt(a, b) | Cond::Gt(a, b) => (a, b),
    };
    eval(state, cmd, a) == SymVal::UserData || eval(state, cmd, b) == SymVal::UserData
}

fn exec(
    handler: &Handler,
    cmd: u32,
    stmts: &[Stmt],
    state: &mut SymState,
    depth: usize,
) -> Result<Flow, ExtractionError> {
    if depth > MAX_CALL_DEPTH {
        return Err(ExtractionError::CallDepthExceeded);
    }
    for stmt in stmts {
        match stmt {
            Stmt::Assign { var, value } => {
                let value = eval(state, cmd, value);
                state.env.insert(*var, value);
            }
            Stmt::CopyFromUser { dst, src, len } => {
                let addr = eval(state, cmd, src);
                let length = eval(state, cmd, len);
                state.buffers.insert(*dst);
                match (addr, length) {
                    (SymVal::Const(a), SymVal::Const(l)) => state.ops.push(OpTemplate {
                        kind: OpKind::CopyFromUser,
                        addr: AddrTemplate::Abs(a),
                        len: l,
                    }),
                    (SymVal::ArgPlus(k), SymVal::Const(l)) => state.ops.push(OpTemplate {
                        kind: OpKind::CopyFromUser,
                        addr: AddrTemplate::ArgPlus(k),
                        len: l,
                    }),
                    _ => {
                        state.dynamic = true;
                        if addr == SymVal::UserData || length == SymVal::UserData {
                            state.nested = true;
                        }
                        return Ok(Flow::Dynamic);
                    }
                }
            }
            Stmt::CopyToUser { dst, len } => {
                let addr = eval(state, cmd, dst);
                let length = eval(state, cmd, len);
                match (addr, length) {
                    (SymVal::Const(a), SymVal::Const(l)) => state.ops.push(OpTemplate {
                        kind: OpKind::CopyToUser,
                        addr: AddrTemplate::Abs(a),
                        len: l,
                    }),
                    (SymVal::ArgPlus(k), SymVal::Const(l)) => state.ops.push(OpTemplate {
                        kind: OpKind::CopyToUser,
                        addr: AddrTemplate::ArgPlus(k),
                        len: l,
                    }),
                    _ => {
                        state.dynamic = true;
                        if addr == SymVal::UserData || length == SymVal::UserData {
                            state.nested = true;
                        }
                        return Ok(Flow::Dynamic);
                    }
                }
            }
            Stmt::If { cond, then, els } => match eval_cond(state, cmd, cond) {
                Some(true) => match exec(handler, cmd, then, state, depth)? {
                    Flow::Continue => {}
                    other => return Ok(other),
                },
                Some(false) => match exec(handler, cmd, els, state, depth)? {
                    Flow::Continue => {}
                    other => return Ok(other),
                },
                None => {
                    state.dynamic = true;
                    if cond_mentions_user_data(state, cmd, cond) {
                        state.nested = true;
                    }
                    return Ok(Flow::Dynamic);
                }
            },
            Stmt::SwitchCmd { arms, default } => {
                let body = arms
                    .iter()
                    .find(|(arm_cmd, _)| *arm_cmd == cmd)
                    .map(|(_, body)| body)
                    .unwrap_or(default);
                match exec(handler, cmd, body, state, depth)? {
                    Flow::Continue => {}
                    other => return Ok(other),
                }
            }
            Stmt::ForRange { var, count, body } => match eval(state, cmd, count) {
                SymVal::Const(n) if n <= MAX_UNROLL => {
                    for i in 0..n {
                        state.env.insert(*var, SymVal::Const(i));
                        match exec(handler, cmd, body, state, depth)? {
                            Flow::Continue => {}
                            other => return Ok(other),
                        }
                    }
                }
                value => {
                    state.dynamic = true;
                    if value == SymVal::UserData {
                        state.nested = true;
                    }
                    return Ok(Flow::Dynamic);
                }
            },
            Stmt::Call(name) => {
                let function =
                    handler
                        .function(name)
                        .ok_or_else(|| ExtractionError::UnknownFunction {
                            name: name.clone(),
                        })?;
                match exec(handler, cmd, &function.body, state, depth + 1)? {
                    Flow::Continue => {}
                    other => return Ok(other),
                }
            }
            Stmt::Return => return Ok(Flow::Return),
        }
    }
    Ok(Flow::Continue)
}

/// Specializes the handler body to one command: `switch (cmd)` resolved,
/// calls inlined. This is the "extracted code" shipped to the CVD frontend
/// for JIT evaluation.
fn specialize(
    handler: &Handler,
    cmd: u32,
    stmts: &[Stmt],
    depth: usize,
) -> Result<Vec<Stmt>, ExtractionError> {
    if depth > MAX_CALL_DEPTH {
        return Err(ExtractionError::CallDepthExceeded);
    }
    let mut out = Vec::new();
    for stmt in stmts {
        match stmt {
            Stmt::SwitchCmd { arms, default } => {
                let body = arms
                    .iter()
                    .find(|(arm_cmd, _)| *arm_cmd == cmd)
                    .map(|(_, body)| body)
                    .unwrap_or(default);
                out.extend(specialize(handler, cmd, body, depth)?);
            }
            Stmt::Call(name) => {
                let function =
                    handler
                        .function(name)
                        .ok_or_else(|| ExtractionError::UnknownFunction {
                            name: name.clone(),
                        })?;
                out.extend(specialize(handler, cmd, &function.body, depth + 1)?);
            }
            Stmt::If { cond, then, els } => out.push(Stmt::If {
                cond: cond.clone(),
                then: specialize(handler, cmd, then, depth)?,
                els: specialize(handler, cmd, els, depth)?,
            }),
            Stmt::ForRange { var, count, body } => out.push(Stmt::ForRange {
                var: *var,
                count: count.clone(),
                body: specialize(handler, cmd, body, depth)?,
            }),
            other => out.push(other.clone()),
        }
    }
    Ok(out)
}

/// Specializes a whole handler to one command without classifying it:
/// `switch (cmd)` resolved and helper calls inlined, exactly the slice a
/// JIT entry would carry. The lint passes walk this linearized form so they
/// see the same code for static and JIT commands alike.
///
/// # Errors
///
/// Malformed handlers (unknown helper functions, unbounded call nesting).
pub fn specialize_command(handler: &Handler, cmd: u32) -> Result<Vec<Stmt>, ExtractionError> {
    let entry = handler
        .function(handler.entry())
        .expect("entry checked at construction");
    specialize(handler, cmd, &entry.body, 0)
}

/// Analyzes one command of a handler.
///
/// # Errors
///
/// Malformed handlers (unknown helper functions, unbounded call nesting).
pub fn extract_command(handler: &Handler, cmd: u32) -> Result<Extraction, ExtractionError> {
    let entry = handler
        .function(handler.entry())
        .expect("entry checked at construction");
    let mut state = SymState {
        env: BTreeMap::new(),
        buffers: BTreeSet::new(),
        ops: Vec::new(),
        dynamic: false,
        nested: false,
    };
    exec(handler, cmd, &entry.body, &mut state, 0)?;
    if state.dynamic {
        let slice = specialize(handler, cmd, &entry.body, 0)?;
        Ok(Extraction::Jit {
            slice,
            nested_copies: state.nested,
        })
    } else {
        Ok(Extraction::Static(state.ops))
    }
}

/// Whole-handler analysis report, the analogue of running the paper's Clang
/// tool over a driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerReport {
    /// Per-command verdicts.
    pub commands: BTreeMap<u32, Extraction>,
}

impl HandlerReport {
    /// Commands resolvable entirely offline.
    pub fn static_commands(&self) -> usize {
        self.commands.values().filter(|e| e.is_static()).count()
    }

    /// Commands requiring JIT evaluation.
    pub fn jit_commands(&self) -> usize {
        self.commands.values().filter(|e| !e.is_static()).count()
    }

    /// Commands whose dynamism comes from nested copies (the paper counts 14
    /// in the Radeon driver).
    pub fn nested_copy_commands(&self) -> usize {
        self.commands
            .values()
            .filter(|e| e.has_nested_copies())
            .count()
    }

    /// Total statements across all JIT slices — the "extracted code" size
    /// (the paper reports ~760 generated lines for Radeon).
    pub fn extracted_statements(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|stmt| {
                    1 + match stmt {
                        Stmt::If { then, els, .. } => count(then) + count(els),
                        Stmt::ForRange { body, .. } => count(body),
                        Stmt::SwitchCmd { arms, default } => {
                            arms.iter().map(|(_, b)| count(b)).sum::<usize>() + count(default)
                        }
                        _ => 0,
                    }
                })
                .sum()
        }
        self.commands
            .values()
            .map(|e| match e {
                Extraction::Jit { slice, .. } => count(slice),
                Extraction::Static(_) => 0,
            })
            .sum()
    }
}

/// Runs [`extract_command`] for every command the handler dispatches on.
///
/// # Errors
///
/// Propagates extraction failures.
pub fn analyze_handler(handler: &Handler) -> Result<HandlerReport, ExtractionError> {
    let mut commands = BTreeMap::new();
    for cmd in handler.commands() {
        commands.insert(cmd, extract_command(handler, cmd)?);
    }
    Ok(HandlerReport { commands })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, Function, VarId};
    use std::collections::BTreeMap;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    /// A simple driver: cmd 1 copies a 24-byte struct in, cmd 2 copies one
    /// out, cmd 3 does both (IOWR-style), cmd 4 nothing.
    fn simple_handler() -> Handler {
        Handler::single(vec![Stmt::SwitchCmd {
            arms: vec![
                (
                    1,
                    vec![Stmt::CopyFromUser {
                        dst: v(0),
                        src: Expr::Arg,
                        len: Expr::Const(24),
                    }],
                ),
                (
                    2,
                    vec![Stmt::CopyToUser {
                        dst: Expr::Arg,
                        len: Expr::Const(16),
                    }],
                ),
                (
                    3,
                    vec![
                        Stmt::CopyFromUser {
                            dst: v(0),
                            src: Expr::Arg,
                            len: Expr::Const(32),
                        },
                        Stmt::CopyToUser {
                            dst: Expr::Arg,
                            len: Expr::Const(32),
                        },
                    ],
                ),
                (4, vec![Stmt::Return]),
            ],
            default: vec![Stmt::Return],
        }])
    }

    /// A Radeon-CS-like nested-copy driver: copy a header, then copy a
    /// buffer whose address and length come from header fields.
    fn nested_handler() -> Handler {
        Handler::single(vec![Stmt::SwitchCmd {
            arms: vec![(
                0x66,
                vec![
                    Stmt::CopyFromUser {
                        dst: v(0),
                        src: Expr::Arg,
                        len: Expr::Const(16),
                    },
                    Stmt::CopyFromUser {
                        dst: v(1),
                        src: Expr::field(v(0), 0, 8),
                        len: Expr::field(v(0), 8, 4),
                    },
                ],
            )],
            default: vec![Stmt::Return],
        }])
    }

    #[test]
    fn simple_commands_are_static() {
        let report = analyze_handler(&simple_handler()).unwrap();
        assert_eq!(report.static_commands(), 4);
        assert_eq!(report.jit_commands(), 0);
        let ops = match &report.commands[&3] {
            Extraction::Static(ops) => ops,
            other => panic!("expected static, got {other:?}"),
        };
        assert_eq!(
            ops,
            &vec![
                OpTemplate {
                    kind: OpKind::CopyFromUser,
                    addr: AddrTemplate::ArgPlus(0),
                    len: 32,
                },
                OpTemplate {
                    kind: OpKind::CopyToUser,
                    addr: AddrTemplate::ArgPlus(0),
                    len: 32,
                },
            ]
        );
    }

    #[test]
    fn command_with_no_ops_is_empty_static() {
        let report = analyze_handler(&simple_handler()).unwrap();
        assert_eq!(report.commands[&4], Extraction::Static(vec![]));
    }

    #[test]
    fn nested_copies_detected_and_sliced() {
        let report = analyze_handler(&nested_handler()).unwrap();
        assert_eq!(report.nested_copy_commands(), 1);
        let extraction = &report.commands[&0x66];
        assert!(extraction.has_nested_copies());
        match extraction {
            Extraction::Jit { slice, .. } => {
                // The slice is the arm body: two copies, dispatch resolved.
                assert_eq!(slice.len(), 2);
                assert!(matches!(slice[0], Stmt::CopyFromUser { .. }));
            }
            Extraction::Static(_) => panic!("nested command cannot be static"),
        }
        assert!(report.extracted_statements() >= 2);
    }

    #[test]
    fn arg_offset_arithmetic_stays_static() {
        let handler = Handler::single(vec![Stmt::CopyToUser {
            dst: Expr::add(Expr::Arg, Expr::Const(8)),
            len: Expr::Const(4),
        }]);
        match extract_command(&handler, 0).unwrap() {
            Extraction::Static(ops) => {
                assert_eq!(ops[0].addr, AddrTemplate::ArgPlus(8));
                assert_eq!(ops[0].addr.resolve(0x1000), 0x1008);
            }
            other => panic!("expected static, got {other:?}"),
        }
    }

    #[test]
    fn constant_loops_unroll() {
        let handler = Handler::single(vec![Stmt::ForRange {
            var: v(9),
            count: Expr::Const(3),
            body: vec![Stmt::CopyToUser {
                dst: Expr::add(Expr::Arg, Expr::mul(Expr::Var(v(9)), Expr::Const(16))),
                len: Expr::Const(16),
            }],
        }]);
        match extract_command(&handler, 0).unwrap() {
            Extraction::Static(ops) => {
                assert_eq!(ops.len(), 3);
                assert_eq!(ops[2].addr, AddrTemplate::ArgPlus(32));
            }
            other => panic!("expected static, got {other:?}"),
        }
    }

    #[test]
    fn data_dependent_loop_goes_jit() {
        let handler = Handler::single(vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(8),
            },
            Stmt::ForRange {
                var: v(1),
                count: Expr::field(v(0), 0, 4),
                body: vec![Stmt::CopyToUser {
                    dst: Expr::add(Expr::Arg, Expr::Const(8)),
                    len: Expr::Const(8),
                }],
            },
        ]);
        let extraction = extract_command(&handler, 0).unwrap();
        assert!(extraction.has_nested_copies());
    }

    #[test]
    fn static_branches_resolve_on_cmd() {
        let handler = Handler::single(vec![Stmt::If {
            cond: Cond::Eq(Expr::Cmd, Expr::Const(5)),
            then: vec![Stmt::CopyToUser {
                dst: Expr::Arg,
                len: Expr::Const(64),
            }],
            els: vec![],
        }]);
        match extract_command(&handler, 5).unwrap() {
            Extraction::Static(ops) => assert_eq!(ops.len(), 1),
            other => panic!("expected static, got {other:?}"),
        }
        match extract_command(&handler, 6).unwrap() {
            Extraction::Static(ops) => assert!(ops.is_empty()),
            other => panic!("expected static, got {other:?}"),
        }
    }

    #[test]
    fn helper_calls_inline() {
        let mut functions = BTreeMap::new();
        functions.insert(
            "ioctl".to_owned(),
            Function {
                body: vec![Stmt::Call("do_copy".to_owned())],
            },
        );
        functions.insert(
            "do_copy".to_owned(),
            Function {
                body: vec![Stmt::CopyFromUser {
                    dst: v(0),
                    src: Expr::Arg,
                    len: Expr::Const(12),
                }],
            },
        );
        let handler = Handler::new("ioctl", functions);
        match extract_command(&handler, 0).unwrap() {
            Extraction::Static(ops) => assert_eq!(ops[0].len, 12),
            other => panic!("expected static, got {other:?}"),
        }
    }

    #[test]
    fn unknown_function_is_error() {
        let handler = Handler::single(vec![Stmt::Call("missing".to_owned())]);
        assert_eq!(
            extract_command(&handler, 0),
            Err(ExtractionError::UnknownFunction {
                name: "missing".to_owned()
            })
        );
    }

    #[test]
    fn recursion_detected() {
        let mut functions = BTreeMap::new();
        functions.insert(
            "ioctl".to_owned(),
            Function {
                body: vec![Stmt::Call("ioctl".to_owned())],
            },
        );
        let handler = Handler::new("ioctl", functions);
        assert_eq!(
            extract_command(&handler, 0),
            Err(ExtractionError::CallDepthExceeded)
        );
    }
}
