//! A self-contained subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access, so the real crates-io
//! `criterion` cannot be fetched. This crate provides the API surface the
//! workspace's benches use (`criterion_group!`, `criterion_main!`,
//! `Criterion::bench_function`, benchmark groups, `Bencher::iter`) with a
//! simple wall-clock measurement loop: a short warm-up, then a timed run,
//! reporting mean time per iteration to stdout.
//!
//! It intentionally skips criterion's statistical machinery (outlier
//! analysis, HTML reports, comparisons); the point is that `cargo bench`
//! runs and prints usable numbers offline.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE: Duration = Duration::from_millis(400);
/// Warm-up time per benchmark.
const WARMUP: Duration = Duration::from_millis(100);

/// Re-export kept for compatibility: the real criterion exposes its own
/// `black_box`; ours forwards to the standard library's.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, &mut body);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            _criterion: self,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, &mut body);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill the measurement
    /// window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also calibrates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_nanos() as u64 / warm_iters.max(1);
        let target_iters = (MEASURE.as_nanos() as u64 / per_iter.max(1)).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = target_iters;
    }

    /// Times `routine` with a caller-supplied clock: the closure receives
    /// an iteration count and returns the elapsed time for exactly that
    /// many iterations (the real criterion's `iter_custom`).
    ///
    /// This is the hook that lets benches measure through the workspace's
    /// own `Clock` trait — virtual nanoseconds on the deterministic
    /// substrate, real nanoseconds on the wall substrate — instead of
    /// being hard-wired to `Instant`.
    pub fn iter_custom<R>(&mut self, mut routine: R)
    where
        R: FnMut(u64) -> Duration,
    {
        // Calibrate with a small probe batch, tracking both the clock the
        // routine reports against and real wall time, so a cheap-in-
        // virtual-time routine cannot balloon the wall-clock budget.
        const PROBE: u64 = 16;
        let wall_start = Instant::now();
        let reported = routine(PROBE);
        let wall = wall_start.elapsed();
        let per_iter_reported = (reported.as_nanos() as u64 / PROBE).max(1);
        let per_iter_wall = (wall.as_nanos() as u64 / PROBE).max(1);
        let by_budget = MEASURE.as_nanos() as u64 / per_iter_reported;
        let by_wall = 2 * MEASURE.as_nanos() as u64 / per_iter_wall;
        let target_iters = by_budget.min(by_wall).clamp(1, 10_000_000);
        self.elapsed = routine(target_iters);
        self.iterations = target_iters;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, body: &mut F) {
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    body(&mut bencher);
    if bencher.iterations == 0 {
        println!("{name:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    let nanos = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
    let (value, unit) = if nanos >= 1_000_000.0 {
        (nanos / 1_000_000.0, "ms")
    } else if nanos >= 1_000.0 {
        (nanos / 1_000.0, "µs")
    } else {
        (nanos, "ns")
    };
    println!(
        "{name:<40} {value:>10.3} {unit}/iter ({} iters)",
        bencher.iterations
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut criterion = Criterion::default();
        criterion.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = criterion.benchmark_group("group");
        group.bench_function("noop", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn iter_custom_uses_the_reported_clock() {
        // A routine that claims a flat 1 µs per iteration on its own
        // clock; the bencher must trust that report for its result.
        let mut criterion = Criterion::default();
        criterion.bench_function("custom", |b| {
            b.iter_custom(Duration::from_micros);
        });
    }
}
