//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything that can pick a collection size: an exact count or a range.
pub trait SizeRange {
    /// Draws a size.
    fn sample(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    #[allow(clippy::cast_possible_truncation)]
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    #[allow(clippy::cast_possible_truncation)]
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty size range");
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a size drawn
/// from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`; duplicate keys collapse, so the map may be
/// smaller than the drawn size (matching the real crate's behaviour).
pub fn btree_map<K, V, R>(keys: K, values: V, size: R) -> BTreeMapStrategy<K, V, R>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
    R: SizeRange,
{
    BTreeMapStrategy { keys, values, size }
}

/// See [`btree_map`].
#[derive(Debug, Clone, Copy)]
pub struct BTreeMapStrategy<K, V, R> {
    keys: K,
    values: V,
    size: R,
}

impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
    R: SizeRange,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut map = BTreeMap::new();
        // Draw up to 4n candidates to approach the requested size even when
        // the key domain is small; duplicates simply overwrite.
        let mut attempts = 0;
        while map.len() < n && attempts < 4 * n {
            map.insert(self.keys.generate(rng), self.values.generate(rng));
            attempts += 1;
        }
        if map.is_empty() && n > 0 {
            map.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        map
    }
}
