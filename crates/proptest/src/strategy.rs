//! Value-generation strategies.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of an output type from random bits.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values (the real crate's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding a constant.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full domain of `T` (the real crate's `any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as u64).wrapping_sub(*self.start() as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    (*self.start() as u64).wrapping_add(rng.below(span + 1)) as $ty
                }
            }
        )+
    };
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (*self).generate(rng)
    }
}
