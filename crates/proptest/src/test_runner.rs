//! The deterministic runner: PRNG and failure type.

use std::fmt;

/// Number of generated cases per property.
pub const CASES: u32 = 64;

/// A splitmix64 PRNG; deterministic per test name so failures reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from the test's name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, folded into a fixed global seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

/// A failed property case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the current case with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias kept for API compatibility with the real crate's `Reject`.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
