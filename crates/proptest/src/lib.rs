//! A self-contained, deterministic subset of the `proptest` API.
//!
//! The build environment for this repository has no network access, so the
//! real crates-io `proptest` cannot be fetched. This crate implements the
//! slice of its API the workspace's property tests use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, integer-range strategies,
//! tuples, `prop_map`, and `proptest::collection::{vec, btree_map}` — over a
//! fast deterministic PRNG.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case is reported with its generated inputs
//!   (via `Debug` in the assertion message) but not minimized.
//! * **Deterministic.** Every run draws the same cases from a fixed seed, so
//!   CI failures reproduce locally without a persistence file.
//! * **Fixed case count** ([`test_runner::CASES`]) instead of a
//!   configuration system.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The subset of `proptest::prelude::*` the tests rely on.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn` runs its body against
/// [`test_runner::CASES`] generated inputs.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
///
/// In test code, write `#[test]` above each `fn` (the attribute passes
/// through) so the harness picks it up.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..$crate::test_runner::CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let case_desc = {
                        let mut desc = String::new();
                        $(
                            desc.push_str(concat!(stringify!($arg), " = "));
                            desc.push_str(&format!("{:?}, ", &$arg));
                        )+
                        desc
                    };
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(err) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            $crate::test_runner::CASES,
                            err,
                            case_desc,
                        );
                    }
                }
            }
        )+
    };
}

/// `assert!` that fails the property (with context) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        left_val,
                        right_val
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        format!($($fmt)+),
                        left_val,
                        right_val
                    )));
                }
            }
        }
    };
}

/// Skips the current case when its inputs don't fit the property's
/// precondition. Without shrinking there is nothing to record, so a skipped
/// case simply succeeds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if *left_val == *right_val {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        left_val
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0u8..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
            items in crate::collection::vec(any::<bool>(), 1..8),
        ) {
            prop_assert!(pair < 20);
            prop_assert!(!items.is_empty() && items.len() < 8);
        }

        #[test]
        fn btree_map_sizes_respected(
            map in crate::collection::btree_map(0u64..100, any::<u8>(), 1..10),
        ) {
            prop_assert!(!map.is_empty() && map.len() < 10);
        }

        #[test]
        fn exact_count_vec(v in crate::collection::vec(0u32..5, 3)) {
            prop_assert_eq!(v.len(), 3);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_context() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
