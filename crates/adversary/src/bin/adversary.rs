//! `paradice-adversary` — run seeded fuzzing campaigns against the real
//! stack, or exit nonzero with a minimized, replayable find.
//!
//! ```text
//! paradice-adversary --seed 7 --steps 200            # both substrates
//! paradice-adversary --seed 7 --engine virtual       # one substrate
//! paradice-adversary --seed 7 --json                 # machine-readable
//! paradice-adversary --seed 7 --mutant grant-bypass  # seeded-bug run:
//!                                                    # MUST exit 1
//! paradice-adversary --seed 7 --mutant grant-bypass \
//!     --emit-fixture tests/fixtures/verify           # write the find
//! ```
//!
//! Exit codes: `0` every attack contained and some detected, `1` a breach
//! (or a campaign that detected nothing), `2` usage error.

use std::process::ExitCode;

use paradice_adversary::{run_campaign, CampaignConfig, EngineKind};

struct Options {
    config: CampaignConfig,
    json: bool,
    emit_fixture: Option<String>,
    mutant: Option<String>,
}

fn usage(error: &str) -> ExitCode {
    eprintln!("paradice-adversary: {error}");
    eprintln!(
        "usage: paradice-adversary [--seed N] [--steps N] \
         [--engine virtual|wall|both] [--mutant grant-bypass] [--json] \
         [--emit-fixture DIR]"
    );
    ExitCode::from(2)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut config = CampaignConfig::both(0, 100);
    let mut json = false;
    let mut emit_fixture = None;
    let mut mutant = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                let value = iter.next().ok_or("--seed needs a number")?;
                config.seed = value
                    .parse()
                    .map_err(|_| format!("bad seed {value:?}"))?;
            }
            "--steps" => {
                let value = iter.next().ok_or("--steps needs a number")?;
                config.steps = value
                    .parse()
                    .map_err(|_| format!("bad step count {value:?}"))?;
            }
            "--engine" => {
                let value = iter.next().ok_or("--engine needs virtual|wall|both")?;
                config.engines = match value.as_str() {
                    "virtual" => vec![EngineKind::Virtual],
                    "wall" => vec![EngineKind::Wall],
                    "both" => vec![EngineKind::Virtual, EngineKind::Wall],
                    other => return Err(format!("unknown engine {other:?}")),
                };
            }
            "--mutant" => {
                let name = iter.next().ok_or("--mutant needs a mutant name")?;
                if name != "grant-bypass" {
                    return Err(format!(
                        "unknown mutant {name:?} (the adversary seeds grant-bypass)"
                    ));
                }
                config.bypass = true;
                mutant = Some(name.clone());
            }
            "--json" => json = true,
            "--emit-fixture" => {
                let dir = iter.next().ok_or("--emit-fixture needs a directory")?;
                emit_fixture = Some(dir.clone());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Options {
        config,
        json,
        emit_fixture,
        mutant,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(error) => return usage(&error),
    };
    let report = run_campaign(&options.config);
    if options.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if let Some(dir) = &options.emit_fixture {
        match &report.find {
            Some(find) => {
                let fixture = find.fixture(options.mutant.as_deref());
                if let Err(error) = std::fs::create_dir_all(dir) {
                    return usage(&format!("create {dir}: {error}"));
                }
                let path = format!("{dir}/{}", fixture.file_name());
                if let Err(error) = std::fs::write(&path, fixture.render()) {
                    return usage(&format!("write {path}: {error}"));
                }
                eprintln!("wrote {path}");
            }
            None => eprintln!("no find to emit: the campaign breached nothing"),
        }
    }
    if report.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
