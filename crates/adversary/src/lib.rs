//! `paradice-adversary`: the generative adversary that plays a malicious
//! driver VM *and* a malicious guest against the real stack.
//!
//! The paper's threat model (§4) assumes the driver VM is compromised and
//! the guest is hostile; the repo's isolation core is model-checked
//! (`crates/verify`) and attack-tested (`paradice::attack`), but both of
//! those enumerate *known* attack shapes. This crate generates them: a
//! seeded mutation engine over encoded [`WireRequest`] bytes, grant-ref
//! replay/forgery against the live hypervisor, shared-page probing of the
//! WP001 single-read decode discipline, ring-index/length corruption on
//! both the virtual depth-8 ring and the lock-free [`AtomicRing`], and
//! hypercall/doorbell floods.
//!
//! Campaigns run on **both** substrates — [`EngineKind::Virtual`] (the
//! deterministic oracle) and [`EngineKind::Wall`] (real threads) — with
//! one invariant checked after every step:
//!
//! > every adversarial input ends in *correct containment* (rejected at
//! > decode, refused by grant validation, surfaced as backpressure or a
//! > malformed-frame error) or *correct service* (the mutation left the
//! > request legitimate and it was served faithfully) — never a silent
//! > grant bypass, a lost ring slot, or a hung frontend.
//!
//! Findings are delta-minimized ([`wire::minimize`]) and emitted as
//! `adversary-containment` fixtures through `crates/verify`'s
//! counterexample bridge, so every fuzz find becomes a permanent
//! regression test in `tests/verify_fixtures.rs`. The seeded
//! [`grant-bypass`](CampaignConfig::bypass) mutant re-runs the same
//! campaigns against enforcement that accepts everything; the campaign
//! *must* then report breaches, or the adversary has gone blind.
//!
//! [`WireRequest`]: paradice_cvd::proto::WireRequest
//! [`AtomicRing`]: paradice_hypervisor::AtomicRing

pub mod flood;
pub mod grants;
pub mod race;
pub mod ring;
pub mod wire;

pub use paradice_hypervisor::EngineKind;
pub use wire::MinimizedFind;

/// The five attack families the adversary generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackFamily {
    /// Seeded mutations of encoded wire requests: bit flips, field
    /// tampering (length/enum/offset/grant-ref), truncations, trailing
    /// bytes — submitted raw through the [`Engine`] byte seam.
    ///
    /// [`Engine`]: paradice_hypervisor::Engine
    WireMutation,
    /// Grant-ref attacks against the live hypervisor: forged refs,
    /// replays after revocation, cross-guest refs, refs surviving
    /// `recover_driver_vm`, and window-overflow replays.
    GrantReplay,
    /// Shared-page re-write races: the WP001 single-read discipline,
    /// checked by running the real decoders under a counting probe on
    /// adversarial frames.
    SharedPageRace,
    /// Ring corruption: scrambled/truncated/dropped shared-page slots on
    /// the virtual ring, sequence/length word corruption on the atomic
    /// ring.
    RingCorruption,
    /// Floods: request bursts past the ring depth, malformed-frame
    /// floods, doorbell storms, hypercall storms.
    Flood,
}

impl AttackFamily {
    /// Every family, in campaign order.
    pub const ALL: [AttackFamily; 5] = [
        AttackFamily::WireMutation,
        AttackFamily::GrantReplay,
        AttackFamily::SharedPageRace,
        AttackFamily::RingCorruption,
        AttackFamily::Flood,
    ];

    /// Stable name (report keys, fixture lines).
    pub fn name(self) -> &'static str {
        match self {
            AttackFamily::WireMutation => "wire-mutation",
            AttackFamily::GrantReplay => "grant-replay",
            AttackFamily::SharedPageRace => "shared-page-race",
            AttackFamily::RingCorruption => "ring-corruption",
            AttackFamily::Flood => "flood",
        }
    }
}

/// Aggregated verdicts for one family on one substrate — one cell of the
/// containment matrix.
#[derive(Debug)]
pub struct FamilyOutcome {
    /// Which attack family ran.
    pub family: AttackFamily,
    /// Which substrate it ran on.
    pub engine: EngineKind,
    /// Adversarial steps taken.
    pub attempted: u64,
    /// Attacks the stack actively refused (decode error, EFAULT, grant
    /// rejection, backpressure, malformed-frame detection).
    pub detected: u64,
    /// Inputs that stayed legitimate and were served correctly.
    pub served: u64,
    /// Invariant violations: silent bypasses, lost slots, wrong answers.
    pub breaches: Vec<String>,
}

impl FamilyOutcome {
    pub(crate) fn new(family: AttackFamily, engine: EngineKind) -> FamilyOutcome {
        FamilyOutcome {
            family,
            engine,
            attempted: 0,
            detected: 0,
            served: 0,
            breaches: Vec::new(),
        }
    }

    pub(crate) fn detected(&mut self) {
        self.attempted += 1;
        self.detected += 1;
    }

    pub(crate) fn served(&mut self) {
        self.attempted += 1;
        self.served += 1;
    }

    pub(crate) fn breach(&mut self, reason: String) {
        self.attempted += 1;
        self.breaches.push(reason);
    }
}

/// One campaign's shape.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every family derives its own stream from it.
    pub seed: u64,
    /// Adversarial steps per family per substrate.
    pub steps: u32,
    /// Which substrates to attack.
    pub engines: Vec<EngineKind>,
    /// Run against the seeded `grant-bypass` mutant: enforcement accepts
    /// every memory operation, so the campaign must report breaches.
    pub bypass: bool,
}

impl CampaignConfig {
    /// A campaign over both substrates with the given seed and step count.
    pub fn both(seed: u64, steps: u32) -> CampaignConfig {
        CampaignConfig {
            seed,
            steps,
            engines: vec![EngineKind::Virtual, EngineKind::Wall],
            bypass: false,
        }
    }
}

/// The campaign's full result: the containment matrix plus the first
/// delta-minimized find, if any step breached.
#[derive(Debug)]
pub struct CampaignReport {
    /// The seed the campaign ran under.
    pub seed: u64,
    /// Steps per family per substrate.
    pub steps: u32,
    /// Whether the seeded bypass mutant was active.
    pub bypass: bool,
    /// One cell per family × substrate.
    pub outcomes: Vec<FamilyOutcome>,
    /// The first breach, minimized into fixture form.
    pub find: Option<MinimizedFind>,
}

impl CampaignReport {
    /// Total adversarial steps across all cells.
    pub fn total_attempted(&self) -> u64 {
        self.outcomes.iter().map(|o| o.attempted).sum()
    }

    /// Total actively-refused attacks across all cells.
    pub fn total_detected(&self) -> u64 {
        self.outcomes.iter().map(|o| o.detected).sum()
    }

    /// Total invariant violations across all cells.
    pub fn total_breaches(&self) -> usize {
        self.outcomes.iter().map(|o| o.breaches.len()).sum()
    }

    /// The campaign verdict: zero breaches and a nonzero number of
    /// detected attacks (a campaign that detects nothing proved nothing).
    pub fn pass(&self) -> bool {
        self.total_breaches() == 0 && self.total_detected() > 0
    }

    /// The containment matrix as a terminal table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "adversary campaign: seed {} · {} steps/family · bypass {}\n",
            self.seed, self.steps, self.bypass,
        ));
        out.push_str(&format!(
            "{:<18} {:>8} {:>10} {:>10} {:>8} {:>9}\n",
            "family", "engine", "attempted", "detected", "served", "breaches",
        ));
        for o in &self.outcomes {
            out.push_str(&format!(
                "{:<18} {:>8} {:>10} {:>10} {:>8} {:>9}\n",
                o.family.name(),
                o.engine.name(),
                o.attempted,
                o.detected,
                o.served,
                o.breaches.len(),
            ));
        }
        out.push_str(&format!(
            "total: {} attempted, {} detected, {} breaches — {}\n",
            self.total_attempted(),
            self.total_detected(),
            self.total_breaches(),
            if self.pass() { "PASS" } else { "FAIL" },
        ));
        for breach in self.outcomes.iter().flat_map(|o| &o.breaches).take(5) {
            out.push_str(&format!("  breach: {breach}\n"));
        }
        out
    }

    /// The containment matrix as JSON (embedded in `BENCH_adversary.json`).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seed\":{},\"steps\":{},\"bypass\":{},\"matrix\":[",
            self.seed, self.steps, self.bypass,
        );
        for (index, o) in self.outcomes.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"family\":\"{}\",\"engine\":\"{}\",\"attempted\":{},\
                 \"detected\":{},\"served\":{},\"breaches\":{}}}",
                o.family.name(),
                o.engine.name(),
                o.attempted,
                o.detected,
                o.served,
                o.breaches.len(),
            ));
        }
        out.push_str(&format!(
            "],\"attempted\":{},\"detected\":{},\"breaches\":{},\"pass\":{}}}",
            self.total_attempted(),
            self.total_detected(),
            self.total_breaches(),
            self.pass(),
        ));
        out
    }
}

/// Derives a per-cell seed stream so families and substrates never share
/// mutation sequences (and so adding a family cannot shift another's).
fn cell_seed(master: u64, family: AttackFamily, engine: EngineKind) -> u64 {
    let f = family.name().bytes().fold(0u64, |h, b| {
        h.wrapping_mul(0x100_0000_01b3).wrapping_add(u64::from(b))
    });
    let e = match engine {
        EngineKind::Virtual => 0x56,
        EngineKind::Wall => 0x57,
    };
    master ^ f.rotate_left(17) ^ e
}

/// Runs the full campaign: every family on every configured substrate.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let mut outcomes = Vec::new();
    let mut find = None;
    for &engine in &config.engines {
        for family in AttackFamily::ALL {
            let seed = cell_seed(config.seed, family, engine);
            let outcome = match family {
                AttackFamily::WireMutation => {
                    let (outcome, cell_find) =
                        wire::run(engine, seed, config.steps, config.bypass);
                    if find.is_none() {
                        find = cell_find;
                    }
                    outcome
                }
                AttackFamily::GrantReplay => {
                    grants::run(engine, seed, config.steps, config.bypass)
                }
                AttackFamily::SharedPageRace => race::run(engine, seed, config.steps),
                AttackFamily::RingCorruption => ring::run(engine, seed, config.steps),
                AttackFamily::Flood => flood::run(engine, seed, config.steps),
            };
            outcomes.push(outcome);
        }
    }
    CampaignReport {
        seed: config.seed,
        steps: config.steps,
        bypass: config.bypass,
        outcomes,
        find,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_campaign_contains_everything_on_both_substrates() {
        let report = run_campaign(&CampaignConfig::both(7, 40));
        assert!(report.pass(), "{}", report.render());
        assert_eq!(report.total_breaches(), 0, "{}", report.render());
        assert!(report.total_detected() > 0);
        // Every family × substrate cell ran and detected something: each
        // family deliberately includes attacks that must be refused.
        assert_eq!(report.outcomes.len(), 10);
        for o in &report.outcomes {
            assert!(o.attempted > 0, "{} ran nothing", o.family.name());
            assert!(
                o.detected > 0,
                "{} on {} detected nothing",
                o.family.name(),
                o.engine.name(),
            );
        }
    }

    #[test]
    fn campaigns_are_deterministic_per_seed_on_the_virtual_oracle() {
        let config = CampaignConfig {
            seed: 11,
            steps: 30,
            engines: vec![EngineKind::Virtual],
            bypass: false,
        };
        let a = run_campaign(&config);
        let b = run_campaign(&config);
        assert_eq!(a.render(), b.render(), "virtual campaigns must be bit-stable");
    }

    #[test]
    fn the_bypass_mutant_is_caught_with_a_minimized_find() {
        let config = CampaignConfig {
            seed: 7,
            steps: 60,
            engines: vec![EngineKind::Virtual],
            bypass: true,
        };
        let report = run_campaign(&config);
        assert!(!report.pass(), "bypassed enforcement must breach");
        assert!(report.total_breaches() > 0);
        let find = report.find.expect("wire breaches minimize into a find");
        // The minimized find replays through the verify bridge: clean on
        // the real kernels, violated under the recorded mutant.
        let fixture = find.fixture(Some("grant-bypass"));
        assert_eq!(fixture.file_name(), "grant-bypass.fixture");
        assert!(paradice_verify::replay_fixture(&fixture, None).is_ok());
        assert!(paradice_verify::replay_fixture(
            &fixture,
            Some(paradice_verify::report::Mutant::GrantBypass),
        )
        .is_err());
    }
}
