//! The ring-corruption family: a hostile VM scribbling on the shared
//! ring pages of both substrates.
//!
//! * **Virtual** — the typed depth-8 [`CvdChannel`]: the adversary
//!   scrambles, truncates, and drops posted slots through the channel's
//!   fault hooks (a malicious guest rewriting the shared page after
//!   ringing the doorbell). Containment means every corrupted slot is
//!   surfaced as [`ChannelError::Malformed`] (and counted in
//!   `malformed_count`) or as a detectable loss — never a silently
//!   different message, never a lost slot that also goes uncounted.
//! * **Wall** — the lock-free [`AtomicRing`]: the adversary corrupts the
//!   published sequence and length words (the only fields a hostile
//!   peer can hit without a data race — they are atomics in shared
//!   memory). A corrupted length must clamp into a truncated frame, a
//!   corrupted sequence must hide the slot and surface as producer
//!   backpressure; neither may panic, over-read, or reorder survivors.

use paradice_cvd::proto::{CvdChannel, WireOp, WireRequest, WireResponse};
use paradice_devfs::Errno;
use paradice_faults::SplitMix64;
use paradice_hypervisor::{
    ARingError, AtomicRing, Channel, ChannelError, CostModel, EngineKind, SimClock,
    TransportMode, ARING_CAPACITY, ARING_SLOT_BYTES,
};
use paradice_mem::{GuestPhysAddr, GuestVirtAddr};

use crate::{AttackFamily, FamilyOutcome};

fn request(rng: &mut SplitMix64) -> WireRequest {
    WireRequest {
        task: rng.gen_range(16),
        pt_root: GuestPhysAddr::new(0x4000),
        handle: rng.gen_range(8),
        span: 0,
        grant: None,
        op: WireOp::Read {
            addr: GuestVirtAddr::new(0x1000 + (rng.gen_range(64) << 12)),
            len: 1 + rng.gen_range(256),
        },
    }
}

/// One step against the virtual channel: post a burst, corrupt the
/// newest slot, and drain — accounting for every posted entry.
fn virtual_step(outcome: &mut FamilyOutcome, rng: &mut SplitMix64, engine: EngineKind) {
    let mut channel: CvdChannel = Channel::new(
        TransportMode::polling_default(),
        SimClock::new(),
        CostModel::default(),
    );
    channel.set_ring_depth(8);
    let burst = 1 + rng.gen_range(6) as usize;
    for _ in 0..burst {
        channel.send_request(request(rng)).expect("ring has room");
    }
    let corrupted = match rng.gen_range(3) {
        0 => channel.scramble_request_slot(),
        1 => channel.truncate_request_slot(),
        _ => false,
    };
    let mut delivered = 0usize;
    let mut malformed = 0usize;
    loop {
        match channel.take_request() {
            Ok(_) => delivered += 1,
            Err(ChannelError::Malformed) => malformed += 1,
            Err(ChannelError::Empty) => break,
            Err(e) => {
                outcome.breach(format!(
                    "[{}] virtual ring drain failed unexpectedly: {e}",
                    engine.name(),
                ));
                return;
            }
        }
    }
    let stats = channel.stats();
    if delivered + malformed != burst {
        outcome.breach(format!(
            "[{}] lost ring slot: {burst} posted, {delivered} delivered + \
             {malformed} malformed",
            engine.name(),
        ));
    } else if corrupted && malformed == 0 && delivered == burst {
        // The corrupted slot decoded anyway — possible in principle, but
        // the scramble/truncate patterns always break the codec today, so
        // a silent decode means the detection stat lost an event.
        outcome.breach(format!(
            "[{}] corrupted slot delivered as a well-formed request",
            engine.name(),
        ));
    } else if stats.malformed_count != malformed as u64 {
        outcome.breach(format!(
            "[{}] malformed_count says {} but the drain saw {malformed}: \
             detection went uncounted",
            engine.name(),
            stats.malformed_count,
        ));
    } else if corrupted {
        outcome.detected();
    } else {
        outcome.served();
    }
}

/// One step against the virtual channel's *response* direction,
/// including the dropped-slot (lost completion) case: the loss must be
/// visible as an empty ring, which is what arms the frontend watchdog.
fn virtual_response_step(
    outcome: &mut FamilyOutcome,
    rng: &mut SplitMix64,
    engine: EngineKind,
) {
    let mut channel: CvdChannel = Channel::new(
        TransportMode::polling_default(),
        SimClock::new(),
        CostModel::default(),
    );
    channel.set_ring_depth(8);
    channel
        .send_response(WireResponse::Err(Errno::Eio))
        .expect("ring has room");
    match rng.gen_range(3) {
        0 => {
            channel.scramble_response_slot();
            match channel.take_response() {
                Err(ChannelError::Malformed) => outcome.detected(),
                other => outcome.breach(format!(
                    "[{}] scrambled response surfaced as {other:?}",
                    engine.name(),
                )),
            }
        }
        1 => {
            channel.truncate_response_slot();
            match channel.take_response() {
                Err(ChannelError::Malformed) => outcome.detected(),
                other => outcome.breach(format!(
                    "[{}] truncated response surfaced as {other:?}",
                    engine.name(),
                )),
            }
        }
        _ => {
            channel.drop_response_slot();
            match channel.take_response() {
                Err(ChannelError::Empty) => outcome.detected(),
                other => outcome.breach(format!(
                    "[{}] dropped response surfaced as {other:?} instead of a \
                     watchdog-visible empty ring",
                    engine.name(),
                )),
            }
        }
    }
}

/// One step against the atomic ring: publish frames, corrupt a control
/// word, and check clamp/hiding/backpressure semantics.
fn aring_step(outcome: &mut FamilyOutcome, rng: &mut SplitMix64, engine: EngineKind) {
    let ring = AtomicRing::new();
    let burst = 2 + rng.gen_range(6) as usize;
    let frames: Vec<Vec<u8>> = (0..burst).map(|i| request(rng).encode_with_tag(i)).collect();
    for frame in &frames {
        ring.try_push(frame).expect("ring has room");
    }
    if rng.gen_range(2) == 0 {
        // Length-word corruption: the consumer must clamp, returning a
        // truncated (undecodable) frame rather than over-reading.
        assert!(ring.corrupt_newest_len(ARING_SLOT_BYTES as u32 + 1 + rng.next_u64() as u32));
        let mut clamped = false;
        for (index, expected) in frames.iter().enumerate() {
            let Some(frame) = ring.try_pop() else {
                outcome.breach(format!(
                    "[{}] lost atomic-ring slot {index} after length corruption",
                    engine.name(),
                ));
                return;
            };
            if frame.len() > ARING_SLOT_BYTES {
                outcome.breach(format!(
                    "[{}] consumer over-read a corrupted length: {} bytes",
                    engine.name(),
                    frame.len(),
                ));
                return;
            }
            if index + 1 == burst {
                clamped = frame.len() == ARING_SLOT_BYTES
                    && WireRequest::decode(&frame).is_err();
            } else if frame != *expected {
                outcome.breach(format!(
                    "[{}] survivor frame {index} was altered by a corruption \
                     targeting another slot",
                    engine.name(),
                ));
                return;
            }
        }
        if clamped {
            outcome.detected();
        } else {
            outcome.breach(format!(
                "[{}] hostile length word neither clamped nor rejected",
                engine.name(),
            ));
        }
    } else {
        // Sequence-word corruption: the slot must vanish from the
        // consumer's view and the loss must surface as backpressure.
        assert!(ring.corrupt_newest_seq(1 + rng.gen_range(u32::MAX as u64 - 1) as u32));
        for (index, expected) in frames.iter().enumerate().take(burst - 1) {
            match ring.try_pop() {
                Some(frame) if &frame == expected => {}
                other => {
                    outcome.breach(format!(
                        "[{}] survivor frame {index} misdelivered after seq \
                         corruption: {other:?}",
                        engine.name(),
                    ));
                    return;
                }
            }
        }
        if ring.try_pop().is_some() {
            outcome.breach(format!(
                "[{}] a seq-corrupted slot was still handed to the consumer",
                engine.name(),
            ));
            return;
        }
        let mut full = false;
        for i in 0..=ARING_CAPACITY {
            match ring.try_push(&[i as u8]) {
                Ok(_) => {}
                Err(ARingError::Full) => {
                    full = true;
                    break;
                }
                Err(e) => {
                    outcome.breach(format!("[{}] refill failed oddly: {e}", engine.name()));
                    return;
                }
            }
        }
        if full {
            outcome.detected();
        } else {
            outcome.breach(format!(
                "[{}] the stuck slot never surfaced as backpressure: silent loss",
                engine.name(),
            ));
        }
    }
}

trait TaggedEncode {
    fn encode_with_tag(&self, tag: usize) -> Vec<u8>;
}

impl TaggedEncode for WireRequest {
    fn encode_with_tag(&self, tag: usize) -> Vec<u8> {
        let mut request = self.clone();
        request.task = tag as u64;
        request.encode()
    }
}

/// Runs the ring-corruption campaign: the virtual channel's fault hooks
/// on the virtual substrate, the atomic ring's control words on the wall
/// substrate (each engine attacks the ring implementation it executes
/// on).
pub fn run(engine: EngineKind, seed: u64, steps: u32) -> FamilyOutcome {
    let mut outcome = FamilyOutcome::new(AttackFamily::RingCorruption, engine);
    let mut rng = SplitMix64::new(seed);
    for _ in 0..steps {
        match engine {
            EngineKind::Virtual => {
                if rng.gen_range(2) == 0 {
                    virtual_step(&mut outcome, &mut rng, engine);
                } else {
                    virtual_response_step(&mut outcome, &mut rng, engine);
                }
            }
            EngineKind::Wall => aring_step(&mut outcome, &mut rng, engine),
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_ring_corruption_is_always_detected() {
        let outcome = run(EngineKind::Virtual, 13, 200);
        assert!(outcome.breaches.is_empty(), "{:?}", outcome.breaches);
        assert!(outcome.detected > 0);
    }

    #[test]
    fn atomic_ring_corruption_clamps_hides_or_backpressures() {
        let outcome = run(EngineKind::Wall, 13, 200);
        assert!(outcome.breaches.is_empty(), "{:?}", outcome.breaches);
        assert!(outcome.detected > 0);
        assert_eq!(outcome.served, 0, "every wall step corrupts something");
    }
}
