//! The shared-page re-write race family.
//!
//! The wire decoders parse straight out of a page the peer VM can rewrite
//! at any moment (paper §5.1); the WP001 discipline demands every byte be
//! read *at most once*, because a re-read is a TOCTOU window — validate
//! the length word, peer rewrites it, use the new one. This family runs
//! the real decoders ([`WireRequest::decode_probed`],
//! [`WireResponse::decode_probed`]) under a counting probe while feeding
//! them adversarial frames: any offset read twice is a breach, whatever
//! the decode verdict, because it is the slot a racing rewrite wins.

use paradice_cvd::proto::{ReadProbe, WireRequest, WireResponse};
use paradice_devfs::Errno;
use paradice_faults::SplitMix64;
use paradice_hypervisor::EngineKind;
use paradice_mem::{GuestPhysAddr, GuestVirtAddr};

use crate::{AttackFamily, FamilyOutcome};

/// Counts how often each byte offset is consumed. The adversary "wins"
/// the race exactly when some offset is consumed twice.
#[derive(Default)]
struct CountingProbe {
    reads: Vec<u32>,
}

impl CountingProbe {
    fn double_read(&self) -> Option<usize> {
        self.reads.iter().position(|&count| count > 1)
    }
}

impl ReadProbe for CountingProbe {
    fn on_read(&mut self, at: usize, len: usize) {
        if self.reads.len() < at + len {
            self.reads.resize(at + len, 0);
        }
        for count in &mut self.reads[at..at + len] {
            *count += 1;
        }
    }
}

fn seed_frame(rng: &mut SplitMix64) -> Vec<u8> {
    let request = WireRequest {
        task: rng.next_u64(),
        pt_root: GuestPhysAddr::new(rng.next_u64() & 0xf_ffff_f000),
        handle: rng.gen_range(64),
        span: rng.gen_range(1 << 20),
        grant: None,
        op: paradice_cvd::proto::WireOp::Read {
            addr: GuestVirtAddr::new(rng.next_u64() >> 16),
            len: rng.gen_range(1 << 16),
        },
    };
    request.encode()
}

/// Runs the race campaign: both decoders over seeded adversarial frames.
/// The substrate only varies the seed stream — both engines parse shared
/// pages with the same decoders, which is the point being proven.
pub fn run(engine: EngineKind, seed: u64, steps: u32) -> FamilyOutcome {
    let mut outcome = FamilyOutcome::new(AttackFamily::SharedPageRace, engine);
    let mut rng = SplitMix64::new(seed);
    for step in 0..steps {
        let frame = match rng.gen_range(4) {
            // A mutated request frame.
            0 | 1 => {
                let mut frame = seed_frame(&mut rng);
                let at = rng.gen_range(frame.len() as u64) as usize;
                frame[at] = rng.next_u64() as u8;
                frame.truncate(frame.len() - rng.gen_range(4) as usize);
                frame
            }
            // Pure noise.
            2 => (0..rng.gen_range(64))
                .map(|_| rng.next_u64() as u8)
                .collect(),
            // A mutated response frame.
            _ => {
                let mut frame = WireResponse::Err(Errno::Eio).encode();
                let at = rng.gen_range(frame.len() as u64) as usize;
                frame[at] ^= 1 << rng.gen_range(8);
                frame
            }
        };
        let mut probe = CountingProbe::default();
        let decoded_ok = if step % 2 == 0 {
            WireRequest::decode_probed(&frame, &mut probe).is_ok()
        } else {
            WireResponse::decode_probed(&frame, &mut probe).is_ok()
        };
        if let Some(offset) = probe.double_read() {
            outcome.breach(format!(
                "decoder read offset {offset} twice on a {}-byte frame: a racing \
                 shared-page rewrite between the reads goes unnoticed (WP001)",
                frame.len(),
            ));
        } else if decoded_ok {
            outcome.served();
        } else {
            outcome.detected();
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_real_decoders_never_double_read_adversarial_frames() {
        for seed in 0..4 {
            let outcome = run(EngineKind::Virtual, seed, 500);
            assert!(outcome.breaches.is_empty(), "{:?}", outcome.breaches);
            assert!(outcome.detected > 0, "garbage frames must be rejected");
        }
    }

    #[test]
    fn the_probe_itself_detects_a_double_read() {
        let mut probe = CountingProbe::default();
        probe.on_read(3, 4);
        probe.on_read(5, 1);
        assert_eq!(probe.double_read(), Some(5));
    }
}
