//! The wire-mutation family: seeded mutations of encoded [`WireRequest`]
//! bytes submitted raw through the [`Engine`] byte seam of both
//! substrates, plus the delta-minimizer that turns a breach into a
//! replayable `adversary-containment` fixture.
//!
//! The oracle is deliberately independent of the production grant code:
//! [`model_covers`] re-derives window coverage in `u128` exact arithmetic
//! (the same model `crates/verify`'s `adversary-containment` property
//! anchors), so a breach verdict means the *stack* and the *model*
//! disagree — never that two copies of the same code agree with each
//! other.
//!
//! [`Engine`]: paradice_hypervisor::Engine

use paradice_cvd::exec::{CvdEngine, VirtualEngine, WallEngine, EXEC_GUEST};
use paradice_cvd::proto::{WireOp, WireRequest, WireResponse};
use paradice_faults::SplitMix64;
use paradice_hypervisor::{EngineError, EngineKind, GrantRef, MemOpGrant, MemOpRequest};
use paradice_mem::{GuestPhysAddr, GuestVirtAddr};
use paradice_verify::fixture::{to_hex, Fixture};

use crate::{AttackFamily, FamilyOutcome};

/// The memory operations the backend's driver issues for a decoded
/// request: a read fills the user buffer, a write drains it.
pub(crate) fn implied_mem_ops(op: &WireOp) -> Vec<MemOpRequest> {
    match *op {
        WireOp::Read { addr, len } => vec![MemOpRequest::CopyToGuest { addr, len }],
        WireOp::Write { addr, len } => vec![MemOpRequest::CopyFromGuest { addr, len }],
        _ => Vec::new(),
    }
}

/// Exact-arithmetic coverage of one declared window over one memory
/// operation — the independent oracle (`u128`, no saturation surprises).
pub(crate) fn model_covers(grant: &MemOpGrant, request: &MemOpRequest) -> bool {
    let window = |r_addr: u64, r_len: u64, g_addr: u64, g_len: u64| {
        let r_end = u128::from(r_addr) + u128::from(r_len);
        let g_end = (u128::from(g_addr) + u128::from(g_len)).min(u128::from(u64::MAX));
        r_end <= u128::from(u64::MAX) && r_addr >= g_addr && r_end <= g_end
    };
    match (grant, request) {
        (
            MemOpGrant::CopyToGuest { addr, len },
            MemOpRequest::CopyToGuest { addr: ra, len: rl },
        )
        | (
            MemOpGrant::CopyFromGuest { addr, len },
            MemOpRequest::CopyFromGuest { addr: ra, len: rl },
        ) => window(ra.raw(), *rl, addr.raw(), *len),
        _ => false,
    }
}

/// The scripted backend the engines run: serves every decoded request and
/// performs its implied memory operations, so grant enforcement (inside
/// the engine's dispatch) is the only thing standing between a mutated
/// frame and a moved buffer.
fn adversary_service(req: &WireRequest) -> (WireResponse, Vec<MemOpRequest>) {
    let value = match req.op {
        WireOp::Read { len, .. } | WireOp::Write { len, .. } => len as i64,
        _ => 0,
    };
    (WireResponse::Value(value), implied_mem_ops(&req.op))
}

fn build_engine(kind: EngineKind) -> Box<dyn CvdEngine> {
    match kind {
        EngineKind::Virtual => Box::new(VirtualEngine::new(adversary_service)),
        EngineKind::Wall => Box::new(WallEngine::new(adversary_service)),
    }
}

/// One legitimate request plus the windows its frontend declares for it.
struct CorpusEntry {
    request: WireRequest,
    decls: Vec<MemOpGrant>,
}

/// The legitimate corpus the mutations start from: user-buffer ops whose
/// windows are declared exactly, so any mutation that moves or widens the
/// buffer must be caught.
fn corpus() -> Vec<CorpusEntry> {
    let base = |op: WireOp| WireRequest {
        task: 7,
        pt_root: GuestPhysAddr::new(0x4000),
        handle: 3,
        span: 0, // raw frames carry no span: the adversary is not a traced frontend
        grant: None,
        op,
    };
    vec![
        CorpusEntry {
            request: base(WireOp::Read {
                addr: GuestVirtAddr::new(0x10_0000),
                len: 64,
            }),
            decls: vec![MemOpGrant::CopyToGuest {
                addr: GuestVirtAddr::new(0x10_0000),
                len: 64,
            }],
        },
        CorpusEntry {
            request: base(WireOp::Write {
                addr: GuestVirtAddr::new(0x20_0000),
                len: 200,
            }),
            decls: vec![MemOpGrant::CopyFromGuest {
                addr: GuestVirtAddr::new(0x20_0000),
                len: 200,
            }],
        },
        CorpusEntry {
            request: base(WireOp::Read {
                addr: GuestVirtAddr::new(0xfff),
                len: 1,
            }),
            decls: vec![MemOpGrant::CopyToGuest {
                addr: GuestVirtAddr::new(0xfff),
                len: 1,
            }],
        },
    ]
}

/// Applies one seeded mutation to `bytes` (and sometimes re-encodes a
/// field-tampered request instead): the generative half of the adversary.
fn mutate(rng: &mut SplitMix64, pristine: &WireRequest, bytes: &[u8]) -> Vec<u8> {
    match rng.gen_range(7) {
        // Single-bit flip anywhere in the frame.
        0 => {
            let mut out = bytes.to_vec();
            let at = rng.gen_range(out.len() as u64) as usize;
            out[at] ^= 1 << rng.gen_range(8);
            out
        }
        // Random byte overwrite.
        1 => {
            let mut out = bytes.to_vec();
            let at = rng.gen_range(out.len() as u64) as usize;
            out[at] = rng.next_u64() as u8;
            out
        }
        // Truncation (partial shared-page write).
        2 => bytes[..rng.gen_range(bytes.len() as u64) as usize].to_vec(),
        // Trailing bytes after a valid frame.
        3 => {
            let mut out = bytes.to_vec();
            for _ in 0..=rng.gen_range(4) {
                out.push(rng.next_u64() as u8);
            }
            out
        }
        // Offset tamper: move the user buffer.
        4 => {
            let mut req = pristine.clone();
            let delta = rng.next_u64() >> rng.gen_range(48);
            match &mut req.op {
                WireOp::Read { addr, .. } | WireOp::Write { addr, .. } => {
                    *addr = GuestVirtAddr::new(addr.raw().wrapping_add(delta));
                }
                _ => {}
            }
            req.encode()
        }
        // Length tamper: widen (or overflow) the user buffer.
        5 => {
            let mut req = pristine.clone();
            let inflated = rng.next_u64() >> rng.gen_range(48);
            match &mut req.op {
                WireOp::Read { len, .. } | WireOp::Write { len, .. } => {
                    *len = len.wrapping_add(inflated.max(1));
                }
                _ => {}
            }
            req.encode()
        }
        // Grant-ref tamper: travel under someone else's (or no) ref.
        _ => {
            let mut req = pristine.clone();
            req.grant = match rng.gen_range(3) {
                0 => None,
                1 => Some(GrantRef(rng.next_u64() as u32)),
                _ => req.grant.map(|GrantRef(r)| GrantRef(r.wrapping_add(1))),
            };
            req.encode()
        }
    }
}

/// Whether `bytes` is legitimate against the declared windows: decodes,
/// travels under a declared ref, and every implied memory operation is
/// covered by that ref's windows.
fn legitimate(bytes: &[u8], refs: &[(GrantRef, Vec<MemOpGrant>)]) -> bool {
    let Ok(request) = WireRequest::decode(bytes) else {
        return false;
    };
    implied_mem_ops(&request.op).iter().all(|mem_op| {
        refs.iter().any(|(legit, decls)| {
            request.grant == Some(*legit) && decls.iter().any(|d| model_covers(d, mem_op))
        })
    })
}

/// A breach, delta-minimized into the shape the verify fixture bridge
/// replays: the declared windows plus the offending frame bytes.
#[derive(Debug, Clone)]
pub struct MinimizedFind {
    /// Substrate the breach was found on.
    pub engine: EngineKind,
    /// The windows the frontend had declared.
    pub decls: Vec<MemOpGrant>,
    /// The minimized adversarial frame.
    pub bytes: Vec<u8>,
    /// What went wrong.
    pub reason: String,
}

impl MinimizedFind {
    /// Renders the find as an `adversary-containment` fixture — the same
    /// property `crates/verify` proves, so the find replays through
    /// [`paradice_verify::replay_fixture`] and lands in the
    /// `tests/fixtures/verify/` corpus gate.
    pub fn fixture(&self, mutant: Option<&str>) -> Fixture {
        let mut fixture = Fixture::new("adversary-containment", mutant, &self.reason);
        for decl in &self.decls {
            fixture.push_data("decl", decl_line(decl));
        }
        fixture.push_data("attack", format!("wire-mutation-{}", self.engine.name()));
        fixture.push_data("bytes", to_hex(&self.bytes));
        fixture
    }
}

fn decl_line(grant: &MemOpGrant) -> String {
    match *grant {
        MemOpGrant::CopyFromGuest { addr, len } => format!("copy_from:{}:{len}", addr.raw()),
        MemOpGrant::CopyToGuest { addr, len } => format!("copy_to:{}:{len}", addr.raw()),
        MemOpGrant::MapPages { va, pages, access } => {
            format!("map:{}:{pages}:{}", va.raw(), access.bits())
        }
        MemOpGrant::UnmapPages { va, pages } => format!("unmap:{}:{pages}", va.raw()),
    }
}

/// Whether `bytes` still reproduces the recorded violation under the
/// fixture's replay semantics: it decodes, implies a user-buffer move,
/// and is not legitimate against a fresh single-declaration table (where
/// the legit ref is `GrantRef(0)`). This is the minimizer's oracle — a
/// pure function, so minimization never re-runs an engine.
fn still_breaches(bytes: &[u8], decls: &[MemOpGrant]) -> bool {
    let Ok(request) = WireRequest::decode(bytes) else {
        return false;
    };
    let implied = implied_mem_ops(&request.op);
    if implied.is_empty() {
        return false;
    }
    !implied.iter().all(|mem_op| {
        request.grant == Some(GrantRef(0)) && decls.iter().any(|d| model_covers(d, mem_op))
    })
}

/// Delta-minimizes a breaching frame toward its pristine ancestor: first
/// restores the original length where possible, then greedily reverts
/// every differing byte that is not needed to keep the breach alive.
pub fn minimize(pristine: &[u8], mutated: &[u8], decls: &[MemOpGrant]) -> Vec<u8> {
    let mut current = mutated.to_vec();
    if !still_breaches(&current, decls) {
        return current;
    }
    // Length restoration: pad/trim with pristine bytes.
    if current.len() != pristine.len() {
        let mut resized = pristine.to_vec();
        for (index, byte) in current.iter().enumerate().take(resized.len()) {
            resized[index] = *byte;
        }
        if still_breaches(&resized, decls) {
            current = resized;
        }
    }
    // Greedy byte revert to fixpoint.
    loop {
        let mut changed = false;
        for index in 0..current.len().min(pristine.len()) {
            if current[index] == pristine[index] {
                continue;
            }
            let mut candidate = current.clone();
            candidate[index] = pristine[index];
            if still_breaches(&candidate, decls) {
                current = candidate;
                changed = true;
            }
        }
        if !changed {
            return current;
        }
    }
}

/// Runs the wire-mutation campaign on one substrate. Returns the outcome
/// cell plus the first breach, minimized — under the seeded bypass that
/// find is the one committed through the fixture gate.
pub fn run(
    engine: EngineKind,
    seed: u64,
    steps: u32,
    bypass: bool,
) -> (FamilyOutcome, Option<MinimizedFind>) {
    let mut outcome = FamilyOutcome::new(AttackFamily::WireMutation, engine);
    let mut rng = SplitMix64::new(seed);
    let mut exec = build_engine(engine);
    let entries = corpus();

    // The frontend's declarations. Under the seeded bypass the *table*
    // grants everything (the backend that forgot the hypercall check);
    // the model still knows the windows the frontend intended, which is
    // exactly the gap the campaign must detect.
    let mut refs: Vec<(GrantRef, Vec<MemOpGrant>)> = Vec::new();
    if bypass {
        let universal = exec
            .grants()
            .declare(EXEC_GUEST, vec![
                MemOpGrant::CopyToGuest {
                    addr: GuestVirtAddr::new(0),
                    len: u64::MAX,
                },
                MemOpGrant::CopyFromGuest {
                    addr: GuestVirtAddr::new(0),
                    len: u64::MAX,
                },
            ])
            .expect("declare universal windows");
        for entry in &entries {
            refs.push((universal, entry.decls.clone()));
        }
    } else {
        for entry in &entries {
            let legit = exec
                .grants()
                .declare(EXEC_GUEST, entry.decls.clone())
                .expect("declare corpus windows");
            refs.push((legit, entry.decls.clone()));
        }
    }

    let mut find: Option<MinimizedFind> = None;
    for step in 0..steps {
        let index = rng.gen_range(entries.len() as u64) as usize;
        let mut pristine = entries[index].request.clone();
        pristine.grant = Some(refs[index].0);
        let pristine_bytes = pristine.encode();
        // Every eighth step submits the pristine frame: the
        // correct-service half of the invariant.
        let mutated = if step % 8 == 0 {
            pristine_bytes.clone()
        } else {
            mutate(&mut rng, &pristine, &pristine_bytes)
        };

        let response = match exec.submit(&mutated) {
            Ok(()) => match receive(exec.as_mut()) {
                Ok(frame) => frame,
                Err(reason) => {
                    outcome.breach(format!("[{}] {reason}", engine.name()));
                    continue;
                }
            },
            Err(EngineError::Oversize { .. }) => {
                // Rejected at admission: the slot-size check contained it.
                outcome.detected();
                continue;
            }
            Err(e) => {
                outcome.breach(format!(
                    "[{}] healthy engine refused a submit: {e}",
                    engine.name(),
                ));
                continue;
            }
        };

        let legit = legitimate(&mutated, &refs);
        match WireResponse::decode(&response) {
            Ok(WireResponse::Err(_)) if !legit => outcome.detected(),
            Ok(WireResponse::Err(errno)) => outcome.breach(format!(
                "[{}] legitimate frame refused with {errno:?}",
                engine.name(),
            )),
            Ok(_) if legit => outcome.served(),
            Ok(served) => {
                let reason = format!(
                    "backend served {served:?} for a frame whose implied memory \
                     operations escape the declared windows; grant bypass",
                );
                if find.is_none() {
                    let minimized = minimize(&pristine_bytes, &mutated, &entries[index].decls);
                    find = Some(MinimizedFind {
                        engine,
                        decls: entries[index].decls.clone(),
                        bytes: minimized,
                        reason: reason.clone(),
                    });
                }
                outcome.breach(format!("[{}] {reason}", engine.name()));
            }
            Err(e) => outcome.breach(format!(
                "[{}] backend emitted an undecodable response: {e:?}",
                engine.name(),
            )),
        }
    }
    exec.finish();
    (outcome, find)
}

/// Pulls exactly one response out of the engine, surfacing hangs and
/// lost slots as errors instead of blocking forever.
fn receive(exec: &mut dyn CvdEngine) -> Result<Vec<u8>, String> {
    match exec.kind() {
        EngineKind::Virtual => match exec.complete() {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err("submitted frame vanished: lost ring slot".into()),
            Err(e) => Err(format!("engine died mid-op: {e}")),
        },
        EngineKind::Wall => exec
            .complete_blocking()
            .map_err(|e| format!("backend died mid-op: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_contain_everything_on_the_virtual_oracle() {
        let (outcome, find) = run(EngineKind::Virtual, 3, 200, false);
        assert!(outcome.breaches.is_empty(), "{:?}", outcome.breaches);
        assert!(outcome.detected > 0, "mutations must be refused");
        assert!(outcome.served > 0, "pristine frames must be served");
        assert!(find.is_none());
    }

    #[test]
    fn the_bypass_is_breached_and_the_find_minimizes_to_few_changed_bytes() {
        let (outcome, find) = run(EngineKind::Virtual, 3, 200, true);
        assert!(!outcome.breaches.is_empty(), "bypass must be caught");
        let find = find.expect("a breach minimizes");
        let entry = &corpus()[0];
        // The minimized frame still reproduces under replay semantics and
        // stays close to a pristine encoding: the minimizer reverted the
        // incidental mutation bytes.
        assert!(still_breaches(&find.bytes, &find.decls));
        let mut pristine = entry.request.clone();
        pristine.grant = Some(GrantRef(0));
        let _ = pristine;
        let fixture = find.fixture(Some("grant-bypass"));
        assert!(paradice_verify::replay_fixture(&fixture, None).is_ok());
        assert!(paradice_verify::replay_fixture(
            &fixture,
            Some(paradice_verify::report::Mutant::GrantBypass),
        )
        .is_err());
    }

    #[test]
    fn the_minimizer_reverts_incidental_damage() {
        let entry = &corpus()[0];
        let mut pristine = entry.request.clone();
        pristine.grant = Some(GrantRef(0));
        let pristine_bytes = pristine.encode();
        // A breaching mutation (widened length) plus incidental damage in
        // the task field.
        let mut attacked = pristine.clone();
        if let WireOp::Read { len, .. } = &mut attacked.op {
            *len += 4096;
        }
        attacked.task = 0xdead;
        let mutated = attacked.encode();
        assert!(still_breaches(&mutated, &entry.decls));
        let minimized = minimize(&pristine_bytes, &mutated, &entry.decls);
        assert!(still_breaches(&minimized, &entry.decls));
        let decoded = WireRequest::decode(&minimized).expect("minimized frame decodes");
        assert_eq!(decoded.task, 7, "incidental task damage reverted");
        // Only the length tamper survives.
        let differing = minimized
            .iter()
            .zip(&pristine_bytes)
            .filter(|(a, b)| a != b)
            .count();
        assert!(differing <= 2, "minimized to {differing} differing bytes");
    }

    #[test]
    fn wall_and_virtual_agree_on_the_same_seed() {
        let (virt, _) = run(EngineKind::Virtual, 9, 120, false);
        let (wall, _) = run(EngineKind::Wall, 9, 120, false);
        // Same seed, same mutation stream, same dispatch semantics: the
        // two substrates must classify identically.
        assert_eq!(virt.detected, wall.detected);
        assert_eq!(virt.served, wall.served);
        assert!(virt.breaches.is_empty() && wall.breaches.is_empty());
    }
}
