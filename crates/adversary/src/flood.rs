//! The flood family: resource-exhaustion attacks on the forwarding path.
//!
//! Four storm shapes per campaign, seed-interleaved: request bursts past
//! the pipeline depth (must surface as [`EngineError::Backpressure`],
//! never a lost slot), malformed-frame floods (every garbage frame must
//! come back `EINVAL`), oversize frames plus doorbell storms (admission
//! rejection, and a rung-to-death doorbell must still deliver its next
//! wakeup), and hypercall storms against the live hypervisor (absorbed
//! without granting the flooder any privilege).
//!
//! Containment for a flood is *conservation*: every accepted frame
//! produces exactly one response, every refused frame is refused loudly,
//! and the stack afterwards still serves. A flood that loses work — or
//! wedges the frontend — is a breach even though no memory moved.

use paradice::{DeviceSpec, ExecMode, GuestSpec, Machine};
use paradice_cvd::exec::{CvdEngine, VirtualEngine, WallEngine, EXEC_RING_DEPTH};
use paradice_cvd::proto::{WireOp, WireRequest, WireResponse};
use paradice_devfs::Errno;
use paradice_faults::SplitMix64;
use paradice_hypervisor::{
    Doorbell, EngineError, EngineKind, GrantRef, MemOpRequest, TransportMode, ARING_SLOT_BYTES,
};
use paradice_mem::{GuestPhysAddr, GuestVirtAddr};

use crate::{AttackFamily, FamilyOutcome};

/// A benign no-memop request: floods measure conservation, not grants.
fn poll_frame(rng: &mut SplitMix64) -> Vec<u8> {
    WireRequest {
        task: rng.gen_range(16),
        pt_root: GuestPhysAddr::new(0x4000),
        handle: rng.gen_range(8),
        span: 0,
        grant: None,
        op: WireOp::Poll,
    }
    .encode()
}

fn flood_service(req: &WireRequest) -> (WireResponse, Vec<MemOpRequest>) {
    let _ = req;
    (WireResponse::Value(0), Vec::new())
}

fn build_engine(kind: EngineKind) -> Box<dyn CvdEngine> {
    match kind {
        EngineKind::Virtual => Box::new(VirtualEngine::new(flood_service)),
        EngineKind::Wall => Box::new(WallEngine::new(flood_service)),
    }
}

fn drain_one(exec: &mut dyn CvdEngine) -> Result<Vec<u8>, String> {
    match exec.kind() {
        EngineKind::Virtual => match exec.complete() {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err("accepted frame vanished: lost ring slot".into()),
            Err(e) => Err(format!("engine died draining the flood: {e}")),
        },
        EngineKind::Wall => exec
            .complete_blocking()
            .map_err(|e| format!("backend died draining the flood: {e}")),
    }
}

/// A request burst past the pipeline depth: refusals must be loud
/// backpressure and every accepted frame must come back exactly once.
fn burst_step(outcome: &mut FamilyOutcome, rng: &mut SplitMix64, engine: EngineKind) {
    let mut exec = build_engine(engine);
    let burst = EXEC_RING_DEPTH + 4 + rng.gen_range(12) as usize;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for _ in 0..burst {
        match exec.submit(&poll_frame(rng)) {
            Ok(()) => accepted += 1,
            Err(EngineError::Backpressure) => rejected += 1,
            Err(e) => {
                outcome.breach(format!(
                    "[{}] flood refused with {e} instead of backpressure",
                    engine.name(),
                ));
                return;
            }
        }
    }
    for _ in 0..accepted {
        let frame = match drain_one(exec.as_mut()) {
            Ok(frame) => frame,
            Err(reason) => {
                outcome.breach(format!("[{}] {reason}", engine.name()));
                return;
            }
        };
        match WireResponse::decode(&frame) {
            Ok(WireResponse::Err(errno)) => {
                outcome.breach(format!(
                    "[{}] benign flood frame refused with {errno:?}",
                    engine.name(),
                ));
                return;
            }
            Ok(_) => {}
            Err(e) => {
                outcome.breach(format!(
                    "[{}] flood response undecodable: {e:?}",
                    engine.name(),
                ));
                return;
            }
        }
    }
    // One extra completion must report empty, not invent a frame.
    if let Ok(Some(_)) = exec.complete() {
        outcome.breach(format!(
            "[{}] ring produced more responses than accepted requests",
            engine.name(),
        ));
        return;
    }
    if rejected > 0 {
        outcome.detected();
    } else {
        outcome.served();
    }
}

/// A malformed-frame flood: every garbage frame must come back `EINVAL`.
fn malformed_step(outcome: &mut FamilyOutcome, rng: &mut SplitMix64, engine: EngineKind) {
    let mut exec = build_engine(engine);
    let volley = 1 + rng.gen_range(EXEC_RING_DEPTH as u64 - 1) as usize;
    for _ in 0..volley {
        let frame: Vec<u8> = (0..rng.gen_range(ARING_SLOT_BYTES as u64))
            .map(|_| rng.next_u64() as u8)
            .collect();
        if let Err(e) = exec.submit(&frame) {
            outcome.breach(format!(
                "[{}] garbage under the ring depth was refused at submit: {e}",
                engine.name(),
            ));
            return;
        }
    }
    for _ in 0..volley {
        match drain_one(exec.as_mut()).map(|f| WireResponse::decode(&f)) {
            Ok(Ok(WireResponse::Err(Errno::Einval))) => {}
            Ok(Ok(other)) => {
                // A garbage frame decoding into a servable request is
                // astronomically unlikely under the codec's tag checks;
                // anything but EINVAL means the decoder guessed.
                outcome.breach(format!(
                    "[{}] garbage frame was answered with {other:?}",
                    engine.name(),
                ));
                return;
            }
            Ok(Err(e)) => {
                outcome.breach(format!(
                    "[{}] response to garbage was itself undecodable: {e:?}",
                    engine.name(),
                ));
                return;
            }
            Err(reason) => {
                outcome.breach(format!("[{}] {reason}", engine.name()));
                return;
            }
        }
    }
    outcome.detected();
}

/// Oversize admission plus a doorbell storm: the fat frame must be
/// refused at the slot boundary, and a doorbell rung far faster than
/// anyone waits must neither panic nor eat the next genuine wakeup.
fn oversize_and_doorbell_step(
    outcome: &mut FamilyOutcome,
    rng: &mut SplitMix64,
    engine: EngineKind,
) {
    let mut exec = build_engine(engine);
    let fat = vec![0u8; ARING_SLOT_BYTES + 1 + rng.gen_range(64) as usize];
    match exec.submit(&fat) {
        Err(EngineError::Oversize { len }) if len == fat.len() => {}
        other => {
            outcome.breach(format!(
                "[{}] oversize frame got {other:?} instead of admission rejection",
                engine.name(),
            ));
            return;
        }
    }
    let bell = Doorbell::new();
    for _ in 0..64 {
        bell.ring(); // no waiter: the storm must be absorbed
    }
    bell.register();
    bell.wait(|| true); // the storm must not have wedged delivery
    outcome.detected();
}

/// A hypercall storm: the flooding guest burns cycles but gains nothing —
/// privileged hypercalls stay refused mid-storm.
fn hypercall_step(outcome: &mut FamilyOutcome, rng: &mut SplitMix64, machine: &Machine) {
    let hv = machine.hv().clone();
    let guest = machine.guest_vms()[0];
    for _ in 0..32 + rng.gen_range(32) {
        hv.borrow_mut().hc_noop(guest);
    }
    let result = hv.borrow_mut().hc_copy_to_guest(
        guest, // a guest, not the driver VM: role check must refuse it
        guest,
        GuestPhysAddr::new(0),
        GuestVirtAddr::new(0x1_0000),
        &[0u8; 16],
        GrantRef(rng.next_u64() as u32),
    );
    match result {
        Err(_) => outcome.detected(),
        Ok(()) => outcome.breach(
            "a flooding guest's privileged hypercall was served mid-storm".into(),
        ),
    }
}

/// Runs the flood campaign on one substrate.
pub fn run(engine: EngineKind, seed: u64, steps: u32) -> FamilyOutcome {
    let mut outcome = FamilyOutcome::new(AttackFamily::Flood, engine);
    let mut rng = SplitMix64::new(seed);
    let machine = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::polling_default(),
            data_isolation: false,
        })
        .engine(engine)
        .device(DeviceSpec::Mouse)
        .guests([GuestSpec::linux()])
        .build()
        .expect("build flood machine");
    for _ in 0..steps {
        match rng.gen_range(4) {
            0 => burst_step(&mut outcome, &mut rng, engine),
            1 => malformed_step(&mut outcome, &mut rng, engine),
            2 => oversize_and_doorbell_step(&mut outcome, &mut rng, engine),
            _ => hypercall_step(&mut outcome, &mut rng, &machine),
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floods_are_contained_on_the_virtual_substrate() {
        let outcome = run(EngineKind::Virtual, 21, 80);
        assert!(outcome.breaches.is_empty(), "{:?}", outcome.breaches);
        assert!(outcome.detected > 0, "bursts past depth 8 must backpressure");
    }

    #[test]
    fn floods_are_contained_on_the_wall_substrate() {
        let outcome = run(EngineKind::Wall, 21, 80);
        assert!(outcome.breaches.is_empty(), "{:?}", outcome.breaches);
        assert!(outcome.detected > 0, "malformed and oversize floods detect");
    }
}
