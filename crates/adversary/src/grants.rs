//! The grant-replay family: the compromised driver VM replays, forges,
//! and cross-wires grant references against the live hypervisor.
//!
//! Each step acts with the driver VM's authority (paper §4.1: the driver
//! VM is assumed compromised) and checks *attributed* containment: the
//! hypercall must fail **and** the audit log must credit the grant check.
//! A refusal that never reached the grant check — or, under the seeded
//! bypass, a copy that sailed through — is a breach. A legitimate control
//! operation runs periodically to pin the correct-service half of the
//! invariant: containment must not degrade into refusing everything.

use paradice::{DeviceSpec, ExecMode, GuestSpec, Machine};
use paradice_faults::SplitMix64;
use paradice_hypervisor::audit::BlockedBy;
use paradice_hypervisor::{EngineKind, GrantRef, MemOpGrant, TransportMode};
use paradice_mem::{GuestPhysAddr, GuestVirtAddr};

use crate::{AttackFamily, FamilyOutcome};

fn grant_check_count(machine: &Machine) -> u64 {
    machine
        .hv()
        .borrow()
        .audit()
        .count_blocked_by(BlockedBy::GrantCheck) as u64
}

/// Runs the grant-replay campaign on one substrate. `bypass` disables
/// grant validation (the devirtualization ablation) — every attack must
/// then surface as a breach, because nothing audits or refuses it.
pub fn run(engine: EngineKind, seed: u64, steps: u32, bypass: bool) -> FamilyOutcome {
    let mut outcome = FamilyOutcome::new(AttackFamily::GrantReplay, engine);
    let mut rng = SplitMix64::new(seed);
    let mut machine = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::polling_default(),
            data_isolation: false,
        })
        .engine(engine)
        .device(DeviceSpec::Mouse)
        .guests([GuestSpec::linux(), GuestSpec::linux()])
        .build()
        .expect("build attack machine");
    if bypass {
        machine.hv().borrow_mut().set_grant_validation(false);
    }
    let driver = machine.driver_vm();
    let guests = machine.guest_vms().to_vec();
    let task = machine.spawn_process(Some(0)).expect("spawn victim task");
    let mut fd = machine
        .open(task, "/dev/input/event0")
        .expect("open input device");

    for step in 0..steps {
        // The correct-service control: a legitimate op must still work.
        if step % 8 == 7 {
            match machine.poll(task, fd) {
                Ok(_) => outcome.served(),
                Err(e) => outcome.breach(format!(
                    "[{}] legitimate poll refused during the campaign: {e}",
                    engine.name(),
                )),
            }
            continue;
        }

        let addr = GuestVirtAddr::new(0x1_0000 + (rng.gen_range(64) << 12));
        let len = 1 + rng.gen_range(128);
        let window = vec![MemOpGrant::CopyToGuest { addr, len }];
        let payload = vec![0u8; len as usize];
        let before = grant_check_count(&machine);
        let hv = machine.hv().clone();

        let (attack, result) = match rng.gen_range(5) {
            // A reference that was never declared.
            0 => {
                let forged = GrantRef(0x8000_0000 | rng.next_u64() as u32);
                let result = hv.borrow_mut().hc_copy_to_guest(
                    driver,
                    guests[0],
                    GuestPhysAddr::new(0),
                    addr,
                    &payload,
                    forged,
                );
                ("forged-ref", result)
            }
            // Replay after revocation.
            1 => {
                let grant = hv
                    .borrow_mut()
                    .declare_grants(guests[0], window)
                    .expect("declare");
                let _ = hv.borrow_mut().revoke_grant(guests[0], grant);
                let result = hv.borrow_mut().hc_copy_to_guest(
                    driver,
                    guests[0],
                    GuestPhysAddr::new(0),
                    addr,
                    &payload,
                    grant,
                );
                ("replayed-ref", result)
            }
            // A reference declared by one guest, spent against another.
            2 => {
                let grant = hv
                    .borrow_mut()
                    .declare_grants(guests[0], window)
                    .expect("declare");
                let result = hv.borrow_mut().hc_copy_to_guest(
                    driver,
                    guests[1],
                    GuestPhysAddr::new(0),
                    addr,
                    &payload,
                    grant,
                );
                let _ = hv.borrow_mut().revoke_grant(guests[0], grant);
                ("cross-guest-ref", result)
            }
            // A reference surviving driver-VM failure and recovery.
            3 => {
                let grant = hv
                    .borrow_mut()
                    .declare_grants(guests[0], window)
                    .expect("declare");
                let _ = hv.borrow_mut().mark_driver_vm_failed(driver);
                machine.recover_driver_vm().expect("recovery succeeds");
                let result = hv.borrow_mut().hc_copy_to_guest(
                    driver,
                    guests[0],
                    GuestPhysAddr::new(0),
                    addr,
                    &payload,
                    grant,
                );
                ("recovery-survivor-ref", result)
            }
            // A live reference replayed with inflated bounds.
            _ => {
                let grant = hv
                    .borrow_mut()
                    .declare_grants(
                        guests[0],
                        vec![MemOpGrant::CopyToGuest { addr, len: 16 }],
                    )
                    .expect("declare");
                let oversized = vec![0u8; 4096];
                let result = hv.borrow_mut().hc_copy_to_guest(
                    driver,
                    guests[0],
                    GuestPhysAddr::new(0),
                    addr,
                    &oversized,
                    grant,
                );
                let _ = hv.borrow_mut().revoke_grant(guests[0], grant);
                ("grant-overflow", result)
            }
        };

        // Recovery closes every open handle (EBADF by design); the guest
        // reopens, so the control op keeps measuring service — not the
        // recovery's intended handle invalidation.
        if attack == "recovery-survivor-ref" {
            fd = machine
                .open(task, "/dev/input/event0")
                .expect("reopen after recovery");
        }

        let audited = grant_check_count(&machine) > before;
        match (result, audited) {
            (Err(_), true) => outcome.detected(),
            (Err(e), false) => outcome.breach(format!(
                "[{}] {attack}: refused ({e}) but the grant check never engaged — \
                 containment by accident, not enforcement",
                engine.name(),
            )),
            (Ok(()), _) => outcome.breach(format!(
                "[{}] {attack}: the hypervisor moved the buffer; grant bypass",
                engine.name(),
            )),
        }
    }
    // Recovery steps close all handles (EBADF by design); reopening is the
    // guest's job, and the campaign does it so late control ops stay
    // meaningful — but the final machine must still be serviceable.
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_replay_attack_is_attributed_to_the_grant_check() {
        let outcome = run(EngineKind::Virtual, 5, 60, false);
        assert!(outcome.breaches.is_empty(), "{:?}", outcome.breaches);
        assert!(outcome.detected > 0);
        assert!(outcome.served > 0, "control ops must keep working");
    }

    #[test]
    fn disabling_validation_turns_every_attack_into_a_breach() {
        let outcome = run(EngineKind::Virtual, 5, 24, true);
        assert!(
            !outcome.breaches.is_empty(),
            "the ablation must be caught: {outcome:?}"
        );
    }
}
