//! The grant-replay family: the compromised driver VM replays, forges,
//! and cross-wires grant references against the live hypervisor — and,
//! since the multi-tenant refactor, against the live sharded multi-guest
//! engine on the same substrate.
//!
//! Each hypervisor step acts with the driver VM's authority (paper §4.1:
//! the driver VM is assumed compromised) and checks *attributed*
//! containment: the hypercall must fail **and** the audit log must credit
//! the grant check. A refusal that never reached the grant check — or,
//! under the seeded bypass, a copy that sailed through — is a breach. A
//! legitimate control operation runs periodically to pin the
//! correct-service half of the invariant: containment must not degrade
//! into refusing everything.
//!
//! The cross-guest-shard steps attack the [`ShardedGrantTable`] through
//! a live [`MultiEngine`]: references forged or stolen to name another
//! guest's shard must be refused by the per-guest qualifier itself
//! ([`GrantError::ForeignGuest`], before the owner's shard is read) and
//! surface as `EFAULT` on the wire; a flood driven past one guest's
//! wait-queue cap must come back as backpressure with nothing dropped or
//! reordered and the neighbor guest still served mid-flood.

use std::collections::VecDeque;

use paradice::{DeviceSpec, ExecMode, GuestSpec, Machine};
use paradice_cvd::proto::{WireOp, WireRequest, WireResponse};
use paradice_cvd::{build_multi, MultiEngine, SchedPolicy, ScriptedService, MULTI_QUEUE_CAP};
use paradice_devfs::ioc::io;
use paradice_devfs::Errno;
use paradice_faults::SplitMix64;
use paradice_hypervisor::audit::BlockedBy;
use paradice_hypervisor::engine::EngineError;
use paradice_hypervisor::{
    EngineKind, GrantError, GrantRef, MemOpGrant, MemOpRequest, ShardedGrantTable, TransportMode,
    MAX_GUESTS, SEQ_BITS,
};
use paradice_mem::{GuestPhysAddr, GuestVirtAddr};

use crate::{AttackFamily, FamilyOutcome};

/// The multi-guest rig's cast: guest 0 is the hostile caller, guest 1
/// the shard whose references get stolen, guest 2 the flood target,
/// guest 3 the neighbor that must stay serviceable throughout.
const RIG_GUESTS: usize = 4;
const CALLER: u32 = 0;
const OWNER: u32 = 1;
const FLOODED: u32 = 2;
const NEIGHBOR: u32 = 3;

/// The interactive-ioctl frame the rig attacks ride on (the
/// [`ScriptedService`] `RADEON_INFO` shape: 8 bytes read + written at
/// `arg`).
fn rig_ioctl_frame(guest: u32, grant: Option<GrantRef>, arg: u64) -> Vec<u8> {
    WireRequest {
        task: u64::from(guest) + 1,
        pt_root: GuestPhysAddr::new(0x4000),
        handle: 1,
        span: 0,
        grant,
        op: WireOp::Ioctl { cmd: io(b'T', 1), arg },
    }
    .encode()
}

/// Cross-guest-shard forgery: a reference pinned to another guest's
/// shard — live and covering (stolen), or composed from whole cloth
/// (forged) — is spent by the caller through the live multi-guest
/// engine. Containment must be attributed: the shard qualifier itself
/// refuses the reference ([`GrantError::ForeignGuest`]) and the wire
/// answer is `EFAULT`.
fn foreign_shard_attack(
    rig: &mut dyn MultiEngine,
    rng: &mut SplitMix64,
    outcome: &mut FamilyOutcome,
    engine: EngineKind,
) {
    let arg = 0x2_0000 + (rng.gen_range(64) << 6);
    let (attack, grant, live) = if rng.gen_range(2) == 0 {
        let window = vec![
            MemOpGrant::CopyFromGuest { addr: GuestVirtAddr::new(arg), len: 8 },
            MemOpGrant::CopyToGuest { addr: GuestVirtAddr::new(arg), len: 8 },
        ];
        let grant = rig
            .grants()
            .declare(OWNER, window)
            .expect("declare on the owner's shard");
        ("stolen-shard-ref", grant, true)
    } else {
        // Any shard but the caller's own, including ids far outside the
        // rig's population (the qualifier must not index out of bounds).
        let shard = 1 + rng.gen_range(u64::from(MAX_GUESTS) - 1) as u32;
        let seq = rng.gen_range(1 << SEQ_BITS) as u32;
        ("forged-shard-ref", ShardedGrantTable::compose_ref(shard, seq), false)
    };
    let probe = MemOpRequest::CopyToGuest { addr: GuestVirtAddr::new(arg), len: 8 };
    let attributed = matches!(
        rig.grants().validate(CALLER, grant, &probe),
        Err(GrantError::ForeignGuest { .. })
    );
    rig.submit(CALLER, &rig_ioctl_frame(CALLER, Some(grant), arg))
        .expect("submit the foreign-shard ioctl");
    let (guest, frame) = rig.complete_blocking().expect("complete the foreign-shard ioctl");
    let faulted = guest == CALLER
        && WireResponse::decode(&frame) == Ok(WireResponse::Err(Errno::Efault));
    if live {
        rig.grants().revoke(OWNER, grant);
    }
    match (faulted, attributed) {
        (true, true) => outcome.detected(),
        (true, false) => outcome.breach(format!(
            "[{}] {attack}: refused, but not by the shard qualifier — \
             containment by accident, not per-guest isolation",
            engine.name(),
        )),
        (false, _) => outcome.breach(format!(
            "[{}] {attack}: a reference naming guest {}'s shard moved data for guest {CALLER}",
            engine.name(),
            ShardedGrantTable::guest_of(grant),
        )),
    }
}

/// Wait-queue-cap flood: the flooded guest's own queue is driven past
/// its cap with distinct-length netmap-style writes. Every overflow
/// must surface as [`EngineError::Backpressure`] (the guest's own
/// `EAGAIN`), every accepted op must complete with its length echoed in
/// submission order (nothing dropped, nothing reordered), and the
/// neighbor guest must be served mid-flood — the cap bounds the
/// flooder, never the neighbors.
fn cap_flood_attack(rig: &mut dyn MultiEngine, outcome: &mut FamilyOutcome, engine: EngineKind) {
    let mut accepted: Vec<i64> = Vec::new();
    let mut accepted_grants: VecDeque<GrantRef> = VecDeque::new();
    let mut backpressured = 0u64;
    for i in 0..(MULTI_QUEUE_CAP + 8) as u64 {
        let len = i + 1;
        let addr = GuestVirtAddr::new(0x4_0000 + i * 0x1000);
        let grant = rig
            .grants()
            .declare(FLOODED, vec![MemOpGrant::CopyFromGuest { addr, len }])
            .expect("declare the flood write");
        let frame = WireRequest {
            task: u64::from(FLOODED) + 1,
            pt_root: GuestPhysAddr::new(0x4000),
            handle: 1,
            span: 0,
            grant: Some(grant),
            op: WireOp::Write { addr, len },
        }
        .encode();
        match rig.submit(FLOODED, &frame) {
            Ok(()) => {
                accepted.push(len as i64);
                accepted_grants.push_back(grant);
            }
            Err(EngineError::Backpressure) => {
                backpressured += 1;
                rig.grants().revoke(FLOODED, grant);
            }
            Err(e) => {
                rig.grants().revoke(FLOODED, grant);
                outcome.breach(format!(
                    "[{}] cap-flood: overflow surfaced as {e:?}, not backpressure",
                    engine.name(),
                ));
                return;
            }
        }
    }
    // The neighbor submits one light granted ioctl mid-flood.
    let arg = 0x9000;
    let neighbor_grant = rig
        .grants()
        .declare(
            NEIGHBOR,
            vec![
                MemOpGrant::CopyFromGuest { addr: GuestVirtAddr::new(arg), len: 8 },
                MemOpGrant::CopyToGuest { addr: GuestVirtAddr::new(arg), len: 8 },
            ],
        )
        .expect("declare the neighbor's ioctl");
    if let Err(e) = rig.submit(NEIGHBOR, &rig_ioctl_frame(NEIGHBOR, Some(neighbor_grant), arg)) {
        rig.grants().revoke(NEIGHBOR, neighbor_grant);
        outcome.breach(format!(
            "[{}] cap-flood: the flooded cap blocked the neighbor's submit: {e:?}",
            engine.name(),
        ));
        return;
    }
    // Drain everything: flooded completions must echo their lengths in
    // submission order; the neighbor's ioctl must succeed.
    let mut echoed: Vec<i64> = Vec::new();
    let mut neighbor_ok = false;
    for _ in 0..accepted.len() + 1 {
        let (guest, frame) = rig.complete_blocking().expect("drain the flood");
        let response = WireResponse::decode(&frame);
        if guest == FLOODED {
            let grant = accepted_grants
                .pop_front()
                .expect("one completion per accepted flood op");
            rig.grants().revoke(FLOODED, grant);
            if let Ok(WireResponse::Value(v)) = response {
                echoed.push(v);
            }
        } else if guest == NEIGHBOR && response == Ok(WireResponse::Value(0)) {
            neighbor_ok = true;
        }
    }
    rig.grants().revoke(NEIGHBOR, neighbor_grant);
    let drained_dry = matches!(rig.complete(), Ok(None));
    if backpressured > 0 && echoed == accepted && neighbor_ok && drained_dry {
        outcome.detected();
    } else {
        outcome.breach(format!(
            "[{}] cap-flood: backpressured {backpressured}, echoed {} of {} in order: {}, \
             neighbor served: {neighbor_ok}, drained dry: {drained_dry}",
            engine.name(),
            echoed.len(),
            accepted.len(),
            echoed == accepted,
        ));
    }
}

fn grant_check_count(machine: &Machine) -> u64 {
    machine
        .hv()
        .borrow()
        .audit()
        .count_blocked_by(BlockedBy::GrantCheck) as u64
}

/// Runs the grant-replay campaign on one substrate. `bypass` disables
/// grant validation (the devirtualization ablation) — every hypervisor
/// attack must then surface as a breach, because nothing audits or
/// refuses it. The cross-guest-shard steps attack the sharded engine
/// path, which has no bypass knob by construction: they stay contained
/// and keep the campaign's correct-service half honest under the mutant.
pub fn run(engine: EngineKind, seed: u64, steps: u32, bypass: bool) -> FamilyOutcome {
    let mut outcome = FamilyOutcome::new(AttackFamily::GrantReplay, engine);
    let mut rng = SplitMix64::new(seed);
    let (rig_service, _) = ScriptedService::new();
    let mut rig = build_multi(engine, rig_service, RIG_GUESTS, SchedPolicy::FairShare);
    let mut machine = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::polling_default(),
            data_isolation: false,
        })
        .engine(engine)
        .device(DeviceSpec::Mouse)
        .guests([GuestSpec::linux(), GuestSpec::linux()])
        .build()
        .expect("build attack machine");
    if bypass {
        machine.hv().borrow_mut().set_grant_validation(false);
    }
    let driver = machine.driver_vm();
    let guests = machine.guest_vms().to_vec();
    let task = machine.spawn_process(Some(0)).expect("spawn victim task");
    let mut fd = machine
        .open(task, "/dev/input/event0")
        .expect("open input device");

    for step in 0..steps {
        // The correct-service control: a legitimate op must still work.
        if step % 8 == 7 {
            match machine.poll(task, fd) {
                Ok(_) => outcome.served(),
                Err(e) => outcome.breach(format!(
                    "[{}] legitimate poll refused during the campaign: {e}",
                    engine.name(),
                )),
            }
            continue;
        }

        // Variants 5 and 6 attack the sharded multi-guest engine; the
        // rest attack the hypervisor's per-VM tables directly.
        let variant = rng.gen_range(7);
        if variant == 5 {
            foreign_shard_attack(rig.as_mut(), &mut rng, &mut outcome, engine);
            continue;
        }
        if variant == 6 {
            cap_flood_attack(rig.as_mut(), &mut outcome, engine);
            continue;
        }

        let addr = GuestVirtAddr::new(0x1_0000 + (rng.gen_range(64) << 12));
        let len = 1 + rng.gen_range(128);
        let window = vec![MemOpGrant::CopyToGuest { addr, len }];
        let payload = vec![0u8; len as usize];
        let before = grant_check_count(&machine);
        let hv = machine.hv().clone();

        let (attack, result) = match variant {
            // A reference that was never declared.
            0 => {
                let forged = GrantRef(0x8000_0000 | rng.next_u64() as u32);
                let result = hv.borrow_mut().hc_copy_to_guest(
                    driver,
                    guests[0],
                    GuestPhysAddr::new(0),
                    addr,
                    &payload,
                    forged,
                );
                ("forged-ref", result)
            }
            // Replay after revocation.
            1 => {
                let grant = hv
                    .borrow_mut()
                    .declare_grants(guests[0], window)
                    .expect("declare");
                let _ = hv.borrow_mut().revoke_grant(guests[0], grant);
                let result = hv.borrow_mut().hc_copy_to_guest(
                    driver,
                    guests[0],
                    GuestPhysAddr::new(0),
                    addr,
                    &payload,
                    grant,
                );
                ("replayed-ref", result)
            }
            // A reference declared by one guest, spent against another.
            2 => {
                let grant = hv
                    .borrow_mut()
                    .declare_grants(guests[0], window)
                    .expect("declare");
                let result = hv.borrow_mut().hc_copy_to_guest(
                    driver,
                    guests[1],
                    GuestPhysAddr::new(0),
                    addr,
                    &payload,
                    grant,
                );
                let _ = hv.borrow_mut().revoke_grant(guests[0], grant);
                ("cross-guest-ref", result)
            }
            // A reference surviving driver-VM failure and recovery.
            3 => {
                let grant = hv
                    .borrow_mut()
                    .declare_grants(guests[0], window)
                    .expect("declare");
                let _ = hv.borrow_mut().mark_driver_vm_failed(driver);
                machine.recover_driver_vm().expect("recovery succeeds");
                let result = hv.borrow_mut().hc_copy_to_guest(
                    driver,
                    guests[0],
                    GuestPhysAddr::new(0),
                    addr,
                    &payload,
                    grant,
                );
                ("recovery-survivor-ref", result)
            }
            // A live reference replayed with inflated bounds.
            _ => {
                let grant = hv
                    .borrow_mut()
                    .declare_grants(
                        guests[0],
                        vec![MemOpGrant::CopyToGuest { addr, len: 16 }],
                    )
                    .expect("declare");
                let oversized = vec![0u8; 4096];
                let result = hv.borrow_mut().hc_copy_to_guest(
                    driver,
                    guests[0],
                    GuestPhysAddr::new(0),
                    addr,
                    &oversized,
                    grant,
                );
                let _ = hv.borrow_mut().revoke_grant(guests[0], grant);
                ("grant-overflow", result)
            }
        };

        // Recovery closes every open handle (EBADF by design); the guest
        // reopens, so the control op keeps measuring service — not the
        // recovery's intended handle invalidation.
        if attack == "recovery-survivor-ref" {
            fd = machine
                .open(task, "/dev/input/event0")
                .expect("reopen after recovery");
        }

        let audited = grant_check_count(&machine) > before;
        match (result, audited) {
            (Err(_), true) => outcome.detected(),
            (Err(e), false) => outcome.breach(format!(
                "[{}] {attack}: refused ({e}) but the grant check never engaged — \
                 containment by accident, not enforcement",
                engine.name(),
            )),
            (Ok(()), _) => outcome.breach(format!(
                "[{}] {attack}: the hypervisor moved the buffer; grant bypass",
                engine.name(),
            )),
        }
    }
    // Recovery steps close all handles (EBADF by design); reopening is the
    // guest's job, and the campaign does it so late control ops stay
    // meaningful — but the final machine must still be serviceable.
    rig.finish();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_replay_attack_is_attributed_to_the_grant_check() {
        let outcome = run(EngineKind::Virtual, 5, 60, false);
        assert!(outcome.breaches.is_empty(), "{:?}", outcome.breaches);
        assert!(outcome.detected > 0);
        assert!(outcome.served > 0, "control ops must keep working");
    }

    #[test]
    fn disabling_validation_turns_every_attack_into_a_breach() {
        let outcome = run(EngineKind::Virtual, 5, 24, true);
        assert!(
            !outcome.breaches.is_empty(),
            "the ablation must be caught: {outcome:?}"
        );
    }

    #[test]
    fn foreign_shard_refs_are_contained_on_both_substrates() {
        for kind in [EngineKind::Virtual, EngineKind::Wall] {
            let mut outcome = FamilyOutcome::new(AttackFamily::GrantReplay, kind);
            let mut rng = SplitMix64::new(21);
            let (service, _) = ScriptedService::new();
            let mut rig = build_multi(kind, service, RIG_GUESTS, SchedPolicy::FairShare);
            for _ in 0..16 {
                foreign_shard_attack(rig.as_mut(), &mut rng, &mut outcome, kind);
            }
            rig.finish();
            assert!(outcome.breaches.is_empty(), "{:?}", outcome.breaches);
            assert_eq!(outcome.detected, 16);
        }
    }

    #[test]
    fn the_cap_flood_backpressures_without_touching_the_neighbor() {
        for kind in [EngineKind::Virtual, EngineKind::Wall] {
            let mut outcome = FamilyOutcome::new(AttackFamily::GrantReplay, kind);
            let (service, _) = ScriptedService::new();
            let mut rig = build_multi(kind, service, RIG_GUESTS, SchedPolicy::FairShare);
            for _ in 0..4 {
                cap_flood_attack(rig.as_mut(), &mut outcome, kind);
            }
            rig.finish();
            assert!(outcome.breaches.is_empty(), "{:?}", outcome.breaches);
            assert_eq!(outcome.detected, 4);
        }
    }
}
