//! Criterion microbenchmarks of the simulation's hot paths.
//!
//! Timing goes through the workspace's own `Clock` trait via
//! `Bencher::iter_custom`: machine-stack benches read the machine's
//! [`ClockSource`] (virtual nanoseconds — what the cost model charges per
//! operation, the paper-facing number), while pure-CPU benches (analyzer,
//! grant table) read a [`WallClock`] through the same trait (real
//! nanoseconds — how fast the reproduction itself runs). One bench per
//! mechanism: the no-op forward, the grant-checked copy, the two-stage
//! walk, analyzer extraction + JIT, and the netmap TX step.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use paradice::app::drm::DrmClient;
use paradice::app::netmap::NetmapClient;
use paradice::gpu_ioctl::gem_domain;
use paradice::prelude::*;
use paradice_bench::configs::{build, spawn_app, Config};

/// Times `iters` runs of `body` on `clock` — the one measurement loop
/// every bench below shares, generic over which substrate the clock is.
fn timed_on(clock: &ClockSource, iters: u64, mut body: impl FnMut()) -> Duration {
    let start = clock.now_ns();
    for _ in 0..iters {
        body();
    }
    Duration::from_nanos(clock.now_ns().saturating_sub(start))
}

fn bench_noop_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward");
    for (name, config) in [
        ("interrupts", Config::Paradice),
        ("polling", Config::ParadicePolling),
        ("native", Config::Native),
    ] {
        let mut machine = build(config, &[DeviceSpec::Mouse], 1);
        let task = spawn_app(&mut machine, config);
        let fd = machine.open(task, "/dev/input/event0").expect("open");
        let clock = machine.clock().clone();
        group.bench_function(name, |b| {
            b.iter_custom(|iters| {
                timed_on(&clock, iters, || {
                    black_box(machine.poll(task, fd).expect("poll"));
                })
            });
        });
    }
    group.finish();
}

fn bench_grant_checked_copy(c: &mut Criterion) {
    let mut machine = build(Config::Paradice, &[DeviceSpec::gpu()], 1);
    let task = spawn_app(&mut machine, Config::Paradice);
    let drm = DrmClient::open(&mut machine, task).expect("open");
    let clock = machine.clock().clone();
    c.bench_function("ioctl/radeon_info", |b| {
        b.iter_custom(|iters| {
            timed_on(&clock, iters, || {
                black_box(drm.info(&mut machine, 0).expect("info"));
            })
        });
    });
}

fn bench_cs_submission(c: &mut Criterion) {
    // The heaviest path: nested-copy JIT grant derivation + CS execution.
    let mut machine = build(Config::Paradice, &[DeviceSpec::gpu()], 1);
    let task = spawn_app(&mut machine, Config::Paradice);
    let drm = DrmClient::open(&mut machine, task).expect("open");
    let fb = drm
        .gem_create(&mut machine, PAGE_SIZE, gem_domain::VRAM)
        .expect("bo");
    let clock = machine.clock().clone();
    c.bench_function("ioctl/radeon_cs_jit", |b| {
        b.iter_custom(|iters| {
            timed_on(&clock, iters, || {
                black_box(drm.submit_render(&mut machine, 1, fb).expect("cs"));
            })
        });
    });
}

fn bench_two_stage_walk(c: &mut Criterion) {
    let mut machine = build(Config::Paradice, &[DeviceSpec::gpu()], 1);
    let task = spawn_app(&mut machine, Config::Paradice);
    let buf = machine.alloc_buffer(task, 4096).expect("buffer");
    let data = [0u8; 512];
    let clock = machine.clock().clone();
    c.bench_function("mem/process_write_512B", |b| {
        b.iter_custom(|iters| {
            timed_on(&clock, iters, || {
                machine
                    .write_mem(task, black_box(buf), black_box(&data))
                    .expect("write");
            })
        });
    });
}

fn bench_analyzer(c: &mut Criterion) {
    use paradice_analyzer::extract::analyze_handler;
    use paradice_drivers::gpu::ir::radeon_handler_3_2_0;
    let handler = radeon_handler_3_2_0();
    // Pure CPU work: no machine, so the clock is the wall substrate read
    // through the same trait.
    let clock = ClockSource::from(WallClock::new());
    c.bench_function("analyzer/radeon_full", |b| {
        b.iter_custom(|iters| {
            timed_on(&clock, iters, || {
                black_box(analyze_handler(&handler).expect("analysis"));
            })
        });
    });
}

fn bench_grant_table_validate(c: &mut Criterion) {
    // The per-hypercall covering check, pinned at two declaration widths:
    // the sorted-range index keeps wide declarations (a JIT-derived CS
    // submission can declare dozens of windows) near the cost of narrow
    // ones — the satellite fix for the old O(n) linear scan.
    use paradice_hypervisor::{GrantTable, MemOpGrant, MemOpRequest};
    use paradice_mem::GuestVirtAddr;
    let clock = ClockSource::from(WallClock::new());
    let mut group = c.benchmark_group("grants");
    for ranges in [4usize, 64] {
        let mut table = GrantTable::new();
        let ops: Vec<MemOpGrant> = (0..ranges)
            .map(|i| MemOpGrant::CopyFromGuest {
                addr: GuestVirtAddr::new(0x10_0000 + (i as u64) * 0x1000),
                len: 256,
            })
            .collect();
        let grant = table.declare(ops).expect("declare");
        // Worst case for the old linear scan: the last-declared range.
        let request = MemOpRequest::CopyFromGuest {
            addr: GuestVirtAddr::new(0x10_0000 + (ranges as u64 - 1) * 0x1000),
            len: 256,
        };
        group.bench_function(&format!("validate_{ranges}_ranges"), |b| {
            b.iter_custom(|iters| {
                timed_on(&clock, iters, || {
                    black_box(table.validate(grant, black_box(&request)).is_ok());
                })
            });
        });
    }
    group.finish();
}

fn bench_netmap_batch(c: &mut Criterion) {
    let mut machine = build(Config::ParadicePolling, &[DeviceSpec::Netmap], 1);
    let task = spawn_app(&mut machine, Config::ParadicePolling);
    let mut nm = NetmapClient::open(&mut machine, task).expect("open");
    let clock = machine.clock().clone();
    c.bench_function("netmap/batch64_produce_poll", |b| {
        b.iter_custom(|iters| {
            timed_on(&clock, iters, || {
                let n = 64u32.min(nm.free_slots(&mut machine).expect("slots"));
                if n > 0 {
                    nm.produce(&mut machine, n, 64, 50).expect("produce");
                }
                black_box(nm.poll(&mut machine).expect("poll"));
            })
        });
    });
}

criterion_group!(
    benches,
    bench_noop_forward,
    bench_grant_checked_copy,
    bench_cs_submission,
    bench_two_stage_walk,
    bench_analyzer,
    bench_grant_table_validate,
    bench_netmap_batch,
);
criterion_main!(benches);
