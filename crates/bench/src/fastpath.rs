//! The cross-layer fast-path ablation: the same workload run with the
//! fast path off (the paper's per-op declare → interrupt → validate →
//! revoke baseline) and on (grant-declaration cache + pipelined ring +
//! vectored hypercalls), every run cost-accounted on the virtual clock.
//!
//! Three workloads, chosen to mirror the figures the overhead dominates:
//!
//! * **interactive-ioctl** — the Fig-3 style GL frame loop: 18 identical
//!   `RADEON_INFO` state queries per frame (`workloads::GL_OPS_PER_FRAME`),
//!   the op shape the grant cache memoizes and the ring coalesces.
//! * **netmap-tx** — the Fig-2 style TX loop: guest-local `produce()`
//!   into the mapped ring, one `NIOCTXSYNC` ioctl per batch; the fast
//!   path posts a group of syncs per doorbell (netmap-style batching).
//! * **noop-polled-round-trip** — the §6.1.1 polled no-op round trip.
//!   The fast path must *not* regress it: `scripts/check.sh` gates on
//!   this number staying within tolerance of the committed baseline.
//!
//! Everything is deterministic virtual time, so `BENCH_fastpath.json` is
//! bit-identical across runs and hosts and can be diffed mechanically.

use paradice::app::netmap::NetmapClient;
use paradice::gpu_ioctl::{info, RADEON_INFO};
use paradice::netmap_ioctl::NIOCTXSYNC;
use paradice::prelude::*;

use crate::configs::{build, spawn_app, Config};
use crate::workloads::GL_OPS_PER_FRAME;

/// Frames of the interactive-ioctl workload.
pub const FRAMES: usize = 40;
/// TX batches of the netmap workload.
pub const NM_BATCHES: u32 = 128;
/// Packets per TX batch.
pub const NM_BATCH: u32 = 16;
/// Pipelined TXSYNCs flushed per doorbell group on the fast path.
pub const NM_GROUP: u32 = 8;
/// Polled no-op round trips measured (after warm-up).
pub const NOOP_OPS: u64 = 200;

/// The cost-accounted outcome of one workload run (one ablation side).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastpathSide {
    /// Virtual nanoseconds the workload took.
    pub virtual_ns: u64,
    /// Hypercalls served by the hypervisor (declare + mem ops + revoke).
    pub hypercalls: u64,
    /// Channel deliveries that paid full inter-VM interrupt cost.
    pub interrupts: u64,
    /// Channel deliveries that paid polling cost.
    pub polls: u64,
    /// Sends coalesced into an already-rung doorbell (ring batching).
    pub coalesced: u64,
    /// Declare hypercalls skipped by the grant-declaration cache.
    pub grant_cache_hits: u64,
    /// File operations the workload forwarded.
    pub ops: u64,
}

impl FastpathSide {
    /// Virtual microseconds per forwarded operation.
    pub fn us_per_op(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.virtual_ns as f64 / self.ops as f64 / 1e3
    }

    fn json(&self) -> String {
        format!(
            "{{\"virtual_ns\":{},\"hypercalls\":{},\"interrupts\":{},\"polls\":{},\
             \"coalesced\":{},\"grant_cache_hits\":{},\"ops\":{}}}",
            self.virtual_ns,
            self.hypercalls,
            self.interrupts,
            self.polls,
            self.coalesced,
            self.grant_cache_hits,
            self.ops
        )
    }
}

/// One workload measured with the fast path off and on.
#[derive(Debug, Clone)]
pub struct FastpathComparison {
    /// Workload name (`"interactive-ioctl"`, …).
    pub workload: &'static str,
    /// The baseline run.
    pub off: FastpathSide,
    /// The fast-path run.
    pub on: FastpathSide,
}

impl FastpathComparison {
    /// Virtual-time ratio baseline / fast path (2.0 = twice as fast).
    pub fn speedup(&self) -> f64 {
        if self.on.virtual_ns == 0 {
            return 0.0;
        }
        self.off.virtual_ns as f64 / self.on.virtual_ns as f64
    }

    fn json(&self) -> String {
        format!(
            "    {{\"workload\":\"{}\",\"off\":{},\"on\":{},\"speedup\":{:.3}}}",
            self.workload,
            self.off.json(),
            self.on.json(),
            self.speedup()
        )
    }
}

/// Snapshot-delta accounting around one workload body.
fn measure(machine: &mut Machine, ops: u64, body: impl FnOnce(&mut Machine)) -> FastpathSide {
    let t0 = machine.now_ns();
    let hc0 = machine.hypercall_count();
    let ch0 = machine.channel_stats(0).unwrap_or_default();
    let hits0 = machine
        .frontend(0)
        .map(|f| f.borrow().stats().grant_cache_hits)
        .unwrap_or(0);
    body(machine);
    let ch1 = machine.channel_stats(0).unwrap_or_default();
    FastpathSide {
        virtual_ns: machine.now_ns() - t0,
        hypercalls: machine.hypercall_count() - hc0,
        interrupts: ch1.interrupt_deliveries - ch0.interrupt_deliveries,
        polls: ch1.polling_deliveries - ch0.polling_deliveries,
        coalesced: ch1.coalesced_deliveries - ch0.coalesced_deliveries,
        grant_cache_hits: machine
            .frontend(0)
            .map(|f| f.borrow().stats().grant_cache_hits)
            .unwrap_or(0)
            - hits0,
        ops,
    }
}

/// The Fig-3 style interactive frame loop: [`GL_OPS_PER_FRAME`] identical
/// `RADEON_INFO` queries per frame for [`FRAMES`] frames.
pub fn interactive_ioctl(fastpath: bool) -> FastpathSide {
    let mut machine = build(Config::Paradice, &[DeviceSpec::gpu()], 1);
    let task = spawn_app(&mut machine, Config::Paradice);
    let fd = machine.open(task, "/dev/dri/card0").expect("open card0");
    let scratch = machine.alloc_buffer(task, 256).expect("scratch");
    let mut req = [0u8; 16];
    req[0..4].copy_from_slice(&info::DEVICE_ID.to_le_bytes());
    machine.write_mem(task, scratch, &req).expect("stage request");
    if fastpath {
        machine.enable_fastpath();
    }
    let arg = scratch.raw();
    let ops = (FRAMES * GL_OPS_PER_FRAME) as u64;
    measure(&mut machine, ops, |machine| {
        for _ in 0..FRAMES {
            if fastpath {
                for _ in 0..GL_OPS_PER_FRAME {
                    machine
                        .ioctl_pipelined(task, fd, RADEON_INFO, arg)
                        .expect("pipelined info");
                }
                for result in machine.flush_pipeline(task).expect("flush") {
                    result.expect("info result");
                }
            } else {
                for _ in 0..GL_OPS_PER_FRAME {
                    machine.ioctl(task, fd, RADEON_INFO, arg).expect("info");
                }
            }
        }
    })
}

/// The Fig-2 style netmap TX loop: [`NM_BATCHES`] batches of [`NM_BATCH`]
/// 64-byte packets, one `NIOCTXSYNC` per batch. The fast path posts
/// [`NM_GROUP`] syncs per doorbell.
pub fn netmap_tx(fastpath: bool) -> FastpathSide {
    let mut machine = build(Config::Paradice, &[DeviceSpec::Netmap], 1);
    let task = spawn_app(&mut machine, Config::Paradice);
    let mut nm = NetmapClient::open(&mut machine, task).expect("open netmap");
    if fastpath {
        machine.enable_fastpath();
    }
    let ops = u64::from(NM_BATCHES);
    measure(&mut machine, ops, |machine| {
        let mut submitted = 0u32;
        for _ in 0..NM_BATCHES {
            while nm.free_slots(machine).expect("slots") < NM_BATCH {
                nm.poll(machine).expect("poll");
            }
            nm.produce(machine, NM_BATCH, 64, 50).expect("produce");
            if fastpath {
                machine
                    .ioctl_pipelined(task, nm.fd, NIOCTXSYNC, 0)
                    .expect("pipelined txsync");
                submitted += 1;
                if submitted == NM_GROUP {
                    for result in machine.flush_pipeline(task).expect("flush") {
                        result.expect("txsync result");
                    }
                    submitted = 0;
                }
            } else {
                nm.txsync(machine).expect("txsync");
            }
        }
        if fastpath && submitted > 0 {
            for result in machine.flush_pipeline(task).expect("flush") {
                result.expect("txsync result");
            }
        }
    })
}

/// The §6.1.1 polled no-op round trip ([`NOOP_OPS`] polls after warm-up).
/// `poll` is neither cacheable nor pipelineable, so the fast path must
/// leave this number untouched — the `scripts/check.sh` regression gate.
pub fn noop_polled(fastpath: bool) -> FastpathSide {
    let mut machine = build(Config::ParadicePolling, &[DeviceSpec::Mouse], 1);
    let task = spawn_app(&mut machine, Config::ParadicePolling);
    let fd = machine.open(task, "/dev/input/event0").expect("open");
    if fastpath {
        machine.enable_fastpath();
    }
    for _ in 0..3 {
        let _ = machine.poll(task, fd);
    }
    measure(&mut machine, NOOP_OPS, |machine| {
        for _ in 0..NOOP_OPS {
            machine.poll(task, fd).expect("poll");
        }
    })
}

/// Runs the full ablation: every workload, both sides.
pub fn run_ablation() -> Vec<FastpathComparison> {
    vec![
        FastpathComparison {
            workload: "interactive-ioctl",
            off: interactive_ioctl(false),
            on: interactive_ioctl(true),
        },
        FastpathComparison {
            workload: "netmap-tx",
            off: netmap_tx(false),
            on: netmap_tx(true),
        },
        FastpathComparison {
            workload: "noop-polled-round-trip",
            off: noop_polled(false),
            on: noop_polled(true),
        },
    ]
}

/// Renders the ablation as `BENCH_fastpath.json` (hand-rolled like the
/// trace crate's JSONL — the workspace is dependency-free). The
/// `noop_polled_round_trip_ns` block is the regression-gate metric,
/// duplicated at the top level so `scripts/check.sh` can extract it
/// without a JSON parser.
pub fn render_json(comparisons: &[FastpathComparison]) -> String {
    let noop = comparisons
        .iter()
        .find(|c| c.workload == "noop-polled-round-trip");
    let (noop_off, noop_on) = noop
        .map(|c| (c.off.virtual_ns / c.off.ops.max(1), c.on.virtual_ns / c.on.ops.max(1)))
        .unwrap_or((0, 0));
    let mut out = String::from("{\n  \"schema\": \"paradice-fastpath-ablation/v1\",\n");
    out.push_str(&format!(
        "  \"noop_polled_round_trip_ns\": {{\"off\": {noop_off}, \"on\": {noop_on}}},\n"
    ));
    out.push_str("  \"workloads\": [\n");
    let body: Vec<String> = comparisons.iter().map(FastpathComparison::json).collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastpath_halves_the_hot_workloads() {
        // The acceptance bar: ≥ 2× on the two ioctl-heavy workloads.
        for comparison in run_ablation() {
            match comparison.workload {
                "interactive-ioctl" | "netmap-tx" => {
                    assert!(
                        comparison.speedup() >= 2.0,
                        "{}: speedup {:.2} < 2.0 (off {} ns, on {} ns)",
                        comparison.workload,
                        comparison.speedup(),
                        comparison.off.virtual_ns,
                        comparison.on.virtual_ns
                    );
                    assert!(
                        comparison.on.hypercalls < comparison.off.hypercalls,
                        "{}: the fast path must cut hypercalls",
                        comparison.workload
                    );
                    assert!(
                        comparison.on.interrupts < comparison.off.interrupts,
                        "{}: the fast path must cut interrupts",
                        comparison.workload
                    );
                    assert!(comparison.on.grant_cache_hits > 0);
                }
                "noop-polled-round-trip" => {
                    // The gate metric: identical virtual cost both sides.
                    assert_eq!(
                        comparison.off.virtual_ns, comparison.on.virtual_ns,
                        "fast path must not perturb the polled no-op round trip"
                    );
                }
                other => panic!("unknown workload {other}"),
            }
        }
    }

    #[test]
    fn ablation_is_deterministic() {
        let a = render_json(&run_ablation());
        let b = render_json(&run_ablation());
        assert_eq!(a, b, "virtual time must make the ablation deterministic");
    }
}
