//! Verify-time reporting: the model checker's proof statistics as an
//! experiments table (`--verify`) and `BENCH_verify.json`.
//!
//! The verified core is part of the evaluation story — the paper's
//! isolation claims rest on the grant table, the ring indices, and the
//! wire codec behaving exactly as specified, and `paradice-verify` proves
//! those properties on every CI run. This module runs the full property
//! suite and renders what the checker did (state/check counts, wall time
//! per property) next to the performance tables, so a reviewer sees both
//! "how fast" and "how known-correct" from one harness.

use paradice_verify::report::{to_json, PropertyReport};
use paradice_verify::run_all;

use crate::report::{Cell, Table};

/// Runs every `paradice-verify` property against the real kernels.
pub fn run_verification() -> Vec<PropertyReport> {
    run_all(None)
}

/// Renders the proof run as an experiments table.
pub fn verify_table(reports: &[PropertyReport]) -> Table {
    let mut table = Table::new(
        "verify",
        "Verified core — paradice-verify property proofs",
        &["property", "verdict", "states", "checks", "time (ms)"],
    );
    for report in reports {
        table.row(vec![
            Cell::from(report.name),
            Cell::from(if report.proved { "proved" } else { "DISPROVED" }),
            Cell::Num(report.states as f64, 0),
            Cell::Num(report.transitions as f64, 0),
            Cell::Num(report.duration_ms as f64, 0),
        ]);
    }
    let total_ms: u128 = reports.iter().map(|r| r.duration_ms).sum();
    table.row(vec![
        Cell::from("total"),
        Cell::from(format!(
            "{}/{} proved",
            reports.iter().filter(|r| r.proved).count(),
            reports.len(),
        )),
        Cell::Num(reports.iter().map(|r| r.states).sum::<usize>() as f64, 0),
        Cell::Num(reports.iter().map(|r| r.transitions).sum::<usize>() as f64, 0),
        Cell::Num(total_ms as f64, 0),
    ]);
    table
}

/// Renders `BENCH_verify.json` (the same document `paradice-verify --json`
/// prints for a clean `--all` run).
pub fn render_json(reports: &[PropertyReport]) -> String {
    to_json(reports, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verification_proves_and_renders() {
        let reports = run_verification();
        assert!(reports.iter().all(|r| r.proved), "a core property regressed");
        let table = verify_table(&reports);
        // One row per property plus the total row.
        assert_eq!(table.rows.len(), reports.len() + 1);
        let json = render_json(&reports);
        assert!(json.contains("\"proved_all\":true"));
    }
}
