//! The evaluation's machine configurations (paper §6: "As the default
//! configuration for Paradice, we use the interrupts for communication,
//! Linux guest VM and Linux driver VM, and do not employ device data
//! isolation. Other configurations will be explicitly mentioned.").

use paradice::prelude::*;

/// A named evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// Bare metal.
    Native,
    /// Direct device assignment.
    Assign,
    /// Paradice, interrupts, Linux guest.
    Paradice,
    /// Paradice, interrupts, FreeBSD guest on the Linux driver VM ("FL").
    ParadiceFl,
    /// Paradice, polling mode ("P").
    ParadicePolling,
    /// Paradice, interrupts, device data isolation on ("DI").
    ParadiceDi,
    /// Paradice over the DSM-based cross-machine transport (§8 future
    /// work): guest and driver VM on different physical machines.
    ParadiceRemote,
}

impl Config {
    /// The figure-legend name.
    pub fn label(self) -> &'static str {
        match self {
            Config::Native => "Native",
            Config::Assign => "Device-Assign.",
            Config::Paradice => "Paradice",
            Config::ParadiceFl => "Paradice(FL)",
            Config::ParadicePolling => "Paradice(P)",
            Config::ParadiceDi => "Paradice(DI)",
            Config::ParadiceRemote => "Paradice(Remote)",
        }
    }

    /// The machine execution mode.
    pub fn mode(self) -> ExecMode {
        match self {
            Config::Native => ExecMode::Native,
            Config::Assign => ExecMode::DeviceAssignment,
            Config::Paradice | Config::ParadiceFl => ExecMode::Paradice {
                transport: TransportMode::Interrupts,
                data_isolation: false,
            },
            Config::ParadicePolling => ExecMode::Paradice {
                transport: TransportMode::polling_default(),
                data_isolation: false,
            },
            Config::ParadiceDi => ExecMode::Paradice {
                transport: TransportMode::Interrupts,
                data_isolation: true,
            },
            Config::ParadiceRemote => ExecMode::Paradice {
                transport: TransportMode::remote_default(),
                data_isolation: false,
            },
        }
    }

    /// Whether the config runs guests at all.
    pub fn is_paradice(self) -> bool {
        !matches!(self, Config::Native | Config::Assign)
    }

    fn guest_spec(self) -> GuestSpec {
        match self {
            Config::ParadiceFl => GuestSpec::freebsd(),
            _ => GuestSpec::linux(),
        }
    }

    /// The standard four-config comparison of most figures.
    pub const STANDARD: [Config; 4] = [
        Config::Native,
        Config::Assign,
        Config::Paradice,
        Config::ParadicePolling,
    ];
}

/// Builds a machine for `config` with the given devices, adding `guests`
/// guest VMs when the config is a Paradice one. With `ParadiceDi` and fewer
/// than two guests, two are created (data isolation splits VRAM per guest).
pub fn build(config: Config, devices: &[DeviceSpec], guests: usize) -> Machine {
    let mut builder = Machine::builder().mode(config.mode());
    for &device in devices {
        builder = builder.device(device);
    }
    if config.is_paradice() {
        let count = if config == Config::ParadiceDi {
            guests.max(2)
        } else {
            guests.max(1)
        };
        for _ in 0..count {
            builder = builder.guest(config.guest_spec());
        }
    }
    builder.build().expect("evaluation machine builds")
}

/// Spawns the benchmark application's process: in guest 0 for Paradice
/// configs, on the host otherwise.
pub fn spawn_app(machine: &mut Machine, config: Config) -> TaskId {
    machine
        .spawn_process(config.is_paradice().then_some(0))
        .expect("app process spawns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_config_builds_with_a_gpu() {
        for config in [
            Config::Native,
            Config::Assign,
            Config::Paradice,
            Config::ParadiceFl,
            Config::ParadicePolling,
            Config::ParadiceDi,
        ] {
            let mut machine = build(config, &[DeviceSpec::gpu()], 1);
            let task = spawn_app(&mut machine, config);
            let fd = machine.open(task, "/dev/dri/card0");
            assert!(fd.is_ok(), "{config:?}: {fd:?}");
        }
    }
}
