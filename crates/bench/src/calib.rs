//! Calibration: every timing constant, its paper anchor, and the paper's
//! reported numbers for side-by-side reporting.
//!
//! The simulation never measures wall time; it *charges* documented costs on
//! a virtual clock. Four anchors from the paper pin the model:
//!
//! | anchor | paper | constant |
//! |---|---|---|
//! | no-op file op, interrupts | ~35 µs (§6.1.1) | 2 × `intervm_interrupt_ns` + 2 × `marshal_ns` |
//! | no-op file op, polling | ~2 µs (§6.1.1) | 2 × `polling_side_ns` + 2 × `marshal_ns` |
//! | native mouse latency | ~39 µs (§6.1.5) | `process_wakeup_ns` + `syscall_ns` |
//! | assignment mouse latency | ~55 µs (§6.1.5) | + `vm_sched_penalty_ns` |
//!
//! Everything else (line rate, sensor rate, audio drain, GPU compute
//! throughput) is a physical device property modeled in the drivers crate.

use paradice_hypervisor::CostModel;

/// The calibrated cost model (the workspace default).
pub fn cost_model() -> CostModel {
    CostModel::default()
}

/// Paper-reported values for Figure 2 (netmap TX rate, Mpps, 64-byte
/// packets), eyeballed from the published figure for shape comparison.
/// Batches: 1, 4, 16, 64, 256.
pub const PAPER_FIG2_BATCHES: [u32; 5] = [1, 4, 16, 64, 256];

/// `(config name, rates in Mpps per batch)`.
pub const PAPER_FIG2: [(&str, [f64; 5]); 5] = [
    ("Native", [1.18, 1.20, 1.20, 1.20, 1.20]),
    ("Device-Assign.", [1.17, 1.20, 1.20, 1.20, 1.20]),
    ("Paradice", [0.03, 0.11, 0.42, 1.10, 1.20]),
    ("Paradice(FL)", [0.03, 0.11, 0.41, 1.08, 1.20]),
    ("Paradice(P)", [0.37, 1.18, 1.20, 1.20, 1.20]),
];

/// Paper Figure 3 (OpenGL microbenchmark FPS): VBO, VA, DL.
pub const PAPER_FIG3: [(&str, [f64; 3]); 4] = [
    ("Native", [172.0, 153.0, 121.0]),
    ("Device-Assign.", [170.0, 151.0, 120.0]),
    ("Paradice", [150.0, 135.0, 110.0]),
    ("Paradice(P)", [169.0, 150.0, 119.0]),
];

/// Paper Figure 4 native FPS per game per resolution (the frame-cost
/// calibration source). Resolutions: 800×600, 1024×768, 1280×1024,
/// 1680×1050.
pub const PAPER_FIG4_NATIVE: [(&str, [f64; 4]); 3] = [
    ("Tremulous", [69.0, 60.0, 47.0, 38.0]),
    ("OpenArena", [72.0, 62.0, 48.0, 40.0]),
    ("Nexuiz", [60.0, 52.0, 40.0, 33.0]),
];

/// Paper Figure 5: OpenCL matmul experiment time in seconds per order
/// (log-scale figure; approximate).
pub const PAPER_FIG5_ORDERS: [u32; 4] = [1, 100, 500, 1000];

/// Native experiment times, seconds.
pub const PAPER_FIG5_NATIVE: [f64; 4] = [0.16, 0.17, 1.4, 10.0];

/// §6.1.5 mouse latencies, µs: native, assignment, Paradice, Paradice(P).
pub const PAPER_MOUSE_US: [(&str, f64); 4] = [
    ("Native", 39.0),
    ("Device-Assign.", 55.0),
    ("Paradice", 296.0),
    ("Paradice(P)", 179.0),
];

/// §6.1.6: camera FPS at every resolution and configuration.
pub const PAPER_CAMERA_FPS: f64 = 29.5;

/// §6.1.1: no-op forwarding latencies, µs.
pub const PAPER_NOOP_US: [(&str, f64); 2] = [("interrupts", 35.0), ("polling", 2.0)];

/// §4.1: the analyzer's Radeon findings — nested-copy commands and
/// generated extracted lines (the full ~50-command driver; ours is a
/// scaled-down subset, see EXPERIMENTS.md).
pub const PAPER_ANALYZER_NESTED: usize = 14;

/// Paper Table 2 rows: `(component, LoC)` of the real implementation, for
/// the side-by-side code inventory.
pub const PAPER_TABLE2: [(&str, u32); 13] = [
    ("CVD frontend (Linux)", 1553),
    ("CVD backend", 1950),
    ("CVD shared", 378),
    ("Linux kernel wrapper stubs", 198),
    ("Virtual PCI module (+kernel)", 335),
    ("FreeBSD CVD frontend (new)", 451),
    ("FreeBSD supporting code", 118),
    ("Paradice hypervisor API (Xen)", 1349),
    ("Driver ioctl analyzer (Clang)", 501),
    ("Device info modules (5 classes)", 251),
    ("Graphics sharing code", 160),
    ("Radeon data isolation", 382),
    ("Ethernet info (FreeBSD)", 32),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_hold() {
        let cost = cost_model();
        let noop_int = 2 * (cost.intervm_interrupt_ns + cost.marshal_ns);
        assert!((34_000..36_000).contains(&noop_int));
        let noop_poll = 2 * (cost.polling_side_ns + cost.marshal_ns);
        assert!((1_500..2_500).contains(&noop_poll));
        let native_mouse = cost.process_wakeup_ns + cost.syscall_ns;
        assert!((38_000..40_000).contains(&native_mouse));
        let assign_mouse = native_mouse + cost.vm_sched_penalty_ns;
        assert!((54_000..56_000).contains(&assign_mouse));
    }
}
