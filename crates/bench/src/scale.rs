//! Multi-tenant scale-out bench (`--scale`): 1 → 1000 guests on one
//! device, both substrates.
//!
//! ISSUE 10's tentpole measurement. Each guest drives a *mixed* workload
//! — interactive ioctls (`RADEON_INFO` shape), netmap TX descriptor
//! batches, camera frame reads — through the multi-guest engines
//! ([`paradice_cvd::multi`]): per-guest queues, per-guest grant shards,
//! fair-share backend service. Two scenarios per substrate:
//!
//! * **mixed scale** — N ∈ {1, 10, 100, 1000} guests (smoke trims to
//!   ≤ 100), every guest cycling the three op shapes, pipelined to its
//!   wait-queue cap. Reported: per-op p50/p99 latency and aggregate
//!   throughput vs. guest count. One shared device serializes service, so
//!   the honest ideal for aggregate throughput is the *device-bound
//!   1-guest rate*, not 1-guest × N — the gate commits to retaining a
//!   fraction of that rate at 100 guests, i.e. scale-out bookkeeping
//!   (sharding, scheduling, per-guest queues) must not eat the device.
//! * **flood fairness** — 100 guests: one light interactive guest, 99
//!   heavy neighbors holding their netmap queues at the cap forever.
//!   Reported: the light guest's p50/p99. Fair-share is the default
//!   scheduler, so the light op waits for at most the op in service plus
//!   its own — the committed bound `scripts/check.sh` gates on. The
//!   heavies' overflow is pure backpressure (submit fails, nothing
//!   dropped or reordered), exercised on every top-up round.
//!
//! The GPU-level twin of the flood (one 1 ms job behind 10×10 ms, §8) is
//! also re-measured here under the *default* scheduler so the committed
//! ~10.6 ms bound lands in `BENCH_scale.json` alongside the engine-level
//! numbers. All gate metrics are flat top-level integers, greppable by
//! `scripts/check.sh` without a JSON parser.

use std::collections::VecDeque;

use paradice_cvd::multi::{build_multi, MultiEngine, MULTI_QUEUE_CAP};
use paradice_cvd::proto::{WireOp, WireRequest, WireResponse};
use paradice_cvd::{exec::ScriptedService, SchedPolicy};
use paradice_hypervisor::engine::{EngineError, EngineKind};
use paradice_hypervisor::{GrantRef, MemOpGrant};
use paradice_mem::{GuestPhysAddr, GuestVirtAddr};

use crate::wallclock::INTERACTIVE_CMD;

/// Bytes in one netmap TX descriptor batch (64 slots × 8 B).
pub const NETMAP_BATCH_BYTES: u64 = 512;

/// Bytes in one camera frame slice (one page per op).
pub const CAMERA_SLICE_BYTES: u64 = 4096;

/// One measured configuration: substrate × guest count.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Which substrate.
    pub kind: EngineKind,
    /// Guests stood up.
    pub guests: usize,
    /// Operations completed (all guests).
    pub ops: u64,
    /// Elapsed on the engine's clock (modeled ns for virtual, real ns
    /// for wall).
    pub elapsed_ns: u64,
    /// Per-op latency: median.
    pub p50_ns: u64,
    /// Per-op latency: 99th percentile.
    pub p99_ns: u64,
}

impl ScalePoint {
    /// Aggregate completed operations per second (integer).
    pub fn ops_per_sec(&self) -> u64 {
        if self.elapsed_ns == 0 {
            return 0;
        }
        ((self.ops as u128) * 1_000_000_000 / self.elapsed_ns as u128) as u64
    }
}

/// The flood-fairness result for one substrate: the light guest's view
/// while 99 heavy neighbors keep their queues at the cap.
#[derive(Debug, Clone)]
pub struct FloodPoint {
    /// Which substrate.
    pub kind: EngineKind,
    /// Guests stood up (light + heavies).
    pub guests: usize,
    /// Light-guest operations measured.
    pub light_ops: u64,
    /// Light guest per-op latency: median.
    pub light_p50_ns: u64,
    /// Light guest per-op latency: 99th percentile.
    pub light_p99_ns: u64,
    /// Heavy-neighbor operations completed meanwhile (they must progress:
    /// fair share never starves the flood either).
    pub heavy_ops: u64,
    /// Heavy submissions the engine refused with
    /// [`EngineError::Backpressure`] (counted only when `submit` itself
    /// returned it — never inferred from frontend bookkeeping). Must be
    /// non-zero — the flood is only a flood if it runs into the cap —
    /// and every one is a clean EAGAIN, never a drop.
    pub backpressured: u64,
}

/// The full `--scale` result.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// Whether this was the reduced smoke sizing.
    pub smoke: bool,
    /// Mixed-workload points, both substrates × each guest count.
    pub points: Vec<ScalePoint>,
    /// Flood-fairness points, one per substrate.
    pub floods: Vec<FloodPoint>,
    /// The GPU scheduler twin: light 1 ms job behind a heavy 10×10 ms
    /// queue under the default (fair-share) policy, end to end through
    /// the CVD (the ablation's committed ~10.6 ms row).
    pub gpu_light_latency_ns: u64,
}

impl ScaleRun {
    /// Largest guest count that stood up and completed.
    pub fn max_guests(&self) -> usize {
        self.points.iter().map(|p| p.guests).max().unwrap_or(0)
    }

    fn point(&self, kind: EngineKind, guests: usize) -> Option<&ScalePoint> {
        self.points
            .iter()
            .find(|p| p.kind == kind && p.guests == guests)
    }

    /// Aggregate throughput at 100 guests as a fraction (×1000) of the
    /// device-bound 1-guest rate on `kind`.
    pub fn throughput_fraction_x1000(&self, kind: EngineKind) -> u64 {
        let (Some(one), Some(hundred)) = (self.point(kind, 1), self.point(kind, 100)) else {
            return 0;
        };
        let base = one.ops_per_sec().max(1);
        ((hundred.ops_per_sec() as u128) * 1000 / base as u128) as u64
    }

    /// The light guest's p99 under flood on `kind` (0 if not measured).
    pub fn light_p99_under_flood_ns(&self, kind: EngineKind) -> u64 {
        self.floods
            .iter()
            .find(|f| f.kind == kind)
            .map_or(0, |f| f.light_p99_ns)
    }
}

/// The op shape guest `guest` issues as its `index`-th operation: cycle
/// interactive ioctl → netmap TX → camera read, so every guest count
/// sees the same mix and the 1-guest baseline is an honest ideal.
fn mixed_op(guest: u32, index: usize) -> (WireOp, Vec<MemOpGrant>) {
    // Distinct per-guest, per-op buffer addresses (wrapped: grants are
    // revoked on completion, so reuse across wraps never collides).
    let slot = (u64::from(guest) * 61 + index as u64 % 64) % 4096;
    match index % 3 {
        0 => {
            let arg = 0x10_0000 + slot * 16;
            (
                WireOp::Ioctl {
                    cmd: INTERACTIVE_CMD,
                    arg,
                },
                vec![
                    MemOpGrant::CopyFromGuest {
                        addr: GuestVirtAddr::new(arg),
                        len: 8,
                    },
                    MemOpGrant::CopyToGuest {
                        addr: GuestVirtAddr::new(arg),
                        len: 8,
                    },
                ],
            )
        }
        1 => {
            let addr = 0x100_0000 + slot * NETMAP_BATCH_BYTES;
            (
                WireOp::Write {
                    addr: GuestVirtAddr::new(addr),
                    len: NETMAP_BATCH_BYTES,
                },
                vec![MemOpGrant::CopyFromGuest {
                    addr: GuestVirtAddr::new(addr),
                    len: NETMAP_BATCH_BYTES,
                }],
            )
        }
        _ => {
            // Camera streaming: the device fills a frame slice the guest
            // reads. The scripted service performs no memory operation
            // for reads, so no grant is needed — the shape still charges
            // its page-sized payload on the virtual cost model.
            let addr = 0x800_0000 + slot * CAMERA_SLICE_BYTES;
            (
                WireOp::Read {
                    addr: GuestVirtAddr::new(addr),
                    len: CAMERA_SLICE_BYTES,
                },
                Vec::new(),
            )
        }
    }
}

fn encode(guest: u32, grant: Option<GrantRef>, op: WireOp) -> Vec<u8> {
    WireRequest {
        task: u64::from(guest) + 1,
        pt_root: GuestPhysAddr::new(0x4000),
        handle: 1,
        span: 0,
        grant,
        op,
    }
    .encode()
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// In-flight bookkeeping for one guest: submit time and the grant to
/// revoke at completion (completions are per-guest FIFO).
type Pending = VecDeque<(u64, Option<GrantRef>)>;

fn take_completion(
    engine: &mut dyn MultiEngine,
    pending: &mut [Pending],
    latencies: &mut Vec<u64>,
) -> (u32, bool) {
    let now = engine.clock().now_ns();
    let (guest, frame) = engine.complete_blocking().expect("engine healthy");
    let response = WireResponse::decode(&frame).expect("response decodes");
    let ok = !matches!(response, WireResponse::Err(_));
    let (submitted, grant) = pending[guest as usize]
        .pop_front()
        .expect("completion matches a pending op");
    if let Some(grant) = grant {
        engine.grants().revoke(guest, grant);
    }
    // Virtual completions are served inside complete_blocking, which
    // advances the clock; re-read for the honest completion stamp.
    let done = engine.clock().now_ns().max(now);
    latencies.push(done.saturating_sub(submitted));
    (guest, ok)
}

/// Runs the mixed workload: `guests` guests, `ops_per_guest` ops each,
/// pipelined to the per-guest cap.
pub fn mixed_point(kind: EngineKind, guests: usize, ops_per_guest: usize) -> ScalePoint {
    let (service, _) = ScriptedService::new();
    let mut engine = build_multi(kind, service, guests, SchedPolicy::FairShare);
    let total = guests * ops_per_guest;
    let mut pending: Vec<Pending> = (0..guests).map(|_| VecDeque::new()).collect();
    let mut next_op = vec![0usize; guests];
    let mut latencies = Vec::with_capacity(total);
    let mut faults = 0u64;
    let started_ns = engine.clock().now_ns();
    let mut completed = 0usize;
    while completed < total {
        // Top up every guest's queue to the cap.
        for guest in 0..guests {
            while next_op[guest] < ops_per_guest
                && pending[guest].len() < MULTI_QUEUE_CAP
            {
                let (op, grant_ops) = mixed_op(guest as u32, next_op[guest]);
                let grant = if grant_ops.is_empty() {
                    None
                } else {
                    Some(
                        engine
                            .grants()
                            .declare(guest as u32, grant_ops)
                            .expect("per-guest shard has room for the cap"),
                    )
                };
                let frame = encode(guest as u32, grant, op);
                match engine.submit(guest as u32, &frame) {
                    Ok(()) => {
                        pending[guest].push_back((engine.clock().now_ns(), grant));
                        next_op[guest] += 1;
                    }
                    Err(EngineError::Backpressure) => {
                        if let Some(grant) = grant {
                            engine.grants().revoke(guest as u32, grant);
                        }
                        break;
                    }
                    Err(e) => panic!("{kind}: submit failed: {e}"),
                }
            }
        }
        // Drain at least one completion, then everything ready.
        let (_, ok) = take_completion(engine.as_mut(), &mut pending, &mut latencies);
        faults += u64::from(!ok);
        completed += 1;
        while completed < total {
            match engine.complete() {
                Ok(Some((guest, frame))) => {
                    let response = WireResponse::decode(&frame).expect("response decodes");
                    faults += u64::from(matches!(response, WireResponse::Err(_)));
                    let (submitted, grant) = pending[guest as usize]
                        .pop_front()
                        .expect("completion matches a pending op");
                    if let Some(grant) = grant {
                        engine.grants().revoke(guest, grant);
                    }
                    latencies.push(engine.clock().now_ns().saturating_sub(submitted));
                    completed += 1;
                }
                Ok(None) => break,
                Err(e) => panic!("{kind}: complete failed: {e}"),
            }
        }
    }
    let elapsed_ns = engine.clock().now_ns().saturating_sub(started_ns).max(1);
    engine.finish();
    assert_eq!(faults, 0, "{kind}: mixed workload must complete cleanly");
    latencies.sort_unstable();
    ScalePoint {
        kind,
        guests,
        ops: total as u64,
        elapsed_ns,
        p50_ns: percentile(&latencies, 50),
        p99_ns: percentile(&latencies, 99),
    }
}

/// Runs the flood scenario: guest 0 issues `light_ops` interactive ioctls
/// one at a time while guests `1..guests` keep netmap floods at the cap.
pub fn flood_point(kind: EngineKind, guests: usize, light_ops: usize) -> FloodPoint {
    assert!(guests >= 2, "a flood needs at least one neighbor");
    let (service, _) = ScriptedService::new();
    let mut engine = build_multi(kind, service, guests, SchedPolicy::FairShare);
    let mut pending: Vec<Pending> = (0..guests).map(|_| VecDeque::new()).collect();
    let mut heavy_seq = vec![0usize; guests];
    let mut light_latencies = Vec::with_capacity(light_ops);
    let mut heavy_done = 0u64;
    let mut backpressured = 0u64;
    for index in 0..light_ops {
        // Keep every heavy neighbor's queue at its cap: submit until the
        // *engine* refuses. Each round ends on a real
        // `EngineError::Backpressure` from the submit path — the counter
        // never credits a frontend bookkeeping shortcut, so the flood
        // provably exercises the documented overflow behaviour (clean
        // EAGAIN, nothing dropped) on every top-up round.
        for guest in 1..guests {
            loop {
                let (op, grant_ops) = mixed_op(guest as u32, 1 + heavy_seq[guest] * 3);
                let grant = engine
                    .grants()
                    .declare(guest as u32, grant_ops)
                    .expect("per-guest shard has room for the cap");
                let frame = encode(guest as u32, Some(grant), op);
                match engine.submit(guest as u32, &frame) {
                    Ok(()) => {
                        pending[guest].push_back((engine.clock().now_ns(), Some(grant)));
                        heavy_seq[guest] += 1;
                    }
                    Err(EngineError::Backpressure) => {
                        engine.grants().revoke(guest as u32, grant);
                        backpressured += 1;
                        break;
                    }
                    Err(e) => panic!("{kind}: heavy submit failed: {e}"),
                }
            }
        }
        // The light guest's single interactive op, timed to completion.
        let (op, grant_ops) = mixed_op(0, index * 3);
        let grant = engine
            .grants()
            .declare(0, grant_ops)
            .expect("light guest's shard is nearly empty");
        let frame = encode(0, Some(grant), op);
        engine.submit(0, &frame).expect("light queue has room");
        pending[0].push_back((engine.clock().now_ns(), Some(grant)));
        loop {
            let mut lats = Vec::new();
            let (guest, ok) = take_completion(engine.as_mut(), &mut pending, &mut lats);
            assert!(ok, "{kind}: flood ops must not fault");
            if guest == 0 {
                light_latencies.extend(lats);
                break;
            }
            heavy_done += 1;
        }
    }
    engine.finish();
    assert!(
        backpressured > 0,
        "{kind}: the flood never hit the cap — not a flood"
    );
    light_latencies.sort_unstable();
    FloodPoint {
        kind,
        guests,
        light_ops: light_ops as u64,
        light_p50_ns: percentile(&light_latencies, 50),
        light_p99_ns: percentile(&light_latencies, 99),
        heavy_ops: heavy_done,
        backpressured,
    }
}

/// Runs the full scale bench. `smoke` trims guest counts and op budgets
/// for the CI gate; the full sizing produces the committed numbers.
pub fn run(smoke: bool) -> ScaleRun {
    let (counts, flood_light_ops): (&[(usize, usize)], usize) = if smoke {
        (&[(1, 64), (10, 16), (100, 8)], 50)
    } else {
        (&[(1, 512), (10, 128), (100, 32), (1000, 8)], 200)
    };
    let mut points = Vec::new();
    for &kind in &[EngineKind::Virtual, EngineKind::Wall] {
        for &(guests, ops_per_guest) in counts {
            points.push(mixed_point(kind, guests, ops_per_guest));
        }
    }
    let floods = vec![
        flood_point(EngineKind::Virtual, 100, flood_light_ops),
        flood_point(EngineKind::Wall, 100, flood_light_ops),
    ];
    ScaleRun {
        smoke,
        points,
        floods,
        gpu_light_latency_ns: crate::experiments::sched_latency_ns(false),
    }
}

/// Renders `BENCH_scale.json` (hand-rolled, dependency-free). Gate
/// metrics are flat top-level integers.
pub fn render_json(run: &ScaleRun) -> String {
    let mut out = String::from("{\n  \"schema\": \"paradice-scale/v1\",\n");
    out.push_str(&format!("  \"smoke\": {},\n", run.smoke));
    out.push_str(&format!("  \"max_guests\": {},\n", run.max_guests()));
    out.push_str(&format!(
        "  \"virtual_light_p99_under_flood_ns\": {},\n",
        run.light_p99_under_flood_ns(EngineKind::Virtual)
    ));
    out.push_str(&format!(
        "  \"wall_light_p99_under_flood_ns\": {},\n",
        run.light_p99_under_flood_ns(EngineKind::Wall)
    ));
    out.push_str(&format!(
        "  \"virtual_throughput_fraction_x1000_at_100\": {},\n",
        run.throughput_fraction_x1000(EngineKind::Virtual)
    ));
    out.push_str(&format!(
        "  \"wall_throughput_fraction_x1000_at_100\": {},\n",
        run.throughput_fraction_x1000(EngineKind::Wall)
    ));
    out.push_str(&format!(
        "  \"gpu_light_latency_under_flood_ns\": {},\n",
        run.gpu_light_latency_ns
    ));
    out.push_str("  \"points\": [\n");
    let body: Vec<String> = run
        .points
        .iter()
        .map(|p| {
            format!(
                "    {{\"substrate\": \"{}\", \"guests\": {}, \"ops\": {}, \"elapsed_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"ops_per_sec\": {}}}",
                p.kind,
                p.guests,
                p.ops,
                p.elapsed_ns,
                p.p50_ns,
                p.p99_ns,
                p.ops_per_sec()
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ],\n  \"floods\": [\n");
    let body: Vec<String> = run
        .floods
        .iter()
        .map(|f| {
            format!(
                "    {{\"substrate\": \"{}\", \"guests\": {}, \"light_ops\": {}, \"light_p50_ns\": {}, \"light_p99_ns\": {}, \"heavy_ops\": {}, \"backpressured\": {}}}",
                f.kind,
                f.guests,
                f.light_ops,
                f.light_p50_ns,
                f.light_p99_ns,
                f.heavy_ops,
                f.backpressured
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the human-readable `--scale` summary.
pub fn render_text(run: &ScaleRun) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "multi-tenant scale-out ({} guests max{}):\n",
        run.max_guests(),
        if run.smoke { ", smoke sizing" } else { "" }
    ));
    for p in &run.points {
        out.push_str(&format!(
            "  {:<8} {:>5} guests   p50 {:>9} ns   p99 {:>10} ns   {:>9} ops/s\n",
            p.kind.to_string(),
            p.guests,
            p.p50_ns,
            p.p99_ns,
            p.ops_per_sec()
        ));
    }
    for f in &run.floods {
        out.push_str(&format!(
            "  {:<8} flood: light p99 {} ns over {} heavy neighbors ({} heavy ops, {} backpressured)\n",
            f.kind.to_string(),
            f.light_p99_ns,
            f.guests - 1,
            f.heavy_ops,
            f.backpressured
        ));
    }
    out.push_str(&format!(
        "  gpu     light 1 ms job under heavy flood: {:.1} ms (fair-share default)\n",
        run.gpu_light_latency_ns as f64 / 1e6
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_points_complete_on_both_substrates() {
        for kind in [EngineKind::Virtual, EngineKind::Wall] {
            let point = mixed_point(kind, 4, 9);
            assert_eq!(point.ops, 36);
            assert!(point.ops_per_sec() > 0, "{kind}: throughput");
            assert!(point.p99_ns >= point.p50_ns, "{kind}: ordered percentiles");
        }
    }

    #[test]
    fn virtual_mixed_point_is_deterministic() {
        let a = mixed_point(EngineKind::Virtual, 3, 12);
        let b = mixed_point(EngineKind::Virtual, 3, 12);
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(a.p99_ns, b.p99_ns);
    }

    #[test]
    fn flood_keeps_the_light_guest_fast_in_virtual_time() {
        let flood = flood_point(EngineKind::Virtual, 16, 20);
        assert!(flood.backpressured > 0);
        assert!(flood.heavy_ops > 0, "the flood must also progress");
        // The fair-share bound: at most one heavy op in service ahead of
        // the light one; virtual service costs are microseconds, so the
        // light p99 stays well under a millisecond.
        assert!(
            flood.light_p99_ns < 1_000_000,
            "light p99 {} ns",
            flood.light_p99_ns
        );
    }
}
