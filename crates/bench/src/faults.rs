//! Fault-injection campaigns (paper §7.1): seeded sweeps that crash, hang,
//! and corrupt the driver VM at randomized points and verify the three
//! claims of the failure model on every run —
//!
//! 1. **Guests survive**: every guest file operation completes with a real
//!    errno; nothing hangs and no grant outlives the fault.
//! 2. **Faults are contained**: once the driver VM is marked failed its
//!    hypercalls are refused and subsequent guest ops fail fast.
//! 3. **Recovery is total**: rebooting the driver VM restores service for
//!    the faulted device class to every guest — including with data
//!    isolation enabled.
//!
//! `run_campaigns(seed, n)` is fully deterministic: the same seed produces
//! byte-identical reports, so the campaign doubles as a regression gate
//! (`scripts/check.sh` runs a small fixed-seed sweep).

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use paradice::prelude::*;
use paradice_faults::{FaultKind, FaultPlan, SplitMix64, Trigger};
use paradice_hypervisor::EngineKind;

use crate::report::{Cell, Table};

/// The device classes a campaign can target, with the file-operation
/// phases each class actually dispatches during its exercise.
const CLASSES: [(&str, &str, &[&str]); 6] = [
    ("gpu", "/dev/dri/card0", &["open", "ioctl"]),
    ("mouse", "/dev/input/event0", &["open", "poll", "read"]),
    ("keyboard", "/dev/input/event1", &["open", "poll", "read"]),
    ("camera", "/dev/video0", &["open", "ioctl"]),
    ("audio", "/dev/snd/pcmC0D0p", &["open", "ioctl"]),
    ("netmap", "/dev/netmap", &["open", "ioctl"]),
];

/// One campaign's verdict.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Campaign index (0-based).
    pub index: u32,
    /// Injected fault kind.
    pub kind: FaultKind,
    /// Targeted device class name.
    pub class: &'static str,
    /// File-operation phase the trigger armed on.
    pub phase: &'static str,
    /// Whether the machine ran with data isolation enabled.
    pub data_isolation: bool,
    /// The first errno the faulted guest observed, if any.
    pub first_errno: Option<Errno>,
    /// Claim 1: the guest survived (errno, no hang, no grant leak).
    pub guest_survived: bool,
    /// Claim 2: the fault killed the driver VM (and was contained).
    pub driver_vm_died: bool,
    /// Claim 3: recovery restored full service (`None` = not applicable,
    /// the driver VM never died).
    pub recovered: Option<bool>,
    /// Human-readable detail for failures.
    pub detail: String,
}

/// The full campaign sweep.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Seed the sweep derived every campaign from.
    pub seed: u64,
    /// Per-campaign verdicts.
    pub outcomes: Vec<CampaignOutcome>,
}

fn build_machine(engine: EngineKind, data_isolation: bool) -> Machine {
    let mut builder = Machine::builder()
        .engine(engine)
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation,
        })
        .guest(GuestSpec::linux())
        .guest(GuestSpec::linux());
    for spec in [
        DeviceSpec::gpu(),
        DeviceSpec::Mouse,
        DeviceSpec::Keyboard,
        DeviceSpec::Camera,
        DeviceSpec::Audio,
        DeviceSpec::Netmap,
    ] {
        builder = builder.device(spec);
    }
    builder.build().expect("campaign machine builds")
}

/// Drives the class's exercise on `task`: open, the class's data op(s),
/// close. Returns the first errno observed (every op must *return* — in
/// the simulation a hang would surface as a test timeout, and at the
/// protocol level as a missing response, which the frontend watchdog
/// converts to `ETIMEDOUT`).
fn exercise(m: &mut Machine, task: TaskId, class: &str, path: &str) -> Option<Errno> {
    let mut first: Option<Errno> = None;
    let mut note = |r: Result<(), Errno>| {
        if let Err(e) = r {
            first.get_or_insert(e);
        }
    };
    let fd = match m.open(task, path) {
        Ok(fd) => fd,
        Err(e) => return Some(e),
    };
    match class {
        "gpu" => {
            let arg = m.alloc_buffer(task, 4096).expect("arg buffer");
            m.write_mem(task, arg, &1u32.to_le_bytes()).expect("arg init");
            note(
                m.ioctl(task, fd, paradice::gpu_ioctl::RADEON_INFO, arg.raw())
                    .map(|_| ()),
            );
        }
        "mouse" | "keyboard" => {
            note(m.poll(task, fd).map(|_| ()));
            let buf = m.alloc_buffer(task, 64).expect("read buffer");
            note(m.read(task, fd, buf, 16).map(|_| ()));
        }
        "camera" => {
            let arg = m.alloc_buffer(task, 64).expect("arg buffer");
            note(
                m.ioctl(task, fd, paradice::camera_ioctl::VIDIOC_QUERYCAP, arg.raw())
                    .map(|_| ()),
            );
        }
        "audio" => {
            note(
                m.ioctl(task, fd, paradice::audio_ioctl::PCM_PREPARE, 0)
                    .map(|_| ()),
            );
        }
        "netmap" => {
            let arg = m.alloc_buffer(task, 64).expect("arg buffer");
            note(
                m.ioctl(task, fd, paradice::netmap_ioctl::NIOCGINFO, arg.raw())
                    .map(|_| ()),
            );
        }
        other => panic!("unknown device class {other}"),
    }
    note(m.close(task, fd));
    first
}

/// Opens and closes `path` on a fresh process of `guest` — the minimal
/// "full service" probe.
fn service_ok(m: &mut Machine, guest: usize, path: &str) -> Result<(), Errno> {
    let task = m.spawn_process(Some(guest)).map_err(|_| Errno::Eio)?;
    let fd = m.open(task, path)?;
    m.close(task, fd)
}

fn run_one(engine: EngineKind, seed: u64, index: u32) -> CampaignOutcome {
    let mut rng = SplitMix64::new(seed ^ (u64::from(index)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let kind = FaultKind::ALL[rng.gen_range(FaultKind::ALL.len() as u64) as usize];
    let (class, path, phases) = CLASSES[rng.gen_range(CLASSES.len() as u64) as usize];
    let phase = phases[rng.gen_range(phases.len() as u64) as usize];
    let data_isolation = rng.gen_range(2) == 1;

    let mut m = build_machine(engine, data_isolation);
    let mut plan = FaultPlan::new();
    plan.arm(kind, Trigger::OnOp { op: phase.to_owned(), nth: 0 });
    let plan = Rc::new(RefCell::new(plan));
    assert!(m.arm_faults(plan.clone()), "Paradice machines arm faults");

    let task = m.spawn_process(Some(0)).expect("guest 0 process");
    let first_errno = exercise(&mut m, task, class, path);

    let mut detail = String::new();
    let mut guest_survived = true;
    if plan.borrow().fired().is_empty() {
        guest_survived = false;
        detail.push_str("fault never triggered; ");
    }
    let driver_vm_died = m.driver_vm_failed();
    if driver_vm_died {
        // Claim 1b, no leak: containment revoked every outstanding grant.
        for (g, &vm) in m.guest_vms().to_vec().iter().enumerate() {
            let grants = m.hv().borrow().outstanding_grants(vm);
            if grants != 0 {
                guest_survived = false;
                let _ = write!(detail, "guest {g} leaked {grants} grants; ");
            }
        }
        // Claim 2: the circuit breaker fails fast, it does not re-wait.
        if m.open(task, path) != Err(Errno::Eio) {
            guest_survived = false;
            detail.push_str("no fail-fast EIO after driver VM death; ");
        }
    }

    let recovered = if driver_vm_died {
        let mut ok = m.recover_driver_vm().is_ok() && !m.driver_vm_failed();
        if !ok {
            detail.push_str("driver VM reboot failed; ");
        }
        // Claim 3: the faulted class serves both guests again.
        for guest in 0..2 {
            if ok {
                if let Err(e) = service_ok(&mut m, guest, path) {
                    ok = false;
                    let _ = write!(detail, "guest {guest} reopen failed ({e:?}); ");
                }
            }
        }
        Some(ok)
    } else {
        // The driver survived (oops / late delivery): service must continue
        // without any recovery step.
        if let Err(e) = service_ok(&mut m, 0, path) {
            guest_survived = false;
            let _ = write!(detail, "service lost without driver VM death ({e:?}); ");
        }
        None
    };

    CampaignOutcome {
        index,
        kind,
        class,
        phase,
        data_isolation,
        first_errno,
        guest_survived,
        driver_vm_died,
        recovered,
        detail,
    }
}

/// Runs `campaigns` seeded campaigns on the virtual substrate (the
/// deterministic oracle). Same `seed` and `campaigns` → identical
/// outcomes and identical rendered report.
pub fn run_campaigns(seed: u64, campaigns: u32) -> CampaignReport {
    run_campaigns_on(EngineKind::Virtual, seed, campaigns)
}

/// Runs the same seeded sweep on an explicit substrate. Fault selection
/// derives only from the seed, so the survival matrix (which carries no
/// timestamps) must come out identical on [`EngineKind::Virtual`] and
/// [`EngineKind::Wall`] — the wall-clock differential test pins that.
pub fn run_campaigns_on(engine: EngineKind, seed: u64, campaigns: u32) -> CampaignReport {
    let outcomes = (0..campaigns).map(|i| run_one(engine, seed, i)).collect();
    CampaignReport { seed, outcomes }
}

impl CampaignReport {
    /// Campaigns where the guest did not survive with a clean errno.
    pub fn guest_failures(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.guest_survived).count()
    }

    /// `(recovered, driver-VM deaths)`.
    pub fn recovery_counts(&self) -> (usize, usize) {
        let died = self.outcomes.iter().filter(|o| o.driver_vm_died).count();
        let recovered = self
            .outcomes
            .iter()
            .filter(|o| o.recovered == Some(true))
            .count();
        (recovered, died)
    }

    /// The acceptance gate: zero guest failures and ≥ 95 % of driver-VM
    /// deaths fully recovered.
    pub fn pass(&self) -> bool {
        let (recovered, died) = self.recovery_counts();
        self.guest_failures() == 0 && (died == 0 || recovered * 100 >= died * 95)
    }

    /// The Table-3-style survival matrix: one row per fault kind.
    pub fn matrix(&self) -> Table {
        let mut table = Table::new(
            "fault_matrix",
            "§7.1 — fault-injection survival matrix",
            &[
                "Fault",
                "Campaigns",
                "Guest survived",
                "Driver VM died",
                "Recovered",
                "Recovery n/a",
            ],
        );
        for kind in FaultKind::ALL {
            let of_kind: Vec<&CampaignOutcome> =
                self.outcomes.iter().filter(|o| o.kind == kind).collect();
            let count = |f: &dyn Fn(&CampaignOutcome) -> bool| {
                of_kind.iter().filter(|o| f(o)).count() as f64
            };
            table.row(vec![
                kind.as_str().into(),
                Cell::Num(of_kind.len() as f64, 0),
                Cell::Num(count(&|o| o.guest_survived), 0),
                Cell::Num(count(&|o| o.driver_vm_died), 0),
                Cell::Num(count(&|o| o.recovered == Some(true)), 0),
                Cell::Num(count(&|o| o.recovered.is_none()), 0),
            ]);
        }
        table
    }

    /// Per-device-class breakdown.
    pub fn by_class(&self) -> Table {
        let mut table = Table::new(
            "fault_by_class",
            "§7.1 — campaigns by device class",
            &["Class", "Campaigns", "Guest survived", "Driver VM died", "Recovered"],
        );
        for (class, _, _) in CLASSES {
            let of: Vec<&CampaignOutcome> =
                self.outcomes.iter().filter(|o| o.class == class).collect();
            table.row(vec![
                class.into(),
                Cell::Num(of.len() as f64, 0),
                Cell::Num(of.iter().filter(|o| o.guest_survived).count() as f64, 0),
                Cell::Num(of.iter().filter(|o| o.driver_vm_died).count() as f64, 0),
                Cell::Num(
                    of.iter().filter(|o| o.recovered == Some(true)).count() as f64,
                    0,
                ),
            ]);
        }
        table
    }

    /// Renders the full deterministic report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fault-injection campaign: seed {}, {} campaigns\n",
            self.seed,
            self.outcomes.len()
        );
        out.push_str(&self.matrix().render());
        out.push('\n');
        out.push_str(&self.by_class().render());
        out.push('\n');
        for o in &self.outcomes {
            if !o.guest_survived || o.recovered == Some(false) {
                let _ = writeln!(
                    out,
                    "FAIL campaign {}: {} on {} {} (di={}): {}",
                    o.index, o.kind, o.class, o.phase, o.data_isolation, o.detail
                );
            }
        }
        let (recovered, died) = self.recovery_counts();
        let _ = writeln!(
            out,
            "guest failures: {} / {}",
            self.guest_failures(),
            self.outcomes.len()
        );
        let _ = writeln!(out, "driver VM deaths recovered: {recovered} / {died}");
        let _ = writeln!(out, "verdict: {}", if self.pass() { "PASS" } else { "FAIL" });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_sweep_passes_and_is_deterministic() {
        let a = run_campaigns(42, 8);
        let b = run_campaigns(42, 8);
        assert_eq!(a.render(), b.render(), "same seed must reproduce exactly");
        assert!(a.pass(), "{}", a.render());
        // The sweep must actually exercise the failure model.
        assert!(a.outcomes.iter().any(|o| o.driver_vm_died));
    }

    #[test]
    fn different_seeds_explore_different_points() {
        let a = run_campaigns(1, 6);
        let b = run_campaigns(2, 6);
        let sig = |r: &CampaignReport| {
            r.outcomes
                .iter()
                .map(|o| format!("{}/{}/{}", o.kind, o.class, o.phase))
                .collect::<Vec<_>>()
        };
        assert_ne!(sig(&a), sig(&b));
    }
}
