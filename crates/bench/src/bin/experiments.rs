//! Regenerates the paper's tables and figures.
//!
//! ```sh
//! cargo run -p paradice-bench --bin experiments            # everything
//! cargo run -p paradice-bench --bin experiments -- --fig2  # one experiment
//! cargo run -p paradice-bench --bin experiments -- --trace trace.jsonl
//! ```
//!
//! Tables print to stdout and land as CSV under `results/`. `--trace`
//! records the reference workload with paradice-trace enabled and dumps
//! the span events as JSONL — feed the file to `paradice-lint --replay`
//! for recorded-trace conformance checking.

use std::path::PathBuf;

use paradice_bench::experiments;
use paradice_bench::report::Table;

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn emit(table: Table) {
    println!("{}", table.render());
    if let Err(e) = table.write_csv(&results_dir()) {
        eprintln!("warning: could not write results/{}.csv: {e}", table.id);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("--trace requires a file path");
            std::process::exit(2);
        };
        let jsonl = paradice_bench::tracing::record_workload_trace();
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
        let events = jsonl.lines().count();
        println!("recorded reference workload trace: {events} events -> {path}");
        return;
    }
    let run_all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| run_all || args.iter().any(|a| a == flag);

    println!("Paradice evaluation harness — all times are deterministic virtual time\n");
    if want("--table1") {
        emit(experiments::table1());
    }
    if want("--table2") {
        emit(experiments::table2());
    }
    if want("--table3") {
        emit(experiments::table3());
    }
    if want("--noop") {
        emit(experiments::noop());
    }
    if want("--fig2") {
        emit(experiments::fig2());
    }
    if want("--fig3") {
        emit(experiments::fig3());
    }
    if want("--fig4") {
        emit(experiments::fig4());
    }
    if want("--fig5") {
        emit(experiments::fig5());
    }
    if want("--fig6") {
        emit(experiments::fig6());
    }
    if want("--mouse") {
        emit(experiments::mouse());
    }
    if want("--camera") {
        emit(experiments::camera());
    }
    if want("--audio") {
        emit(experiments::audio());
    }
    if want("--analyzer") {
        emit(experiments::analyzer());
    }
    if want("--isolation") {
        emit(experiments::isolation());
    }
    if want("--ablation") {
        emit(experiments::ablation());
    }
    println!("CSV written to {}", results_dir().display());
}
