//! Regenerates the paper's tables and figures.
//!
//! ```sh
//! cargo run -p paradice-bench --bin experiments            # everything
//! cargo run -p paradice-bench --bin experiments -- --fig2  # one experiment
//! cargo run -p paradice-bench --bin experiments -- --fastpath
//! cargo run -p paradice-bench --bin experiments -- --trace trace.jsonl
//! ```
//!
//! Tables print to stdout and land as CSV under `results/`. A full run
//! also writes the machine-readable twins at the repo root:
//! `BENCH_experiments.json` (every emitted table),
//! `BENCH_fastpath.json` (the fast-path ablation, also written by a bare
//! `--fastpath` run — `scripts/check.sh` gates on its no-op round-trip
//! metric), `BENCH_verify.json` (the `paradice-verify` proof stats,
//! also written by a bare `--verify` run), and `BENCH_wallclock.json`
//! (the threaded wall-clock substrate's real ops/sec and Mpps, also
//! written by a bare `--wallclock` run; add `--smoke` for the reduced
//! CI sizing `scripts/check.sh` sanity-gates), `BENCH_race.json` (the
//! interleaving proofs, ordering-mutant sweep, and MO/RC lint coverage,
//! also written by a bare `--race` run; `--smoke` trims the sweep), and
//! `BENCH_adversary.json`
//! (the generative adversary's campaigns/sec and containment matrix,
//! also written by a bare `--adversary` run; `--smoke` applies here
//! too), and `BENCH_scale.json` (the multi-tenant scale-out bench:
//! 1–1000 guests of mixed workloads on both substrates plus the
//! flood-fairness scenario, also written by a bare `--scale` run;
//! `--smoke` trims to 100 guests for the CI gate). `--trace` records the reference workload with paradice-trace
//! enabled and dumps the span events as JSONL — feed the file to
//! `paradice-lint --replay` for recorded-trace conformance checking.

use std::path::PathBuf;

use paradice_bench::report::{render_experiments_json, Table};
use paradice_bench::{experiments, fastpath};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn results_dir() -> PathBuf {
    repo_root().join("results")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("--trace requires a file path");
            std::process::exit(2);
        };
        let jsonl = paradice_bench::tracing::record_workload_trace();
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
        let events = jsonl.lines().count();
        println!("recorded reference workload trace: {events} events -> {path}");
        return;
    }
    let run_all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| run_all || args.iter().any(|a| a == flag);
    let mut emitted: Vec<Table> = Vec::new();
    let mut emit = |table: Table| {
        println!("{}", table.render());
        if let Err(e) = table.write_csv(&results_dir()) {
            eprintln!("warning: could not write results/{}.csv: {e}", table.id);
        }
        emitted.push(table);
    };

    println!("Paradice evaluation harness — all times are deterministic virtual time\n");
    if want("--table1") {
        emit(experiments::table1());
    }
    if want("--table2") {
        emit(experiments::table2());
    }
    if want("--table3") {
        emit(experiments::table3());
    }
    if want("--noop") {
        emit(experiments::noop());
    }
    if want("--fig2") {
        emit(experiments::fig2());
    }
    if want("--fig3") {
        emit(experiments::fig3());
    }
    if want("--fig4") {
        emit(experiments::fig4());
    }
    if want("--fig5") {
        emit(experiments::fig5());
    }
    if want("--fig6") {
        emit(experiments::fig6());
    }
    if want("--mouse") {
        emit(experiments::mouse());
    }
    if want("--camera") {
        emit(experiments::camera());
    }
    if want("--audio") {
        emit(experiments::audio());
    }
    if want("--analyzer") {
        emit(experiments::analyzer());
    }
    if want("--isolation") {
        emit(experiments::isolation());
    }
    if want("--ablation") {
        emit(experiments::ablation());
    }
    if want("--verify") {
        let reports = paradice_bench::verifyreport::run_verification();
        emit(paradice_bench::verifyreport::verify_table(&reports));
        let path = repo_root().join("BENCH_verify.json");
        match std::fs::write(&path, paradice_bench::verifyreport::render_json(&reports)) {
            Ok(()) => println!("verify proof stats written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_verify.json: {e}"),
        }
    }
    if want("--race") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let bench = paradice_bench::racereport::run(smoke);
        emit(paradice_bench::racereport::race_table(&bench));
        let path = repo_root().join("BENCH_race.json");
        match std::fs::write(&path, paradice_bench::racereport::render_json(&bench)) {
            Ok(()) => println!("race checker numbers written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_race.json: {e}"),
        }
    }
    if want("--wallclock") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let run = paradice_bench::wallclock::run(smoke);
        print!("{}", paradice_bench::wallclock::render_text(&run));
        let path = repo_root().join("BENCH_wallclock.json");
        match std::fs::write(&path, paradice_bench::wallclock::render_json(&run)) {
            Ok(()) => println!("wall-clock substrate numbers written to {}\n", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_wallclock.json: {e}"),
        }
    }
    if want("--adversary") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let bench = paradice_bench::adversaryreport::run(smoke);
        print!("{}", paradice_bench::adversaryreport::render_text(&bench));
        let path = repo_root().join("BENCH_adversary.json");
        match std::fs::write(&path, paradice_bench::adversaryreport::render_json(&bench)) {
            Ok(()) => println!("adversary campaign numbers written to {}\n", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_adversary.json: {e}"),
        }
    }
    if want("--scale") {
        let smoke = args.iter().any(|a| a == "--smoke");
        let run = paradice_bench::scale::run(smoke);
        print!("{}", paradice_bench::scale::render_text(&run));
        let path = repo_root().join("BENCH_scale.json");
        match std::fs::write(&path, paradice_bench::scale::render_json(&run)) {
            Ok(()) => println!("scale-out numbers written to {}\n", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_scale.json: {e}"),
        }
    }
    if want("--fastpath") {
        let ablation = fastpath::run_ablation();
        emit(experiments::fastpath_table(&ablation));
        let json = fastpath::render_json(&ablation);
        let path = repo_root().join("BENCH_fastpath.json");
        match std::fs::write(&path, json) {
            Ok(()) => println!("fast-path ablation written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_fastpath.json: {e}"),
        }
    }
    if run_all {
        let path = repo_root().join("BENCH_experiments.json");
        match std::fs::write(&path, render_experiments_json(&emitted)) {
            Ok(()) => println!("experiment tables written to {}", path.display()),
            Err(e) => eprintln!("warning: could not write BENCH_experiments.json: {e}"),
        }
    }
    println!("CSV written to {}", results_dir().display());
}
