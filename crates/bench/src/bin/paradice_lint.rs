//! `paradice-lint` — the driver-IR safety linter.
//!
//! Enumerates every shipped driver handler from the registry
//! ([`paradice_drivers::all_handlers`]), runs the full static lint suite
//! over each ([`paradice_analyzer::lint`]), applies the recorded allowlist,
//! and reports the findings. Exits nonzero when any `Error`-class finding
//! survives allowlisting.
//!
//! ```sh
//! cargo run -p paradice-bench --bin paradice-lint              # human output
//! cargo run -p paradice-bench --bin paradice-lint -- --json    # JSON array
//! cargo run -p paradice-bench --bin paradice-lint -- --fixtures
//! cargo run -p paradice-bench --bin paradice-lint -- --audit blocked.tsv
//! ```
//!
//! Flags:
//!
//! * `--json` — emit one JSON array of findings instead of text lines.
//! * `--fixtures` — also lint the seeded buggy fixture handler (always
//!   fails; used to demonstrate every pass firing).
//! * `--no-allowlist` — skip the registry allowlist; show raw severities.
//! * `--audit FILE` — parse a hypervisor audit export
//!   (`AuditLog::export_text` format) and report each blocked operation
//!   as `CF004`.

use std::process::ExitCode;

use paradice_analyzer::lint::{
    self, apply_allowlist, conformance, has_errors, lint_handler, Diagnostic, Severity,
};
use paradice_drivers::{all_handlers, lint_allowlist};

struct Options {
    json: bool,
    fixtures: bool,
    no_allowlist: bool,
    audit: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        fixtures: false,
        no_allowlist: false,
        audit: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--fixtures" => opts.fixtures = true,
            "--no-allowlist" => opts.no_allowlist = true,
            "--audit" => {
                opts.audit = Some(
                    args.next()
                        .ok_or_else(|| "--audit requires a file path".to_owned())?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "paradice-lint: static + conformance lints over shipped driver IR\n\
                     \n\
                     usage: paradice-lint [--json] [--fixtures] [--no-allowlist] \
                     [--audit FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("paradice-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut drivers = 0usize;
    for (name, handler) in all_handlers() {
        drivers += 1;
        diags.extend(lint_handler(name, handler));
    }
    if opts.fixtures {
        drivers += 1;
        diags.extend(lint_handler(
            lint::fixtures::FIXTURE_DRIVER,
            &lint::fixtures::buggy_handler(),
        ));
    }
    if let Some(path) = &opts.audit {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let entries = conformance::parse_audit_text(&text);
                conformance::check_audit("hypervisor-audit", &entries, &mut diags);
            }
            Err(e) => {
                eprintln!("paradice-lint: cannot read audit log {path:?}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if !opts.no_allowlist {
        apply_allowlist(&mut diags, &lint_allowlist());
    }

    if opts.json {
        println!("{}", lint::to_json(&diags));
    } else {
        for diag in &diags {
            println!("{}", diag.render());
        }
        let count = |sev: Severity| diags.iter().filter(|d| d.severity == sev).count();
        println!(
            "paradice-lint: {} driver(s), {} finding(s): {} error(s), \
             {} warning(s), {} info",
            drivers,
            diags.len(),
            count(Severity::Error),
            count(Severity::Warning),
            count(Severity::Info),
        );
    }

    if has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
