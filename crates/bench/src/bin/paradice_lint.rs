//! `paradice-lint` — the driver-IR safety linter.
//!
//! Enumerates every shipped driver handler from the registry
//! ([`paradice_drivers::all_handlers`]), runs the full static lint suite
//! over each ([`paradice_analyzer::lint`]), applies the recorded allowlist,
//! and reports the findings. Exits nonzero when any `Error`-class finding
//! survives allowlisting.
//!
//! ```sh
//! cargo run -p paradice-bench --bin paradice-lint              # human output
//! cargo run -p paradice-bench --bin paradice-lint -- --json    # JSON array
//! cargo run -p paradice-bench --bin paradice-lint -- --fixtures
//! cargo run -p paradice-bench --bin paradice-lint -- --audit blocked.tsv
//! cargo run -p paradice-bench --bin paradice-lint -- --replay trace.jsonl
//! ```
//!
//! Besides the driver handlers, the suite lints the CVD wire protocol:
//! the shared-page decode routines modeled in driver IR
//! ([`paradice_cvd::proto::wire_request_decode_ir`] /
//! [`wire_response_decode_ir`]) run through the same dataflow engine as
//! pseudo-drivers `cvd-wire-request` / `cvd-wire-response` (`WP001`).
//!
//! Flags:
//!
//! * `--json` — emit one JSON object `{"findings": [...], "stats": {...}}`
//!   with per-pass work counters (handlers, blocks, fixpoint iterations,
//!   wall time) instead of text lines.
//! * `--fixtures` — also lint the seeded buggy fixture handler and the
//!   doctored wire decoder (always fails; used to demonstrate every pass
//!   firing).
//! * `--no-allowlist` — skip the registry allowlist; show raw severities.
//! * `--audit FILE` — parse a hypervisor audit export
//!   (`AuditLog::export_text` format) and report each blocked operation
//!   as `CF004`.
//! * `--replay FILE` — verify a recorded paradice-trace JSONL dump
//!   (`experiments --trace`): span shape (`RP` codes), grants-used ⊆
//!   grants-declared, and each recorded ioctl against the owning
//!   handler's static envelope (`CF` codes).

use std::process::ExitCode;
use std::time::Instant;

use paradice_analyzer::lint::{
    self, apply_allowlist, conformance, has_errors, lint_handler_with_stats, replay, wire,
    DiagCode, Diagnostic, LintStats, Severity,
};
use paradice_analyzer::race;
use paradice_cvd::proto::{
    doctored_wire_request_decode_ir, wire_request_decode_ir, wire_response_decode_ir,
};
use paradice_drivers::{all_handlers, lint_allowlist};

struct Options {
    json: bool,
    fixtures: bool,
    no_allowlist: bool,
    audit: Option<String>,
    replay: Option<String>,
}

/// Maps a recorded device path to the registry name of the handler IR
/// that serves it on the stock machine.
fn handler_for_device(path: &str) -> Option<&'static str> {
    match path {
        "/dev/dri/card0" => Some("radeon-3.2.0"),
        "/dev/dri/card1" => Some("i915"),
        "/dev/input/event0" | "/dev/input/event1" => Some("evdev"),
        "/dev/video0" => Some("camera-uvc"),
        "/dev/snd/pcmC0D0p" => Some("audio-hda"),
        "/dev/netmap" => Some("netmap-e1000e"),
        _ => None,
    }
}

/// Runs the recorded-trace conformance gate: shape/grant checks over the
/// whole span stream, then the per-ioctl static-envelope replay against
/// each device's handler IR.
fn check_recorded_trace(text: &str, diags: &mut Vec<Diagnostic>) -> Result<String, String> {
    let events = paradice_trace::parse_jsonl(text).map_err(|e| e.to_string())?;
    let summary = replay::check_trace(&events, diags);
    let handlers = all_handlers();
    let mut by_driver: Vec<(&'static str, Vec<conformance::ObservedIoctl>)> = Vec::new();
    for (device, obs) in summary.ioctls {
        let Some(name) = handler_for_device(&device) else {
            diags.push(Diagnostic::new(
                DiagCode::Rp004,
                "trace",
                Some(obs.cmd),
                format!(
                    "trace records an ioctl on {device:?} which maps to no registered \
                     handler IR; its envelope cannot be replayed"
                ),
            ));
            continue;
        };
        match by_driver.iter_mut().find(|(n, _)| *n == name) {
            Some((_, list)) => list.push(obs),
            None => by_driver.push((name, vec![obs])),
        }
    }
    for (name, observed) in &by_driver {
        let handler = handlers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| *h)
            .expect("handler_for_device only names registered handlers");
        conformance::check_replay(name, handler, observed, diags);
    }
    let ioctls: usize = by_driver.iter().map(|(_, l)| l.len()).sum();
    Ok(format!(
        "{} span(s), {} mem op(s), {} ioctl(s) replayed against {} handler(s)",
        summary.spans,
        summary.mem_ops,
        ioctls,
        by_driver.len(),
    ))
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        fixtures: false,
        no_allowlist: false,
        audit: None,
        replay: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--fixtures" => opts.fixtures = true,
            "--no-allowlist" => opts.no_allowlist = true,
            "--audit" => {
                opts.audit = Some(
                    args.next()
                        .ok_or_else(|| "--audit requires a file path".to_owned())?,
                );
            }
            "--replay" => {
                opts.replay = Some(
                    args.next()
                        .ok_or_else(|| "--replay requires a file path".to_owned())?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "paradice-lint: static + conformance lints over shipped driver IR\n\
                     \n\
                     usage: paradice-lint [--json] [--fixtures] [--no-allowlist] \
                     [--audit FILE] [--replay FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("paradice-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut stats = LintStats::default();
    let mut drivers = 0usize;
    for (name, handler) in all_handlers() {
        drivers += 1;
        diags.extend(lint_handler_with_stats(name, handler, &mut stats));
    }
    // The wire protocol's decode routines are lint subjects too: the shared
    // page is frontend-controlled memory, so they get the same dataflow
    // treatment as pseudo-drivers.
    let mut wire_decoders = vec![
        ("cvd-wire-request", wire_request_decode_ir()),
        ("cvd-wire-response", wire_response_decode_ir()),
    ];
    if opts.fixtures {
        wire_decoders.push(("cvd-wire-doctored", doctored_wire_request_decode_ir()));
    }
    for (name, handler) in &wire_decoders {
        drivers += 1;
        let t0 = Instant::now();
        let (blocks, iterations) = wire::check_wire(name, handler, &mut diags);
        let s = stats.pass_mut("wire");
        s.handlers += 1;
        s.blocks += blocks;
        s.iterations += iterations;
        s.wall_ns += t0.elapsed().as_nanos();
    }
    if opts.fixtures {
        drivers += 1;
        diags.extend(lint_handler_with_stats(
            lint::fixtures::FIXTURE_DRIVER,
            &lint::fixtures::buggy_handler(),
            &mut stats,
        ));
    }
    // The wall-clock substrate's declared atomic-site tables run through
    // the MO/RC memory-ordering passes: the orderings checked here are the
    // same constants the code executes and the interleaving checker
    // explores.
    {
        let mut models = vec![paradice_hypervisor::atomic::all_sites()];
        if opts.fixtures {
            // The seeded buggy model demonstrates every MO/RC code firing.
            models.push(race::fixtures::buggy_model());
        }
        for sites in &models {
            drivers += 1;
            let t0 = Instant::now();
            let accesses: usize = sites.iter().map(|s| s.accesses.len()).sum();
            diags.extend(race::check_model(sites));
            let s = stats.pass_mut("race");
            s.handlers += 1;
            s.blocks += sites.len();
            s.iterations += accesses;
            s.wall_ns += t0.elapsed().as_nanos();
        }
    }
    if let Some(path) = &opts.audit {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let entries = conformance::parse_audit_text(&text);
                conformance::check_audit("hypervisor-audit", &entries, &mut diags);
            }
            Err(e) => {
                eprintln!("paradice-lint: cannot read audit log {path:?}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut replay_summary = None;
    if let Some(path) = &opts.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("paradice-lint: cannot read trace {path:?}: {e}");
                return ExitCode::from(2);
            }
        };
        match check_recorded_trace(&text, &mut diags) {
            Ok(summary) => replay_summary = Some(summary),
            Err(e) => {
                eprintln!("paradice-lint: malformed trace {path:?}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if !opts.no_allowlist {
        apply_allowlist(&mut diags, &lint_allowlist());
    }

    if opts.json {
        println!("{}", lint::report_json(&diags, &stats));
    } else {
        for diag in &diags {
            println!("{}", diag.render());
        }
        if let Some(summary) = &replay_summary {
            println!("paradice-lint: replay: {summary}");
        }
        let count = |sev: Severity| diags.iter().filter(|d| d.severity == sev).count();
        println!(
            "paradice-lint: {} driver(s), {} finding(s): {} error(s), \
             {} warning(s), {} info",
            drivers,
            diags.len(),
            count(Severity::Error),
            count(Severity::Warning),
            count(Severity::Info),
        );
    }

    if has_errors(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
