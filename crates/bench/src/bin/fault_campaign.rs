//! Seeded driver-VM fault-injection campaigns (§7.1).
//!
//! ```sh
//! cargo run -p paradice-bench --bin fault-campaign -- --seed 42 --campaigns 50
//! ```
//!
//! Each campaign injects one fault (panic, oops, hang, wild memory op,
//! malformed / truncated / dropped / delayed response) at a randomized
//! device class and file-operation phase, then verifies guest survival,
//! containment, and full driver-VM recovery. The sweep is deterministic:
//! the same seed prints a byte-identical report. Exits non-zero if any
//! guest fails or fewer than 95 % of driver-VM deaths recover.

use paradice_bench::faults;

fn parse_flag(args: &[String], flag: &str, default: u64) -> u64 {
    match args.iter().position(|a| a == flag) {
        Some(pos) => match args.get(pos + 1).and_then(|v| v.parse().ok()) {
            Some(v) => v,
            None => {
                eprintln!("{flag} requires an integer argument");
                std::process::exit(2);
            }
        },
        None => default,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = parse_flag(&args, "--seed", 42);
    let campaigns = parse_flag(&args, "--campaigns", 50) as u32;
    let report = faults::run_campaigns(seed, campaigns);
    print!("{}", report.render());
    if !report.pass() {
        std::process::exit(1);
    }
}
