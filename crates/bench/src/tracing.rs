//! Records paradice-trace spans from a deterministic reference workload.
//!
//! [`record_workload_trace`] builds a stock Paradice machine (GPU + mouse,
//! one guest), turns on tracing, and drives a short but representative
//! session: the §6.1.5 mouse event→read path and a miniature DRM session
//! (query, allocate, upload, map, render, drain). Because all time is
//! virtual the resulting JSONL is bit-identical across runs and hosts,
//! which is what lets `tests/trace_replay.rs` and `paradice-lint --replay`
//! treat a committed fixture as ground truth.

use paradice::app::drm::DrmClient;
use paradice::gpu_ioctl::{gem_domain, info};
use paradice::prelude::*;

use crate::configs::{build, spawn_app, Config};

/// Runs the reference workload under tracing and returns the JSONL dump.
///
/// The session exercises every traced op kind the replay gate cares
/// about: `open`, `fasync`, `poll`, `read` (mouse) and `ioctl`, `mmap`,
/// `release` (GPU), with grants flowing on the read/ioctl paths.
///
/// # Panics
///
/// Panics if the reference workload itself fails — that is a real
/// regression, not a recording problem.
pub fn record_workload_trace() -> String {
    let mut machine = build(Config::Paradice, &[DeviceSpec::gpu(), DeviceSpec::Mouse], 1);
    let tracer = machine.enable_tracing();
    let task = spawn_app(&mut machine, Config::Paradice);

    // Mouse: the §6.1.5 event→read latency session.
    let mouse = machine.open(task, "/dev/input/event0").expect("open mouse");
    machine.fasync(task, mouse, true).expect("fasync on");
    let buf = machine.alloc_buffer(task, 256).expect("event buffer");
    machine.clock().advance(2_000_000);
    machine.mouse_move(1, 0);
    machine.wait_event(task);
    machine.poll(task, mouse).expect("poll mouse");
    machine.read(task, mouse, buf, 64).expect("read event");
    machine.fasync(task, mouse, false).expect("fasync off");

    // GPU: a miniature DRM session against the radeon driver.
    let drm = DrmClient::open(&mut machine, task).expect("open drm");
    drm.info(&mut machine, info::DEVICE_ID).expect("device id");
    let bo = drm
        .gem_create(&mut machine, PAGE_SIZE, gem_domain::VRAM)
        .expect("gem create");
    let staging = machine.alloc_buffer(task, PAGE_SIZE).expect("staging");
    machine
        .write_mem(task, staging, &[0xA5u8; 64])
        .expect("stage pixels");
    drm.gem_pwrite(&mut machine, bo, 0, staging, 64).expect("pwrite");
    drm.gem_map(&mut machine, bo, PAGE_SIZE).expect("gem map");
    let fence = drm.submit_render(&mut machine, 1_000, bo).expect("render");
    let _ = fence;
    drm.wait_idle(&mut machine, bo).expect("wait idle");

    machine.close(task, mouse).expect("close mouse");
    machine.close(task, drm.fd).expect("close drm");

    tracer.to_jsonl()
}

/// Runs a fast-path session under tracing and returns the JSONL dump.
///
/// Same machine shape as [`record_workload_trace`] but with
/// [`Machine::enable_fastpath`] on, driving enough identical-shape
/// `RADEON_INFO` ioctls (synchronous *and* pipelined) that the
/// grant-declaration cache serves hits. The replay lint must stay
/// oblivious: cached runs still satisfy used ⊆ declared ⊆ envelope,
/// which `tests/fastpath.rs` pins end to end.
///
/// # Panics
///
/// Panics if the fast-path workload itself fails.
pub fn record_fastpath_workload_trace() -> String {
    let mut machine = build(Config::Paradice, &[DeviceSpec::gpu(), DeviceSpec::Mouse], 1);
    let tracer = machine.enable_tracing();
    machine.enable_fastpath();
    let task = spawn_app(&mut machine, Config::Paradice);

    // Mouse: poll/read are not cacheable or pipelineable — the fast path
    // must leave this path's trace shape alone.
    let mouse = machine.open(task, "/dev/input/event0").expect("open mouse");
    let buf = machine.alloc_buffer(task, 256).expect("event buffer");
    machine.clock().advance(2_000_000);
    machine.mouse_move(1, 0);
    machine.wait_event(task);
    machine.poll(task, mouse).expect("poll mouse");
    machine.read(task, mouse, buf, 64).expect("read event");

    // GPU: identical-shape state queries — cold declare, then cache hits,
    // first synchronously, then as one pipelined ring batch.
    let drm = machine.open(task, "/dev/dri/card0").expect("open drm");
    let scratch = machine.alloc_buffer(task, 256).expect("scratch");
    let mut req = [0u8; 16];
    req[0..4].copy_from_slice(&info::DEVICE_ID.to_le_bytes());
    machine.write_mem(task, scratch, &req).expect("stage request");
    for _ in 0..4 {
        machine
            .ioctl(task, drm, paradice::gpu_ioctl::RADEON_INFO, scratch.raw())
            .expect("info");
    }
    for _ in 0..4 {
        machine
            .ioctl_pipelined(task, drm, paradice::gpu_ioctl::RADEON_INFO, scratch.raw())
            .expect("pipelined info");
    }
    for result in machine.flush_pipeline(task).expect("flush") {
        result.expect("pipelined info result");
    }

    machine.close(task, mouse).expect("close mouse");
    machine.close(task, drm).expect("close drm");

    tracer.to_jsonl()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_trace::{parse_jsonl, TraceEvent};

    #[test]
    fn recorded_trace_parses_and_is_deterministic() {
        let a = record_workload_trace();
        let b = record_workload_trace();
        assert_eq!(a, b, "virtual time must make recording deterministic");
        let events = parse_jsonl(&a).expect("recorded trace parses");
        assert!(!events.is_empty());
        let starts = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::OpStart { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::OpEnd { .. }))
            .count();
        assert_eq!(starts, ends, "every span must close");
        assert!(starts >= 10, "session should record many ops: {starts}");
        assert!(
            events.iter().any(|e| matches!(e, TraceEvent::MemOp { .. })),
            "read/ioctl paths must record hypervisor mem ops"
        );
    }
}
