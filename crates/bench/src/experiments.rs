//! One entry point per table and figure of the paper's evaluation.
//!
//! Every function returns a [`Table`] whose rows put our measurement next
//! to the paper's reported value where one exists; EXPERIMENTS.md archives
//! the output and the comparison discussion.

use std::fs;
use std::path::{Path, PathBuf};

use paradice::attack;
use paradice::compare;
use paradice::prelude::*;
use paradice_analyzer::diff::{diff_handlers, CommandDelta};
use paradice_analyzer::extract::analyze_handler;
use paradice_drivers::gpu::ir::{radeon_handler_2_6_35, radeon_handler_3_2_0};

use crate::calib;
use crate::configs::{build, Config};
use crate::report::{Cell, Table};
use crate::workloads;

/// Table 1: the paravirtualized device roster.
pub fn table1() -> Table {
    let mut table = Table::new(
        "table1",
        "Table 1 — I/O devices paravirtualized (paper roster → our implementation)",
        &["Class", "Paper class-specific LoC", "Device", "Driver", "Our module"],
    );
    let rows: [(&str, u32, &str, &str, &str); 6] = [
        ("GPU", 92, "ATI Radeon HD 6450", "DRM/Radeon", "paradice-drivers::gpu"),
        ("Input", 58, "Dell USB Mouse", "evdev/usbmouse", "paradice-drivers::evdev"),
        ("Input", 58, "Dell USB Keyboard", "evdev/usbkbd", "paradice-drivers::evdev"),
        ("Camera", 43, "Logitech HD Pro Webcam C920", "V4L2/UVC", "paradice-drivers::camera"),
        ("Audio", 37, "Intel Panther Point HD Audio", "PCM/snd-hda-intel", "paradice-drivers::audio"),
        ("Ethernet", 21, "Intel Gigabit Adapter", "netmap/e1000e", "paradice-drivers::netmap"),
    ];
    for (class, loc, device, driver, module) in rows {
        table.row(vec![
            class.into(),
            Cell::Num(f64::from(loc), 0),
            device.into(),
            driver.into(),
            module.into(),
        ]);
    }
    table
}

fn count_loc(dir: &Path) -> u64 {
    let mut total = 0u64;
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                total += count_loc(&path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(content) = fs::read_to_string(&path) {
                    total += content
                        .lines()
                        .filter(|l| {
                            let t = l.trim();
                            !t.is_empty() && !t.starts_with("//")
                        })
                        .count() as u64;
                }
            }
        }
    }
    total
}

/// Table 2: code inventory — the paper's component breakdown next to our
/// per-crate line counts (counted live from the source tree, comments and
/// blanks excluded, like the paper's CLOC usage).
pub fn table2() -> Table {
    let mut table = Table::new(
        "table2",
        "Table 2 — code breakdown (paper components vs. this repository)",
        &["Paper component", "Paper LoC", "", "Our crate", "Our LoC"],
    );
    let crates_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..");
    let ours: Vec<(String, u64)> = [
        "mem",
        "devfs",
        "hypervisor",
        "analyzer",
        "drivers",
        "cvd",
        "core",
        "bench",
    ]
    .iter()
    .map(|name| {
        (
            format!("paradice-{name}"),
            count_loc(&crates_dir.join(name).join("src")),
        )
    })
    .collect();
    let paper = calib::PAPER_TABLE2;
    let rows = paper.len().max(ours.len());
    for i in 0..rows {
        let (paper_name, paper_loc) = paper
            .get(i)
            .map(|(n, l)| ((*n).to_string(), Cell::Num(f64::from(*l), 0)))
            .unwrap_or((String::new(), Cell::Empty));
        let (our_name, our_loc) = ours
            .get(i)
            .map(|(n, l)| (n.clone(), Cell::Num(*l as f64, 0)))
            .unwrap_or((String::new(), Cell::Empty));
        table.row(vec![
            paper_name.into(),
            paper_loc,
            "".into(),
            our_name.into(),
            our_loc,
        ]);
    }
    let paper_total: u32 = paper.iter().map(|(_, l)| *l).sum();
    let our_total: u64 = ours.iter().map(|(_, l)| *l).sum();
    table.row(vec![
        "TOTAL (paper ~7700)".into(),
        Cell::Num(f64::from(paper_total), 0),
        "".into(),
        "TOTAL".into(),
        Cell::Num(our_total as f64, 0),
    ]);
    table
}

/// Table 3: the I/O virtualization comparison matrix.
pub fn table3() -> Table {
    let mut table = Table::new(
        "table3",
        "Table 3 — comparing I/O virtualization solutions",
        &["Strategy", "High Perf.", "Low Effort", "Device Sharing", "Legacy Device"],
    );
    for strategy in compare::ALL_STRATEGIES {
        let caps = compare::capabilities(strategy);
        let yn = |b: bool| if b { "Yes" } else { "No" };
        let sharing = match (caps.device_sharing, caps.sharing_note) {
            (true, Some(_)) => "Yes (limited)".to_owned(),
            (s, _) => yn(s).to_owned(),
        };
        table.row(vec![
            strategy.to_string().into(),
            yn(caps.high_performance).into(),
            yn(caps.low_dev_effort).into(),
            sharing.into(),
            yn(caps.legacy_devices).into(),
        ]);
    }
    table
}

/// §6.1.1: the no-op forwarding overhead.
pub fn noop() -> Table {
    let mut table = Table::new(
        "noop",
        "§6.1.1 — file-operation forwarding overhead (µs)",
        &["Transport", "Measured", "Paper"],
    );
    let int = workloads::noop_forward_us(TransportMode::Interrupts, 1_000);
    let poll = workloads::noop_forward_us(TransportMode::polling_default(), 1_000);
    table.row(vec!["interrupts".into(), Cell::Num(int, 1), Cell::Num(35.0, 1)]);
    table.row(vec!["polling".into(), Cell::Num(poll, 1), Cell::Num(2.0, 1)]);
    table
}

/// Figure 2: netmap transmit rate vs. batch size.
pub fn fig2() -> Table {
    let batches = calib::PAPER_FIG2_BATCHES;
    let mut header = vec!["Config".to_string()];
    for b in batches {
        header.push(format!("batch {b}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "fig2",
        "Figure 2 — netmap transmit rate, 64-byte packets (Mpps)",
        &header_refs,
    );
    let configs = [
        Config::Native,
        Config::Assign,
        Config::Paradice,
        Config::ParadiceFl,
        Config::ParadicePolling,
    ];
    for config in configs {
        let mut row: Vec<Cell> = vec![config.label().into()];
        for batch in batches {
            row.push(Cell::Num(
                workloads::netmap_tx_rate(config, batch, 100_000),
                3,
            ));
        }
        table.row(row);
    }
    let mut line_row: Vec<Cell> = vec!["(line rate)".into()];
    for _ in batches {
        line_row.push(Cell::Num(workloads::netmap_line_rate_mpps(), 3));
    }
    table.row(line_row);
    table
}

/// Figure 3: OpenGL microbenchmark FPS.
pub fn fig3() -> Table {
    let mut table = Table::new(
        "fig3",
        "Figure 3 — OpenGL microbenchmarks (FPS): VBO / VA / DL",
        &["Config", "VBO", "VA", "DL"],
    );
    for config in Config::STANDARD {
        let mut row: Vec<Cell> = vec![config.label().into()];
        for (_, cost) in workloads::OPENGL_BENCHES {
            row.push(Cell::Num(
                workloads::graphics_fps(config, cost, workloads::DEMO_FRAMES),
                1,
            ));
        }
        table.row(row);
    }
    table
}

/// Figure 4: 3D games at four resolutions.
pub fn fig4() -> Table {
    let mut table = Table::new(
        "fig4",
        "Figure 4 — 3D HD games (FPS) at four resolutions",
        &["Game", "Config", "800x600", "1024x768", "1280x1024", "1680x1050"],
    );
    let configs = [
        Config::Native,
        Config::Assign,
        Config::Paradice,
        Config::ParadiceDi,
    ];
    for (game, _) in calib::PAPER_FIG4_NATIVE {
        for config in configs {
            let mut row: Vec<Cell> = vec![game.into(), config.label().into()];
            for res in 0..4 {
                let cost = workloads::game_frame_cost_us(game, res);
                row.push(Cell::Num(
                    workloads::graphics_fps(config, cost, workloads::DEMO_FRAMES / 2),
                    1,
                ));
            }
            table.row(row);
        }
    }
    table
}

/// Figure 5: OpenCL matrix multiplication.
pub fn fig5() -> Table {
    let mut header = vec!["Config".to_string()];
    for order in calib::PAPER_FIG5_ORDERS {
        header.push(format!("order {order}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "fig5",
        "Figure 5 — OpenCL matmul experiment time (s)",
        &header_refs,
    );
    let configs = [
        Config::Native,
        Config::Assign,
        Config::Paradice,
        Config::ParadiceDi,
    ];
    for config in configs {
        let mut row: Vec<Cell> = vec![config.label().into()];
        for order in calib::PAPER_FIG5_ORDERS {
            row.push(Cell::Num(workloads::opencl_matmul_seconds(config, order), 3));
        }
        table.row(row);
    }
    table
}

/// Figure 6: concurrent guests on one GPU.
pub fn fig6() -> Table {
    let mut table = Table::new(
        "fig6",
        "Figure 6 — concurrent OpenCL (order 500, 5 runs/guest): per-guest time (s)",
        &["Guest VMs", "Experiment time", "vs. single"],
    );
    let t1 = workloads::concurrent_matmul_seconds(1);
    for guests in 1..=3 {
        let t = if guests == 1 {
            t1
        } else {
            workloads::concurrent_matmul_seconds(guests)
        };
        table.row(vec![
            Cell::Num(guests as f64, 0),
            Cell::Num(t, 2),
            format!("{:.2}x", t / t1).into(),
        ]);
    }
    table
}

/// §6.1.5: mouse latency.
pub fn mouse() -> Table {
    let mut table = Table::new(
        "mouse",
        "§6.1.5 — mouse event→read latency (µs)",
        &["Config", "Measured", "Paper"],
    );
    for (config, (_, paper)) in [
        Config::Native,
        Config::Assign,
        Config::Paradice,
        Config::ParadicePolling,
    ]
    .into_iter()
    .zip(calib::PAPER_MOUSE_US)
    {
        table.row(vec![
            config.label().into(),
            Cell::Num(workloads::mouse_latency_us(config), 0),
            Cell::Num(paper, 0),
        ]);
    }
    table
}

/// §6.1.6: camera FPS at the three highest MJPG resolutions.
pub fn camera() -> Table {
    let mut table = Table::new(
        "camera",
        "§6.1.6 — camera FPS (paper: ~29.5 everywhere)",
        &["Config", "1280x720", "1600x896", "1920x1080"],
    );
    for config in [Config::Native, Config::Assign, Config::Paradice] {
        let mut row: Vec<Cell> = vec![config.label().into()];
        for (w, h) in [(1280u32, 720u32), (1600, 896), (1920, 1080)] {
            row.push(Cell::Num(workloads::camera_fps(config, w, h, 60), 1));
        }
        table.row(row);
    }
    table
}

/// §6.1.6: audio playback time (10 s of 48 kHz stereo).
pub fn audio() -> Table {
    let mut table = Table::new(
        "audio",
        "§6.1.6 — playback time of a 10-second audio file (s)",
        &["Config", "Playback time"],
    );
    for config in [Config::Native, Config::Assign, Config::Paradice] {
        table.row(vec![
            config.label().into(),
            Cell::Num(workloads::audio_playback_seconds(config, 10), 3),
        ]);
    }
    table
}

/// §4.1: the static analyzer on the Radeon driver, both versions.
pub fn analyzer() -> Table {
    let mut table = Table::new(
        "analyzer",
        "§4.1 — ioctl analyzer on the Radeon driver",
        &["Metric", "2.6.35 driver", "3.2.0 driver", "Paper (full driver)"],
    );
    let old = analyze_handler(&radeon_handler_2_6_35()).expect("analysis");
    let new = analyze_handler(&radeon_handler_3_2_0()).expect("analysis");
    table.row(vec![
        "ioctl commands".into(),
        Cell::Num(old.commands.len() as f64, 0),
        Cell::Num(new.commands.len() as f64, 0),
        "~50".into(),
    ]);
    table.row(vec![
        "static commands".into(),
        Cell::Num(old.static_commands() as f64, 0),
        Cell::Num(new.static_commands() as f64, 0),
        "majority".into(),
    ]);
    table.row(vec![
        "nested-copy commands".into(),
        Cell::Num(old.nested_copy_commands() as f64, 0),
        Cell::Num(new.nested_copy_commands() as f64, 0),
        Cell::Num(calib::PAPER_ANALYZER_NESTED as f64, 0),
    ]);
    table.row(vec![
        "extracted statements".into(),
        Cell::Num(old.extracted_statements() as f64, 0),
        Cell::Num(new.extracted_statements() as f64, 0),
        "~760 lines".into(),
    ]);
    let diff = diff_handlers(&radeon_handler_2_6_35(), &radeon_handler_3_2_0())
        .expect("diff");
    table.row(vec![
        "common cmds identical".into(),
        Cell::Empty,
        Cell::Num(diff.count(CommandDelta::Identical) as f64, 0),
        "all".into(),
    ]);
    table.row(vec![
        "new cmds in 3.2.0".into(),
        Cell::Empty,
        Cell::Num(diff.count(CommandDelta::Added) as f64, 0),
        Cell::Num(4.0, 0),
    ]);
    table
}

/// §4/§6: the attack suite plus the cost of isolation.
pub fn isolation() -> Table {
    let mut table = Table::new(
        "isolation",
        "§4/§6 — isolation: attacks blocked, and its performance cost",
        &["Check", "Result"],
    );
    let mut machine = build(Config::ParadiceDi, &[DeviceSpec::gpu(), DeviceSpec::Mouse], 2);
    for outcome in attack::run_all(&mut machine) {
        table.row(vec![
            format!("attack: {}", outcome.name).into(),
            if outcome.blocked {
                format!(
                    "BLOCKED by {}",
                    outcome
                        .blocked_by
                        .map(|b| b.to_string())
                        .unwrap_or_else(|| "unattributed".into())
                )
                .into()
            } else {
                "NOT BLOCKED".into()
            },
        ]);
    }
    // Performance cost of data isolation (paper: "no noticeable impact").
    let gl_plain = workloads::graphics_fps(Config::Paradice, 5_800, 120);
    let gl_di = workloads::graphics_fps(Config::ParadiceDi, 5_800, 120);
    table.row(vec![
        "OpenGL VBO FPS (Paradice / Paradice-DI)".into(),
        format!("{gl_plain:.1} / {gl_di:.1} ({:+.1}%)", (gl_di / gl_plain - 1.0) * 100.0).into(),
    ]);
    let cl_plain = workloads::opencl_matmul_seconds(Config::Paradice, 500);
    let cl_di = workloads::opencl_matmul_seconds(Config::ParadiceDi, 500);
    table.row(vec![
        "OpenCL-500 time (Paradice / Paradice-DI)".into(),
        format!("{cl_plain:.3}s / {cl_di:.3}s ({:+.1}%)", (cl_di / cl_plain - 1.0) * 100.0).into(),
    ]);
    table
}

/// Design-choice ablations: what each mechanism and constant buys.
pub fn ablation() -> Table {
    let mut table = Table::new(
        "ablation",
        "Ablations — transport choices, interrupt cost, spin budget, grant checks",
        &["Ablation", "Setting", "Metric", "Value"],
    );
    // 1. Transport comparison on the cheap-op round trip.
    for (name, config) in [
        ("interrupts", Config::Paradice),
        ("polling", Config::ParadicePolling),
        ("remote 25µs", Config::ParadiceRemote),
    ] {
        let us = {
            let mut machine = build(config, &[DeviceSpec::Mouse], 1);
            let task = crate::configs::spawn_app(&mut machine, config);
            let fd = machine.open(task, "/dev/input/event0").expect("open");
            for _ in 0..3 {
                let _ = machine.poll(task, fd);
            }
            let start = machine.now_ns();
            for _ in 0..200 {
                machine.poll(task, fd).expect("poll");
            }
            (machine.now_ns() - start) as f64 / 200.0 / 1e3
        };
        table.row(vec![
            "transport".into(),
            name.into(),
            "op round trip (µs)".into(),
            Cell::Num(us, 1),
        ]);
    }
    // 2. Inter-VM interrupt cost sweep: netmap at batch 16.
    for interrupt_us in [5u64, 17, 35] {
        let mut cost = calib::cost_model();
        cost.intervm_interrupt_ns = interrupt_us * 1_000;
        let mpps = {
            let mut machine = Machine::builder()
                .mode(ExecMode::Paradice {
                    transport: TransportMode::Interrupts,
                    data_isolation: false,
                })
                .guest(paradice::machine::GuestSpec::linux())
                .device(DeviceSpec::Netmap)
                .cost_model(cost)
                .build()
                .expect("machine builds");
            let task = machine.spawn_process(Some(0)).expect("spawn");
            netmap_rate_on(&mut machine, task, 16, 20_000)
        };
        table.row(vec![
            "interrupt cost".into(),
            format!("{interrupt_us} µs").into(),
            "netmap @ batch 16 (Mpps)".into(),
            Cell::Num(mpps, 3),
        ]);
    }
    // 3. Polling spin budget: a 0 budget degenerates to interrupts for the
    // *first* op after any pause; 200 µs (the paper's choice) keeps the
    // channel hot across back-to-back ops.
    for spin_us in [0u64, 50, 200, 1000] {
        let mpps = {
            let mut machine = Machine::builder()
                .mode(ExecMode::Paradice {
                    transport: TransportMode::Polling {
                        spin_budget_ns: spin_us * 1_000,
                    },
                    data_isolation: false,
                })
                .guest(paradice::machine::GuestSpec::linux())
                .device(DeviceSpec::Netmap)
                .build()
                .expect("machine builds");
            let task = machine.spawn_process(Some(0)).expect("spawn");
            netmap_rate_on(&mut machine, task, 4, 20_000)
        };
        table.row(vec![
            "polling spin".into(),
            format!("{spin_us} µs").into(),
            "netmap @ batch 4 (Mpps)".into(),
            Cell::Num(mpps, 3),
        ]);
    }
    // 4. GPU scheduling (§8's fairness limitation and its TimeGraph-style
    // fix): a light guest's 1 ms job behind a heavy guest's 10×10 ms queue.
    // Fair share is the shipped default since ISSUE 10; the ablation
    // toggles *back* to the stock FIFO to reproduce the starvation row.
    for (name, fifo) in [("fair share (default)", false), ("FIFO (ablation)", true)] {
        let ns = sched_latency_ns(fifo);
        table.row(vec![
            "gpu scheduling".into(),
            name.into(),
            "light-guest 1 ms job latency".into(),
            format!("{:.1} ms", ns as f64 / 1e6).into(),
        ]);
    }
    // 5. Grant validation (devirtualization, Figure 1(b)).
    for (setting, ablated) in [("Paradice", false), ("devirtualization", true)] {
        let blocked = {
            let mut machine = build(Config::Paradice, &[DeviceSpec::gpu()], 1);
            if ablated {
                machine.enable_devirtualization_ablation();
            }
            attack::ungranted_copy(&mut machine, 0).blocked_by.is_some()
        };
        table.row(vec![
            "grant checks".into(),
            setting.into(),
            "ungranted copy blocked by validation".into(),
            if blocked { "yes" } else { "NO" }.into(),
        ]);
    }
    table
}

/// The cross-layer fast-path ablation: each workload with the fast path
/// off (per-op declare → interrupt → validate → revoke) and on (grant
/// cache + pipelined ring + vectored hypercalls), with the crossing
/// *counts* the overhead argument rests on. Machine-readable twin:
/// `BENCH_fastpath.json` at the repo root.
pub fn fastpath() -> Table {
    fastpath_table(&crate::fastpath::run_ablation())
}

/// Renders an already-measured ablation (lets the binary share one run
/// between the table and `BENCH_fastpath.json`).
pub fn fastpath_table(comparisons: &[crate::fastpath::FastpathComparison]) -> Table {
    let mut table = Table::new(
        "fastpath",
        "Fast-path ablation — virtual time and boundary crossings, off vs. on",
        &[
            "Workload",
            "Fast path",
            "µs/op",
            "Hypercalls",
            "Interrupts",
            "Coalesced",
            "Cache hits",
            "Speedup",
        ],
    );
    for comparison in comparisons {
        for (name, side) in [("off", &comparison.off), ("on", &comparison.on)] {
            table.row(vec![
                comparison.workload.into(),
                name.into(),
                Cell::Num(side.us_per_op(), 2),
                Cell::Num(side.hypercalls as f64, 0),
                Cell::Num(side.interrupts as f64, 0),
                Cell::Num(side.coalesced as f64, 0),
                Cell::Num(side.grant_cache_hits as f64, 0),
                if name == "on" {
                    format!("{:.2}x", comparison.speedup()).into()
                } else {
                    Cell::Empty
                },
            ]);
        }
    }
    table
}

/// Engine-level fairness probe: time until a light guest's 1 ms job
/// completes behind a heavy guest's 10×10 ms queue. The driver defaults
/// to fair share; `fifo` toggles the ablation back to the stock policy.
/// Also re-measured by the scale bench (`crate::scale`), which commits
/// the fair-share number to `BENCH_scale.json`.
pub(crate) fn sched_latency_ns(fifo: bool) -> u64 {
    use paradice_drivers::gpu::model::GpuSched;
    let mut machine = build(Config::Paradice, &[DeviceSpec::gpu()], 2);
    let Some(paradice::machine::DriverHandle::Gpu(gpu)) = machine.driver("/dev/dri/card0")
    else {
        unreachable!("card0 is the GPU");
    };
    if fifo {
        gpu.borrow_mut().gpu_mut().set_sched(GpuSched::Fifo);
    }
    let heavy = machine.spawn_process(Some(0)).expect("spawn heavy");
    let heavy_drm = paradice::app::drm::DrmClient::open(&mut machine, heavy).expect("open");
    let hfb = heavy_drm
        .gem_create(&mut machine, PAGE_SIZE, paradice::gpu_ioctl::gem_domain::VRAM)
        .expect("bo");
    for _ in 0..10 {
        heavy_drm
            .submit_render(&mut machine, 10_000, hfb)
            .expect("render");
    }
    let light = machine.spawn_process(Some(1)).expect("spawn light");
    let light_drm = paradice::app::drm::DrmClient::open(&mut machine, light).expect("open");
    let lfb = light_drm
        .gem_create(&mut machine, PAGE_SIZE, paradice::gpu_ioctl::gem_domain::VRAM)
        .expect("bo");
    let t0 = machine.now_ns();
    let fence = light_drm
        .submit_render(&mut machine, 1_000, lfb)
        .expect("render");
    gpu.borrow_mut().gpu_mut().wait_fence(u64::from(fence)).expect("wait");
    machine.now_ns() - t0
}

fn netmap_rate_on(machine: &mut Machine, task: TaskId, batch: u32, total: u64) -> f64 {
    use paradice::app::netmap::NetmapClient;
    let mut nm = NetmapClient::open(machine, task).expect("open netmap");
    let start = machine.now_ns();
    let mut sent = 0u64;
    while sent < total {
        let n = batch
            .min(nm.free_slots(machine).expect("slots"))
            .min((total - sent) as u32);
        if n == 0 {
            nm.poll(machine).expect("poll");
            continue;
        }
        nm.produce(machine, n, 64, 50).expect("produce");
        nm.poll(machine).expect("poll");
        sent += u64::from(n);
    }
    let nic_done = match machine.driver("/dev/netmap").expect("nic") {
        paradice::machine::DriverHandle::Netmap(d) => d.borrow().nic_busy_until_ns(),
        _ => unreachable!(),
    };
    sent as f64 / ((nic_done.max(machine.now_ns()) - start) as f64 / 1e9) / 1e6
}

/// All experiments, in paper order.
pub fn all() -> Vec<Table> {
    vec![
        table1(),
        table2(),
        table3(),
        noop(),
        fig2(),
        fig3(),
        fig4(),
        fig5(),
        fig6(),
        mouse(),
        camera(),
        audio(),
        analyzer(),
        isolation(),
        ablation(),
        fastpath(),
    ]
}
