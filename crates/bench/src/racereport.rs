//! Race-checker reporting: the interleaving proofs, the ordering-mutant
//! sweep, and the static MO/RC coverage as an experiments table
//! (`--race`) and `BENCH_race.json`.
//!
//! The wall-clock substrate's correctness claim has three legs — the
//! MO/RC lint over the declared atomic-site tables, the exhaustive
//! store-buffer interleaving proofs (`race-ring`, `race-doorbell`,
//! `race-shards`), and the seeded ordering mutants each proof must
//! disprove. This module runs all three and renders them next to the
//! performance tables, so one harness answers both "how fast" and "how
//! known-racefree". `--smoke` trims the mutant sweep to one
//! representative for quick CI gating.

use paradice_analyzer::race::check_model;
use paradice_hypervisor::atomic::{all_sites, total_accesses};
use paradice_verify::report::{Mutant, PropertyReport};
use paradice_verify::run_property;

use crate::report::{Cell, Table};

/// The three interleaving properties, in run order.
pub const RACE_PROPERTIES: [&str; 3] = ["race-ring", "race-doorbell", "race-shards"];

/// One seeded ordering mutant run against the property that must kill it.
#[derive(Debug)]
pub struct MutantOutcome {
    /// Mutant name (`paradice-verify --mutant` argument).
    pub mutant: &'static str,
    /// The property expected to disprove it.
    pub property: &'static str,
    /// Whether the checker disproved it (it must).
    pub disproved: bool,
    /// Counterexample trace length (shortest, BFS).
    pub trace_len: usize,
    /// States explored before the violation.
    pub states: usize,
}

/// One full `--race` run.
#[derive(Debug)]
pub struct RaceBench {
    /// Clean-code proof runs of [`RACE_PROPERTIES`].
    pub properties: Vec<PropertyReport>,
    /// The ordering-mutant sweep.
    pub mutants: Vec<MutantOutcome>,
    /// Atomic sites the static MO/RC passes covered.
    pub lint_sites: usize,
    /// Declared accesses across those sites.
    pub lint_accesses: usize,
    /// MO/RC findings on the shipped tables (must be 0).
    pub lint_findings: usize,
    /// Whether the reduced sweep ran.
    pub smoke: bool,
}

/// Which property is expected to disprove each ordering mutant.
fn target_property(mutant: Mutant) -> &'static str {
    match mutant {
        Mutant::AringPublishRelaxed | Mutant::AringConsumeNoAcquire => "race-ring",
        Mutant::DoorbellCheckBeforePublish => "race-doorbell",
        Mutant::ShardRetireUnfenced => "race-shards",
        other => panic!("{} is not an ordering mutant", other.name()),
    }
}

/// Runs the proofs, the mutant sweep, and the static passes.
pub fn run(smoke: bool) -> RaceBench {
    let properties: Vec<PropertyReport> = RACE_PROPERTIES
        .iter()
        .map(|name| run_property(name, None).expect("registered race property"))
        .collect();
    let sweep: &[Mutant] = if smoke {
        &[Mutant::AringPublishRelaxed]
    } else {
        &[
            Mutant::AringPublishRelaxed,
            Mutant::AringConsumeNoAcquire,
            Mutant::DoorbellCheckBeforePublish,
            Mutant::ShardRetireUnfenced,
        ]
    };
    let mutants = sweep
        .iter()
        .map(|&mutant| {
            let property = target_property(mutant);
            let report = run_property(property, Some(mutant)).expect("registered race property");
            MutantOutcome {
                mutant: mutant.name(),
                property,
                disproved: !report.proved,
                trace_len: report
                    .counterexample
                    .as_ref()
                    .map(|f| f.trace.len())
                    .unwrap_or(0),
                states: report.states,
            }
        })
        .collect();
    let sites = all_sites();
    let findings = check_model(&sites);
    RaceBench {
        properties,
        mutants,
        lint_sites: sites.len(),
        lint_accesses: total_accesses(),
        lint_findings: findings.len(),
        smoke,
    }
}

/// Everything held: proofs proved, mutants disproved, lint clean.
pub fn all_green(bench: &RaceBench) -> bool {
    bench.properties.iter().all(|r| r.proved)
        && bench.mutants.iter().all(|m| m.disproved)
        && bench.lint_findings == 0
}

/// Renders the run as an experiments table.
pub fn race_table(bench: &RaceBench) -> Table {
    let mut table = Table::new(
        "race",
        "Race checker — interleaving proofs, ordering mutants, MO/RC lint",
        &["check", "verdict", "states", "steps", "time (ms)"],
    );
    for report in &bench.properties {
        table.row(vec![
            Cell::from(report.name),
            Cell::from(if report.proved { "proved" } else { "DISPROVED" }),
            Cell::Num(report.states as f64, 0),
            Cell::Num(report.transitions as f64, 0),
            Cell::Num(report.duration_ms as f64, 0),
        ]);
    }
    for outcome in &bench.mutants {
        table.row(vec![
            Cell::from(format!("mutant {}", outcome.mutant)),
            Cell::from(if outcome.disproved {
                format!("disproved by {}", outcome.property)
            } else {
                "SURVIVED".to_owned()
            }),
            Cell::Num(outcome.states as f64, 0),
            Cell::Num(outcome.trace_len as f64, 0),
            Cell::from("-"),
        ]);
    }
    table.row(vec![
        Cell::from("static mo/rc passes"),
        Cell::from(if bench.lint_findings == 0 {
            "clean".to_owned()
        } else {
            format!("{} FINDINGS", bench.lint_findings)
        }),
        Cell::Num(bench.lint_sites as f64, 0),
        Cell::Num(bench.lint_accesses as f64, 0),
        Cell::from("-"),
    ]);
    table
}

fn json_bool(value: bool) -> &'static str {
    if value {
        "true"
    } else {
        "false"
    }
}

/// Renders `BENCH_race.json`.
pub fn render_json(bench: &RaceBench) -> String {
    let mut out = String::from("{\"properties\":[");
    for (index, report) in bench.properties.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"proved\":{},\"states\":{},\"transitions\":{},\
             \"duration_ms\":{}}}",
            report.name, report.proved, report.states, report.transitions, report.duration_ms,
        ));
    }
    out.push_str("],\"mutants\":[");
    for (index, outcome) in bench.mutants.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"property\":\"{}\",\"disproved\":{},\
             \"trace_len\":{},\"states\":{}}}",
            outcome.mutant,
            outcome.property,
            outcome.disproved,
            outcome.trace_len,
            outcome.states,
        ));
    }
    out.push_str(&format!(
        "],\"schedules_explored\":{},\"states_explored\":{},\"mutants_disproved\":{},\
         \"lint\":{{\"sites\":{},\"accesses\":{},\"findings\":{}}},\
         \"smoke\":{},\"all_green\":{}}}",
        bench
            .properties
            .iter()
            .map(|r| r.transitions)
            .sum::<usize>(),
        bench.properties.iter().map(|r| r.states).sum::<usize>(),
        bench.mutants.iter().filter(|m| m.disproved).count(),
        bench.lint_sites,
        bench.lint_accesses,
        bench.lint_findings,
        json_bool(bench.smoke),
        json_bool(all_green(bench)),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_green_and_renders() {
        let bench = run(true);
        assert!(all_green(&bench), "{bench:?}");
        assert_eq!(bench.properties.len(), 3);
        assert_eq!(bench.mutants.len(), 1);
        assert!(bench.lint_sites >= 10);
        assert!(bench.lint_accesses > bench.lint_sites);
        let table = race_table(&bench);
        assert_eq!(table.rows.len(), 3 + 1 + 1);
        let json = render_json(&bench);
        assert!(json.contains("\"all_green\":true"));
        assert!(json.contains("\"mutants_disproved\":1"));
        assert!(json.contains("\"schedules_explored\":"));
    }

    #[test]
    fn full_sweep_kills_every_ordering_mutant() {
        let bench = run(false);
        assert_eq!(bench.mutants.len(), 4);
        for outcome in &bench.mutants {
            assert!(
                outcome.disproved,
                "{} survived {}",
                outcome.mutant, outcome.property,
            );
            assert!(outcome.trace_len > 0, "{} has no trace", outcome.mutant);
        }
    }
}
