//! The Paradice evaluation harness: regenerates every table and figure of
//! the paper's §6 on the deterministic simulation.
//!
//! * [`calib`] — the timing constants with their paper anchors, and the
//!   paper's reported numbers for side-by-side comparison.
//! * [`configs`] — the evaluation's machine configurations: Native,
//!   Device-Assignment, Paradice, Paradice(FL) (FreeBSD guest on the Linux
//!   driver VM), Paradice(P) (polling), Paradice(DI) (data isolation).
//! * [`workloads`] — the §6 workloads: the netmap packet generator, OpenGL
//!   microbenchmarks, three 3D games, OpenCL matrix multiplication, the
//!   mouse-latency prober, the camera and speaker streamers.
//! * [`report`] — table/series rendering (aligned text + CSV under
//!   `results/`).
//! * [`experiments`] — one entry point per table and figure.
//! * [`fastpath`] — the cross-layer fast-path ablation (`--fastpath`):
//!   grant-declaration caching, vectored hypercalls, and the pipelined
//!   ring, measured off vs. on and dumped to `BENCH_fastpath.json`.
//! * [`tracing`] — the paradice-trace reference recorder behind
//!   `experiments --trace <path>` and the `--replay` conformance gate.
//! * [`verifyreport`] — the `paradice-verify` proof run as an experiments
//!   table (`--verify`), dumped to `BENCH_verify.json`.
//! * [`racereport`] — the race checker (`--race`): interleaving proofs,
//!   the ordering-mutant sweep, and MO/RC lint coverage, dumped to
//!   `BENCH_race.json`.
//! * [`wallclock`] — the one real-time experiment (`--wallclock`): the
//!   threaded wall-clock substrate vs. its deterministic virtual twin,
//!   dumped to `BENCH_wallclock.json`.
//! * [`scale`] — the multi-tenant scale-out bench (`--scale`): 1–1000
//!   guests of mixed workloads through the multi-guest engines on both
//!   substrates, plus the flood-fairness scenario, dumped to
//!   `BENCH_scale.json`.
//!
//! Run everything with `cargo run -p paradice-bench --bin experiments`.

pub mod adversaryreport;
pub mod calib;
pub mod configs;
pub mod experiments;
pub mod fastpath;
pub mod faults;
pub mod racereport;
pub mod report;
pub mod scale;
pub mod tracing;
pub mod verifyreport;
pub mod wallclock;
pub mod workloads;

pub use configs::{build, spawn_app, Config};
pub use report::{Cell, Table};
