//! Table rendering: aligned text to stdout, CSV to `results/`.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Text.
    Text(String),
    /// A number with the given precision.
    Num(f64, usize),
    /// Empty.
    Empty,
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => f.write_str(s),
            Cell::Num(v, precision) => write!(f, "{v:.precision$}"),
            Cell::Empty => Ok(()),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::Text(s.to_owned())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Cell {
        Cell::Num(v, 2)
    }
}

/// A named table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's id (`"fig2"`, `"table3"`, …) — the CSV file stem.
    pub id: String,
    /// Human title printed above the table.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Table {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<Cell>) {
        self.rows.push(cells);
    }

    /// Renders aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(0);
                }
                widths[i] = widths[i].max(cell.to_string().len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for (i, h) in self.header.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", h, width = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.header.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let text = cell.to_string();
                if matches!(cell, Cell::Num(..)) {
                    out.push_str(&format!("{:>width$}  ", text, width = widths[i]));
                } else {
                    out.push_str(&format!("{:<width$}  ", text, width = widths[i]));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as one JSON object (`{"id", "title", "header",
    /// "rows"}`): numeric cells become JSON numbers at their display
    /// precision, text cells strings, empty cells `null`.
    pub fn to_json(&self) -> String {
        let header: Vec<String> = self
            .header
            .iter()
            .map(|h| format!("\"{}\"", json_escape(h)))
            .collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row
                    .iter()
                    .map(|cell| match cell {
                        Cell::Text(s) => format!("\"{}\"", json_escape(s)),
                        Cell::Num(v, precision) if v.is_finite() => {
                            format!("{v:.precision$}")
                        }
                        Cell::Num(..) | Cell::Empty => "null".to_owned(),
                    })
                    .collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"header\":[{}],\"rows\":[{}]}}",
            json_escape(&self.id),
            json_escape(&self.title),
            header.join(","),
            rows.join(",")
        )
    }

    /// Writes `results/<id>.csv`.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut file = fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        writeln!(file, "{}", self.header.join(","))?;
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|c| c.to_string()).collect();
            writeln!(file, "{}", line.join(","))?;
        }
        Ok(())
    }
}

/// Renders a set of tables as the `BENCH_experiments.json` document: the
/// per-figure virtual-time numbers, machine-readable, so performance can
/// be diffed mechanically across revisions.
pub fn render_experiments_json(tables: &[Table]) -> String {
    let body: Vec<String> = tables
        .iter()
        .map(|t| format!("    {}", t.to_json()))
        .collect();
    format!(
        "{{\n  \"schema\": \"paradice-experiments/v1\",\n  \"tables\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut table = Table::new("t", "Test", &["name", "value"]);
        table.row(vec!["alpha".into(), Cell::Num(1.5, 2)]);
        table.row(vec!["beta-long".into(), Cell::Num(10.25, 2)]);
        let text = table.render();
        assert!(text.contains("== Test =="));
        assert!(text.contains("alpha"));
        assert!(text.contains("10.25"));
        // Numbers are right-aligned within the column.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[3].contains(" 1.50"));
    }

    #[test]
    fn json_rendering_escapes_and_types_cells() {
        let mut table = Table::new("fig9", "Quote \"me\"", &["name", "value"]);
        table.row(vec!["x".into(), Cell::Num(1.25, 2)]);
        table.row(vec![Cell::Empty, Cell::Num(f64::NAN, 2)]);
        let json = table.to_json();
        assert!(json.contains("\"id\":\"fig9\""));
        assert!(json.contains("Quote \\\"me\\\""));
        assert!(json.contains("[\"x\",1.25]"));
        assert!(json.contains("[null,null]"), "empty/NaN cells become null: {json}");
        let doc = render_experiments_json(&[table]);
        assert!(doc.contains("\"schema\": \"paradice-experiments/v1\""));
    }

    #[test]
    fn csv_written() {
        let dir = std::env::temp_dir().join("paradice-report-test");
        let mut table = Table::new("sample", "S", &["a", "b"]);
        table.row(vec![Cell::Text("x".into()), Cell::Num(2.0, 1)]);
        table.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("sample.csv")).unwrap();
        assert_eq!(content, "a,b\nx,2.0\n");
    }
}
