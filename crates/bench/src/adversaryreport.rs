//! Adversary campaign throughput and containment matrix (`--adversary`).
//!
//! Runs the generative adversary (`crates/adversary`) at a fixed seed on
//! both substrates and reports two things side by side: how *fast* the
//! stack absorbs adversarial work (campaign steps per wall-second — the
//! robustness analogue of ops/sec) and the containment matrix itself
//! (attempted/detected/served/breaches per family × engine). Results
//! land in `BENCH_adversary.json` with flat integer metrics at the top
//! level so `scripts/check.sh` can gate on them with `grep`/`sed` alone;
//! the full matrix is embedded under `"campaign"`.

use std::time::Instant;

use paradice_adversary::{run_campaign, CampaignConfig, CampaignReport};

/// The seed every benched campaign runs under (arbitrary but fixed: the
/// bench is a measurement, not a search).
pub const BENCH_SEED: u64 = 7;

/// One timed campaign.
pub struct AdversaryBench {
    /// The campaign's containment matrix.
    pub report: CampaignReport,
    /// Wall time for the whole campaign.
    pub elapsed_ms: u128,
    /// Adversarial steps absorbed per wall-second.
    pub steps_per_sec: u64,
}

/// Runs the campaign — `smoke` uses the reduced CI sizing.
pub fn run(smoke: bool) -> AdversaryBench {
    let steps = if smoke { 40 } else { 200 };
    let config = CampaignConfig::both(BENCH_SEED, steps);
    let start = Instant::now();
    let report = run_campaign(&config);
    let elapsed = start.elapsed();
    let steps_per_sec = if elapsed.as_micros() == 0 {
        0
    } else {
        (u128::from(report.total_attempted()) * 1_000_000 / elapsed.as_micros()) as u64
    };
    AdversaryBench {
        report,
        elapsed_ms: elapsed.as_millis(),
        steps_per_sec,
    }
}

/// Human-readable form: the matrix plus the throughput line.
pub fn render_text(bench: &AdversaryBench) -> String {
    format!(
        "{}adversary throughput: {} steps/sec ({} steps in {} ms)\n",
        bench.report.render(),
        bench.steps_per_sec,
        bench.report.total_attempted(),
        bench.elapsed_ms,
    )
}

/// The `BENCH_adversary.json` body.
pub fn render_json(bench: &AdversaryBench) -> String {
    format!(
        "{{\"steps_per_sec\":{},\"elapsed_ms\":{},\"attempted\":{},\
         \"detected\":{},\"breaches\":{},\"pass\":{},\"campaign\":{}}}",
        bench.steps_per_sec,
        bench.elapsed_ms,
        bench.report.total_attempted(),
        bench.report.total_detected(),
        bench.report.total_breaches(),
        bench.report.pass(),
        bench.report.to_json(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_smoke_campaign_passes_and_reports_flat_metrics() {
        let bench = run(true);
        assert!(bench.report.pass(), "{}", bench.report.render());
        let json = render_json(&bench);
        assert!(json.starts_with("{\"steps_per_sec\":"));
        assert!(json.contains("\"pass\":true"));
        assert!(json.contains("\"campaign\":{"));
    }
}
