//! The §6 workloads.
//!
//! Each function runs one benchmark application on a machine built for a
//! [`Config`] and reports the metric the paper reports. All time is virtual,
//! so results are bit-identical across runs and hosts.

use paradice::app::drm::DrmClient;
use paradice::app::netmap::{line_rate_pps, NetmapClient};
use paradice::app::{pcm, v4l};
use paradice::gpu_ioctl::{gem_domain, info};
use paradice::machine::DriverHandle;
use paradice::prelude::*;

use crate::configs::{build, spawn_app, Config};

/// File operations a GL application issues per frame beyond the CS itself
/// (state queries, buffer maps, throttling): the source of Paradice's
/// constant per-frame overhead (§6.1.3: "Paradice adds a constant overhead
/// to the file operations regardless of the benchmark load").
pub const GL_OPS_PER_FRAME: usize = 18;

/// Frames per graphics measurement (a virtual demo run).
pub const DEMO_FRAMES: usize = 240;

// ---------------------------------------------------------------------
// netmap (Figure 2)
// ---------------------------------------------------------------------

/// Runs the netmap packet generator: `total` 64-byte packets in batches of
/// `batch`, one `poll` per batch (§6.1.2). Returns Mpps.
pub fn netmap_tx_rate(config: Config, batch: u32, total: u64) -> f64 {
    let mut machine = build(config, &[DeviceSpec::Netmap], 1);
    let task = spawn_app(&mut machine, config);
    let mut nm = NetmapClient::open(&mut machine, task).expect("open netmap");
    let start = machine.now_ns();
    let mut sent = 0u64;
    while sent < total {
        let n = batch
            .min(nm.free_slots(&mut machine).expect("slots"))
            .min((total - sent) as u32);
        if n == 0 {
            nm.poll(&mut machine).expect("poll");
            continue;
        }
        nm.produce(&mut machine, n, 64, 50).expect("produce");
        nm.poll(&mut machine).expect("poll");
        sent += u64::from(n);
    }
    let nic_done = match machine.driver("/dev/netmap").expect("nic") {
        DriverHandle::Netmap(d) => d.borrow().nic_busy_until_ns(),
        _ => unreachable!(),
    };
    let elapsed = nic_done.max(machine.now_ns()) - start;
    sent as f64 / (elapsed as f64 / 1e9) / 1e6
}

/// The wire's theoretical maximum, Mpps.
pub fn netmap_line_rate_mpps() -> f64 {
    line_rate_pps(64) / 1e6
}

// ---------------------------------------------------------------------
// GPU graphics (Figures 3 and 4)
// ---------------------------------------------------------------------

/// Runs a render loop of `frames` frames costing `frame_cost_us` of GPU
/// time each, with [`GL_OPS_PER_FRAME`] extra file operations per frame.
/// Returns FPS.
pub fn graphics_fps(config: Config, frame_cost_us: u32, frames: usize) -> f64 {
    let mut machine = build(config, &[DeviceSpec::gpu()], 1);
    let task = spawn_app(&mut machine, config);
    let drm = DrmClient::open(&mut machine, task).expect("open card0");
    let fb = drm
        .gem_create(&mut machine, 32 * PAGE_SIZE, gem_domain::VRAM)
        .expect("framebuffer");
    let start = machine.now_ns();
    for _ in 0..frames {
        for _ in 0..GL_OPS_PER_FRAME {
            drm.info(&mut machine, info::DEVICE_ID).expect("state query");
        }
        drm.submit_render(&mut machine, frame_cost_us, fb).expect("render");
        drm.wait_idle(&mut machine, fb).expect("throttle");
    }
    frames as f64 / ((machine.now_ns() - start) as f64 / 1e9)
}

/// The OpenGL microbenchmarks of Figure 3: full-screen teapot via Vertex
/// Buffer Objects, Vertex Arrays, and Display Lists, with native-calibrated
/// frame costs.
pub const OPENGL_BENCHES: [(&str, u32); 3] = [
    ("VBO", 5_800),  // ~172 FPS native
    ("VA", 6_500),   // ~153 FPS native
    ("DL", 8_250),   // ~121 FPS native
];

/// The games of Figure 4 with per-resolution frame costs (µs) calibrated to
/// the paper's native FPS.
pub fn game_frame_cost_us(game: &str, resolution_index: usize) -> u32 {
    let native_fps = crate::calib::PAPER_FIG4_NATIVE
        .iter()
        .find(|(name, _)| *name == game)
        .map(|(_, fps)| fps[resolution_index])
        .expect("known game");
    (1e6 / native_fps) as u32
}

/// Figure 4's resolutions.
pub const RESOLUTIONS: [&str; 4] = ["800x600", "1024x768", "1280x1024", "1680x1050"];

// ---------------------------------------------------------------------
// GPU compute (Figures 5 and 6)
// ---------------------------------------------------------------------

/// The OpenCL host program's setup cost (context + program compile) before
/// any file operation reaches the driver, virtual ns.
const OPENCL_SETUP_NS: u64 = 150_000_000;

/// Runs the OpenCL matrix-multiplication benchmark for square matrices of
/// `order`; returns the experiment time in seconds ("the time from when the
/// OpenCL host code sets up the GPU … until when it receives the resulting
/// matrix", §6.1.4).
pub fn opencl_matmul_seconds(config: Config, order: u32) -> f64 {
    let mut machine = build(config, &[DeviceSpec::gpu()], 1);
    let task = spawn_app(&mut machine, config);
    let drm = DrmClient::open(&mut machine, task).expect("open card0");
    let start = machine.now_ns();
    machine.clock().advance(OPENCL_SETUP_NS);
    // Input upload (scaled: the simulation charges copy costs per byte, so
    // a representative window suffices).
    let input_bytes = (u64::from(order) * u64::from(order) * 4).min(256 * 1024);
    let input = drm
        .gem_create(&mut machine, input_bytes.max(PAGE_SIZE), gem_domain::GTT)
        .expect("input bo");
    let staged = machine
        .alloc_buffer(task, input_bytes.max(64))
        .expect("staging");
    drm.gem_pwrite(&mut machine, input, 0, staged, input_bytes.min(8192))
        .expect("upload");
    // Output in VRAM, read back through a mapping (works under data
    // isolation too — mapped buffers are exactly what §4.2 protects).
    let output = drm
        .gem_create(&mut machine, PAGE_SIZE, gem_domain::VRAM)
        .expect("output bo");
    drm.submit_compute(&mut machine, order).expect("dispatch");
    drm.wait_idle(&mut machine, output).expect("wait");
    let map = drm.gem_map(&mut machine, output, PAGE_SIZE).expect("map result");
    let mut result = [0u8; 64];
    machine.read_mem(task, map, &mut result).expect("read result");
    (machine.now_ns() - start) as f64 / 1e9
}

/// Figure 6: `guests` VMs run the order-500 benchmark 5 times each,
/// simultaneously; returns the per-guest experiment time in seconds.
pub fn concurrent_matmul_seconds(guests: usize) -> f64 {
    let mut machine = build(Config::Paradice, &[DeviceSpec::gpu()], guests);
    let mut clients = Vec::new();
    for guest in 0..guests {
        let task = machine.spawn_process(Some(guest)).expect("spawn");
        let drm = DrmClient::open(&mut machine, task).expect("open");
        let bo = drm
            .gem_create(&mut machine, PAGE_SIZE, gem_domain::VRAM)
            .expect("bo");
        clients.push((drm, bo));
    }
    let start = machine.now_ns();
    for _run in 0..5 {
        for (drm, _) in &clients {
            drm.submit_compute(&mut machine, 500).expect("dispatch");
        }
    }
    for (drm, bo) in &clients {
        drm.wait_idle(&mut machine, *bo).expect("wait");
    }
    (machine.now_ns() - start) as f64 / 1e9
}

// ---------------------------------------------------------------------
// Mouse (§6.1.5)
// ---------------------------------------------------------------------

/// Measures the mouse event→read latency the paper measures ("the time from
/// when the mouse event is reported to the device driver to when the read
/// operation issued by the application reaches the driver"). Returns µs.
pub fn mouse_latency_us(config: Config) -> f64 {
    let mut machine = build(config, &[DeviceSpec::Mouse], 1);
    let task = spawn_app(&mut machine, config);
    let fd = machine.open(task, "/dev/input/event0").expect("open mouse");
    machine.fasync(task, fd, true).expect("fasync");
    let buf = machine.alloc_buffer(task, 256).expect("buffer");
    let driver = match machine.driver("/dev/input/event0").expect("mouse") {
        DriverHandle::Input(d) => d,
        _ => unreachable!(),
    };
    let mut samples = Vec::new();
    for i in 0..20 {
        machine.clock().advance(2_000_000); // events every ~2 ms
        machine.mouse_move(1, 0);
        let reported = driver.borrow().last_report_ns().expect("event seen");
        let _ = machine.wait_event(task);
        let _ = machine.poll(task, fd);
        machine.read(task, fd, buf, 64).expect("read");
        let arrived = driver.borrow().last_read_arrival_ns().expect("read seen");
        if i >= 4 {
            samples.push(arrived - reported);
        }
    }
    samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1e3
}

// ---------------------------------------------------------------------
// Camera & speaker (§6.1.6)
// ---------------------------------------------------------------------

/// Streams `frames` camera frames at `width`×`height` MJPG; returns FPS.
pub fn camera_fps(config: Config, width: u32, height: u32, frames: u32) -> f64 {
    let mut machine = build(config, &[DeviceSpec::Camera], 1);
    let task = spawn_app(&mut machine, config);
    let mut cam = v4l::CameraClient::open(&mut machine, task).expect("open camera");
    cam.set_format(&mut machine, width, height).expect("format");
    cam.setup_buffers(&mut machine, 4).expect("buffers");
    for i in 0..4 {
        cam.qbuf(&mut machine, i).expect("qbuf");
    }
    cam.stream_on(&mut machine).expect("stream on");
    let start = machine.now_ns();
    for _ in 0..frames {
        let (index, _) = cam.dqbuf(&mut machine).expect("frame");
        cam.qbuf(&mut machine, index).expect("requeue");
    }
    f64::from(frames) / ((machine.now_ns() - start) as f64 / 1e9)
}

/// Plays `seconds` of 48 kHz stereo audio; returns the playback time in
/// seconds (identical across configs when forwarding hides behind the
/// drain clock).
pub fn audio_playback_seconds(config: Config, seconds: u64) -> f64 {
    let mut machine = build(config, &[DeviceSpec::Audio], 1);
    let task = spawn_app(&mut machine, config);
    let audio = pcm::AudioClient::open(&mut machine, task).expect("open speaker");
    audio.configure(&mut machine, 48_000, 2, 16).expect("configure");
    let bytes = seconds * 48_000 * 4;
    let elapsed = audio.play(&mut machine, bytes).expect("play");
    // Include the final drain, as "finish playing the file" does.
    let drained = match machine.driver("/dev/snd/pcmC0D0p").expect("speaker") {
        DriverHandle::Audio(d) => d.borrow().drained_at_ns(),
        _ => unreachable!(),
    };
    (elapsed + drained.saturating_sub(machine.now_ns())) as f64 / 1e9
}

// ---------------------------------------------------------------------
// No-op forwarding (§6.1.1)
// ---------------------------------------------------------------------

/// Average file-operation forwarding overhead (beyond the syscall and the
/// dispatch) over `ops` cheap operations; returns µs.
pub fn noop_forward_us(transport: TransportMode, ops: u64) -> f64 {
    let config = match transport {
        TransportMode::Interrupts => Config::Paradice,
        TransportMode::Polling { .. } => Config::ParadicePolling,
        TransportMode::Remote { .. } => Config::ParadiceRemote,
    };
    let mut machine = build(config, &[DeviceSpec::Mouse], 1);
    let task = spawn_app(&mut machine, config);
    let fd = machine.open(task, "/dev/input/event0").expect("open");
    for _ in 0..3 {
        let _ = machine.poll(task, fd);
    }
    let overhead = {
        let hv = machine.hv().borrow();
        hv.cost().syscall_ns + hv.cost().backend_dispatch_ns
    };
    let start = machine.now_ns();
    for _ in 0..ops {
        machine.poll(task, fd).expect("poll");
    }
    ((machine.now_ns() - start) / ops - overhead) as f64 / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netmap_native_is_at_line_rate() {
        let rate = netmap_tx_rate(Config::Native, 64, 20_000);
        assert!(rate > 0.98 * netmap_line_rate_mpps(), "rate = {rate}");
    }

    #[test]
    fn graphics_overhead_is_constant_per_frame() {
        // §6.1.3: heavier frames lose a smaller percentage.
        let native_light = graphics_fps(Config::Native, 5_800, 60);
        let paradice_light = graphics_fps(Config::Paradice, 5_800, 60);
        let native_heavy = graphics_fps(Config::Native, 25_000, 60);
        let paradice_heavy = graphics_fps(Config::Paradice, 25_000, 60);
        let light_drop = 1.0 - paradice_light / native_light;
        let heavy_drop = 1.0 - paradice_heavy / native_heavy;
        assert!(light_drop > heavy_drop, "{light_drop} vs {heavy_drop}");
        assert!(light_drop > 0.05 && light_drop < 0.2, "light drop {light_drop}");
    }

    #[test]
    fn opencl_is_compute_dominated() {
        let native = opencl_matmul_seconds(Config::Native, 500);
        let paradice = opencl_matmul_seconds(Config::Paradice, 500);
        assert!((paradice / native - 1.0).abs() < 0.02);
    }

    #[test]
    fn mouse_latency_anchors() {
        let native = mouse_latency_us(Config::Native);
        assert!((37.0..41.0).contains(&native), "native = {native}");
        let assign = mouse_latency_us(Config::Assign);
        assert!((53.0..57.0).contains(&assign), "assign = {assign}");
    }

    #[test]
    fn camera_at_sensor_rate() {
        let fps = camera_fps(Config::Paradice, 1920, 1080, 20);
        assert!((29.0..30.0).contains(&fps), "fps = {fps}");
    }

    #[test]
    fn noop_anchors() {
        let int = noop_forward_us(TransportMode::Interrupts, 200);
        assert!((33.0..37.0).contains(&int), "int = {int}");
        let poll = noop_forward_us(TransportMode::polling_default(), 200);
        assert!((1.5..2.5).contains(&poll), "poll = {poll}");
    }
}
