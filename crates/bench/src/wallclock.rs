//! Real-time measurements of the execution substrate (`--wallclock`).
//!
//! Everything else in this harness reports *virtual* time — what the cost
//! model says the paper's hardware would take. This module is the one
//! place that reports what the reproduction itself actually achieves on
//! real hardware: the same two hot workloads as the fast-path ablation
//! (interactive ioctl, netmap TX) driven through both execution
//! substrates behind the [`Engine`](paradice_hypervisor::Engine) seam:
//!
//! * **wall** — the threaded [`WallEngine`]: frontend here, backend on
//!   its own OS thread, frames over the atomic ring pair, grants through
//!   the lock-free-read sharded table. Its numbers are real ops/sec and
//!   real Mpps.
//! * **virtual** — the [`VirtualEngine`] twin on the cost-charged channel,
//!   reported alongside so the modeled and measured substrates sit in one
//!   file.
//!
//! Both sides run the byte-identical workload through the same grant
//! semantics — the differential gate in `tests/wallclock.rs` holds this
//! equivalence; here we only time it. Results land in
//! `BENCH_wallclock.json` with flat integer metrics so `scripts/check.sh`
//! can sanity-gate them with `grep`/`sed` alone.

use paradice_cvd::exec::{
    run_workload, ExecRun, ScriptedService, VirtualEngine, WallEngine, WorkloadOp,
};
use paradice_cvd::proto::WireOp;
use paradice_devfs::ioc::{iowr, IoctlCmd};
use paradice_hypervisor::{EngineKind, MemOpGrant};
use paradice_mem::GuestVirtAddr;

/// The interactive ioctl: `RADEON_INFO`-shaped — 8 bytes in, 8 bytes out,
/// one grant pair per call.
pub const INTERACTIVE_CMD: IoctlCmd = iowr(b'd', 0x27, 16);

/// Frames per netmap TX batch (`NIOCTXSYNC` after filling 64 slots).
pub const NETMAP_BATCH: u64 = 64;

/// Bytes per netmap slot descriptor visible to the driver.
pub const NETMAP_SLOT_BYTES: u64 = 8;

/// Builds `n` interactive-ioctl operations (distinct buffers, so every
/// call declares and revokes its own grant pair — the slow path the real
/// frontend's grant cache exists to avoid; here it is exactly what we
/// want to time).
pub fn interactive_ops(n: usize) -> Vec<WorkloadOp> {
    (0..n)
        .map(|i| {
            let arg = 0x10_0000 + (i as u64 % 512) * 16;
            WorkloadOp {
                op: WireOp::Ioctl {
                    cmd: INTERACTIVE_CMD,
                    arg,
                },
                grants: vec![
                    MemOpGrant::CopyFromGuest {
                        addr: GuestVirtAddr::new(arg),
                        len: 8,
                    },
                    MemOpGrant::CopyToGuest {
                        addr: GuestVirtAddr::new(arg),
                        len: 8,
                    },
                ],
            }
        })
        .collect()
}

/// Builds `batches` netmap-TX operations: each one `write` covering a
/// 64-slot descriptor batch under a single grant.
pub fn netmap_ops(batches: usize) -> Vec<WorkloadOp> {
    let len = NETMAP_BATCH * NETMAP_SLOT_BYTES;
    (0..batches)
        .map(|i| {
            let addr = 0x20_0000 + (i as u64 % 128) * len;
            WorkloadOp {
                op: WireOp::Write {
                    addr: GuestVirtAddr::new(addr),
                    len,
                },
                grants: vec![MemOpGrant::CopyFromGuest {
                    addr: GuestVirtAddr::new(addr),
                    len,
                }],
            }
        })
        .collect()
}

/// One substrate's numbers for both workloads.
#[derive(Debug, Clone)]
pub struct SubstrateReport {
    /// Which substrate.
    pub kind: EngineKind,
    /// Interactive ioctls completed.
    pub ioctl_ops: u64,
    /// Elapsed on the engine's own clock (real ns for wall, modeled ns
    /// for virtual).
    pub ioctl_elapsed_ns: u64,
    /// Netmap TX batches completed.
    pub netmap_batches: u64,
    /// Elapsed for the netmap workload.
    pub netmap_elapsed_ns: u64,
}

impl SubstrateReport {
    /// Interactive ioctls per second (integer).
    pub fn ioctl_ops_per_sec(&self) -> u64 {
        per_second(self.ioctl_ops, self.ioctl_elapsed_ns)
    }

    /// Netmap TX packets per second (integer).
    pub fn netmap_pps(&self) -> u64 {
        per_second(self.netmap_batches * NETMAP_BATCH, self.netmap_elapsed_ns)
    }

    /// Netmap TX rate in thousandths of Mpps (integer; 1_000 = 1 Mpps).
    pub fn netmap_mpps_x1000(&self) -> u64 {
        self.netmap_pps() / 1_000
    }
}

fn per_second(count: u64, elapsed_ns: u64) -> u64 {
    if elapsed_ns == 0 {
        return 0;
    }
    ((count as u128) * 1_000_000_000 / elapsed_ns as u128) as u64
}

/// The full `--wallclock` result: the threaded substrate and its
/// deterministic twin.
#[derive(Debug, Clone)]
pub struct WallclockRun {
    /// Whether this was the reduced smoke sizing.
    pub smoke: bool,
    /// The threaded wall-clock substrate (real time).
    pub wall: SubstrateReport,
    /// The deterministic virtual twin (modeled time).
    pub virt: SubstrateReport,
}

fn time_workload(kind: EngineKind, ops: &[WorkloadOp]) -> ExecRun {
    let (service, _) = ScriptedService::new();
    match kind {
        EngineKind::Virtual => {
            let mut engine = VirtualEngine::new(service);
            run_workload(&mut engine, "/dev/dri/card0", ops).expect("virtual run")
        }
        EngineKind::Wall => {
            let mut engine = WallEngine::new(service);
            run_workload(&mut engine, "/dev/dri/card0", ops).expect("wall run")
        }
    }
}

fn substrate(kind: EngineKind, ioctls: usize, batches: usize) -> SubstrateReport {
    let ioctl_run = time_workload(kind, &interactive_ops(ioctls));
    let netmap_run = time_workload(kind, &netmap_ops(batches));
    assert_eq!(ioctl_run.responses.len(), ioctls);
    assert_eq!(netmap_run.responses.len(), batches);
    SubstrateReport {
        kind,
        ioctl_ops: ioctls as u64,
        ioctl_elapsed_ns: ioctl_run.elapsed_ns.max(1),
        netmap_batches: batches as u64,
        netmap_elapsed_ns: netmap_run.elapsed_ns.max(1),
    }
}

/// Runs both substrates over both workloads. `smoke` shrinks the op
/// counts for the CI gate; the full sizing is for reported numbers.
pub fn run(smoke: bool) -> WallclockRun {
    let (ioctls, batches) = if smoke { (2_000, 200) } else { (50_000, 5_000) };
    WallclockRun {
        smoke,
        wall: substrate(EngineKind::Wall, ioctls, batches),
        virt: substrate(EngineKind::Virtual, ioctls, batches),
    }
}

/// Renders `BENCH_wallclock.json` (hand-rolled, dependency-free). The
/// gate metrics are flat top-level integers so `scripts/check.sh` can
/// extract them without a JSON parser.
pub fn render_json(run: &WallclockRun) -> String {
    let mut out = String::from("{\n  \"schema\": \"paradice-wallclock/v1\",\n");
    out.push_str(&format!("  \"smoke\": {},\n", run.smoke));
    out.push_str(&format!(
        "  \"wall_interactive_ioctl_ops_per_sec\": {},\n",
        run.wall.ioctl_ops_per_sec()
    ));
    out.push_str(&format!(
        "  \"wall_netmap_tx_pps\": {},\n",
        run.wall.netmap_pps()
    ));
    out.push_str(&format!(
        "  \"wall_netmap_tx_mpps_x1000\": {},\n",
        run.wall.netmap_mpps_x1000()
    ));
    out.push_str("  \"substrates\": [\n");
    let body: Vec<String> = [&run.wall, &run.virt]
        .iter()
        .map(|side| {
            format!(
                "    {{\"substrate\": \"{}\", \"interactive_ioctl\": {{\"ops\": {}, \"elapsed_ns\": {}, \"ops_per_sec\": {}}}, \"netmap_tx\": {{\"batches\": {}, \"frames\": {}, \"elapsed_ns\": {}, \"pps\": {}, \"mpps_x1000\": {}}}}}",
                side.kind,
                side.ioctl_ops,
                side.ioctl_elapsed_ns,
                side.ioctl_ops_per_sec(),
                side.netmap_batches,
                side.netmap_batches * NETMAP_BATCH,
                side.netmap_elapsed_ns,
                side.netmap_pps(),
                side.netmap_mpps_x1000()
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the human-readable summary printed by `--wallclock`.
pub fn render_text(run: &WallclockRun) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "wall-clock substrate ({} ioctls, {} TX batches{}):\n",
        run.wall.ioctl_ops,
        run.wall.netmap_batches,
        if run.smoke { ", smoke sizing" } else { "" }
    ));
    for side in [&run.wall, &run.virt] {
        out.push_str(&format!(
            "  {:<8} interactive-ioctl {:>12} ops/s   netmap-TX {:>8}.{:03} Mpps\n",
            side.kind.to_string(),
            side.ioctl_ops_per_sec(),
            side.netmap_mpps_x1000() / 1_000,
            side.netmap_mpps_x1000() % 1_000,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_positive_rates_on_both_substrates() {
        let run = run(true);
        for side in [&run.wall, &run.virt] {
            assert!(side.ioctl_ops_per_sec() > 0, "{}: ioctl rate", side.kind);
            assert!(side.netmap_pps() > 0, "{}: netmap rate", side.kind);
        }
        let json = render_json(&run);
        assert!(json.contains("\"wall_interactive_ioctl_ops_per_sec\""));
        assert!(json.contains("\"substrate\": \"virtual\""));
        assert!(render_text(&run).contains("interactive-ioctl"));
    }

    #[test]
    fn virtual_twin_matches_the_cost_model_not_the_hardware() {
        // The virtual side's elapsed time is modeled, so it is identical
        // across runs — the determinism the oracle role depends on.
        let a = substrate(EngineKind::Virtual, 100, 10);
        let b = substrate(EngineKind::Virtual, 100, 10);
        assert_eq!(a.ioctl_elapsed_ns, b.ioctl_elapsed_ns);
        assert_eq!(a.netmap_elapsed_ns, b.netmap_elapsed_ns);
    }
}
