//! Deterministic fault injection for the driver VM (paper §7.1, Table 3).
//!
//! The paper's fault-isolation evaluation is an *experiment*: "we injected
//! faults into the device drivers running inside the driver VM" and showed
//! that the driver VM crashes while the guests keep running, after which the
//! driver VM is rebooted and service resumes. This crate supplies the
//! injection machinery for our reproduction.
//!
//! A [`FaultPlan`] is armed with `(kind, trigger)` pairs and consulted by the
//! CVD backend at its dispatch boundary and by the channel layer at delivery
//! time. Everything is driven by the **virtual clock** and a seeded
//! [`SplitMix64`] stream — no wall clock, no global RNG — so a campaign with
//! a fixed seed replays bit-identically.
//!
//! Fault kinds mirror the paper's fault model (driver bugs and a *compromised
//! driver VM*):
//!
//! * [`FaultKind::DriverPanic`] — the driver VM dies mid-dispatch; no
//!   response is ever posted and the VM must be declared failed.
//! * [`FaultKind::DriverOops`] — a recoverable kernel oops: the single
//!   operation fails with `EIO` but the driver VM survives.
//! * [`FaultKind::Hang`] — the dispatch never completes; detection must come
//!   from *outside* the untrusted driver (the frontend watchdog).
//! * [`FaultKind::WildMemOp`] — the compromised driver issues an ungranted
//!   memory hypercall (the §4.1 attack the grant tables exist to stop).
//! * [`FaultKind::MalformedResponse`] / [`FaultKind::TruncatedResponse`] —
//!   the response bytes in the shared page are scrambled / cut short.
//! * [`FaultKind::DropDelivery`] / [`FaultKind::DelayDelivery`] — the
//!   response delivery (interrupt or poll visibility) is lost or late.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A tiny deterministic PRNG (the splitmix64 finalizer), used to derive
/// per-campaign fault plans from a user seed. Deliberately hand-rolled: the
/// simulation must not depend on platform RNGs.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `[0, bound)`. `bound` must be nonzero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        // Modulo bias is irrelevant for campaign scheduling purposes.
        self.next_u64() % bound
    }
}

/// What goes wrong when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// The driver VM kernel panics mid-dispatch: the request is consumed,
    /// no response is posted, and the VM is dead until rebooted.
    DriverPanic,
    /// A contained kernel oops: the current operation fails with `EIO` but
    /// the driver VM keeps servicing later requests.
    DriverOops,
    /// The dispatch never completes (infinite loop / lost interrupt). The
    /// driver posts nothing; only an external watchdog can notice.
    Hang,
    /// The compromised driver issues a memory hypercall with no covering
    /// grant — the attack the hypervisor's runtime checks must block.
    WildMemOp,
    /// The response bytes on the shared page are scrambled into garbage.
    MalformedResponse,
    /// The response bytes are cut short (a partial shared-page write).
    TruncatedResponse,
    /// The response delivery is dropped: bytes never become visible to the
    /// frontend, as if the completion interrupt was lost.
    DropDelivery,
    /// The response delivery is late by the plan's configured delay.
    DelayDelivery,
}

impl FaultKind {
    /// Every fault kind, in a stable order (campaign matrices index this).
    pub const ALL: [FaultKind; 8] = [
        FaultKind::DriverPanic,
        FaultKind::DriverOops,
        FaultKind::Hang,
        FaultKind::WildMemOp,
        FaultKind::MalformedResponse,
        FaultKind::TruncatedResponse,
        FaultKind::DropDelivery,
        FaultKind::DelayDelivery,
    ];

    /// Stable lowercase name (trace events, campaign reports).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::DriverPanic => "driver-panic",
            FaultKind::DriverOops => "driver-oops",
            FaultKind::Hang => "hang",
            FaultKind::WildMemOp => "wild-mem-op",
            FaultKind::MalformedResponse => "malformed-response",
            FaultKind::TruncatedResponse => "truncated-response",
            FaultKind::DropDelivery => "drop-delivery",
            FaultKind::DelayDelivery => "delay-delivery",
        }
    }

    /// `true` for faults after which the driver VM cannot continue and must
    /// be rebooted ([`FaultKind::DriverPanic`], [`FaultKind::Hang`],
    /// [`FaultKind::WildMemOp`]). The wire-level faults corrupt one response
    /// but leave the driver itself running.
    pub fn kills_driver_vm(self) -> bool {
        matches!(
            self,
            FaultKind::DriverPanic | FaultKind::Hang | FaultKind::WildMemOp
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// When an armed fault fires. All triggers are deterministic functions of
/// the dispatch stream and the virtual clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// Fire at the first dispatch at or after virtual time `ns`.
    AtTime {
        /// Virtual-clock threshold, nanoseconds.
        ns: u64,
    },
    /// Fire on the `nth` dispatch (0-based) of the named operation
    /// (`"open"`, `"read"`, `"ioctl"`, …).
    OnOp {
        /// Operation name as reported by the backend dispatcher.
        op: String,
        /// 0-based occurrence index.
        nth: u64,
    },
    /// Fire on the `n`th dispatch overall (0-based), regardless of op.
    OnNthDispatch {
        /// 0-based global dispatch index.
        n: u64,
    },
}

#[derive(Debug, Clone)]
struct ArmedFault {
    kind: FaultKind,
    trigger: Trigger,
    fired: bool,
}

/// One fired fault, for reports and assertions: virtual time, kind, and the
/// operation being dispatched when it fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// Virtual time at the dispatch that tripped the fault.
    pub t_ns: u64,
    /// What fired.
    pub kind: FaultKind,
    /// The operation being dispatched.
    pub op: String,
}

/// A deterministic injection schedule consulted at the backend-dispatch
/// boundary. Each armed fault fires at most once; at most one fault fires
/// per dispatch (the first armed entry whose trigger matches, in arming
/// order).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    armed: Vec<ArmedFault>,
    dispatches: u64,
    op_counts: BTreeMap<String, u64>,
    delay_ns: u64,
    fired: Vec<FiredFault>,
}

/// Default extra latency of a [`FaultKind::DelayDelivery`] fault: 100 ms of
/// virtual time, far beyond any per-op deadline.
pub const DEFAULT_DELAY_NS: u64 = 100_000_000;

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan {
            delay_ns: DEFAULT_DELAY_NS,
            ..FaultPlan::default()
        }
    }

    /// Arms one fault. Order matters: the first matching armed fault wins
    /// when several could fire on the same dispatch.
    pub fn arm(&mut self, kind: FaultKind, trigger: Trigger) {
        self.armed.push(ArmedFault {
            kind,
            trigger,
            fired: false,
        });
    }

    /// Sets the extra latency applied by [`FaultKind::DelayDelivery`].
    pub fn set_delay_ns(&mut self, delay_ns: u64) {
        self.delay_ns = delay_ns;
    }

    /// Extra latency applied by [`FaultKind::DelayDelivery`].
    pub fn delay_ns(&self) -> u64 {
        self.delay_ns
    }

    /// Consulted by the backend once per dispatch, *before* executing the
    /// operation. Updates the deterministic dispatch counters and returns
    /// the fault to inject, if any armed trigger matches.
    pub fn on_dispatch(&mut self, op: &str, now_ns: u64) -> Option<FaultKind> {
        let nth_overall = self.dispatches;
        self.dispatches += 1;
        let nth_of_op = {
            let count = self.op_counts.entry(op.to_owned()).or_insert(0);
            let nth = *count;
            *count += 1;
            nth
        };
        let hit = self.armed.iter_mut().find(|armed| {
            !armed.fired
                && match &armed.trigger {
                    Trigger::AtTime { ns } => now_ns >= *ns,
                    Trigger::OnOp { op: want, nth } => want == op && nth_of_op == *nth,
                    Trigger::OnNthDispatch { n } => nth_overall == *n,
                }
        })?;
        hit.fired = true;
        let kind = hit.kind;
        self.fired.push(FiredFault {
            t_ns: now_ns,
            kind,
            op: op.to_owned(),
        });
        Some(kind)
    }

    /// Every fault that has fired, in firing order.
    pub fn fired(&self) -> &[FiredFault] {
        &self.fired
    }

    /// Number of armed faults that have not fired yet.
    pub fn pending(&self) -> usize {
        self.armed.iter().filter(|a| !a.fired).count()
    }

    /// Total dispatches observed.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.gen_range(13) < 13);
        }
    }

    #[test]
    fn on_op_trigger_counts_occurrences() {
        let mut plan = FaultPlan::new();
        plan.arm(
            FaultKind::DriverPanic,
            Trigger::OnOp {
                op: "read".to_owned(),
                nth: 1,
            },
        );
        assert_eq!(plan.on_dispatch("read", 10), None); // 0th read
        assert_eq!(plan.on_dispatch("write", 20), None);
        assert_eq!(plan.on_dispatch("read", 30), Some(FaultKind::DriverPanic));
        // Single-shot: never fires again.
        assert_eq!(plan.on_dispatch("read", 40), None);
        assert_eq!(plan.fired().len(), 1);
        assert_eq!(plan.fired()[0].t_ns, 30);
        assert_eq!(plan.fired()[0].op, "read");
    }

    #[test]
    fn at_time_trigger_fires_on_first_dispatch_past_threshold() {
        let mut plan = FaultPlan::new();
        plan.arm(FaultKind::Hang, Trigger::AtTime { ns: 100 });
        assert_eq!(plan.on_dispatch("ioctl", 99), None);
        assert_eq!(plan.on_dispatch("ioctl", 100), Some(FaultKind::Hang));
        assert_eq!(plan.on_dispatch("ioctl", 500), None);
    }

    #[test]
    fn nth_dispatch_trigger_is_global() {
        let mut plan = FaultPlan::new();
        plan.arm(FaultKind::DriverOops, Trigger::OnNthDispatch { n: 2 });
        assert_eq!(plan.on_dispatch("open", 0), None);
        assert_eq!(plan.on_dispatch("read", 0), None);
        assert_eq!(plan.on_dispatch("poll", 0), Some(FaultKind::DriverOops));
        assert_eq!(plan.dispatches(), 3);
    }

    #[test]
    fn one_fault_per_dispatch_in_arming_order() {
        let mut plan = FaultPlan::new();
        plan.arm(FaultKind::DriverOops, Trigger::OnNthDispatch { n: 0 });
        plan.arm(FaultKind::DriverPanic, Trigger::OnNthDispatch { n: 0 });
        assert_eq!(plan.on_dispatch("read", 0), Some(FaultKind::DriverOops));
        // The second armed fault's trigger (dispatch 0) can no longer match.
        assert_eq!(plan.on_dispatch("read", 0), None);
        assert_eq!(plan.pending(), 1);
    }

    #[test]
    fn kills_driver_vm_classification() {
        assert!(FaultKind::DriverPanic.kills_driver_vm());
        assert!(FaultKind::Hang.kills_driver_vm());
        assert!(FaultKind::WildMemOp.kills_driver_vm());
        assert!(!FaultKind::DriverOops.kills_driver_vm());
        assert!(!FaultKind::MalformedResponse.kills_driver_vm());
        assert!(!FaultKind::DelayDelivery.kills_driver_vm());
    }

    #[test]
    fn all_names_are_distinct() {
        let mut names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultKind::ALL.len());
    }
}
