//! Driver memory operations on process memory — the wrapper-stub seam.
//!
//! When servicing a file operation, a driver performs two kinds of memory
//! operations on the calling process (paper §2.1): *copying* a kernel buffer
//! to/from process memory (`copy_to_user`/`copy_from_user`) and *mapping* a
//! system or device page into the process address space (`vm_insert_pfn` and
//! friends, used by `mmap` and its page-fault handler).
//!
//! Paradice supports **unmodified drivers** by intercepting exactly these
//! kernel functions with wrapper stubs and redirecting them to the hypervisor
//! when the current thread is executing a guest's file operation (paper §3.1,
//! §5.2 — 13 wrapped Linux kernel functions). Our equivalent of that seam is
//! the [`MemOps`] trait: drivers only ever touch process memory through it.
//!
//! * In **native** and **device-assignment** modes it is bound to the local
//!   process address space (plain memory access).
//! * In **Paradice** mode the CVD backend binds it to hypercalls, where every
//!   operation is validated against the grants declared by the frontend
//!   (§4.1) before it executes.

use paradice_mem::{Access, GuestVirtAddr};

use crate::errno::Errno;

/// Process-memory operations available to a driver while it services a file
/// operation.
///
/// The physical frame numbers passed to [`MemOps::insert_pfn`] are in the
/// *caller's* physical address space: host-physical in native mode,
/// driver-VM-physical under Paradice (the hypervisor translates).
pub trait MemOps {
    /// Copies `buf.len()` bytes from process memory at `src` into `buf`.
    ///
    /// # Errors
    ///
    /// `EFAULT` if `src` is unmapped, or (under Paradice) if the operation
    /// was not declared in the grant table.
    fn copy_from_user(&mut self, src: GuestVirtAddr, buf: &mut [u8]) -> Result<(), Errno>;

    /// Copies `buf` into process memory at `dst`.
    ///
    /// # Errors
    ///
    /// `EFAULT` if `dst` is unmapped or the operation is ungranted.
    fn copy_to_user(&mut self, dst: GuestVirtAddr, buf: &[u8]) -> Result<(), Errno>;

    /// Maps the caller-physical frame `pfn` into the process address space at
    /// `va` — the `vm_insert_pfn` wrapper stub.
    ///
    /// # Errors
    ///
    /// `EFAULT` if the mapping is ungranted or the page tables cannot be
    /// fixed; `EINVAL` for a misaligned `va`.
    fn insert_pfn(&mut self, va: GuestVirtAddr, pfn: u64, access: Access) -> Result<(), Errno>;

    /// Removes a mapping previously installed with [`MemOps::insert_pfn`] —
    /// the `zap_vma_ptes` wrapper stub.
    ///
    /// # Errors
    ///
    /// `EFAULT` if the teardown fails.
    fn zap_pfn(&mut self, va: GuestVirtAddr) -> Result<(), Errno>;

    /// Convenience: copies a little-endian `u64` from process memory.
    ///
    /// # Errors
    ///
    /// As [`MemOps::copy_from_user`].
    fn read_user_u64(&mut self, src: GuestVirtAddr) -> Result<u64, Errno> {
        let mut buf = [0u8; 8];
        self.copy_from_user(src, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Convenience: copies a little-endian `u64` into process memory.
    ///
    /// # Errors
    ///
    /// As [`MemOps::copy_to_user`].
    fn write_user_u64(&mut self, dst: GuestVirtAddr, value: u64) -> Result<(), Errno> {
        self.copy_to_user(dst, &value.to_le_bytes())
    }

    /// Convenience: copies a little-endian `u32` from process memory.
    ///
    /// # Errors
    ///
    /// As [`MemOps::copy_from_user`].
    fn read_user_u32(&mut self, src: GuestVirtAddr) -> Result<u32, Errno> {
        let mut buf = [0u8; 4];
        self.copy_from_user(src, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Convenience: copies a little-endian `u32` into process memory.
    ///
    /// # Errors
    ///
    /// As [`MemOps::copy_to_user`].
    fn write_user_u32(&mut self, dst: GuestVirtAddr, value: u32) -> Result<(), Errno> {
        self.copy_to_user(dst, &value.to_le_bytes())
    }
}

/// A flat-buffer [`MemOps`] for driver unit tests: "process memory" is a
/// plain byte vector starting at virtual address 0, and `insert_pfn` records
/// the mappings it was asked for.
///
/// # Example
///
/// ```
/// use paradice_devfs::memops::{BufferMemOps, MemOps};
/// use paradice_mem::GuestVirtAddr;
///
/// # fn main() -> Result<(), paradice_devfs::Errno> {
/// let mut mem = BufferMemOps::new(4096);
/// mem.write_user_u64(GuestVirtAddr::new(16), 7)?;
/// assert_eq!(mem.read_user_u64(GuestVirtAddr::new(16))?, 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct BufferMemOps {
    bytes: Vec<u8>,
    mappings: Vec<(GuestVirtAddr, u64, Access)>,
}

impl BufferMemOps {
    /// Creates a buffer-backed process space of `len` bytes.
    pub fn new(len: usize) -> Self {
        BufferMemOps {
            bytes: vec![0u8; len],
            mappings: Vec::new(),
        }
    }

    /// The `insert_pfn` calls recorded so far, in order.
    pub fn mappings(&self) -> &[(GuestVirtAddr, u64, Access)] {
        &self.mappings
    }

    /// Direct access to the underlying bytes (test assertions).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Direct mutable access to the underlying bytes (test setup).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    fn range(&self, addr: GuestVirtAddr, len: usize) -> Result<std::ops::Range<usize>, Errno> {
        let start = addr.raw() as usize;
        let end = start.checked_add(len).ok_or(Errno::Efault)?;
        if end > self.bytes.len() {
            return Err(Errno::Efault);
        }
        Ok(start..end)
    }
}

impl MemOps for BufferMemOps {
    fn copy_from_user(&mut self, src: GuestVirtAddr, buf: &mut [u8]) -> Result<(), Errno> {
        let range = self.range(src, buf.len())?;
        buf.copy_from_slice(&self.bytes[range]);
        Ok(())
    }

    fn copy_to_user(&mut self, dst: GuestVirtAddr, buf: &[u8]) -> Result<(), Errno> {
        let range = self.range(dst, buf.len())?;
        self.bytes[range].copy_from_slice(buf);
        Ok(())
    }

    fn insert_pfn(&mut self, va: GuestVirtAddr, pfn: u64, access: Access) -> Result<(), Errno> {
        if !va.is_page_aligned() {
            return Err(Errno::Einval);
        }
        self.mappings.push((va, pfn, access));
        Ok(())
    }

    fn zap_pfn(&mut self, va: GuestVirtAddr) -> Result<(), Errno> {
        let before = self.mappings.len();
        self.mappings.retain(|&(mapped, _, _)| mapped != va);
        if self.mappings.len() == before {
            return Err(Errno::Efault);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_roundtrip() {
        let mut mem = BufferMemOps::new(128);
        mem.copy_to_user(GuestVirtAddr::new(10), b"abc").unwrap();
        let mut buf = [0u8; 3];
        mem.copy_from_user(GuestVirtAddr::new(10), &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
    }

    #[test]
    fn out_of_range_is_efault() {
        let mut mem = BufferMemOps::new(16);
        assert_eq!(
            mem.copy_to_user(GuestVirtAddr::new(15), &[0, 0]),
            Err(Errno::Efault)
        );
        let mut buf = [0u8; 1];
        assert_eq!(
            mem.copy_from_user(GuestVirtAddr::new(16), &mut buf),
            Err(Errno::Efault)
        );
    }

    #[test]
    fn scalar_helpers() {
        let mut mem = BufferMemOps::new(64);
        mem.write_user_u32(GuestVirtAddr::new(0), 0x1234_5678).unwrap();
        assert_eq!(mem.read_user_u32(GuestVirtAddr::new(0)).unwrap(), 0x1234_5678);
        mem.write_user_u64(GuestVirtAddr::new(8), u64::MAX).unwrap();
        assert_eq!(mem.read_user_u64(GuestVirtAddr::new(8)).unwrap(), u64::MAX);
    }

    #[test]
    fn insert_and_zap_pfn() {
        let mut mem = BufferMemOps::new(0);
        let va = GuestVirtAddr::new(0x1000);
        mem.insert_pfn(va, 42, Access::RW).unwrap();
        assert_eq!(mem.mappings(), &[(va, 42, Access::RW)]);
        mem.zap_pfn(va).unwrap();
        assert!(mem.mappings().is_empty());
        assert_eq!(mem.zap_pfn(va), Err(Errno::Efault));
    }

    #[test]
    fn misaligned_insert_rejected() {
        let mut mem = BufferMemOps::new(0);
        assert_eq!(
            mem.insert_pfn(GuestVirtAddr::new(0x1001), 1, Access::READ),
            Err(Errno::Einval)
        );
    }
}
