//! Device information exported to user space.
//!
//! "To correctly access an I/O device, an application may need to know the
//! exact make, model or functional capabilities of the device. For example,
//! the X Server needs to know the GPU make in order to load the correct
//! libraries. As such, the kernel collects this information and exports it to
//! the user space, e.g., through the /sys directory in Linux, and through the
//! /dev/pci file in FreeBSD" (paper §2.1).
//!
//! Paradice re-exports this information into guests with tiny *device info
//! modules* (~100 LoC each, §5.1); the CVD crate builds those modules out of
//! the [`PciDeviceInfo`] records defined here.

use std::fmt;

/// The I/O device classes our Paradice reproduction supports (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum DeviceClass {
    /// Graphics processing unit (DRM).
    Gpu,
    /// Input device: mouse, keyboard (evdev).
    Input,
    /// Camera (V4L2/UVC).
    Camera,
    /// Audio device (PCM).
    Audio,
    /// Ethernet for the netmap framework.
    Net,
}

impl DeviceClass {
    /// All supported classes, in Table 1 order.
    pub const ALL: [DeviceClass; 5] = [
        DeviceClass::Gpu,
        DeviceClass::Input,
        DeviceClass::Camera,
        DeviceClass::Audio,
        DeviceClass::Net,
    ];

    /// Conventional device-file directory for the class.
    pub const fn dev_path_prefix(self) -> &'static str {
        match self {
            DeviceClass::Gpu => "/dev/dri",
            DeviceClass::Input => "/dev/input",
            DeviceClass::Camera => "/dev",
            DeviceClass::Audio => "/dev/snd",
            DeviceClass::Net => "/dev",
        }
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DeviceClass::Gpu => "GPU",
            DeviceClass::Input => "Input",
            DeviceClass::Camera => "Camera",
            DeviceClass::Audio => "Audio",
            DeviceClass::Net => "Ethernet",
        };
        f.write_str(name)
    }
}

/// PCI configuration identity of a device, the minimum applications need to
/// pick libraries and drivers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PciDeviceInfo {
    /// PCI vendor ID (e.g. `0x1002` = AMD/ATI).
    pub vendor_id: u16,
    /// PCI device ID (e.g. `0x6779` = Radeon HD 6450).
    pub device_id: u16,
    /// PCI class code (`0x0300` display, `0x0200` network, …).
    pub class_code: u16,
    /// Subsystem vendor ID.
    pub subsystem_vendor: u16,
    /// Subsystem device ID.
    pub subsystem_device: u16,
    /// Revision.
    pub revision: u8,
    /// Marketing name, as `/sys` would reveal via the driver.
    pub model_name: String,
    /// The device class this info belongs to.
    pub class: DeviceClass,
}

impl PciDeviceInfo {
    /// The `vendor:device` string in lspci style (`"1002:6779"`).
    pub fn pci_id(&self) -> String {
        format!("{:04x}:{:04x}", self.vendor_id, self.device_id)
    }
}

impl fmt::Display for PciDeviceInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] ({})", self.model_name, self.pci_id(), self.class)
    }
}

/// Well-known identities used throughout the tests and benchmarks, matching
/// the paper's evaluation hardware (Table 1).
pub mod known {
    use super::{DeviceClass, PciDeviceInfo};

    /// Discrete ATI Radeon HD 6450 (Evergreen/Caicos).
    pub fn radeon_hd6450() -> PciDeviceInfo {
        PciDeviceInfo {
            vendor_id: 0x1002,
            device_id: 0x6779,
            class_code: 0x0300,
            subsystem_vendor: 0x1028,
            subsystem_device: 0x2120,
            revision: 0,
            model_name: "ATI Radeon HD 6450".to_owned(),
            class: DeviceClass::Gpu,
        }
    }

    /// Integrated Intel Mobile GM965/GL960 (Table 1's second GPU make).
    pub fn intel_gm965() -> PciDeviceInfo {
        PciDeviceInfo {
            vendor_id: 0x8086,
            device_id: 0x2a02,
            class_code: 0x0300,
            subsystem_vendor: 0x17aa,
            subsystem_device: 0x20b5,
            revision: 0x0c,
            model_name: "Intel Mobile GM965/GL960".to_owned(),
            class: DeviceClass::Gpu,
        }
    }

    /// Dell USB mouse.
    pub fn dell_usb_mouse() -> PciDeviceInfo {
        PciDeviceInfo {
            vendor_id: 0x413c,
            device_id: 0x3012,
            class_code: 0x0900,
            subsystem_vendor: 0,
            subsystem_device: 0,
            revision: 0,
            model_name: "Dell USB Mouse".to_owned(),
            class: DeviceClass::Input,
        }
    }

    /// Dell USB keyboard.
    pub fn dell_usb_keyboard() -> PciDeviceInfo {
        PciDeviceInfo {
            vendor_id: 0x413c,
            device_id: 0x2107,
            class_code: 0x0900,
            subsystem_vendor: 0,
            subsystem_device: 0,
            revision: 0,
            model_name: "Dell USB Keyboard".to_owned(),
            class: DeviceClass::Input,
        }
    }

    /// Logitech HD Pro Webcam C920.
    pub fn logitech_c920() -> PciDeviceInfo {
        PciDeviceInfo {
            vendor_id: 0x046d,
            device_id: 0x082d,
            class_code: 0x0e00,
            subsystem_vendor: 0,
            subsystem_device: 0,
            revision: 0,
            model_name: "Logitech HD Pro Webcam C920".to_owned(),
            class: DeviceClass::Camera,
        }
    }

    /// Intel Panther Point HD Audio Controller.
    pub fn intel_hda() -> PciDeviceInfo {
        PciDeviceInfo {
            vendor_id: 0x8086,
            device_id: 0x1e20,
            class_code: 0x0403,
            subsystem_vendor: 0x1849,
            subsystem_device: 0x1898,
            revision: 4,
            model_name: "Intel Panther Point HD Audio Controller".to_owned(),
            class: DeviceClass::Audio,
        }
    }

    /// Intel Gigabit Network Adapter (e1000e class).
    pub fn intel_gigabit() -> PciDeviceInfo {
        PciDeviceInfo {
            vendor_id: 0x8086,
            device_id: 0x10d3,
            class_code: 0x0200,
            subsystem_vendor: 0x8086,
            subsystem_device: 0xa01f,
            revision: 0,
            model_name: "Intel Gigabit Network Adapter".to_owned(),
            class: DeviceClass::Net,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pci_id_formatting() {
        let gpu = known::radeon_hd6450();
        assert_eq!(gpu.pci_id(), "1002:6779");
        assert_eq!(gpu.class, DeviceClass::Gpu);
    }

    #[test]
    fn display_is_informative() {
        let s = known::intel_gigabit().to_string();
        assert!(s.contains("Intel Gigabit"));
        assert!(s.contains("8086:10d3"));
        assert!(s.contains("Ethernet"));
    }

    #[test]
    fn all_classes_enumerated() {
        assert_eq!(DeviceClass::ALL.len(), 5);
        assert_eq!(DeviceClass::Gpu.dev_path_prefix(), "/dev/dri");
    }

    #[test]
    fn known_devices_cover_every_class() {
        let infos = [
            known::radeon_hd6450(),
            known::dell_usb_mouse(),
            known::logitech_c920(),
            known::intel_hda(),
            known::intel_gigabit(),
        ];
        let mut classes: Vec<DeviceClass> = infos.iter().map(|i| i.class).collect();
        classes.sort();
        classes.dedup();
        assert_eq!(classes.len(), 5);
    }
}
