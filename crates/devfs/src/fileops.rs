//! File operations: the interface device drivers expose through device files.
//!
//! The commonly used operations are `read`, `write`, `poll`, `ioctl` and
//! `mmap` (with its supporting page-fault handler), plus `fasync` for
//! asynchronous notification (paper §2.1). These operations "have been part
//! of Linux since the early days and have seen almost no changes" (§3.2.2) —
//! which is precisely why they make a durable paravirtualization boundary.
//!
//! Drivers implement [`FileOps`]; all process-memory access inside an
//! operation goes through the [`MemOps`] argument (the
//! wrapper-stub seam). Unimplemented operations default to `ENOSYS`/`EINVAL`
//! like their kernel counterparts.

use std::fmt;

use paradice_mem::{Access, GuestVirtAddr};

use crate::errno::Errno;
use crate::ioc::IoctlCmd;
use crate::memops::MemOps;
use crate::registry::FileHandleId;

/// Identifies a process/thread issuing file operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Flags supplied at `open` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Non-blocking I/O: operations return `EAGAIN` instead of sleeping.
    pub nonblock: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        nonblock: false,
    };
    /// `O_WRONLY`.
    pub const WRONLY: OpenFlags = OpenFlags {
        read: false,
        write: true,
        nonblock: false,
    };
    /// `O_RDWR`.
    pub const RDWR: OpenFlags = OpenFlags {
        read: true,
        write: true,
        nonblock: false,
    };

    /// Returns a copy with the non-blocking bit set.
    pub const fn nonblocking(mut self) -> OpenFlags {
        self.nonblock = true;
        self
    }
}

impl Default for OpenFlags {
    fn default() -> Self {
        OpenFlags::RDWR
    }
}

/// Per-call context handed to every file operation: who is calling on which
/// open file description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpenContext {
    /// The open file description the operation targets.
    pub handle: FileHandleId,
    /// The calling process.
    pub task: TaskId,
    /// Flags the file was opened with.
    pub flags: OpenFlags,
}

/// A user-space buffer argument to `read`/`write`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UserBuffer {
    /// Start of the buffer in the process address space.
    pub addr: GuestVirtAddr,
    /// Buffer length in bytes.
    pub len: u64,
}

impl UserBuffer {
    /// Creates a buffer descriptor.
    pub const fn new(addr: GuestVirtAddr, len: u64) -> Self {
        UserBuffer { addr, len }
    }
}

/// An `mmap` request: map `len` bytes of device offset `offset` at process
/// virtual address `va` with `access` rights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MmapRange {
    /// Page-aligned start of the mapping in the process address space.
    pub va: GuestVirtAddr,
    /// Length in bytes (whole pages).
    pub len: u64,
    /// Byte offset into the device's mappable space; drivers use this to
    /// select which object is being mapped (GEM mmap offsets, netmap rings).
    pub offset: u64,
    /// Requested access.
    pub access: Access,
}

/// Readiness events returned by `poll`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct PollEvents(u16);

impl PollEvents {
    /// No events.
    pub const NONE: PollEvents = PollEvents(0);
    /// Data available to read (`POLLIN`).
    pub const IN: PollEvents = PollEvents(0x1);
    /// Writable without blocking (`POLLOUT`).
    pub const OUT: PollEvents = PollEvents(0x4);
    /// Error condition (`POLLERR`).
    pub const ERR: PollEvents = PollEvents(0x8);
    /// Hang-up (`POLLHUP`).
    pub const HUP: PollEvents = PollEvents(0x10);

    /// Union of two event sets.
    pub const fn union(self, other: PollEvents) -> PollEvents {
        PollEvents(self.0 | other.0)
    }

    /// Whether every event in `other` is present.
    pub const fn contains(self, other: PollEvents) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no events are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Raw bit representation.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Builds a set from raw bits.
    pub const fn from_bits(bits: u16) -> PollEvents {
        PollEvents(bits)
    }
}

impl std::ops::BitOr for PollEvents {
    type Output = PollEvents;

    fn bitor(self, rhs: PollEvents) -> PollEvents {
        self.union(rhs)
    }
}

impl fmt::Debug for PollEvents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("PollEvents(none)");
        }
        let mut parts = Vec::new();
        if self.contains(PollEvents::IN) {
            parts.push("IN");
        }
        if self.contains(PollEvents::OUT) {
            parts.push("OUT");
        }
        if self.contains(PollEvents::ERR) {
            parts.push("ERR");
        }
        if self.contains(PollEvents::HUP) {
            parts.push("HUP");
        }
        write!(f, "PollEvents({})", parts.join("|"))
    }
}

/// The kinds of file operations a kernel's `file_operations` table can hold.
///
/// The CVD keeps "the list of all possible file operations based on the …
/// kernel" (paper §5.1: supporting a new Linux version took 14 LoC of list
/// updates). OS personalities in the core crate expose per-version lists of
/// these kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum FileOpKind {
    /// `open`.
    Open,
    /// `release` (close).
    Release,
    /// `read`.
    Read,
    /// `write`.
    Write,
    /// `unlocked_ioctl`.
    Ioctl,
    /// `compat_ioctl` (32-bit compatibility entry point).
    CompatIoctl,
    /// `mmap`.
    Mmap,
    /// The VM-area page-fault handler backing `mmap`.
    Fault,
    /// `poll`.
    Poll,
    /// `fasync`.
    Fasync,
    /// `flush`.
    Flush,
    /// `llseek`.
    Llseek,
    /// `fsync`.
    Fsync,
    /// `fallocate` (added to `file_operations` in Linux 3.x).
    Fallocate,
}

/// The driver-side interface of a device file.
///
/// Default method bodies mirror the kernel's behaviour for a NULL
/// `file_operations` slot: `ENOSYS`-style failures, successful no-op
/// open/release.
#[allow(unused_variables)]
pub trait FileOps {
    /// Human-readable driver name (`"drm/radeon"`, `"evdev"`).
    fn driver_name(&self) -> &str;

    /// Called when a process opens the device file.
    ///
    /// # Errors
    ///
    /// Driver-specific; `EBUSY` for exhausted exclusive devices.
    fn open(&mut self, ctx: OpenContext) -> Result<(), Errno> {
        Ok(())
    }

    /// Called when the last reference to an open file is dropped.
    ///
    /// # Errors
    ///
    /// Driver-specific.
    fn release(&mut self, ctx: OpenContext) -> Result<(), Errno> {
        Ok(())
    }

    /// Reads up to `buf.len` bytes into the process buffer; returns the
    /// number of bytes read.
    ///
    /// # Errors
    ///
    /// `EINVAL` if the driver has no read path; `EAGAIN` for empty
    /// non-blocking reads.
    fn read(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        buf: UserBuffer,
    ) -> Result<u64, Errno> {
        Err(Errno::Einval)
    }

    /// Writes up to `buf.len` bytes from the process buffer; returns the
    /// number of bytes written.
    ///
    /// # Errors
    ///
    /// `EINVAL` if the driver has no write path.
    fn write(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        buf: UserBuffer,
    ) -> Result<u64, Errno> {
        Err(Errno::Einval)
    }

    /// Handles a driver-specific command; `arg` is the untyped pointer (or
    /// scalar) argument.
    ///
    /// # Errors
    ///
    /// `ENOTTY` for unknown commands, by convention.
    fn ioctl(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        cmd: IoctlCmd,
        arg: u64,
    ) -> Result<i64, Errno> {
        Err(Errno::Enotty)
    }

    /// Establishes a mapping of device/driver memory into the process.
    ///
    /// Drivers may install pages eagerly (via [`MemOps::insert_pfn`]) or
    /// lazily from [`FileOps::fault`].
    ///
    /// # Errors
    ///
    /// `ENOSYS` (here: `ENODEV`-style `EINVAL` in real kernels) when the
    /// driver does not support `mmap`.
    fn mmap(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        range: MmapRange,
    ) -> Result<(), Errno> {
        Err(Errno::Enosys)
    }

    /// Page-fault handler for lazily populated mappings; `va` is the
    /// faulting address inside a range previously accepted by
    /// [`FileOps::mmap`].
    ///
    /// # Errors
    ///
    /// `EFAULT` (SIGBUS in the kernel) if the address has no backing.
    fn fault(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        va: GuestVirtAddr,
    ) -> Result<(), Errno> {
        Err(Errno::Efault)
    }

    /// Reports I/O readiness.
    ///
    /// # Errors
    ///
    /// Driver-specific; the default claims always-ready (like a missing poll
    /// slot in the kernel).
    fn poll(&mut self, ctx: OpenContext) -> Result<PollEvents, Errno> {
        Ok(PollEvents::IN | PollEvents::OUT)
    }

    /// Enables or disables asynchronous notification for this opener.
    ///
    /// # Errors
    ///
    /// `ENOSYS` when the driver has no notification source.
    fn fasync(&mut self, ctx: OpenContext, on: bool) -> Result<(), Errno> {
        Err(Errno::Enosys)
    }

    /// The `munmap` notification: the process unmapped `[va, va+len)`.
    ///
    /// The guest kernel destroys its own page-table entries first; the
    /// driver releases its bookkeeping (paper §5.2). Default: no-op.
    ///
    /// # Errors
    ///
    /// Driver-specific.
    fn munmap(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        va: GuestVirtAddr,
        len: u64,
    ) -> Result<(), Errno> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memops::BufferMemOps;

    struct NullDriver;

    impl FileOps for NullDriver {
        fn driver_name(&self) -> &str {
            "null"
        }
    }

    fn ctx() -> OpenContext {
        OpenContext {
            handle: FileHandleId(1),
            task: TaskId(1),
            flags: OpenFlags::RDWR,
        }
    }

    #[test]
    fn defaults_mirror_missing_kernel_slots() {
        let mut driver = NullDriver;
        let mut mem = BufferMemOps::new(16);
        assert!(driver.open(ctx()).is_ok());
        assert_eq!(
            driver.read(ctx(), &mut mem, UserBuffer::new(GuestVirtAddr::new(0), 4)),
            Err(Errno::Einval)
        );
        assert_eq!(
            driver.ioctl(ctx(), &mut mem, crate::ioc::io(0, 0), 0),
            Err(Errno::Enotty)
        );
        assert_eq!(
            driver.mmap(
                ctx(),
                &mut mem,
                MmapRange {
                    va: GuestVirtAddr::new(0),
                    len: 4096,
                    offset: 0,
                    access: Access::RW,
                }
            ),
            Err(Errno::Enosys)
        );
        assert_eq!(driver.fasync(ctx(), true), Err(Errno::Enosys));
        assert!(driver.release(ctx()).is_ok());
    }

    #[test]
    fn poll_events_algebra() {
        let ev = PollEvents::IN | PollEvents::ERR;
        assert!(ev.contains(PollEvents::IN));
        assert!(!ev.contains(PollEvents::OUT));
        assert!(PollEvents::NONE.is_empty());
        assert_eq!(format!("{:?}", ev), "PollEvents(IN|ERR)");
        assert_eq!(PollEvents::from_bits(ev.bits()), ev);
    }

    #[test]
    fn open_flags_presets() {
        let ro = OpenFlags::RDONLY;
        assert!(ro.read && !ro.write);
        let wo = OpenFlags::WRONLY;
        assert!(!wo.read && wo.write);
        let nb = OpenFlags::RDWR.nonblocking();
        assert!(nb.nonblock && nb.read && nb.write);
    }
}
