//! Unix device-file abstractions: Paradice's paravirtualization boundary.
//!
//! The paper's central observation is that Unix-like OSes abstract most I/O
//! devices behind *device files* and a small, stable set of file operations —
//! `read`, `write`, `ioctl`, `mmap`, `poll`, plus `fasync` for asynchronous
//! notification (§2.1). That boundary is what this crate defines:
//!
//! * [`errno`] — Unix error numbers shared by every layer.
//! * [`ioc`] — the Linux `_IOC` ioctl command encoding, whose embedded
//!   direction/size fields let the CVD frontend derive legitimate memory
//!   operations from a command number alone (§4.1).
//! * [`fileops`] — the [`FileOps`] trait implemented by device drivers, and
//!   the request/argument types for each operation.
//! * [`memops`] — the [`MemOps`] trait, the *wrapper-stub seam*: drivers
//!   perform all process-memory access through it, so the same driver binary
//!   works natively (direct access) and under Paradice (hypervisor calls),
//!   with no driver changes (§3.1, §5.2).
//! * [`registry`] — the `/dev` namespace: device registration, open/release
//!   accounting, exclusive-open devices.
//! * [`fasync`] — asynchronous notification bookkeeping (SIGIO-style).
//! * [`sysinfo`] — the device information the kernel exports to user space
//!   (PCI identity etc.), which Paradice re-exports into guests via device
//!   info modules (§5.1).
//!
//! # Example: deriving memory operations from an ioctl command
//!
//! ```
//! use paradice_devfs::ioc::{iowr, IoctlDir};
//!
//! // A Radeon-style "get info" command carrying a 24-byte struct both ways.
//! let cmd = iowr(b'd', 0x27, 24);
//! assert_eq!(cmd.dir(), IoctlDir::ReadWrite);
//! assert_eq!(cmd.size(), 24);
//! ```

pub mod errno;
pub mod fasync;
pub mod fileops;
pub mod ioc;
pub mod memops;
pub mod registry;
pub mod sysinfo;

pub use errno::Errno;
pub use fasync::{FasyncRegistry, Signal, SignalQueue};
pub use fileops::{FileOps, MmapRange, OpenContext, OpenFlags, PollEvents, TaskId, UserBuffer};
pub use ioc::{IoctlCmd, IoctlDir};
pub use memops::MemOps;
pub use registry::{DevFs, DeviceId, FileHandleId};
pub use sysinfo::{DeviceClass, PciDeviceInfo};
