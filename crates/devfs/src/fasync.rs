//! Asynchronous notification: the `fasync` mechanism.
//!
//! "Instead of using the poll file operation, a process can request to be
//! notified when events happen, e.g., when there is a mouse movement. Linux
//! employs the fasync file operation for setting up the asynchronous
//! notification. When there is an event, the process is notified with a
//! signal" (paper §2.1). Under Paradice the CVD backend forwards these
//! notifications to the frontend over the same shared-page channel used for
//! file operations (§5.1).
//!
//! [`FasyncRegistry`] is the driver-side subscription list (the kernel's
//! `fasync_struct` chain); [`SignalQueue`] is the per-process pending-signal
//! queue the notifications land in.

use std::collections::{BTreeSet, VecDeque};

use crate::fileops::TaskId;
use crate::registry::FileHandleId;

/// A delivered asynchronous notification (SIGIO-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signal {
    /// The process being notified.
    pub task: TaskId,
    /// The open file the notification originated from.
    pub handle: FileHandleId,
}

/// The subscription list one driver keeps for asynchronous notification.
#[derive(Debug, Default)]
pub struct FasyncRegistry {
    subscribers: BTreeSet<(TaskId, FileHandleId)>,
}

impl FasyncRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FasyncRegistry::default()
    }

    /// Subscribes (`on = true`) or unsubscribes an opener. Duplicate
    /// subscribe/unsubscribe calls are no-ops, as in the kernel.
    pub fn set(&mut self, task: TaskId, handle: FileHandleId, on: bool) {
        if on {
            self.subscribers.insert((task, handle));
        } else {
            self.subscribers.remove(&(task, handle));
        }
    }

    /// Returns `true` if the opener is subscribed.
    pub fn is_subscribed(&self, task: TaskId, handle: FileHandleId) -> bool {
        self.subscribers.contains(&(task, handle))
    }

    /// Number of subscribers.
    pub fn len(&self) -> usize {
        self.subscribers.len()
    }

    /// Returns `true` if nobody is subscribed.
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }

    /// Produces the signals a `kill_fasync` on this registry would raise.
    pub fn signals(&self) -> Vec<Signal> {
        self.subscribers
            .iter()
            .map(|&(task, handle)| Signal { task, handle })
            .collect()
    }

    /// Drops every subscription held by `handle` (called from `release`).
    pub fn drop_handle(&mut self, handle: FileHandleId) {
        self.subscribers.retain(|&(_, h)| h != handle);
    }
}

/// A per-process queue of pending signals.
#[derive(Debug, Default)]
pub struct SignalQueue {
    pending: VecDeque<Signal>,
}

impl SignalQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        SignalQueue::default()
    }

    /// Enqueues a signal.
    pub fn push(&mut self, signal: Signal) {
        self.pending.push_back(signal);
    }

    /// Dequeues the oldest pending signal.
    pub fn pop(&mut self) -> Option<Signal> {
        self.pending.pop_front()
    }

    /// Number of pending signals.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no signals are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_and_signal() {
        let mut reg = FasyncRegistry::new();
        reg.set(TaskId(1), FileHandleId(10), true);
        reg.set(TaskId(2), FileHandleId(20), true);
        assert!(reg.is_subscribed(TaskId(1), FileHandleId(10)));
        let signals = reg.signals();
        assert_eq!(signals.len(), 2);
        assert!(signals.contains(&Signal {
            task: TaskId(2),
            handle: FileHandleId(20)
        }));
    }

    #[test]
    fn unsubscribe_is_idempotent() {
        let mut reg = FasyncRegistry::new();
        reg.set(TaskId(1), FileHandleId(10), true);
        reg.set(TaskId(1), FileHandleId(10), true);
        assert_eq!(reg.len(), 1);
        reg.set(TaskId(1), FileHandleId(10), false);
        reg.set(TaskId(1), FileHandleId(10), false);
        assert!(reg.is_empty());
    }

    #[test]
    fn release_drops_handle_subscriptions() {
        let mut reg = FasyncRegistry::new();
        reg.set(TaskId(1), FileHandleId(10), true);
        reg.set(TaskId(1), FileHandleId(11), true);
        reg.drop_handle(FileHandleId(10));
        assert_eq!(reg.len(), 1);
        assert!(reg.is_subscribed(TaskId(1), FileHandleId(11)));
    }

    #[test]
    fn signal_queue_is_fifo() {
        let mut q = SignalQueue::new();
        let a = Signal {
            task: TaskId(1),
            handle: FileHandleId(1),
        };
        let b = Signal {
            task: TaskId(1),
            handle: FileHandleId(2),
        };
        q.push(a);
        q.push(b);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(a));
        assert_eq!(q.pop(), Some(b));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
