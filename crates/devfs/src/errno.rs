//! Unix error numbers.
//!
//! File operations in both Linux and FreeBSD report failures as negative
//! errno values; the CVD forwards them verbatim between VMs, which is part of
//! why the device-file boundary is OS-version stable (paper §3.2.2). Only the
//! errnos our drivers and infrastructure actually produce are modelled.

use std::fmt;

/// A Unix error number, as returned by failed file operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Errno {
    /// Operation not permitted.
    Eperm,
    /// No such file or directory (unknown device path).
    Enoent,
    /// Interrupted system call.
    Eintr,
    /// I/O error (device wedged or DMA fault surfaced to the driver).
    Eio,
    /// Bad file handle.
    Ebadf,
    /// Try again (wait queue full, nonblocking read with no data).
    Eagain,
    /// Out of memory.
    Enomem,
    /// Bad address (memory-operation validation failed — the grant check).
    Efault,
    /// Device or resource busy (exclusive-open violation).
    Ebusy,
    /// No such device.
    Enodev,
    /// Invalid argument.
    Einval,
    /// Inappropriate ioctl for device (unknown command).
    Enotty,
    /// No space left (ring or queue full).
    Enospc,
    /// Function not implemented (file operation the driver lacks).
    Enosys,
    /// Operation not supported.
    Enotsup,
    /// Connection timed out (driver-VM watchdog deadline expired, §7.1).
    Etimedout,
    /// Quota exceeded (per-guest wait-queue cap, paper §5.1).
    Edquot,
}

impl Errno {
    /// The conventional positive error code (Linux x86 numbering).
    pub const fn code(self) -> i32 {
        match self {
            Errno::Eperm => 1,
            Errno::Enoent => 2,
            Errno::Eintr => 4,
            Errno::Eio => 5,
            Errno::Ebadf => 9,
            Errno::Eagain => 11,
            Errno::Enomem => 12,
            Errno::Efault => 14,
            Errno::Ebusy => 16,
            Errno::Enodev => 19,
            Errno::Einval => 22,
            Errno::Enotty => 25,
            Errno::Enospc => 28,
            Errno::Enosys => 38,
            Errno::Enotsup => 95,
            Errno::Etimedout => 110,
            Errno::Edquot => 122,
        }
    }

    /// Parses a positive error code back into an `Errno` (wire decoding in
    /// the CVD, which forwards errnos verbatim between VMs).
    pub const fn from_code(code: i32) -> Option<Errno> {
        Some(match code {
            1 => Errno::Eperm,
            2 => Errno::Enoent,
            4 => Errno::Eintr,
            5 => Errno::Eio,
            9 => Errno::Ebadf,
            11 => Errno::Eagain,
            12 => Errno::Enomem,
            14 => Errno::Efault,
            16 => Errno::Ebusy,
            19 => Errno::Enodev,
            22 => Errno::Einval,
            25 => Errno::Enotty,
            28 => Errno::Enospc,
            38 => Errno::Enosys,
            95 => Errno::Enotsup,
            110 => Errno::Etimedout,
            122 => Errno::Edquot,
            _ => return None,
        })
    }

    /// The conventional symbolic name (`"EFAULT"`, …).
    pub const fn name(self) -> &'static str {
        match self {
            Errno::Eperm => "EPERM",
            Errno::Enoent => "ENOENT",
            Errno::Eintr => "EINTR",
            Errno::Eio => "EIO",
            Errno::Ebadf => "EBADF",
            Errno::Eagain => "EAGAIN",
            Errno::Enomem => "ENOMEM",
            Errno::Efault => "EFAULT",
            Errno::Ebusy => "EBUSY",
            Errno::Enodev => "ENODEV",
            Errno::Einval => "EINVAL",
            Errno::Enotty => "ENOTTY",
            Errno::Enospc => "ENOSPC",
            Errno::Enosys => "ENOSYS",
            Errno::Enotsup => "ENOTSUP",
            Errno::Etimedout => "ETIMEDOUT",
            Errno::Edquot => "EDQUOT",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.code())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_linux_numbering() {
        assert_eq!(Errno::Eperm.code(), 1);
        assert_eq!(Errno::Efault.code(), 14);
        assert_eq!(Errno::Einval.code(), 22);
        assert_eq!(Errno::Enotty.code(), 25);
    }

    #[test]
    fn display_includes_name_and_code() {
        assert_eq!(Errno::Efault.to_string(), "EFAULT (14)");
    }

    #[test]
    fn codes_are_distinct() {
        let all = [
            Errno::Eperm,
            Errno::Enoent,
            Errno::Eintr,
            Errno::Eio,
            Errno::Ebadf,
            Errno::Eagain,
            Errno::Enomem,
            Errno::Efault,
            Errno::Ebusy,
            Errno::Enodev,
            Errno::Einval,
            Errno::Enotty,
            Errno::Enospc,
            Errno::Enosys,
            Errno::Enotsup,
            Errno::Etimedout,
            Errno::Edquot,
        ];
        let mut codes: Vec<i32> = all.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }
}
