//! The Linux `_IOC` ioctl command encoding.
//!
//! Device drivers generate ioctl command numbers with the `_IO`, `_IOR`,
//! `_IOW` and `_IOWR` macros, which pack four fields into 32 bits:
//!
//! ```text
//!  31 30 | 29 .. 16 | 15 .. 8 | 7 .. 0
//!   dir  |   size   |  type   |   nr
//! ```
//!
//! The *direction* says whether the driver copies a parameter struct from
//! user space (`_IOW`), to user space (`_IOR`), or both (`_IOWR`), and *size*
//! is the struct's size. Paradice's fault isolation leans on this: "device
//! drivers often use OS-provided macros to generate ioctl command numbers,
//! which embed the size of these data structures and the direction of the
//! copy" — so the CVD frontend can *parse the command number* and declare the
//! legitimate copy operations without knowing the driver (paper §4.1).

use std::fmt;

const NR_BITS: u32 = 8;
const TYPE_BITS: u32 = 8;
const SIZE_BITS: u32 = 14;

const NR_SHIFT: u32 = 0;
const TYPE_SHIFT: u32 = NR_SHIFT + NR_BITS;
const SIZE_SHIFT: u32 = TYPE_SHIFT + TYPE_BITS;
const DIR_SHIFT: u32 = SIZE_SHIFT + SIZE_BITS;

const DIR_NONE: u32 = 0;
const DIR_WRITE: u32 = 1; // user → kernel (_IOW)
const DIR_READ: u32 = 2; // kernel → user (_IOR)

/// Maximum parameter-struct size encodable in a command (14 bits).
pub const MAX_IOC_SIZE: u32 = (1 << SIZE_BITS) - 1;

/// Data direction of an ioctl parameter, from the command encoding.
///
/// Directions are named from *user space's* perspective, as in Linux:
/// `Read` means the application reads (driver copies **to** user).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoctlDir {
    /// No parameter struct (`_IO`).
    None,
    /// Driver copies the struct to user space (`_IOR`).
    Read,
    /// Driver copies the struct from user space (`_IOW`).
    Write,
    /// Both directions (`_IOWR`).
    ReadWrite,
}

impl IoctlDir {
    /// Whether the driver copies from user memory.
    pub const fn copies_from_user(self) -> bool {
        matches!(self, IoctlDir::Write | IoctlDir::ReadWrite)
    }

    /// Whether the driver copies to user memory.
    pub const fn copies_to_user(self) -> bool {
        matches!(self, IoctlDir::Read | IoctlDir::ReadWrite)
    }
}

/// A 32-bit ioctl command number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IoctlCmd(pub u32);

impl IoctlCmd {
    /// Builds a command from its four fields.
    ///
    /// # Panics
    ///
    /// Panics if `size` exceeds [`MAX_IOC_SIZE`]; such commands cannot be
    /// encoded and indicate a driver bug.
    pub const fn new(dir: IoctlDir, ty: u8, nr: u8, size: u32) -> Self {
        assert!(size <= MAX_IOC_SIZE, "ioctl size field overflow");
        let dir_bits = match dir {
            IoctlDir::None => DIR_NONE,
            IoctlDir::Write => DIR_WRITE,
            IoctlDir::Read => DIR_READ,
            IoctlDir::ReadWrite => DIR_READ | DIR_WRITE,
        };
        IoctlCmd(
            (dir_bits << DIR_SHIFT)
                | (size << SIZE_SHIFT)
                | ((ty as u32) << TYPE_SHIFT)
                | ((nr as u32) << NR_SHIFT),
        )
    }

    /// The raw 32-bit command number.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The data direction field.
    pub const fn dir(self) -> IoctlDir {
        match (self.0 >> DIR_SHIFT) & 0x3 {
            DIR_NONE => IoctlDir::None,
            DIR_WRITE => IoctlDir::Write,
            DIR_READ => IoctlDir::Read,
            _ => IoctlDir::ReadWrite,
        }
    }

    /// The parameter-struct size field.
    pub const fn size(self) -> u32 {
        (self.0 >> SIZE_SHIFT) & MAX_IOC_SIZE
    }

    /// The type (magic) field identifying the driver.
    pub const fn ty(self) -> u8 {
        ((self.0 >> TYPE_SHIFT) & 0xff) as u8
    }

    /// The command number within the driver.
    pub const fn nr(self) -> u8 {
        ((self.0 >> NR_SHIFT) & 0xff) as u8
    }
}

impl fmt::Debug for IoctlCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IoctlCmd({:?}, ty={:#x}, nr={:#x}, size={})",
            self.dir(),
            self.ty(),
            self.nr(),
            self.size()
        )
    }
}

impl fmt::Display for IoctlCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for IoctlCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// `_IO(ty, nr)` — a command with no parameter struct.
pub const fn io(ty: u8, nr: u8) -> IoctlCmd {
    IoctlCmd::new(IoctlDir::None, ty, nr, 0)
}

/// `_IOR(ty, nr, size)` — driver copies `size` bytes **to** user space.
pub const fn ior(ty: u8, nr: u8, size: u32) -> IoctlCmd {
    IoctlCmd::new(IoctlDir::Read, ty, nr, size)
}

/// `_IOW(ty, nr, size)` — driver copies `size` bytes **from** user space.
pub const fn iow(ty: u8, nr: u8, size: u32) -> IoctlCmd {
    IoctlCmd::new(IoctlDir::Write, ty, nr, size)
}

/// `_IOWR(ty, nr, size)` — both directions.
pub const fn iowr(ty: u8, nr: u8, size: u32) -> IoctlCmd {
    IoctlCmd::new(IoctlDir::ReadWrite, ty, nr, size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_fields() {
        let cmd = iowr(b'd', 0x66, 152);
        assert_eq!(cmd.dir(), IoctlDir::ReadWrite);
        assert_eq!(cmd.ty(), b'd');
        assert_eq!(cmd.nr(), 0x66);
        assert_eq!(cmd.size(), 152);
    }

    #[test]
    fn matches_linux_encoding() {
        // DRM_IOCTL_VERSION = _IOWR('d', 0x00, struct drm_version /* 36B on
        // 32-bit */): dir=3, size=36, type=0x64, nr=0.
        let cmd = iowr(0x64, 0x00, 36);
        assert_eq!(cmd.raw(), (3 << 30) | (36 << 16) | (0x64 << 8));
    }

    #[test]
    fn io_has_no_copies() {
        let cmd = io(b'V', 1);
        assert_eq!(cmd.dir(), IoctlDir::None);
        assert_eq!(cmd.size(), 0);
        assert!(!cmd.dir().copies_from_user());
        assert!(!cmd.dir().copies_to_user());
    }

    #[test]
    fn direction_predicates() {
        assert!(iow(1, 1, 8).dir().copies_from_user());
        assert!(!iow(1, 1, 8).dir().copies_to_user());
        assert!(ior(1, 1, 8).dir().copies_to_user());
        assert!(!ior(1, 1, 8).dir().copies_from_user());
        assert!(iowr(1, 1, 8).dir().copies_from_user());
        assert!(iowr(1, 1, 8).dir().copies_to_user());
    }

    #[test]
    fn max_size_is_encodable() {
        let cmd = iow(0xff, 0xff, MAX_IOC_SIZE);
        assert_eq!(cmd.size(), MAX_IOC_SIZE);
    }

    #[test]
    fn distinct_commands_distinct_numbers() {
        assert_ne!(ior(b'd', 1, 8), iow(b'd', 1, 8));
        assert_ne!(iow(b'd', 1, 8), iow(b'd', 2, 8));
        assert_ne!(iow(b'd', 1, 8), iow(b'e', 1, 8));
        assert_ne!(iow(b'd', 1, 8), iow(b'd', 1, 16));
    }

    #[test]
    fn debug_is_informative() {
        let s = format!("{:?}", ior(b'd', 0x27, 24));
        assert!(s.contains("Read"));
        assert!(s.contains("size=24"));
    }
}
