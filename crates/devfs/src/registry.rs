//! The `/dev` namespace: device registration and open-file accounting.
//!
//! The kernel "exports device files to the user space through a special
//! filesystem, devfs" (paper §2.1). [`DevFs`] models that namespace. It does
//! *not* own driver objects — those belong to the kernel that hosts them
//! (the machine or driver VM in the core crate) — it resolves paths to
//! [`DeviceId`]s and enforces open semantics, including the exclusive-open
//! behaviour of drivers that "only allow one process at a time" such as the
//! camera and netmap drivers (paper §3.2.3, §5.1).

use std::collections::BTreeMap;
use std::fmt;

use crate::errno::Errno;
use crate::fileops::{OpenFlags, TaskId};
use crate::sysinfo::DeviceClass;

/// Identifies a registered device within a kernel's devfs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Identifies one open file description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileHandleId(pub u64);

impl fmt::Display for FileHandleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Concurrency policy of a device file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpenPolicy {
    /// Any number of concurrent openers (GPU, input, audio).
    Shared,
    /// One opener at a time (camera, netmap — their drivers "do not support
    /// concurrent access", paper §5.1).
    Exclusive,
}

#[derive(Debug)]
struct DevEntry {
    device: DeviceId,
    class: DeviceClass,
    policy: OpenPolicy,
    open_handles: Vec<FileHandleId>,
}

/// An open file description as tracked by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFile {
    /// The device the handle refers to.
    pub device: DeviceId,
    /// The opener.
    pub task: TaskId,
    /// Open flags.
    pub flags: OpenFlags,
}

/// The device-file namespace of one kernel.
#[derive(Debug, Default)]
pub struct DevFs {
    entries: BTreeMap<String, DevEntry>,
    handles: BTreeMap<FileHandleId, (String, OpenFile)>,
    next_device: u32,
    next_handle: u64,
}

impl DevFs {
    /// Creates an empty namespace.
    pub fn new() -> Self {
        DevFs::default()
    }

    /// Registers a device file at `path` (e.g. `/dev/dri/card0`).
    ///
    /// # Errors
    ///
    /// `EBUSY` if the path is already taken.
    pub fn register(
        &mut self,
        path: &str,
        class: DeviceClass,
        policy: OpenPolicy,
    ) -> Result<DeviceId, Errno> {
        if self.entries.contains_key(path) {
            return Err(Errno::Ebusy);
        }
        let device = DeviceId(self.next_device);
        self.next_device += 1;
        self.entries.insert(
            path.to_owned(),
            DevEntry {
                device,
                class,
                policy,
                open_handles: Vec::new(),
            },
        );
        Ok(device)
    }

    /// Removes a device file; outstanding handles become dangling and fail
    /// with `ENODEV` on lookup.
    ///
    /// # Errors
    ///
    /// `ENOENT` if the path is not registered.
    pub fn unregister(&mut self, path: &str) -> Result<(), Errno> {
        self.entries.remove(path).map(|_| ()).ok_or(Errno::Enoent)
    }

    /// Resolves a path to its device without opening it.
    ///
    /// # Errors
    ///
    /// `ENOENT` for unknown paths.
    pub fn lookup(&self, path: &str) -> Result<DeviceId, Errno> {
        self.entries
            .get(path)
            .map(|e| e.device)
            .ok_or(Errno::Enoent)
    }

    /// The class of the device at `path`.
    ///
    /// # Errors
    ///
    /// `ENOENT` for unknown paths.
    pub fn class_of(&self, path: &str) -> Result<DeviceClass, Errno> {
        self.entries.get(path).map(|e| e.class).ok_or(Errno::Enoent)
    }

    /// Opens the device file at `path` for `task`.
    ///
    /// # Errors
    ///
    /// `ENOENT` for unknown paths; `EBUSY` when an exclusive device is
    /// already open.
    pub fn open(
        &mut self,
        path: &str,
        task: TaskId,
        flags: OpenFlags,
    ) -> Result<(FileHandleId, DeviceId), Errno> {
        let entry = self.entries.get_mut(path).ok_or(Errno::Enoent)?;
        if entry.policy == OpenPolicy::Exclusive && !entry.open_handles.is_empty() {
            return Err(Errno::Ebusy);
        }
        let handle = FileHandleId(self.next_handle);
        self.next_handle += 1;
        entry.open_handles.push(handle);
        let open = OpenFile {
            device: entry.device,
            task,
            flags,
        };
        self.handles.insert(handle, (path.to_owned(), open));
        Ok((handle, entry.device))
    }

    /// Closes an open handle.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown handles.
    pub fn close(&mut self, handle: FileHandleId) -> Result<OpenFile, Errno> {
        let (path, open) = self.handles.remove(&handle).ok_or(Errno::Ebadf)?;
        if let Some(entry) = self.entries.get_mut(&path) {
            entry.open_handles.retain(|&h| h != handle);
        }
        Ok(open)
    }

    /// Resolves an open handle to its description.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown handles, `ENODEV` if the device vanished.
    pub fn resolve(&self, handle: FileHandleId) -> Result<OpenFile, Errno> {
        let (path, open) = self.handles.get(&handle).ok_or(Errno::Ebadf)?;
        if !self.entries.contains_key(path) {
            return Err(Errno::Enodev);
        }
        Ok(*open)
    }

    /// Number of open handles on the device at `path`.
    ///
    /// # Errors
    ///
    /// `ENOENT` for unknown paths.
    pub fn open_count(&self, path: &str) -> Result<usize, Errno> {
        self.entries
            .get(path)
            .map(|e| e.open_handles.len())
            .ok_or(Errno::Enoent)
    }

    /// Iterates over registered `(path, device, class)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (&str, DeviceId, DeviceClass)> + '_ {
        self.entries
            .iter()
            .map(|(path, e)| (path.as_str(), e.device, e.class))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devfs_with_gpu() -> (DevFs, DeviceId) {
        let mut fs = DevFs::new();
        let id = fs
            .register("/dev/dri/card0", DeviceClass::Gpu, OpenPolicy::Shared)
            .unwrap();
        (fs, id)
    }

    #[test]
    fn register_and_lookup() {
        let (fs, id) = devfs_with_gpu();
        assert_eq!(fs.lookup("/dev/dri/card0").unwrap(), id);
        assert_eq!(fs.class_of("/dev/dri/card0").unwrap(), DeviceClass::Gpu);
        assert_eq!(fs.lookup("/dev/video0"), Err(Errno::Enoent));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (mut fs, _) = devfs_with_gpu();
        assert_eq!(
            fs.register("/dev/dri/card0", DeviceClass::Gpu, OpenPolicy::Shared),
            Err(Errno::Ebusy)
        );
    }

    #[test]
    fn shared_device_allows_concurrent_opens() {
        let (mut fs, id) = devfs_with_gpu();
        let (h1, d1) = fs
            .open("/dev/dri/card0", TaskId(1), OpenFlags::RDWR)
            .unwrap();
        let (h2, d2) = fs
            .open("/dev/dri/card0", TaskId(2), OpenFlags::RDWR)
            .unwrap();
        assert_eq!(d1, id);
        assert_eq!(d2, id);
        assert_ne!(h1, h2);
        assert_eq!(fs.open_count("/dev/dri/card0").unwrap(), 2);
    }

    #[test]
    fn exclusive_device_rejects_second_open() {
        let mut fs = DevFs::new();
        fs.register("/dev/video0", DeviceClass::Camera, OpenPolicy::Exclusive)
            .unwrap();
        let (h1, _) = fs.open("/dev/video0", TaskId(1), OpenFlags::RDWR).unwrap();
        assert_eq!(
            fs.open("/dev/video0", TaskId(2), OpenFlags::RDWR),
            Err(Errno::Ebusy)
        );
        fs.close(h1).unwrap();
        assert!(fs.open("/dev/video0", TaskId(2), OpenFlags::RDWR).is_ok());
    }

    #[test]
    fn close_and_resolve() {
        let (mut fs, id) = devfs_with_gpu();
        let (h, _) = fs
            .open("/dev/dri/card0", TaskId(7), OpenFlags::RDONLY)
            .unwrap();
        let open = fs.resolve(h).unwrap();
        assert_eq!(open.device, id);
        assert_eq!(open.task, TaskId(7));
        let closed = fs.close(h).unwrap();
        assert_eq!(closed.task, TaskId(7));
        assert_eq!(fs.resolve(h), Err(Errno::Ebadf));
        assert_eq!(fs.close(h), Err(Errno::Ebadf));
    }

    #[test]
    fn unregister_dangles_handles() {
        let (mut fs, _) = devfs_with_gpu();
        let (h, _) = fs
            .open("/dev/dri/card0", TaskId(1), OpenFlags::RDWR)
            .unwrap();
        fs.unregister("/dev/dri/card0").unwrap();
        assert_eq!(fs.resolve(h), Err(Errno::Enodev));
        assert_eq!(fs.unregister("/dev/dri/card0"), Err(Errno::Enoent));
    }

    #[test]
    fn iteration_lists_devices() {
        let mut fs = DevFs::new();
        fs.register("/dev/input/event0", DeviceClass::Input, OpenPolicy::Shared)
            .unwrap();
        fs.register("/dev/video0", DeviceClass::Camera, OpenPolicy::Exclusive)
            .unwrap();
        let paths: Vec<&str> = fs.iter().map(|(p, _, _)| p).collect();
        assert_eq!(paths, vec!["/dev/input/event0", "/dev/video0"]);
    }
}
