//! Property tests for the memory substrate: the translation and permission
//! invariants everything above relies on.

use proptest::prelude::*;

use paradice_mem::addr::{page_chunks, pages_for};
use paradice_mem::iommu::IommuDomain;
use paradice_mem::{
    Access, DmaAddr, Ept, GuestPhysAddr, PhysAddr, RegionId, SystemMemory, PAGE_SIZE,
};

proptest! {
    /// `page_chunks` covers the range exactly once, in order, without
    /// crossing page boundaries.
    #[test]
    fn page_chunks_partition_the_range(addr in 0u64..1 << 40, len in 0u64..1 << 16) {
        let chunks: Vec<(PhysAddr, u64)> = page_chunks(PhysAddr::new(addr), len).collect();
        // Total length matches.
        let total: u64 = chunks.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, len);
        // Contiguous and within-page.
        let mut cursor = addr;
        for (start, chunk_len) in chunks {
            prop_assert_eq!(start.raw(), cursor);
            prop_assert!(chunk_len > 0);
            let end = start.raw() + chunk_len - 1;
            prop_assert_eq!(start.raw() / PAGE_SIZE, end / PAGE_SIZE, "chunk crosses a page");
            cursor += chunk_len;
        }
        prop_assert_eq!(pages_for(len) >= len.div_ceil(PAGE_SIZE), true);
    }

    /// EPT mappings translate exactly what was mapped, with offsets
    /// preserved, and permission checks are monotone: granting more rights
    /// never breaks an access that worked.
    #[test]
    fn ept_translation_and_permission_monotonicity(
        pages in proptest::collection::btree_map(0u64..4096, (0u64..4096, 0u8..3), 1..32),
        probe_offset in 0u64..4096,
    ) {
        let mut ept = Ept::new();
        for (&gpn, &(pfn, access_pick)) in &pages {
            let access = match access_pick {
                0 => Access::READ,
                1 => Access::RW,
                _ => Access::RWX,
            };
            ept.map(
                GuestPhysAddr::new(gpn * PAGE_SIZE),
                PhysAddr::new(pfn * PAGE_SIZE),
                access,
            ).unwrap();
        }
        for (&gpn, &(pfn, access_pick)) in &pages {
            let gpa = GuestPhysAddr::new(gpn * PAGE_SIZE + probe_offset);
            // Reads always work on mapped pages (every pick includes READ).
            let pa = ept.translate(gpa, Access::READ).unwrap();
            prop_assert_eq!(pa.raw(), pfn * PAGE_SIZE + probe_offset);
            // Writes work iff the pick included WRITE.
            let writable = access_pick >= 1;
            prop_assert_eq!(ept.translate(gpa, Access::WRITE).is_ok(), writable);
            // Execute works iff RWX.
            prop_assert_eq!(ept.translate(gpa, Access::EXEC).is_ok(), access_pick == 2);
        }
    }

    /// IOMMU region gating: a mapping translates iff its region is active
    /// or global, regardless of the history of switches.
    #[test]
    fn iommu_region_gating_is_exact(
        mappings in proptest::collection::vec((0u64..256, 0u64..256, 0u8..3), 1..24),
        switches in proptest::collection::vec(0u8..3, 0..8),
    ) {
        let mut dom = IommuDomain::new();
        // Three regions: GLOBAL, r1, r2. Last write to a DMA page wins.
        let r = [RegionId::GLOBAL, RegionId(1), RegionId(2)];
        let mut last: std::collections::BTreeMap<u64, u8> = Default::default();
        for &(dma_pn, pfn, region_pick) in &mappings {
            dom.map(
                DmaAddr::new(dma_pn * PAGE_SIZE),
                PhysAddr::new(pfn * PAGE_SIZE),
                Access::RW,
                r[region_pick as usize],
            );
            last.insert(dma_pn, region_pick);
        }
        let mut active: Option<RegionId> = None;
        for &pick in &switches {
            active = if pick == 0 { None } else { Some(r[pick as usize]) };
            dom.switch_region(active);
        }
        for (&dma_pn, &region_pick) in &last {
            let ok = dom
                .translate(DmaAddr::new(dma_pn * PAGE_SIZE), Access::READ)
                .is_ok();
            let expected = region_pick == 0 || Some(r[region_pick as usize]) == active;
            prop_assert_eq!(ok, expected, "dma page {}", dma_pn);
        }
    }

    /// System memory: reads observe the latest write, across arbitrary
    /// cross-frame offsets.
    #[test]
    fn sysmem_read_your_writes(
        writes in proptest::collection::vec((0u64..31 * 4096, proptest::collection::vec(any::<u8>(), 1..64)), 1..16),
    ) {
        let mut mem = SystemMemory::new(32);
        let frames = mem.alloc_frames(32).unwrap();
        let base = frames[0].base();
        // Model: a shadow buffer.
        let mut shadow = vec![0u8; 32 * 4096];
        for (offset, bytes) in &writes {
            let offset = (*offset).min(32 * 4096 - bytes.len() as u64);
            mem.write(base.add(offset), bytes).unwrap();
            shadow[offset as usize..offset as usize + bytes.len()].copy_from_slice(bytes);
        }
        let mut out = vec![0u8; 32 * 4096];
        mem.read(base, &mut out).unwrap();
        prop_assert_eq!(out, shadow);
    }

    /// Frame allocator: handles are unique, frees are reusable, and the
    /// free count is conserved.
    #[test]
    fn frame_allocator_conservation(ops in proptest::collection::vec(any::<bool>(), 1..64)) {
        let total = 16usize;
        let mut mem = SystemMemory::new(total);
        let mut live = Vec::new();
        for op in ops {
            if op || live.is_empty() {
                match mem.alloc_frame() {
                    Ok(frame) => {
                        prop_assert!(
                            live.iter().all(|f: &paradice_mem::Frame| f.base() != frame.base())
                        );
                        live.push(frame);
                    }
                    Err(_) => prop_assert_eq!(live.len(), total),
                }
            } else {
                let frame = live.pop().unwrap();
                mem.free_frame(frame).unwrap();
            }
            prop_assert_eq!(mem.allocated_frames() + mem.free_frames(), total);
            prop_assert_eq!(mem.allocated_frames(), live.len());
        }
    }
}
