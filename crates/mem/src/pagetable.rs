//! Guest page tables: PAE-style, three levels, stored in guest memory.
//!
//! The paper targets 32-bit x86 with Physical Address Extension (§5), whose
//! page tables have three levels: a 4-entry page-directory-pointer table
//! (PDPT), 512-entry page directories and 512-entry page tables, all holding
//! 64-bit entries. We reproduce that geometry. The tables live in *guest
//! physical memory*: the walker reads entries through a [`GpaSpace`], so the
//! hypervisor's software walk (guest virtual → guest physical, paper §5.2)
//! really does traverse memory the guest owns.
//!
//! Two construction paths mirror the paper's split of responsibilities for
//! `mmap`:
//!
//! * the guest kernel (CVD frontend) pre-creates *all levels except the last*
//!   with [`GuestPageTables::ensure_intermediate`];
//! * the hypervisor later fixes only the leaf entry with
//!   [`GuestPageTables::set_leaf`], which refuses to create intermediate
//!   levels — exactly the compatibility-driven division of §5.2.

use std::fmt;

use crate::addr::{GuestPhysAddr, GuestVirtAddr, PAGE_SIZE};
use crate::perms::Access;

/// Entry bit: the entry is present/valid.
const PTE_PRESENT: u64 = 1 << 0;
/// Entry bit: writable.
const PTE_WRITE: u64 = 1 << 1;
/// Entry bit: user accessible (all process mappings here are user pages).
const PTE_USER: u64 = 1 << 2;
/// Entry bit: no-execute (stored at bit 63 like x86 PAE/NX).
const PTE_NX: u64 = 1 << 63;
/// Mask of the physical frame number bits (bits 12..52).
const PTE_ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;

/// Highest guest-virtual address + 1 expressible by the 32-bit PAE layout.
pub const GVA_SPACE: u64 = 1 << 32;

/// Errors produced when walking or editing guest page tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtWalkError {
    /// A referenced table entry was not present.
    NotMapped {
        /// The faulting guest-virtual address.
        va: GuestVirtAddr,
        /// Which level lacked the entry: 0 = PDPT, 1 = PD, 2 = PT (leaf).
        level: u8,
    },
    /// The address is outside the 32-bit guest-virtual space.
    VaOutOfRange {
        /// The offending address.
        va: GuestVirtAddr,
    },
    /// The backing [`GpaSpace`] failed to read or write a table page.
    Backing {
        /// The guest-physical address that could not be accessed.
        gpa: GuestPhysAddr,
    },
    /// A leaf fix-up was requested but an intermediate level is missing.
    ///
    /// The hypervisor only edits the last level; missing intermediates are
    /// the guest kernel's job (paper §5.2).
    MissingIntermediate {
        /// The faulting guest-virtual address.
        va: GuestVirtAddr,
        /// The level (0 or 1) that was absent.
        level: u8,
    },
    /// The guest kernel's table-page allocator is out of memory.
    NoTablePages,
}

impl fmt::Display for PtWalkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtWalkError::NotMapped { va, level } => {
                write!(f, "guest page table walk failed at level {level} for {va}")
            }
            PtWalkError::VaOutOfRange { va } => {
                write!(f, "guest virtual address {va} outside 32-bit space")
            }
            PtWalkError::Backing { gpa } => {
                write!(f, "could not access guest table page at {gpa}")
            }
            PtWalkError::MissingIntermediate { va, level } => {
                write!(
                    f,
                    "intermediate table level {level} missing for {va}; guest must create it"
                )
            }
            PtWalkError::NoTablePages => f.write_str("guest table-page allocator exhausted"),
        }
    }
}

impl std::error::Error for PtWalkError {}

/// Access to guest physical memory, as needed by the table walker.
///
/// Implemented by the hypervisor (EPT + system memory) and, for unit tests,
/// by a plain in-process array. `alloc_table_page` models the guest kernel
/// allocating a zeroed page for a new table level.
pub trait GpaSpace {
    /// Reads a 64-bit little-endian value at `gpa`.
    ///
    /// # Errors
    ///
    /// Returns [`PtWalkError::Backing`] if the page is inaccessible.
    fn read_u64(&self, gpa: GuestPhysAddr) -> Result<u64, PtWalkError>;

    /// Writes a 64-bit little-endian value at `gpa`.
    ///
    /// # Errors
    ///
    /// Returns [`PtWalkError::Backing`] if the page is inaccessible.
    fn write_u64(&mut self, gpa: GuestPhysAddr, value: u64) -> Result<(), PtWalkError>;

    /// Allocates a zeroed guest-physical page to hold a page-table level.
    ///
    /// # Errors
    ///
    /// Returns [`PtWalkError::NoTablePages`] when guest memory is exhausted.
    fn alloc_table_page(&mut self) -> Result<GuestPhysAddr, PtWalkError>;
}

/// A translated leaf mapping, as returned by [`GuestPageTables::walk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtMapping {
    /// Guest-physical page the leaf points at (page base).
    pub gpa: GuestPhysAddr,
    /// Access rights encoded in the leaf entry.
    pub access: Access,
}

/// One guest process's page-table hierarchy.
///
/// Holds only the root (PDPT) address; every entry lives in guest memory and
/// is accessed through a [`GpaSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestPageTables {
    root: GuestPhysAddr,
}

fn indices(va: GuestVirtAddr) -> Result<[u64; 3], PtWalkError> {
    if va.raw() >= GVA_SPACE {
        return Err(PtWalkError::VaOutOfRange { va });
    }
    let raw = va.raw();
    Ok([
        (raw >> 30) & 0x3,   // PDPT: 4 entries
        (raw >> 21) & 0x1ff, // PD: 512 entries
        (raw >> 12) & 0x1ff, // PT: 512 entries
    ])
}

fn encode_entry(gpa: GuestPhysAddr, access: Access) -> u64 {
    let mut entry = (gpa.raw() & PTE_ADDR_MASK) | PTE_PRESENT | PTE_USER;
    if access.writable() {
        entry |= PTE_WRITE;
    }
    if !access.executable() {
        entry |= PTE_NX;
    }
    entry
}

fn decode_access(entry: u64) -> Access {
    let mut access = Access::READ;
    if entry & PTE_WRITE != 0 {
        access |= Access::WRITE;
    }
    if entry & PTE_NX == 0 {
        access |= Access::EXEC;
    }
    access
}

impl GuestPageTables {
    /// Creates a fresh hierarchy, allocating the root PDPT page.
    ///
    /// # Errors
    ///
    /// Fails if the guest cannot allocate the root table page.
    pub fn new(space: &mut dyn GpaSpace) -> Result<Self, PtWalkError> {
        let root = space.alloc_table_page()?;
        Ok(GuestPageTables { root })
    }

    /// Wraps an existing root (used when re-attaching to a saved process).
    pub fn from_root(root: GuestPhysAddr) -> Self {
        GuestPageTables { root }
    }

    /// The guest-physical address of the root PDPT page.
    pub fn root(&self) -> GuestPhysAddr {
        self.root
    }

    fn entry_addr(table: GuestPhysAddr, index: u64) -> GuestPhysAddr {
        table.add(index * 8)
    }

    fn read_entry(
        space: &dyn GpaSpace,
        table: GuestPhysAddr,
        index: u64,
    ) -> Result<u64, PtWalkError> {
        space.read_u64(Self::entry_addr(table, index))
    }

    /// Translates a guest-virtual address to its leaf mapping.
    ///
    /// This is the software walk the hypervisor performs for every page of a
    /// cross-VM copy (paper §5.2). The returned mapping describes the *page*;
    /// combine with [`GuestVirtAddr::page_offset`] for byte addresses.
    ///
    /// # Errors
    ///
    /// Fails with [`PtWalkError::NotMapped`] at the first non-present level.
    pub fn walk(
        &self,
        space: &dyn GpaSpace,
        va: GuestVirtAddr,
    ) -> Result<PtMapping, PtWalkError> {
        let idx = indices(va)?;
        let mut table = self.root;
        for (level, &index) in idx.iter().enumerate().take(2) {
            let entry = Self::read_entry(space, table, index)?;
            if entry & PTE_PRESENT == 0 {
                return Err(PtWalkError::NotMapped {
                    va,
                    level: level as u8,
                });
            }
            table = GuestPhysAddr::new(entry & PTE_ADDR_MASK);
        }
        let leaf = Self::read_entry(space, table, idx[2])?;
        if leaf & PTE_PRESENT == 0 {
            return Err(PtWalkError::NotMapped { va, level: 2 });
        }
        Ok(PtMapping {
            gpa: GuestPhysAddr::new(leaf & PTE_ADDR_MASK),
            access: decode_access(leaf),
        })
    }

    /// Translates an arbitrary (unaligned) address to its guest-physical
    /// counterpart, preserving the page offset.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GuestPageTables::walk`].
    pub fn translate(
        &self,
        space: &dyn GpaSpace,
        va: GuestVirtAddr,
    ) -> Result<GuestPhysAddr, PtWalkError> {
        let mapping = self.walk(space, va.page_base())?;
        Ok(mapping.gpa.add(va.page_offset()))
    }

    fn descend_or_create(
        space: &mut dyn GpaSpace,
        table: GuestPhysAddr,
        index: u64,
    ) -> Result<GuestPhysAddr, PtWalkError> {
        let entry = Self::read_entry(space, table, index)?;
        if entry & PTE_PRESENT != 0 {
            return Ok(GuestPhysAddr::new(entry & PTE_ADDR_MASK));
        }
        let page = space.alloc_table_page()?;
        // Intermediate levels are writable+user so leaf permissions govern.
        let entry = (page.raw() & PTE_ADDR_MASK) | PTE_PRESENT | PTE_WRITE | PTE_USER;
        space.write_u64(Self::entry_addr(table, index), entry)?;
        Ok(page)
    }

    /// Creates all intermediate levels for `va`, leaving the leaf untouched.
    ///
    /// The CVD frontend calls this for the whole `mmap` range *before*
    /// forwarding the operation, so the hypervisor never has to allocate
    /// guest table pages (paper §5.2). Returns the guest-physical address of
    /// the leaf page table so callers can verify placement.
    ///
    /// # Errors
    ///
    /// Fails if the allocator is exhausted or a table page is inaccessible.
    pub fn ensure_intermediate(
        &mut self,
        space: &mut dyn GpaSpace,
        va: GuestVirtAddr,
    ) -> Result<GuestPhysAddr, PtWalkError> {
        let idx = indices(va)?;
        let pd = Self::descend_or_create(space, self.root, idx[0])?;
        Self::descend_or_create(space, pd, idx[1])
    }

    /// Fixes only the *leaf* entry for `va`, the hypervisor's half of `mmap`.
    ///
    /// # Errors
    ///
    /// Returns [`PtWalkError::MissingIntermediate`] if the guest kernel has
    /// not pre-created the upper levels — the hypervisor deliberately never
    /// creates them (paper §5.2).
    pub fn set_leaf(
        &self,
        space: &mut dyn GpaSpace,
        va: GuestVirtAddr,
        gpa: GuestPhysAddr,
        access: Access,
    ) -> Result<(), PtWalkError> {
        let idx = indices(va)?;
        let mut table = self.root;
        for (level, &index) in idx.iter().enumerate().take(2) {
            let entry = Self::read_entry(space, table, index)?;
            if entry & PTE_PRESENT == 0 {
                return Err(PtWalkError::MissingIntermediate {
                    va,
                    level: level as u8,
                });
            }
            table = GuestPhysAddr::new(entry & PTE_ADDR_MASK);
        }
        space.write_u64(
            Self::entry_addr(table, idx[2]),
            encode_entry(gpa.page_base(), access),
        )
    }

    /// Fully maps `va → gpa`, creating intermediate levels as needed.
    ///
    /// This is the guest kernel's ordinary mapping path (anonymous memory,
    /// stacks, the process heap).
    ///
    /// # Errors
    ///
    /// Fails if allocation or backing access fails.
    pub fn map(
        &mut self,
        space: &mut dyn GpaSpace,
        va: GuestVirtAddr,
        gpa: GuestPhysAddr,
        access: Access,
    ) -> Result<(), PtWalkError> {
        self.ensure_intermediate(space, va)?;
        self.set_leaf(space, va, gpa, access)
    }

    /// Clears the leaf entry for `va`.
    ///
    /// The guest kernel destroys its own leaf mappings before telling the
    /// driver about an unmap; the hypervisor then only tears down EPT state
    /// (paper §5.2). Unmapping an absent leaf is a no-op.
    ///
    /// # Errors
    ///
    /// Fails only if a table page is inaccessible.
    pub fn unmap(&self, space: &mut dyn GpaSpace, va: GuestVirtAddr) -> Result<(), PtWalkError> {
        let idx = indices(va)?;
        let mut table = self.root;
        for &index in idx.iter().take(2) {
            let entry = Self::read_entry(space, table, index)?;
            if entry & PTE_PRESENT == 0 {
                return Ok(());
            }
            table = GuestPhysAddr::new(entry & PTE_ADDR_MASK);
        }
        space.write_u64(Self::entry_addr(table, idx[2]), 0)
    }

    /// Returns `true` if `va`'s page has a present leaf mapping.
    pub fn is_mapped(&self, space: &dyn GpaSpace, va: GuestVirtAddr) -> bool {
        self.walk(space, va.page_base()).is_ok()
    }
}

/// A trivially-backed [`GpaSpace`] for tests: a flat vector of guest memory
/// with a bump allocator for table pages starting at the top.
#[derive(Debug)]
pub struct FlatGpaSpace {
    bytes: Vec<u8>,
    next_table_page: u64,
}

impl FlatGpaSpace {
    /// Creates a flat guest-physical space of `frames` pages; table pages are
    /// carved from the top of the range downwards.
    pub fn new(frames: u64) -> Self {
        FlatGpaSpace {
            bytes: vec![0u8; (frames * PAGE_SIZE) as usize],
            next_table_page: frames,
        }
    }
}

impl GpaSpace for FlatGpaSpace {
    fn read_u64(&self, gpa: GuestPhysAddr) -> Result<u64, PtWalkError> {
        let start = gpa.raw() as usize;
        let bytes = self
            .bytes
            .get(start..start + 8)
            .ok_or(PtWalkError::Backing { gpa })?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("slice len 8")))
    }

    fn write_u64(&mut self, gpa: GuestPhysAddr, value: u64) -> Result<(), PtWalkError> {
        let start = gpa.raw() as usize;
        let bytes = self
            .bytes
            .get_mut(start..start + 8)
            .ok_or(PtWalkError::Backing { gpa })?;
        bytes.copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn alloc_table_page(&mut self) -> Result<GuestPhysAddr, PtWalkError> {
        if self.next_table_page == 0 {
            return Err(PtWalkError::NoTablePages);
        }
        self.next_table_page -= 1;
        Ok(GuestPhysAddr::new(self.next_table_page * PAGE_SIZE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FlatGpaSpace, GuestPageTables) {
        let mut space = FlatGpaSpace::new(64);
        let tables = GuestPageTables::new(&mut space).unwrap();
        (space, tables)
    }

    #[test]
    fn map_then_walk() {
        let (mut space, mut pt) = setup();
        let va = GuestVirtAddr::new(0x40001000);
        let gpa = GuestPhysAddr::new(0x5000);
        pt.map(&mut space, va, gpa, Access::RW).unwrap();
        let mapping = pt.walk(&space, va).unwrap();
        assert_eq!(mapping.gpa, gpa);
        assert_eq!(mapping.access, Access::RW);
    }

    #[test]
    fn translate_preserves_offset() {
        let (mut space, mut pt) = setup();
        let va = GuestVirtAddr::new(0x1000);
        pt.map(&mut space, va, GuestPhysAddr::new(0x7000), Access::READ)
            .unwrap();
        let gpa = pt.translate(&space, GuestVirtAddr::new(0x1234)).unwrap();
        assert_eq!(gpa, GuestPhysAddr::new(0x7234));
    }

    #[test]
    fn walk_unmapped_reports_level() {
        let (space, pt) = setup();
        let err = pt.walk(&space, GuestVirtAddr::new(0x1000)).unwrap_err();
        assert_eq!(
            err,
            PtWalkError::NotMapped {
                va: GuestVirtAddr::new(0x1000),
                level: 0
            }
        );
    }

    #[test]
    fn leaf_missing_after_intermediate() {
        let (mut space, mut pt) = setup();
        let va = GuestVirtAddr::new(0x2000);
        pt.ensure_intermediate(&mut space, va).unwrap();
        let err = pt.walk(&space, va).unwrap_err();
        assert_eq!(err, PtWalkError::NotMapped { va, level: 2 });
    }

    #[test]
    fn hypervisor_leaf_fix_requires_intermediates() {
        let (mut space, pt) = setup();
        let va = GuestVirtAddr::new(0x80000000);
        let err = pt
            .set_leaf(&mut space, va, GuestPhysAddr::new(0x9000), Access::RW)
            .unwrap_err();
        assert_eq!(err, PtWalkError::MissingIntermediate { va, level: 0 });
    }

    #[test]
    fn frontend_plus_hypervisor_mmap_protocol() {
        // The paper's split: frontend creates intermediates, hypervisor the
        // leaf.
        let (mut space, mut pt) = setup();
        let va = GuestVirtAddr::new(0xbeef_d000 & 0xffff_f000);
        pt.ensure_intermediate(&mut space, va).unwrap();
        pt.set_leaf(&mut space, va, GuestPhysAddr::new(0xa000), Access::RW)
            .unwrap();
        assert_eq!(
            pt.walk(&space, va).unwrap().gpa,
            GuestPhysAddr::new(0xa000)
        );
    }

    #[test]
    fn unmap_clears_leaf_only() {
        let (mut space, mut pt) = setup();
        let va1 = GuestVirtAddr::new(0x1000);
        let va2 = GuestVirtAddr::new(0x2000);
        pt.map(&mut space, va1, GuestPhysAddr::new(0x5000), Access::RW)
            .unwrap();
        pt.map(&mut space, va2, GuestPhysAddr::new(0x6000), Access::RW)
            .unwrap();
        pt.unmap(&mut space, va1).unwrap();
        assert!(!pt.is_mapped(&space, va1));
        assert!(pt.is_mapped(&space, va2));
    }

    #[test]
    fn unmap_absent_is_noop() {
        let (mut space, pt) = setup();
        pt.unmap(&mut space, GuestVirtAddr::new(0x12345000)).unwrap();
    }

    #[test]
    fn va_out_of_range_rejected() {
        let (space, pt) = setup();
        let va = GuestVirtAddr::new(GVA_SPACE);
        assert_eq!(
            pt.walk(&space, va).unwrap_err(),
            PtWalkError::VaOutOfRange { va }
        );
    }

    #[test]
    fn permissions_roundtrip() {
        let (mut space, mut pt) = setup();
        for access in [Access::READ, Access::RW, Access::RWX, Access::READ | Access::EXEC] {
            let va = GuestVirtAddr::new(0x10_0000 + access.bits() as u64 * PAGE_SIZE);
            pt.map(&mut space, va, GuestPhysAddr::new(0x8000), access)
                .unwrap();
            assert_eq!(pt.walk(&space, va).unwrap().access, access);
        }
    }

    #[test]
    fn distinct_vas_in_same_table_coexist() {
        let (mut space, mut pt) = setup();
        for i in 0..16u64 {
            pt.map(
                &mut space,
                GuestVirtAddr::new(i * PAGE_SIZE),
                GuestPhysAddr::new(0x10000 + i * PAGE_SIZE),
                Access::RW,
            )
            .unwrap();
        }
        for i in 0..16u64 {
            let mapping = pt.walk(&space, GuestVirtAddr::new(i * PAGE_SIZE)).unwrap();
            assert_eq!(mapping.gpa, GuestPhysAddr::new(0x10000 + i * PAGE_SIZE));
        }
    }

    #[test]
    fn allocator_exhaustion_surfaces() {
        let mut space = FlatGpaSpace::new(1);
        let mut pt = GuestPageTables::new(&mut space).unwrap();
        // Root consumed the only page; next level allocation must fail.
        let err = pt
            .map(
                &mut space,
                GuestVirtAddr::new(0),
                GuestPhysAddr::new(0),
                Access::READ,
            )
            .unwrap_err();
        assert_eq!(err, PtWalkError::NoTablePages);
    }
}
