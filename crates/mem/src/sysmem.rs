//! The machine's physical memory: a frame arena plus a frame allocator.
//!
//! Everything that "exists in RAM" in the simulation — guest memory, guest
//! page tables, shared communication pages, netmap rings, DMA buffers — lives
//! in one [`SystemMemory`] instance, addressed by [`PhysAddr`]. The
//! hypervisor's copy API, the IOMMU-translated device DMA and the guest
//! page-table walker all bottom out here, exactly as all of them bottom out
//! in host DRAM on the real system.

use std::fmt;

use crate::addr::{page_chunks, Frame, PhysAddr, PAGE_SIZE};

/// Errors reported by [`SystemMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemError {
    /// An access touched a frame that was never allocated.
    Unallocated {
        /// The physical address of the offending access.
        addr: PhysAddr,
    },
    /// An access ran past the end of physical memory.
    OutOfBounds {
        /// The physical address of the offending access.
        addr: PhysAddr,
    },
    /// The frame allocator has no free frames left.
    OutOfFrames,
    /// A frame was freed twice or freed without being allocated.
    BadFree {
        /// Base address of the offending frame.
        addr: PhysAddr,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unallocated { addr } => {
                write!(f, "access to unallocated physical frame at {addr}")
            }
            MemError::OutOfBounds { addr } => {
                write!(f, "physical access out of bounds at {addr}")
            }
            MemError::OutOfFrames => f.write_str("physical frame allocator exhausted"),
            MemError::BadFree { addr } => write!(f, "double or foreign free of frame {addr}"),
        }
    }
}

impl std::error::Error for MemError {}

/// State of one physical frame.
#[derive(Debug)]
enum FrameSlot {
    Free,
    Allocated(Box<[u8]>),
}

/// The simulated physical memory of the whole machine.
///
/// Frames are 4 KiB and allocated through [`SystemMemory::alloc_frame`].
/// Freed frames are zeroed, mirroring the paper's hypervisor, which zeroes
/// pages before unmapping them from an IOMMU region (§5.3(i)) so stale guest
/// data can never leak through reallocation.
///
/// # Example
///
/// ```
/// use paradice_mem::{SystemMemory, PhysAddr};
///
/// # fn main() -> Result<(), paradice_mem::MemError> {
/// let mut mem = SystemMemory::new(16);
/// let f = mem.alloc_frame()?;
/// mem.write_u64(f.base(), 0xdead_beef)?;
/// assert_eq!(mem.read_u64(f.base())?, 0xdead_beef);
/// # Ok(())
/// # }
/// ```
pub struct SystemMemory {
    frames: Vec<FrameSlot>,
    free_list: Vec<u64>,
    allocated: usize,
}

impl fmt::Debug for SystemMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemMemory")
            .field("total_frames", &self.frames.len())
            .field("allocated_frames", &self.allocated)
            .finish()
    }
}

impl SystemMemory {
    /// Creates a machine memory of `total_frames` 4-KiB frames.
    pub fn new(total_frames: usize) -> Self {
        let mut frames = Vec::with_capacity(total_frames);
        frames.resize_with(total_frames, || FrameSlot::Free);
        // Hand out low frame numbers first so dumps are easy to read.
        let free_list = (0..total_frames as u64).rev().collect();
        SystemMemory {
            frames,
            free_list,
            allocated: 0,
        }
    }

    /// Creates a machine memory of the given size in bytes (rounded down to
    /// whole frames).
    pub fn with_bytes(bytes: u64) -> Self {
        SystemMemory::new((bytes / PAGE_SIZE) as usize)
    }

    /// Total capacity in frames.
    pub fn total_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of currently allocated frames.
    pub fn allocated_frames(&self) -> usize {
        self.allocated
    }

    /// Number of frames still available.
    pub fn free_frames(&self) -> usize {
        self.free_list.len()
    }

    /// Allocates one zeroed frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] when physical memory is exhausted.
    pub fn alloc_frame(&mut self) -> Result<Frame, MemError> {
        let number = self.free_list.pop().ok_or(MemError::OutOfFrames)?;
        self.frames[number as usize] =
            FrameSlot::Allocated(vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
        self.allocated += 1;
        Ok(Frame::from_base(PhysAddr::new(number * PAGE_SIZE)))
    }

    /// Allocates `n` zeroed frames.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] if fewer than `n` frames remain; in
    /// that case no frames are allocated.
    pub fn alloc_frames(&mut self, n: usize) -> Result<Vec<Frame>, MemError> {
        if self.free_list.len() < n {
            return Err(MemError::OutOfFrames);
        }
        (0..n).map(|_| self.alloc_frame()).collect()
    }

    /// Frees a frame, zeroing its contents.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFree`] if the frame is not currently allocated.
    pub fn free_frame(&mut self, frame: Frame) -> Result<(), MemError> {
        let number = frame.number() as usize;
        match self.frames.get_mut(number) {
            Some(slot @ FrameSlot::Allocated(_)) => {
                *slot = FrameSlot::Free;
                self.free_list.push(number as u64);
                self.allocated -= 1;
                Ok(())
            }
            Some(FrameSlot::Free) => Err(MemError::BadFree { addr: frame.base() }),
            None => Err(MemError::OutOfBounds { addr: frame.base() }),
        }
    }

    fn frame_bytes(&self, addr: PhysAddr) -> Result<&[u8], MemError> {
        match self.frames.get(addr.page_number() as usize) {
            Some(FrameSlot::Allocated(bytes)) => Ok(bytes),
            Some(FrameSlot::Free) => Err(MemError::Unallocated { addr }),
            None => Err(MemError::OutOfBounds { addr }),
        }
    }

    fn frame_bytes_mut(&mut self, addr: PhysAddr) -> Result<&mut [u8], MemError> {
        match self.frames.get_mut(addr.page_number() as usize) {
            Some(FrameSlot::Allocated(bytes)) => Ok(bytes),
            Some(FrameSlot::Free) => Err(MemError::Unallocated { addr }),
            None => Err(MemError::OutOfBounds { addr }),
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`, crossing frame boundaries
    /// as needed.
    ///
    /// # Errors
    ///
    /// Fails if any touched frame is unallocated or out of bounds.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let mut done = 0usize;
        for (chunk_addr, len) in page_chunks(addr, buf.len() as u64) {
            let frame = self.frame_bytes(chunk_addr)?;
            let off = chunk_addr.page_offset() as usize;
            buf[done..done + len as usize].copy_from_slice(&frame[off..off + len as usize]);
            done += len as usize;
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`, crossing frame boundaries as needed.
    ///
    /// # Errors
    ///
    /// Fails if any touched frame is unallocated or out of bounds.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) -> Result<(), MemError> {
        // Validate the whole range first so a failing write is all-or-nothing.
        for (chunk_addr, _) in page_chunks(addr, buf.len() as u64) {
            self.frame_bytes(chunk_addr)?;
        }
        let mut done = 0usize;
        for (chunk_addr, len) in page_chunks(addr, buf.len() as u64) {
            let frame = self.frame_bytes_mut(chunk_addr)?;
            let off = chunk_addr.page_offset() as usize;
            frame[off..off + len as usize].copy_from_slice(&buf[done..done + len as usize]);
            done += len as usize;
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr` (page-table entries, ring
    /// pointers, registers-in-memory).
    ///
    /// # Errors
    ///
    /// Fails if the touched frames are unallocated or out of bounds.
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, MemError> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the touched frames are unallocated or out of bounds.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) -> Result<(), MemError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian `u32` at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the touched frames are unallocated or out of bounds.
    pub fn read_u32(&self, addr: PhysAddr) -> Result<u32, MemError> {
        let mut buf = [0u8; 4];
        self.read(addr, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Writes a little-endian `u32` at `addr`.
    ///
    /// # Errors
    ///
    /// Fails if the touched frames are unallocated or out of bounds.
    pub fn write_u32(&mut self, addr: PhysAddr, value: u32) -> Result<(), MemError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Fills `len` bytes at `addr` with `byte`.
    ///
    /// # Errors
    ///
    /// Fails if any touched frame is unallocated or out of bounds.
    pub fn fill(&mut self, addr: PhysAddr, len: u64, byte: u8) -> Result<(), MemError> {
        for (chunk_addr, chunk_len) in page_chunks(addr, len) {
            let frame = self.frame_bytes_mut(chunk_addr)?;
            let off = chunk_addr.page_offset() as usize;
            frame[off..off + chunk_len as usize].fill(byte);
        }
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` within physical memory.
    ///
    /// This is the primitive under the hypervisor's cross-VM copy: both sides
    /// have already been translated to physical addresses.
    ///
    /// # Errors
    ///
    /// Fails if either range touches unallocated or out-of-bounds frames.
    pub fn copy(&mut self, src: PhysAddr, dst: PhysAddr, len: u64) -> Result<(), MemError> {
        let mut buf = vec![0u8; len as usize];
        self.read(src, &mut buf)?;
        self.write(dst, &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_roundtrip() {
        let mut mem = SystemMemory::new(4);
        let f = mem.alloc_frame().unwrap();
        mem.write(f.base().add(100), b"hello").unwrap();
        let mut buf = [0u8; 5];
        mem.read(f.base().add(100), &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn cross_frame_rw() {
        let mut mem = SystemMemory::new(4);
        let a = mem.alloc_frame().unwrap();
        let b = mem.alloc_frame().unwrap();
        // Allocation order gives consecutive frames 0 and 1.
        assert_eq!(b.base().raw(), a.base().raw() + PAGE_SIZE);
        let addr = a.base().add(PAGE_SIZE - 2);
        mem.write(addr, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        mem.read(addr, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn unallocated_access_fails() {
        let mem = SystemMemory::new(4);
        let mut buf = [0u8; 1];
        assert_eq!(
            mem.read(PhysAddr::new(0), &mut buf),
            Err(MemError::Unallocated {
                addr: PhysAddr::new(0)
            })
        );
    }

    #[test]
    fn out_of_bounds_access_fails() {
        let mut mem = SystemMemory::new(1);
        let _ = mem.alloc_frame().unwrap();
        let far = PhysAddr::new(10 * PAGE_SIZE);
        assert_eq!(
            mem.write(far, &[0]),
            Err(MemError::OutOfBounds { addr: far })
        );
    }

    #[test]
    fn partial_write_does_not_happen() {
        let mut mem = SystemMemory::new(4);
        let f = mem.alloc_frame().unwrap();
        // Frame after `f` (frame 1) is unallocated, so the cross-frame write
        // must fail without mutating frame 0.
        let addr = f.base().add(PAGE_SIZE - 2);
        mem.write(addr, b"XX").unwrap();
        assert!(mem.write(addr, &[9, 9, 9, 9]).is_err());
        let mut buf = [0u8; 2];
        mem.read(addr, &mut buf).unwrap();
        assert_eq!(&buf, b"XX");
    }

    #[test]
    fn exhaustion_and_free() {
        let mut mem = SystemMemory::new(2);
        let a = mem.alloc_frame().unwrap();
        let _b = mem.alloc_frame().unwrap();
        assert_eq!(mem.alloc_frame(), Err(MemError::OutOfFrames));
        mem.free_frame(a).unwrap();
        assert_eq!(mem.free_frames(), 1);
        let c = mem.alloc_frame().unwrap();
        assert_eq!(c.number(), 0);
    }

    #[test]
    fn freed_frames_are_zeroed() {
        let mut mem = SystemMemory::new(1);
        let f = mem.alloc_frame().unwrap();
        mem.write(f.base(), b"secret").unwrap();
        let base = f.base();
        mem.free_frame(f).unwrap();
        let f2 = mem.alloc_frame().unwrap();
        assert_eq!(f2.base(), base);
        let mut buf = [0u8; 6];
        mem.read(f2.base(), &mut buf).unwrap();
        assert_eq!(buf, [0; 6]);
    }

    #[test]
    fn double_free_detected() {
        let mut mem = SystemMemory::new(1);
        let f = mem.alloc_frame().unwrap();
        let dup = Frame::from_base(f.base());
        mem.free_frame(f).unwrap();
        assert_eq!(
            mem.free_frame(dup),
            Err(MemError::BadFree {
                addr: PhysAddr::new(0)
            })
        );
    }

    #[test]
    fn bulk_alloc_is_all_or_nothing() {
        let mut mem = SystemMemory::new(3);
        assert_eq!(mem.alloc_frames(4), Err(MemError::OutOfFrames));
        assert_eq!(mem.allocated_frames(), 0);
        let frames = mem.alloc_frames(3).unwrap();
        assert_eq!(frames.len(), 3);
    }

    #[test]
    fn u64_and_u32_accessors() {
        let mut mem = SystemMemory::new(1);
        let f = mem.alloc_frame().unwrap();
        mem.write_u64(f.base(), 0x0102_0304_0506_0708).unwrap();
        assert_eq!(mem.read_u64(f.base()).unwrap(), 0x0102_0304_0506_0708);
        mem.write_u32(f.base().add(8), 0xaabb_ccdd).unwrap();
        assert_eq!(mem.read_u32(f.base().add(8)).unwrap(), 0xaabb_ccdd);
    }

    #[test]
    fn phys_copy() {
        let mut mem = SystemMemory::new(2);
        let a = mem.alloc_frame().unwrap();
        let b = mem.alloc_frame().unwrap();
        mem.write(a.base(), b"payload").unwrap();
        mem.copy(a.base(), b.base().add(16), 7).unwrap();
        let mut buf = [0u8; 7];
        mem.read(b.base().add(16), &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
    }

    #[test]
    fn fill_range() {
        let mut mem = SystemMemory::new(2);
        let a = mem.alloc_frame().unwrap();
        let _b = mem.alloc_frame().unwrap();
        mem.fill(a.base().add(PAGE_SIZE - 4), 8, 0x5a).unwrap();
        let mut buf = [0u8; 8];
        mem.read(a.base().add(PAGE_SIZE - 4), &mut buf).unwrap();
        assert_eq!(buf, [0x5a; 8]);
    }
}
