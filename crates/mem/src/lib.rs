//! Memory-system substrate for the Paradice simulation.
//!
//! The Paradice paper (ASPLOS 2014) executes driver memory operations in the
//! hypervisor by *walking page tables in software*: a guest virtual address is
//! first translated through the guest's own page tables (which live in guest
//! physical memory) and then through the per-VM extended page tables (EPTs)
//! maintained by the hypervisor (§5.2 of the paper). Device DMA is confined by
//! an IOMMU, and device-data isolation additionally tags IOMMU mappings with
//! per-guest *memory region* identifiers (§4.2).
//!
//! This crate provides exactly those building blocks as deterministic,
//! fully-software models:
//!
//! * [`addr`] — strongly-typed addresses ([`PhysAddr`], [`GuestPhysAddr`],
//!   [`GuestVirtAddr`], [`DmaAddr`]) and page arithmetic.
//! * [`perms`] — access-permission sets, including the x86 quirk that
//!   *write-only* mappings are unsupported (paper §5.3(iv)).
//! * [`sysmem`] — [`SystemMemory`], the machine's physical frame arena plus a
//!   frame allocator that zeroes frames on free.
//! * [`pagetable`] — PAE-style 3-level guest page tables stored *inside*
//!   guest physical memory, with a software walker.
//! * [`ept`] — per-VM extended page tables with permission enforcement and
//!   violation reporting.
//! * [`iommu`] — region-tagged DMA translation with a single active region,
//!   the mechanism behind device data isolation.
//! * [`layout`] — helpers for finding unused guest-physical pages, used when
//!   the hypervisor services `mmap` (paper §5.2).
//!
//! # Example
//!
//! ```
//! use paradice_mem::{SystemMemory, PhysAddr};
//!
//! # fn main() -> Result<(), paradice_mem::MemError> {
//! let mut mem = SystemMemory::new(64); // 64 frames = 256 KiB
//! let frame = mem.alloc_frame()?;
//! mem.write(frame.base(), b"paradice")?;
//! let mut buf = [0u8; 8];
//! mem.read(frame.base(), &mut buf)?;
//! assert_eq!(&buf, b"paradice");
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod ept;
pub mod iommu;
pub mod layout;
pub mod pagetable;
pub mod perms;
pub mod sysmem;

pub use addr::{DmaAddr, Frame, GuestPhysAddr, GuestVirtAddr, PhysAddr, PAGE_MASK, PAGE_SIZE};
pub use ept::{Ept, EptViolation};
pub use iommu::{DomainId, Iommu, IommuDomain, IommuFault, RegionId};
pub use pagetable::{GuestPageTables, PtWalkError};
pub use perms::Access;
pub use sysmem::{MemError, SystemMemory};
