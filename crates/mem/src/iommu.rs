//! IOMMU model: region-tagged DMA translation.
//!
//! Paradice uses the IOMMU twice (paper §3.1, §4.2):
//!
//! 1. **Device assignment** — the device's DMA is restricted to the driver
//!    VM's memory. We model this as a *global* bulk mapping installed by the
//!    hypervisor at assignment time.
//! 2. **Device data isolation** — the hypervisor installs *no* initial
//!    mappings; the driver must ask for every page, attaching a
//!    [`RegionId`]. Only one region is active at a time, so the device can
//!    never DMA another guest's data. Switching regions remaps the active
//!    page set (a cost the hypervisor's cost model charges).
//!
//! We keep all mappings resident and gate translation on the active region;
//! this is observationally identical to the paper's unmap-all/remap-all
//! switch and lets [`IommuDomain::switch_region`] report how many pages a
//! real switch would touch.

use std::collections::BTreeMap;
use std::fmt;

use crate::addr::{DmaAddr, PhysAddr, PAGE_SIZE};
use crate::perms::Access;

/// Identifier of a protected memory region (one per guest VM, paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The pseudo-region for global mappings (device assignment without data
    /// isolation): always active.
    pub const GLOBAL: RegionId = RegionId(u32::MAX);
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == RegionId::GLOBAL {
            f.write_str("region(global)")
        } else {
            write!(f, "region({})", self.0)
        }
    }
}

/// A blocked or failed DMA access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IommuFault {
    /// No mapping exists for the bus address.
    Unmapped {
        /// The faulting bus address.
        dma: DmaAddr,
    },
    /// A mapping exists but belongs to a region that is not active.
    RegionInactive {
        /// The faulting bus address.
        dma: DmaAddr,
        /// The region the mapping belongs to.
        region: RegionId,
        /// The currently active region, if any.
        active: Option<RegionId>,
    },
    /// The mapping lacks the attempted rights (e.g. device write to a
    /// read-only page used for write-only emulation, paper §5.3(iv)).
    InsufficientRights {
        /// The faulting bus address.
        dma: DmaAddr,
        /// Rights the access needed.
        attempted: Access,
        /// Rights the mapping grants.
        allowed: Access,
    },
}

impl fmt::Display for IommuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IommuFault::Unmapped { dma } => write!(f, "IOMMU fault: {dma} not mapped"),
            IommuFault::RegionInactive {
                dma,
                region,
                active,
            } => write!(
                f,
                "IOMMU fault: {dma} belongs to {region} but active region is {}",
                match active {
                    Some(r) => r.to_string(),
                    None => "none".to_owned(),
                }
            ),
            IommuFault::InsufficientRights {
                dma,
                attempted,
                allowed,
            } => write!(
                f,
                "IOMMU fault: {dma} attempted {attempted}, mapping allows {allowed}"
            ),
        }
    }
}

impl std::error::Error for IommuFault {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DmaEntry {
    frame: PhysAddr,
    access: Access,
    region: RegionId,
}

/// The translation domain of one assigned device.
#[derive(Debug, Default)]
pub struct IommuDomain {
    entries: BTreeMap<u64, DmaEntry>,
    active: Option<RegionId>,
}

impl IommuDomain {
    /// Creates an empty domain with no active region.
    pub fn new() -> Self {
        IommuDomain::default()
    }

    /// Maps the page containing `dma` to the frame containing `pa`, tagged
    /// with `region`. Pass [`RegionId::GLOBAL`] for always-active mappings.
    pub fn map(&mut self, dma: DmaAddr, pa: PhysAddr, access: Access, region: RegionId) {
        self.entries.insert(
            dma.page_number(),
            DmaEntry {
                frame: pa.page_base(),
                access,
                region,
            },
        );
    }

    /// Removes a mapping, returning the frame it pointed at.
    pub fn unmap(&mut self, dma: DmaAddr) -> Option<PhysAddr> {
        self.entries.remove(&dma.page_number()).map(|e| e.frame)
    }

    /// Bulk identity-style mapping used for plain device assignment: maps
    /// `pages` consecutive pages starting at `(dma_base, pa_base)` as global.
    pub fn map_contiguous(
        &mut self,
        dma_base: DmaAddr,
        pa_base: PhysAddr,
        pages: u64,
        access: Access,
    ) {
        for i in 0..pages {
            self.map(
                dma_base.add(i * PAGE_SIZE),
                pa_base.add(i * PAGE_SIZE),
                access,
                RegionId::GLOBAL,
            );
        }
    }

    /// The currently active protected region, if any.
    pub fn active_region(&self) -> Option<RegionId> {
        self.active
    }

    /// Activates `region`, deactivating any previous one.
    ///
    /// Returns the number of page mappings a hardware IOMMU would have had to
    /// unmap + map for this switch (pages of the old region plus pages of the
    /// new), which the hypervisor uses for cost accounting.
    pub fn switch_region(&mut self, region: Option<RegionId>) -> usize {
        let count_of = |r: Option<RegionId>| -> usize {
            match r {
                Some(r) if r != RegionId::GLOBAL => {
                    self.entries.values().filter(|e| e.region == r).count()
                }
                _ => 0,
            }
        };
        let work = count_of(self.active) + count_of(region);
        self.active = region;
        work
    }

    /// Number of pages currently mapped for `region`.
    pub fn pages_in_region(&self, region: RegionId) -> usize {
        self.entries.values().filter(|e| e.region == region).count()
    }

    /// Total mapped pages across all regions.
    pub fn mapped_pages(&self) -> usize {
        self.entries.len()
    }

    /// Translates a device access at `dma` needing `attempted` rights.
    ///
    /// # Errors
    ///
    /// Faults if the page is unmapped, tagged with an inactive region, or
    /// mapped with insufficient rights.
    pub fn translate(&self, dma: DmaAddr, attempted: Access) -> Result<PhysAddr, IommuFault> {
        let entry = self
            .entries
            .get(&dma.page_number())
            .ok_or(IommuFault::Unmapped { dma })?;
        if entry.region != RegionId::GLOBAL && Some(entry.region) != self.active {
            return Err(IommuFault::RegionInactive {
                dma,
                region: entry.region,
                active: self.active,
            });
        }
        if !entry.access.contains(attempted) {
            return Err(IommuFault::InsufficientRights {
                dma,
                attempted,
                allowed: entry.access,
            });
        }
        Ok(entry.frame.add(dma.page_offset()))
    }

    /// Downgrades the rights of an existing mapping (write-only emulation
    /// makes a buffer read-only to the device, paper §5.3(iv)).
    ///
    /// Returns `false` if the page was not mapped.
    pub fn set_access(&mut self, dma: DmaAddr, access: Access) -> bool {
        match self.entries.get_mut(&dma.page_number()) {
            Some(entry) => {
                entry.access = access;
                true
            }
            None => false,
        }
    }

    /// Iterates over `(dma page base, frame, access, region)`.
    pub fn iter(&self) -> impl Iterator<Item = (DmaAddr, PhysAddr, Access, RegionId)> + '_ {
        self.entries.iter().map(|(&pn, e)| {
            (DmaAddr::new(pn * PAGE_SIZE), e.frame, e.access, e.region)
        })
    }
}

/// The machine's IOMMU: one translation domain per assigned device.
#[derive(Debug, Default)]
pub struct Iommu {
    domains: Vec<IommuDomain>,
}

/// Handle to a device's translation domain within the [`Iommu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(usize);

impl DomainId {
    /// The domain's index, usable as a map key by higher layers.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a `DomainId` from an index previously obtained via
    /// [`DomainId::index`] (higher layers key their per-domain state by it).
    pub const fn from_index(index: usize) -> Self {
        DomainId(index)
    }
}

impl Iommu {
    /// Creates an IOMMU with no domains.
    pub fn new() -> Self {
        Iommu::default()
    }

    /// Allocates a fresh, empty domain (done at device assignment).
    pub fn create_domain(&mut self) -> DomainId {
        self.domains.push(IommuDomain::new());
        DomainId(self.domains.len() - 1)
    }

    /// Shared access to a domain.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this IOMMU — a simulation bug.
    pub fn domain(&self, id: DomainId) -> &IommuDomain {
        &self.domains[id.0]
    }

    /// Exclusive access to a domain.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this IOMMU — a simulation bug.
    pub fn domain_mut(&mut self, id: DomainId) -> &mut IommuDomain {
        &mut self.domains[id.0]
    }

    /// Number of domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_mapping_translates_without_active_region() {
        let mut dom = IommuDomain::new();
        dom.map(
            DmaAddr::new(0x1000),
            PhysAddr::new(0x8000),
            Access::RW,
            RegionId::GLOBAL,
        );
        assert_eq!(
            dom.translate(DmaAddr::new(0x1004), Access::WRITE).unwrap(),
            PhysAddr::new(0x8004)
        );
    }

    #[test]
    fn unmapped_dma_faults() {
        let dom = IommuDomain::new();
        assert_eq!(
            dom.translate(DmaAddr::new(0x2000), Access::READ),
            Err(IommuFault::Unmapped {
                dma: DmaAddr::new(0x2000)
            })
        );
    }

    #[test]
    fn region_gating_blocks_inactive_regions() {
        let mut dom = IommuDomain::new();
        let r1 = RegionId(1);
        let r2 = RegionId(2);
        dom.map(DmaAddr::new(0x1000), PhysAddr::new(0xa000), Access::RW, r1);
        dom.map(DmaAddr::new(0x2000), PhysAddr::new(0xb000), Access::RW, r2);

        dom.switch_region(Some(r1));
        assert!(dom.translate(DmaAddr::new(0x1000), Access::READ).is_ok());
        assert_eq!(
            dom.translate(DmaAddr::new(0x2000), Access::READ),
            Err(IommuFault::RegionInactive {
                dma: DmaAddr::new(0x2000),
                region: r2,
                active: Some(r1),
            })
        );

        dom.switch_region(Some(r2));
        assert!(dom.translate(DmaAddr::new(0x2000), Access::READ).is_ok());
        assert!(dom.translate(DmaAddr::new(0x1000), Access::READ).is_err());
    }

    #[test]
    fn switch_cost_counts_both_regions() {
        let mut dom = IommuDomain::new();
        let r1 = RegionId(1);
        let r2 = RegionId(2);
        for i in 0..3 {
            dom.map(
                DmaAddr::new(i * PAGE_SIZE),
                PhysAddr::new(i * PAGE_SIZE),
                Access::RW,
                r1,
            );
        }
        for i in 3..8 {
            dom.map(
                DmaAddr::new(i * PAGE_SIZE),
                PhysAddr::new(i * PAGE_SIZE),
                Access::RW,
                r2,
            );
        }
        assert_eq!(dom.switch_region(Some(r1)), 3); // map r1
        assert_eq!(dom.switch_region(Some(r2)), 8); // unmap r1 + map r2
        assert_eq!(dom.switch_region(None), 5); // unmap r2
    }

    #[test]
    fn rights_are_enforced_for_write_only_emulation() {
        // Write-only emulation: buffer read-only to the *device*, RW to the
        // driver VM (paper §5.3(iv)). Device writes must fault.
        let mut dom = IommuDomain::new();
        dom.map(
            DmaAddr::new(0x3000),
            PhysAddr::new(0xc000),
            Access::READ,
            RegionId::GLOBAL,
        );
        assert!(dom.translate(DmaAddr::new(0x3000), Access::READ).is_ok());
        assert_eq!(
            dom.translate(DmaAddr::new(0x3000), Access::WRITE),
            Err(IommuFault::InsufficientRights {
                dma: DmaAddr::new(0x3000),
                attempted: Access::WRITE,
                allowed: Access::READ,
            })
        );
    }

    #[test]
    fn downgrade_rights_in_place() {
        let mut dom = IommuDomain::new();
        dom.map(
            DmaAddr::new(0x1000),
            PhysAddr::new(0x2000),
            Access::RW,
            RegionId::GLOBAL,
        );
        assert!(dom.set_access(DmaAddr::new(0x1000), Access::READ));
        assert!(dom.translate(DmaAddr::new(0x1000), Access::WRITE).is_err());
        assert!(!dom.set_access(DmaAddr::new(0x9000), Access::READ));
    }

    #[test]
    fn contiguous_bulk_map() {
        let mut dom = IommuDomain::new();
        dom.map_contiguous(DmaAddr::new(0), PhysAddr::new(0x10000), 4, Access::RW);
        assert_eq!(dom.mapped_pages(), 4);
        assert_eq!(
            dom.translate(DmaAddr::new(3 * PAGE_SIZE + 5), Access::READ)
                .unwrap(),
            PhysAddr::new(0x10000 + 3 * PAGE_SIZE + 5)
        );
    }

    #[test]
    fn unmap_returns_frame_and_forgets() {
        let mut dom = IommuDomain::new();
        dom.map(
            DmaAddr::new(0x4000),
            PhysAddr::new(0x5000),
            Access::RW,
            RegionId(7),
        );
        assert_eq!(dom.unmap(DmaAddr::new(0x4000)), Some(PhysAddr::new(0x5000)));
        assert_eq!(dom.unmap(DmaAddr::new(0x4000)), None);
        assert_eq!(dom.pages_in_region(RegionId(7)), 0);
    }

    #[test]
    fn iommu_manages_multiple_domains() {
        let mut iommu = Iommu::new();
        let gpu = iommu.create_domain();
        let nic = iommu.create_domain();
        assert_ne!(gpu, nic);
        iommu.domain_mut(gpu).map(
            DmaAddr::new(0),
            PhysAddr::new(0x1000),
            Access::RW,
            RegionId::GLOBAL,
        );
        assert_eq!(iommu.domain(gpu).mapped_pages(), 1);
        assert_eq!(iommu.domain(nic).mapped_pages(), 0);
        assert_eq!(iommu.domain_count(), 2);
    }
}
