//! Guest-physical address-space layout helpers.
//!
//! When the hypervisor services `mmap`, it needs "an (arbitrary) physical
//! page in the guest physical address space … as long as it is not used by
//! the guest OS. The hypervisor finds unused page addresses in the guest and
//! uses them" (paper §5.2). [`GpaAllocator`] models exactly that: it tracks
//! which guest-physical page numbers are claimed (by RAM, by device-info
//! BARs, by previous `mmap` fix-ups) and hands out unused ones from a window
//! above the guest's RAM.

use std::collections::BTreeSet;
use std::fmt;

use crate::addr::{GuestPhysAddr, PAGE_SIZE};

/// Error when the unused-GPA window is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GpaExhausted;

impl fmt::Display for GpaExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("no unused guest-physical pages remain in the mmap window")
    }
}

impl std::error::Error for GpaExhausted {}

/// Tracks unused guest-physical pages for hypervisor `mmap` fix-ups.
#[derive(Debug)]
pub struct GpaAllocator {
    /// First page number of the unused window (just above guest RAM).
    window_start: u64,
    /// One past the last page number of the window.
    window_end: u64,
    /// Pages inside the window currently handed out.
    claimed: BTreeSet<u64>,
    /// Rotating search cursor so frees are reused late (helps catch
    /// use-after-unmap bugs in tests).
    cursor: u64,
}

impl GpaAllocator {
    /// Creates an allocator for the window `[ram_bytes, ram_bytes + window_bytes)`
    /// of the guest-physical space.
    ///
    /// # Panics
    ///
    /// Panics if `window_bytes` is zero; an empty window is a configuration
    /// error.
    pub fn new(ram_bytes: u64, window_bytes: u64) -> Self {
        assert!(window_bytes >= PAGE_SIZE, "mmap window must hold a page");
        let window_start = ram_bytes.div_ceil(PAGE_SIZE);
        let window_end = (ram_bytes + window_bytes) / PAGE_SIZE;
        GpaAllocator {
            window_start,
            window_end,
            claimed: BTreeSet::new(),
            cursor: window_start,
        }
    }

    /// Claims one unused guest-physical page.
    ///
    /// # Errors
    ///
    /// Returns [`GpaExhausted`] when every page in the window is claimed.
    pub fn claim(&mut self) -> Result<GuestPhysAddr, GpaExhausted> {
        let span = self.window_end - self.window_start;
        for step in 0..span {
            let page = self.window_start + (self.cursor - self.window_start + step) % span;
            if self.claimed.insert(page) {
                self.cursor = page + 1;
                if self.cursor >= self.window_end {
                    self.cursor = self.window_start;
                }
                return Ok(GuestPhysAddr::new(page * PAGE_SIZE));
            }
        }
        Err(GpaExhausted)
    }

    /// Releases a previously claimed page. Returns `false` if the page was
    /// not claimed (harmless, but callers may want to log it).
    pub fn release(&mut self, gpa: GuestPhysAddr) -> bool {
        self.claimed.remove(&gpa.page_number())
    }

    /// Whether `gpa` lies inside the unused window at all.
    pub fn in_window(&self, gpa: GuestPhysAddr) -> bool {
        (self.window_start..self.window_end).contains(&gpa.page_number())
    }

    /// Number of pages currently claimed.
    pub fn claimed_pages(&self) -> usize {
        self.claimed.len()
    }

    /// Total pages in the window.
    pub fn window_pages(&self) -> u64 {
        self.window_end - self.window_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_come_from_window_above_ram() {
        let mut alloc = GpaAllocator::new(8 * PAGE_SIZE, 4 * PAGE_SIZE);
        let gpa = alloc.claim().unwrap();
        assert!(gpa.page_number() >= 8);
        assert!(alloc.in_window(gpa));
        assert!(!alloc.in_window(GuestPhysAddr::new(0)));
    }

    #[test]
    fn claims_are_distinct_until_exhausted() {
        let mut alloc = GpaAllocator::new(0, 3 * PAGE_SIZE);
        let a = alloc.claim().unwrap();
        let b = alloc.claim().unwrap();
        let c = alloc.claim().unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(alloc.claim(), Err(GpaExhausted));
    }

    #[test]
    fn release_enables_reuse() {
        let mut alloc = GpaAllocator::new(0, 2 * PAGE_SIZE);
        let a = alloc.claim().unwrap();
        let _b = alloc.claim().unwrap();
        assert!(alloc.release(a));
        assert!(!alloc.release(a));
        let c = alloc.claim().unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn ram_size_rounding() {
        // RAM ending mid-page: window starts at the next whole page.
        let mut alloc = GpaAllocator::new(PAGE_SIZE + 1, 2 * PAGE_SIZE);
        let gpa = alloc.claim().unwrap();
        assert_eq!(gpa.page_number(), 2);
    }

    #[test]
    fn counters() {
        let mut alloc = GpaAllocator::new(0, 4 * PAGE_SIZE);
        assert_eq!(alloc.window_pages(), 4);
        let _ = alloc.claim().unwrap();
        assert_eq!(alloc.claimed_pages(), 1);
    }
}
