//! Access-permission sets for page mappings.
//!
//! Permissions appear in three places in Paradice: guest page-table entries,
//! EPT entries, and IOMMU entries. The paper's device-data-isolation design
//! depends on one x86 quirk that we model faithfully: EPTs *cannot express
//! write-only mappings* — removing read permission necessarily removes write
//! permission too, so the driver is left with no access at all and write-only
//! semantics must be emulated (paper §5.3(iv)). [`Access::is_ept_expressible`]
//! captures that rule; [`crate::Ept::map`] enforces it.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Sub};

/// A set of access rights: any combination of read, write and execute.
///
/// A hand-rolled bitset (rather than an enum) because callers routinely
/// combine rights: `Access::READ | Access::WRITE`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Access(u8);

impl Access {
    /// The empty set: no access at all.
    pub const NONE: Access = Access(0);
    /// Read permission.
    pub const READ: Access = Access(1);
    /// Write permission.
    pub const WRITE: Access = Access(2);
    /// Execute permission.
    pub const EXEC: Access = Access(4);
    /// Read + write, the common data-page permission.
    pub const RW: Access = Access(1 | 2);
    /// Read + write + execute.
    pub const RWX: Access = Access(1 | 2 | 4);

    /// Builds a set from its raw bit representation (low three bits used).
    pub const fn from_bits(bits: u8) -> Access {
        Access(bits & 0b111)
    }

    /// Raw bit representation.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Returns `true` if every right in `other` is present in `self`.
    pub const fn contains(self, other: Access) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if the set is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the set grants read.
    pub const fn readable(self) -> bool {
        self.contains(Access::READ)
    }

    /// Returns `true` if the set grants write.
    pub const fn writable(self) -> bool {
        self.contains(Access::WRITE)
    }

    /// Returns `true` if the set grants execute.
    pub const fn executable(self) -> bool {
        self.contains(Access::EXEC)
    }

    /// Whether this permission set can be encoded in an x86 EPT entry.
    ///
    /// x86 EPTs do not support write-only (or write+execute-without-read)
    /// encodings: writable implies readable. Paradice's data-isolation code
    /// had to strip *both* read and write from protected regions and emulate
    /// write-only access for the few driver-writable buffers (paper §5.3(iv)).
    pub const fn is_ept_expressible(self) -> bool {
        !self.writable() || self.readable()
    }
}

impl BitOr for Access {
    type Output = Access;

    fn bitor(self, rhs: Access) -> Access {
        Access(self.0 | rhs.0)
    }
}

impl BitOrAssign for Access {
    fn bitor_assign(&mut self, rhs: Access) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for Access {
    type Output = Access;

    fn bitand(self, rhs: Access) -> Access {
        Access(self.0 & rhs.0)
    }
}

impl Sub for Access {
    type Output = Access;

    /// Set difference: the rights in `self` that are not in `rhs`.
    fn sub(self, rhs: Access) -> Access {
        Access(self.0 & !rhs.0)
    }
}

impl fmt::Debug for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Access({self})")
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("---");
        }
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_and_containment() {
        let rw = Access::READ | Access::WRITE;
        assert_eq!(rw, Access::RW);
        assert!(rw.contains(Access::READ));
        assert!(rw.contains(Access::WRITE));
        assert!(!rw.contains(Access::EXEC));
        assert!(rw.contains(Access::NONE));
    }

    #[test]
    fn difference() {
        assert_eq!(Access::RWX - Access::WRITE, Access::READ | Access::EXEC);
        assert_eq!(Access::READ - Access::READ, Access::NONE);
    }

    #[test]
    fn ept_expressibility_models_x86() {
        assert!(Access::NONE.is_ept_expressible());
        assert!(Access::READ.is_ept_expressible());
        assert!(Access::RW.is_ept_expressible());
        assert!(Access::RWX.is_ept_expressible());
        // Write-only and write+exec are the x86-impossible encodings.
        assert!(!Access::WRITE.is_ept_expressible());
        assert!(!(Access::WRITE | Access::EXEC).is_ept_expressible());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Access::NONE.to_string(), "---");
        assert_eq!(Access::RW.to_string(), "rw-");
        assert_eq!(Access::RWX.to_string(), "rwx");
        assert_eq!(format!("{:?}", Access::READ), "Access(r--)");
    }

    #[test]
    fn from_bits_masks_garbage() {
        assert_eq!(Access::from_bits(0xff), Access::RWX);
    }
}
