//! Strongly-typed addresses and page arithmetic.
//!
//! The simulation distinguishes four address spaces, mirroring the paper's
//! two-stage translation (guest virtual → guest physical → system physical)
//! plus the device-side DMA space translated by the IOMMU:
//!
//! * [`GuestVirtAddr`] — an address in a guest *process* address space.
//! * [`GuestPhysAddr`] — an address in a VM's physical address space.
//! * [`PhysAddr`] — a system (host) physical address.
//! * [`DmaAddr`] — a bus address emitted by a device, translated by the IOMMU.
//!
//! Newtypes keep the four spaces from being mixed up at compile time
//! (a real bug class in hypervisor code).

use std::fmt;

/// Size of a memory page/frame in bytes (4 KiB, as on x86).
pub const PAGE_SIZE: u64 = 4096;

/// Mask selecting the offset-within-page bits of an address.
pub const PAGE_MASK: u64 = PAGE_SIZE - 1;

macro_rules! addr_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an address from a raw value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the address rounded down to its page boundary.
            pub const fn page_base(self) -> Self {
                Self(self.0 & !PAGE_MASK)
            }

            /// Returns the offset of this address within its page.
            pub const fn page_offset(self) -> u64 {
                self.0 & PAGE_MASK
            }

            /// Returns the zero-based page number containing this address.
            pub const fn page_number(self) -> u64 {
                self.0 / PAGE_SIZE
            }

            /// Returns `true` if the address is page-aligned.
            pub const fn is_page_aligned(self) -> bool {
                self.0 & PAGE_MASK == 0
            }

            /// Returns the address advanced by `delta` bytes.
            ///
            /// # Panics
            ///
            /// Panics on overflow, which indicates a simulation bug.
            #[allow(clippy::should_implement_trait)] // pointer-style arith
            pub fn add(self, delta: u64) -> Self {
                Self(self.0.checked_add(delta).expect("address overflow"))
            }

            /// Byte distance from `self` to `other`.
            ///
            /// # Panics
            ///
            /// Panics if `other` is below `self`.
            pub fn offset_to(self, other: Self) -> u64 {
                other
                    .0
                    .checked_sub(self.0)
                    .expect("negative address distance")
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(addr: $name) -> u64 {
                addr.0
            }
        }
    };
}

addr_type! {
    /// A system (host) physical address: the final output of every
    /// translation stage and the index into [`crate::SystemMemory`].
    PhysAddr
}

addr_type! {
    /// A guest-physical address: what a VM believes is physical memory.
    /// Translated to [`PhysAddr`] by the VM's [`crate::Ept`].
    GuestPhysAddr
}

addr_type! {
    /// A guest-virtual address in some guest process address space.
    /// Translated to [`GuestPhysAddr`] by the process's
    /// [`crate::GuestPageTables`].
    GuestVirtAddr
}

addr_type! {
    /// A bus address emitted by a DMA-capable device, translated to
    /// [`PhysAddr`] by the [`crate::Iommu`].
    DmaAddr
}

/// An owned, allocated physical frame handle returned by the frame allocator.
///
/// The handle is deliberately *not* `Copy`: the allocator hands out each
/// frame once, and [`crate::SystemMemory::free_frame`] consumes the handle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    base: PhysAddr,
}

impl Frame {
    /// Creates a frame handle for the page containing `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned; frames always start at a page
    /// boundary.
    pub fn from_base(base: PhysAddr) -> Self {
        assert!(base.is_page_aligned(), "frame base must be page-aligned");
        Self { base }
    }

    /// The first byte of the frame.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// The zero-based frame number.
    pub fn number(&self) -> u64 {
        self.base.page_number()
    }
}

/// Splits the byte range `[addr, addr + len)` into per-page chunks.
///
/// Cross-page accesses must be translated page-by-page because contiguous
/// guest pages need not be contiguous in system physical memory (paper §5.2).
/// Each yielded item is `(page_start_address, length_within_page)`.
///
/// # Example
///
/// ```
/// use paradice_mem::addr::{page_chunks, PAGE_SIZE};
/// use paradice_mem::GuestVirtAddr;
///
/// let chunks: Vec<_> = page_chunks(GuestVirtAddr::new(PAGE_SIZE - 8), 24).collect();
/// assert_eq!(chunks.len(), 2);
/// assert_eq!(chunks[0].1, 8);
/// assert_eq!(chunks[1].1, 16);
/// ```
pub fn page_chunks<A>(addr: A, len: u64) -> PageChunks<A>
where
    A: Copy + Into<u64> + From<u64>,
{
    PageChunks {
        cursor: addr.into(),
        remaining: len,
        _marker: std::marker::PhantomData,
    }
}

/// Iterator returned by [`page_chunks`].
#[derive(Debug, Clone)]
pub struct PageChunks<A> {
    cursor: u64,
    remaining: u64,
    _marker: std::marker::PhantomData<A>,
}

impl<A> Iterator for PageChunks<A>
where
    A: Copy + Into<u64> + From<u64>,
{
    type Item = (A, u64);

    fn next(&mut self) -> Option<(A, u64)> {
        if self.remaining == 0 {
            return None;
        }
        let offset = self.cursor & PAGE_MASK;
        let in_page = (PAGE_SIZE - offset).min(self.remaining);
        let item = (A::from(self.cursor), in_page);
        self.cursor += in_page;
        self.remaining -= in_page;
        Some(item)
    }
}

/// Rounds `len` up to a whole number of pages.
pub const fn pages_for(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE)
}

/// Number of distinct pages the byte range `[addr, addr + len)` touches —
/// `page_chunks(addr, len).count()` in O(1), for hot-path cost accounting
/// (every grant-checked copy hypercall sizes its walk charge by this).
/// Zero-length ranges touch no page. Saturates instead of wrapping when
/// `addr + len` overflows.
pub fn page_span<A>(addr: A, len: u64) -> u64
where
    A: Copy + Into<u64>,
{
    if len == 0 {
        return 0;
    }
    let start: u64 = addr.into();
    let end = start.saturating_add(len - 1);
    (end / PAGE_SIZE) - (start / PAGE_SIZE) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_arithmetic() {
        let a = GuestVirtAddr::new(0x1234);
        assert_eq!(a.page_base(), GuestVirtAddr::new(0x1000));
        assert_eq!(a.page_offset(), 0x234);
        assert_eq!(a.page_number(), 1);
        assert!(!a.is_page_aligned());
        assert!(a.page_base().is_page_aligned());
    }

    #[test]
    fn page_span_matches_page_chunks_count() {
        for (addr, len) in [
            (0u64, 0u64),
            (0, 1),
            (0, PAGE_SIZE),
            (0, PAGE_SIZE + 1),
            (PAGE_SIZE - 8, 24),
            (0x1234, 3 * PAGE_SIZE),
            (PAGE_SIZE - 1, 1),
            (PAGE_SIZE - 1, 2),
        ] {
            let a = GuestVirtAddr::new(addr);
            assert_eq!(
                page_span(a, len),
                page_chunks(a, len).count() as u64,
                "addr {addr:#x} len {len}"
            );
        }
        // A range whose end would overflow saturates instead of panicking.
        let top = GuestVirtAddr::new(u64::MAX - 16);
        assert_eq!(page_span(top, u64::MAX), u64::MAX / PAGE_SIZE + 1 - top.page_number());
    }

    #[test]
    fn add_and_distance() {
        let a = PhysAddr::new(0x1000);
        let b = a.add(0x500);
        assert_eq!(a.offset_to(b), 0x500);
    }

    #[test]
    #[should_panic(expected = "negative address distance")]
    fn negative_distance_panics() {
        let a = PhysAddr::new(0x2000);
        let _ = a.offset_to(PhysAddr::new(0x1000));
    }

    #[test]
    fn chunks_within_one_page() {
        let chunks: Vec<_> = page_chunks(GuestVirtAddr::new(0x100), 0x200).collect();
        assert_eq!(chunks, vec![(GuestVirtAddr::new(0x100), 0x200)]);
    }

    #[test]
    fn chunks_spanning_pages() {
        let chunks: Vec<_> = page_chunks(GuestVirtAddr::new(0xff0), 0x20).collect();
        assert_eq!(
            chunks,
            vec![
                (GuestVirtAddr::new(0xff0), 0x10),
                (GuestVirtAddr::new(0x1000), 0x10),
            ]
        );
    }

    #[test]
    fn chunks_exact_pages() {
        let chunks: Vec<_> = page_chunks(PhysAddr::new(0x2000), 2 * PAGE_SIZE).collect();
        assert_eq!(chunks.len(), 2);
        assert!(chunks.iter().all(|&(_, len)| len == PAGE_SIZE));
    }

    #[test]
    fn chunks_zero_len() {
        assert_eq!(page_chunks(PhysAddr::new(0), 0).count(), 0);
    }

    #[test]
    fn pages_for_rounding() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
    }

    #[test]
    fn frame_handle() {
        let f = Frame::from_base(PhysAddr::new(0x3000));
        assert_eq!(f.number(), 3);
        assert_eq!(f.base(), PhysAddr::new(0x3000));
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn misaligned_frame_panics() {
        let _ = Frame::from_base(PhysAddr::new(0x3001));
    }

    #[test]
    fn debug_formatting_nonempty() {
        assert_eq!(format!("{:?}", PhysAddr::new(0x10)), "PhysAddr(0x10)");
        assert_eq!(format!("{}", DmaAddr::new(0x10)), "0x10");
    }
}
