//! Extended page tables: the hypervisor-owned second translation stage.
//!
//! Each VM has one [`Ept`] mapping guest-physical pages to system-physical
//! frames with access permissions. Two Paradice mechanisms live here:
//!
//! * the hypervisor's software walk for cross-VM copies and `mmap`
//!   (paper §5.2) uses [`Ept::translate`];
//! * device data isolation strips permissions from the *driver VM's* EPT
//!   entries covering protected memory regions (paper §4.2/§5.3) via
//!   [`Ept::set_access`], and the walker reports an [`EptViolation`] when the
//!   compromised driver VM touches them anyway.
//!
//! Real EPTs are 4-level radix trees; since no guest ever inspects EPT
//! *structure* (only the hypervisor walks them), a sorted map keyed by
//! guest-physical page number is behaviourally equivalent and much easier to
//! audit. The x86 restriction that write-only encodings do not exist is
//! enforced at [`Ept::map`]/[`Ept::set_access`] (paper §5.3(iv)).

use std::collections::BTreeMap;
use std::fmt;

use crate::addr::{GuestPhysAddr, PhysAddr, PAGE_SIZE};
use crate::perms::Access;

/// A permission violation or missing-mapping fault during an EPT access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EptViolation {
    /// The guest-physical address of the faulting access.
    pub gpa: GuestPhysAddr,
    /// The rights the access needed.
    pub attempted: Access,
    /// The rights the entry granted (`Access::NONE` if unmapped).
    pub allowed: Access,
    /// Whether any mapping existed at all.
    pub mapped: bool,
}

impl fmt::Display for EptViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mapped {
            write!(
                f,
                "EPT violation at {}: attempted {} but entry allows {}",
                self.gpa, self.attempted, self.allowed
            )
        } else {
            write!(f, "EPT violation at {}: page not mapped", self.gpa)
        }
    }
}

impl std::error::Error for EptViolation {}

/// Error returned when a mapping request is itself malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EptMapError {
    /// x86 EPTs cannot express write-without-read permissions (§5.3(iv)).
    WriteOnlyUnsupported {
        /// The requested (inexpressible) permission set.
        requested: Access,
    },
    /// Attempted to change permissions of an unmapped page.
    NotMapped {
        /// The guest-physical page in question.
        gpa: GuestPhysAddr,
    },
}

impl fmt::Display for EptMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EptMapError::WriteOnlyUnsupported { requested } => write!(
                f,
                "x86 EPT cannot encode {requested}: writable requires readable"
            ),
            EptMapError::NotMapped { gpa } => {
                write!(f, "no EPT entry for guest-physical page {gpa}")
            }
        }
    }
}

impl std::error::Error for EptMapError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EptEntry {
    frame: PhysAddr,
    access: Access,
}

/// One VM's extended page table.
///
/// Keys are guest-physical *page numbers*; values carry the backing frame and
/// the permission set.
#[derive(Debug, Default)]
pub struct Ept {
    entries: BTreeMap<u64, EptEntry>,
}

impl Ept {
    /// Creates an empty EPT.
    pub fn new() -> Self {
        Ept::default()
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maps the page containing `gpa` to the frame containing `pa`.
    ///
    /// Both addresses are truncated to their page bases. Remapping an
    /// existing page silently replaces it (the hypervisor is trusted).
    ///
    /// # Errors
    ///
    /// Returns [`EptMapError::WriteOnlyUnsupported`] for permission sets x86
    /// cannot encode.
    pub fn map(
        &mut self,
        gpa: GuestPhysAddr,
        pa: PhysAddr,
        access: Access,
    ) -> Result<(), EptMapError> {
        if !access.is_ept_expressible() {
            return Err(EptMapError::WriteOnlyUnsupported { requested: access });
        }
        self.entries.insert(
            gpa.page_number(),
            EptEntry {
                frame: pa.page_base(),
                access,
            },
        );
        Ok(())
    }

    /// Removes the mapping for the page containing `gpa`.
    ///
    /// Returns the frame that was mapped, if any. Used both for ordinary
    /// teardown and for the hypervisor-side half of `munmap` (paper §5.2:
    /// "upon unmapping … the hypervisor only needs to destroy the mappings in
    /// the EPTs").
    pub fn unmap(&mut self, gpa: GuestPhysAddr) -> Option<PhysAddr> {
        self.entries.remove(&gpa.page_number()).map(|e| e.frame)
    }

    /// Changes the permissions of an existing mapping (data isolation's
    /// permission stripping and restoration).
    ///
    /// # Errors
    ///
    /// Fails if the page is unmapped or the set is not EPT-expressible.
    pub fn set_access(
        &mut self,
        gpa: GuestPhysAddr,
        access: Access,
    ) -> Result<(), EptMapError> {
        if !access.is_ept_expressible() {
            return Err(EptMapError::WriteOnlyUnsupported { requested: access });
        }
        match self.entries.get_mut(&gpa.page_number()) {
            Some(entry) => {
                entry.access = access;
                Ok(())
            }
            None => Err(EptMapError::NotMapped {
                gpa: gpa.page_base(),
            }),
        }
    }

    /// Returns the permissions currently granted for `gpa`'s page, if mapped.
    pub fn access_of(&self, gpa: GuestPhysAddr) -> Option<Access> {
        self.entries.get(&gpa.page_number()).map(|e| e.access)
    }

    /// Translates `gpa` to a system-physical address, checking `attempted`
    /// rights; offsets within the page are preserved.
    ///
    /// # Errors
    ///
    /// Returns an [`EptViolation`] if the page is unmapped or lacks rights.
    pub fn translate(
        &self,
        gpa: GuestPhysAddr,
        attempted: Access,
    ) -> Result<PhysAddr, EptViolation> {
        match self.entries.get(&gpa.page_number()) {
            Some(entry) if entry.access.contains(attempted) => {
                Ok(entry.frame.add(gpa.page_offset()))
            }
            Some(entry) => Err(EptViolation {
                gpa,
                attempted,
                allowed: entry.access,
                mapped: true,
            }),
            None => Err(EptViolation {
                gpa,
                attempted,
                allowed: Access::NONE,
                mapped: false,
            }),
        }
    }

    /// Translates without a permission check — the hypervisor's own accesses
    /// (e.g. reading guest page tables during a walk) are not subject to the
    /// guest-visible permissions.
    pub fn translate_unchecked(&self, gpa: GuestPhysAddr) -> Option<PhysAddr> {
        self.entries
            .get(&gpa.page_number())
            .map(|e| e.frame.add(gpa.page_offset()))
    }

    /// Returns the frame backing `gpa`'s page without permission checks.
    pub fn frame_of(&self, gpa: GuestPhysAddr) -> Option<PhysAddr> {
        self.entries.get(&gpa.page_number()).map(|e| e.frame)
    }

    /// Iterates over `(guest-physical page base, frame base, access)`.
    pub fn iter(&self) -> impl Iterator<Item = (GuestPhysAddr, PhysAddr, Access)> + '_ {
        self.entries.iter().map(|(&gpn, entry)| {
            (
                GuestPhysAddr::new(gpn * PAGE_SIZE),
                entry.frame,
                entry.access,
            )
        })
    }

    /// Applies `access` to every mapped page in `[start, start + len)`,
    /// returning how many pages were changed. Unmapped pages in the range are
    /// skipped (they have no rights to strip).
    ///
    /// # Errors
    ///
    /// Fails if `access` is not EPT-expressible; no pages are modified then.
    pub fn set_access_range(
        &mut self,
        start: GuestPhysAddr,
        len: u64,
        access: Access,
    ) -> Result<usize, EptMapError> {
        if !access.is_ept_expressible() {
            return Err(EptMapError::WriteOnlyUnsupported { requested: access });
        }
        let first = start.page_number();
        let last = start.add(len.saturating_sub(1)).page_number();
        let mut changed = 0;
        for (_, entry) in self.entries.range_mut(first..=last) {
            entry.access = access;
            changed += 1;
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_roundtrip() {
        let mut ept = Ept::new();
        ept.map(
            GuestPhysAddr::new(0x2000),
            PhysAddr::new(0x9000),
            Access::RW,
        )
        .unwrap();
        let pa = ept
            .translate(GuestPhysAddr::new(0x2345), Access::READ)
            .unwrap();
        assert_eq!(pa, PhysAddr::new(0x9345));
    }

    #[test]
    fn unmapped_translation_faults() {
        let ept = Ept::new();
        let err = ept
            .translate(GuestPhysAddr::new(0x1000), Access::READ)
            .unwrap_err();
        assert!(!err.mapped);
        assert_eq!(err.allowed, Access::NONE);
    }

    #[test]
    fn permission_violation_reports_rights() {
        let mut ept = Ept::new();
        ept.map(
            GuestPhysAddr::new(0x1000),
            PhysAddr::new(0x4000),
            Access::READ,
        )
        .unwrap();
        let err = ept
            .translate(GuestPhysAddr::new(0x1000), Access::WRITE)
            .unwrap_err();
        assert!(err.mapped);
        assert_eq!(err.allowed, Access::READ);
        assert_eq!(err.attempted, Access::WRITE);
    }

    #[test]
    fn write_only_mapping_rejected() {
        let mut ept = Ept::new();
        let err = ept
            .map(
                GuestPhysAddr::new(0),
                PhysAddr::new(0),
                Access::WRITE,
            )
            .unwrap_err();
        assert_eq!(
            err,
            EptMapError::WriteOnlyUnsupported {
                requested: Access::WRITE
            }
        );
    }

    #[test]
    fn strip_and_restore_access() {
        let mut ept = Ept::new();
        let gpa = GuestPhysAddr::new(0x5000);
        ept.map(gpa, PhysAddr::new(0x8000), Access::RW).unwrap();
        ept.set_access(gpa, Access::NONE).unwrap();
        assert!(ept.translate(gpa, Access::READ).is_err());
        // translate_unchecked still works: the hypervisor itself can access.
        assert_eq!(
            ept.translate_unchecked(gpa),
            Some(PhysAddr::new(0x8000))
        );
        ept.set_access(gpa, Access::RW).unwrap();
        assert!(ept.translate(gpa, Access::WRITE).is_ok());
    }

    #[test]
    fn set_access_on_unmapped_fails() {
        let mut ept = Ept::new();
        assert!(matches!(
            ept.set_access(GuestPhysAddr::new(0x1000), Access::READ),
            Err(EptMapError::NotMapped { .. })
        ));
    }

    #[test]
    fn unmap_returns_frame() {
        let mut ept = Ept::new();
        ept.map(
            GuestPhysAddr::new(0x3000),
            PhysAddr::new(0x6000),
            Access::RW,
        )
        .unwrap();
        assert_eq!(
            ept.unmap(GuestPhysAddr::new(0x3000)),
            Some(PhysAddr::new(0x6000))
        );
        assert_eq!(ept.unmap(GuestPhysAddr::new(0x3000)), None);
        assert!(ept.is_empty());
    }

    #[test]
    fn range_stripping_covers_exactly_the_range() {
        let mut ept = Ept::new();
        for i in 0..8u64 {
            ept.map(
                GuestPhysAddr::new(i * PAGE_SIZE),
                PhysAddr::new(0x10_0000 + i * PAGE_SIZE),
                Access::RW,
            )
            .unwrap();
        }
        let changed = ept
            .set_access_range(GuestPhysAddr::new(2 * PAGE_SIZE), 3 * PAGE_SIZE, Access::NONE)
            .unwrap();
        assert_eq!(changed, 3);
        for i in 0..8u64 {
            let ok = ept
                .translate(GuestPhysAddr::new(i * PAGE_SIZE), Access::READ)
                .is_ok();
            assert_eq!(ok, !(2..5).contains(&i), "page {i}");
        }
    }

    #[test]
    fn range_stripping_rejects_write_only() {
        let mut ept = Ept::new();
        assert!(ept
            .set_access_range(GuestPhysAddr::new(0), PAGE_SIZE, Access::WRITE)
            .is_err());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut ept = Ept::new();
        for gpn in [5u64, 1, 3] {
            ept.map(
                GuestPhysAddr::new(gpn * PAGE_SIZE),
                PhysAddr::new(gpn * PAGE_SIZE),
                Access::READ,
            )
            .unwrap();
        }
        let pages: Vec<u64> = ept.iter().map(|(gpa, _, _)| gpa.page_number()).collect();
        assert_eq!(pages, vec![1, 3, 5]);
    }
}
