//! The driver-IR registry: every shipped handler IR under one roof.
//!
//! `paradice-lint` and the conformance tests need to enumerate "all the
//! drivers we ship" without knowing each module's constructor.
//! [`all_handlers`] is that enumeration; [`lint_allowlist`] carries the
//! recorded justifications for the few places where a scaled driver's
//! behaviour deviates from its Linux `_IOC` declaration on purpose.
//!
//! Handlers that had no IR before (camera, audio, netmap, evdev) declare it
//! here, mirroring exactly the `MemOps` calls their `ioctl`
//! implementations make — the same honesty contract the GPU drivers'
//! integration tests enforce.

use std::sync::OnceLock;

use paradice_analyzer::ir::{Expr, Handler, Stmt, VarId};
use paradice_analyzer::lint::{AllowEntry, DiagCode};

use crate::audio::PCM_HW_PARAMS;
use crate::camera::{
    VIDIOC_DQBUF, VIDIOC_QBUF, VIDIOC_QUERYBUF, VIDIOC_QUERYCAP, VIDIOC_REQBUFS, VIDIOC_S_FMT,
};
use crate::gpu::driver::RADEON_GEM_SET_TILING;
use crate::gpu::i915::i915_handler_ir;
use crate::gpu::ir::{radeon_handler_2_6_35, radeon_handler_3_2_0};
use crate::netmap::{NIOCGINFO, NIOCREGIF};

fn v(n: u32) -> VarId {
    VarId(n)
}

fn copy_in(len: u64) -> Stmt {
    Stmt::CopyFromUser {
        dst: v(0),
        src: Expr::Arg,
        len: Expr::Const(len),
    }
}

fn copy_out(len: u64) -> Stmt {
    Stmt::CopyToUser {
        dst: Expr::Arg,
        len: Expr::Const(len),
    }
}

/// The V4L2/UVC camera driver's handler IR (see [`crate::camera`]).
pub fn camera_handler_ir() -> Handler {
    Handler::single(vec![Stmt::SwitchCmd {
        arms: vec![
            (VIDIOC_QUERYCAP.raw(), vec![copy_out(32)]),
            (VIDIOC_S_FMT.raw(), vec![copy_in(16), copy_out(16)]),
            (VIDIOC_REQBUFS.raw(), vec![copy_in(4), copy_out(4)]),
            (VIDIOC_QUERYBUF.raw(), vec![copy_in(16), copy_out(16)]),
            // The scaled driver only reads the buffer index; the writeback
            // the Linux ABI declares is allowlisted (`OG002`).
            (VIDIOC_QBUF.raw(), vec![copy_in(4)]),
            (VIDIOC_DQBUF.raw(), vec![copy_out(16)]),
        ],
        default: vec![Stmt::Return],
    }])
}

/// The PCM/snd-hda-intel audio driver's handler IR (see [`crate::audio`]).
pub fn audio_handler_ir() -> Handler {
    Handler::single(vec![Stmt::SwitchCmd {
        arms: vec![(PCM_HW_PARAMS.raw(), vec![copy_in(12), copy_out(12)])],
        default: vec![Stmt::Return],
    }])
}

/// The netmap/e1000e NIC driver's handler IR (see [`crate::netmap`]).
pub fn netmap_handler_ir() -> Handler {
    Handler::single(vec![Stmt::SwitchCmd {
        arms: vec![
            // Both commands fill a struct unconditionally and never read
            // one; the `_IOWR` declarations' from-user halves are
            // allowlisted (`OG002`).
            (NIOCGINFO.raw(), vec![copy_out(8)]),
            (NIOCREGIF.raw(), vec![copy_out(16)]),
        ],
        default: vec![Stmt::Return],
    }])
}

/// The evdev input driver's handler IR: the scaled driver has no ioctls
/// (events flow through `read`), so the handler is a bare return.
pub fn evdev_handler_ir() -> Handler {
    Handler::single(vec![Stmt::Return])
}

/// Every shipped driver's handler IR, as `(name, handler)` pairs. Names are
/// stable and appear in lint diagnostics and allowlist entries.
pub fn all_handlers() -> Vec<(&'static str, &'static Handler)> {
    static HANDLERS: OnceLock<Vec<(&'static str, Handler)>> = OnceLock::new();
    HANDLERS
        .get_or_init(|| {
            vec![
                ("radeon-2.6.35", radeon_handler_2_6_35()),
                ("radeon-3.2.0", radeon_handler_3_2_0()),
                ("i915", i915_handler_ir()),
                ("camera-uvc", camera_handler_ir()),
                ("audio-hda", audio_handler_ir()),
                ("netmap-e1000e", netmap_handler_ir()),
                ("evdev", evdev_handler_ir()),
            ]
        })
        .iter()
        .map(|(name, handler)| (*name, handler))
        .collect()
}

/// Recorded justifications for shipped drivers' known deviations. Every
/// entry names a command and explains itself; `paradice-lint` downgrades
/// the matching finding to info instead of failing.
pub fn lint_allowlist() -> Vec<AllowEntry> {
    vec![
        AllowEntry::new(
            "radeon-3.2.0",
            DiagCode::Og002,
            Some(RADEON_GEM_SET_TILING.raw()),
            "GEM_SET_TILING keeps the upstream DRM_IOWR number; the scaled driver \
             applies the tiling parameters without echoing them back",
        ),
        AllowEntry::new(
            "camera-uvc",
            DiagCode::Og002,
            Some(VIDIOC_QBUF.raw()),
            "VIDIOC_QBUF keeps the Linux _IOWR number for ABI fidelity; the scaled \
             driver only reads the queue index and has no flags to write back",
        ),
        AllowEntry::new(
            "netmap-e1000e",
            DiagCode::Og002,
            Some(NIOCGINFO.raw()),
            "NIOCGINFO is _IOWR upstream (the request names an interface); the scaled \
             driver has a single port and ignores the request struct",
        ),
        AllowEntry::new(
            "netmap-e1000e",
            DiagCode::Og002,
            Some(NIOCREGIF.raw()),
            "NIOCREGIF is _IOWR upstream; the scaled driver registers its only port \
             and ignores the request struct",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_analyzer::lint::{apply_allowlist, has_errors, lint_handler, Severity};

    #[test]
    fn registry_covers_the_paper_roster() {
        let names: Vec<&str> = all_handlers().iter().map(|(name, _)| *name).collect();
        for expected in [
            "radeon-2.6.35",
            "radeon-3.2.0",
            "i915",
            "camera-uvc",
            "audio-hda",
            "netmap-e1000e",
            "evdev",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn shipped_drivers_lint_clean_or_allowlisted() {
        let allowlist = lint_allowlist();
        for (name, handler) in all_handlers() {
            let mut diags = lint_handler(name, handler);
            apply_allowlist(&mut diags, &allowlist);
            assert!(
                !has_errors(&diags),
                "driver {name} has lint errors: {:#?}",
                diags
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .map(|d| d.render())
                    .collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn allowlist_entries_all_fire() {
        // A stale allowlist entry is a lie; every entry must match a real
        // finding on the driver it names.
        let allowlist = lint_allowlist();
        for entry in &allowlist {
            let (_, handler) = all_handlers()
                .into_iter()
                .find(|(name, _)| *name == entry.driver)
                .expect("allowlist names a registered driver");
            let mut diags = lint_handler(&entry.driver, handler);
            apply_allowlist(&mut diags, std::slice::from_ref(entry));
            assert!(
                diags.iter().any(|d| d.allowlisted),
                "allowlist entry for {} / {} matched nothing",
                entry.driver,
                entry.code,
            );
        }
    }

    #[test]
    fn handler_references_are_stable() {
        let a = all_handlers();
        let b = all_handlers();
        assert_eq!(a.len(), b.len());
        for ((name_a, ha), (name_b, hb)) in a.iter().zip(b.iter()) {
            assert_eq!(name_a, name_b);
            assert!(std::ptr::eq(*ha, *hb));
        }
    }
}
