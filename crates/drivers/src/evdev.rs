//! Input devices: evdev-style mouse and keyboard.
//!
//! The input path exercises the paper's *asynchronous notification* plumbing
//! (§2.1, §5.1): the device reports an event, the driver queues it per
//! client and fires `fasync`; under Paradice the CVD backend forwards the
//! signal to the frontend over the shared-page channel, and the application's
//! subsequent `read` is forwarded back. §6.1.5 measures exactly this path
//! for the mouse (39/55/296/179 µs for native / assignment / Paradice /
//! Paradice-polling).

use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use paradice_devfs::fasync::{FasyncRegistry, Signal};
use paradice_devfs::fileops::{FileOps, OpenContext, PollEvents, UserBuffer};
use paradice_devfs::registry::FileHandleId;
use paradice_devfs::{Errno, MemOps};

use crate::env::KernelEnv;

/// Size of one serialized input event: 8-byte timestamp (µs), 2-byte type,
/// 2-byte code, 4-byte value (the 32-bit `struct input_event` layout).
pub const EVENT_BYTES: u64 = 16;

/// Event types (Linux `EV_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Relative axis (mouse motion), `EV_REL`.
    Relative,
    /// Key/button, `EV_KEY`.
    Key,
    /// Synchronization marker, `EV_SYN`.
    Sync,
}

impl EventKind {
    const fn code(self) -> u16 {
        match self {
            EventKind::Sync => 0,
            EventKind::Key => 1,
            EventKind::Relative => 2,
        }
    }

    fn from_code(code: u16) -> Option<EventKind> {
        match code {
            0 => Some(EventKind::Sync),
            1 => Some(EventKind::Key),
            2 => Some(EventKind::Relative),
            _ => None,
        }
    }
}

/// One input event as reported by the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputEvent {
    /// Device timestamp in microseconds of virtual time.
    pub time_us: u64,
    /// Event type.
    pub kind: EventKind,
    /// Event code (`REL_X`, `KEY_A`, …).
    pub code: u16,
    /// Event value (relative delta, key state).
    pub value: i32,
}

impl InputEvent {
    /// Serializes to the 16-byte wire layout.
    pub fn to_bytes(&self) -> [u8; EVENT_BYTES as usize] {
        let mut bytes = [0u8; EVENT_BYTES as usize];
        bytes[0..8].copy_from_slice(&self.time_us.to_le_bytes());
        bytes[8..10].copy_from_slice(&self.kind.code().to_le_bytes());
        bytes[10..12].copy_from_slice(&self.code.to_le_bytes());
        bytes[12..16].copy_from_slice(&self.value.to_le_bytes());
        bytes
    }

    /// Parses the 16-byte wire layout.
    pub fn from_bytes(bytes: &[u8; EVENT_BYTES as usize]) -> Option<InputEvent> {
        Some(InputEvent {
            time_us: u64::from_le_bytes(bytes[0..8].try_into().expect("len 8")),
            kind: EventKind::from_code(u16::from_le_bytes(
                bytes[8..10].try_into().expect("len 2"),
            ))?,
            code: u16::from_le_bytes(bytes[10..12].try_into().expect("len 2")),
            value: i32::from_le_bytes(bytes[12..16].try_into().expect("len 4")),
        })
    }
}

/// Per-client event queue capacity.
const CLIENT_QUEUE_CAP: usize = 256;

/// The evdev driver: queues device events per client, supports `read`,
/// `poll` and `fasync`.
pub struct EvdevDriver {
    env: Rc<KernelEnv>,
    name: &'static str,
    queues: BTreeMap<FileHandleId, VecDeque<InputEvent>>,
    fasync: FasyncRegistry,
    /// Virtual time the most recent event was reported to the driver — the
    /// start of the §6.1.5 latency measurement.
    last_report_ns: Option<u64>,
    /// Virtual time the most recent `read` reached the driver — the end of
    /// the §6.1.5 latency measurement.
    last_read_arrival_ns: Option<u64>,
    dropped_events: u64,
}

impl std::fmt::Debug for EvdevDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvdevDriver")
            .field("name", &self.name)
            .field("clients", &self.queues.len())
            .field("dropped_events", &self.dropped_events)
            .finish()
    }
}

impl EvdevDriver {
    /// Creates the driver (e.g. `"evdev/usbmouse"`).
    pub fn new(env: Rc<KernelEnv>, name: &'static str) -> Self {
        EvdevDriver {
            env,
            name,
            queues: BTreeMap::new(),
            fasync: FasyncRegistry::new(),
            last_report_ns: None,
            last_read_arrival_ns: None,
            dropped_events: 0,
        }
    }

    /// The Dell USB mouse of Table 1.
    pub fn usb_mouse(env: Rc<KernelEnv>) -> Self {
        EvdevDriver::new(env, "evdev/usbmouse")
    }

    /// The Dell USB keyboard of Table 1.
    pub fn usb_keyboard(env: Rc<KernelEnv>) -> Self {
        EvdevDriver::new(env, "evdev/usbkbd")
    }

    /// The device interrupt handler: the hardware reported `event`. Queues
    /// it for every client and returns the `fasync` signals to deliver
    /// (which the kernel — or the CVD backend — routes to subscribers).
    pub fn report_event(&mut self, event: InputEvent) -> Vec<Signal> {
        self.last_report_ns = Some(self.env.now_ns());
        for queue in self.queues.values_mut() {
            if queue.len() >= CLIENT_QUEUE_CAP {
                queue.pop_front();
                self.dropped_events += 1;
            }
            queue.push_back(event);
        }
        self.fasync.signals()
    }

    /// Start of the latest event's latency measurement (§6.1.5).
    pub fn last_report_ns(&self) -> Option<u64> {
        self.last_report_ns
    }

    /// When the latest `read` reached the driver (§6.1.5: "we measure the
    /// time from when the mouse event is reported to the device driver to
    /// when the read operation issued by the application reaches the
    /// driver").
    pub fn last_read_arrival_ns(&self) -> Option<u64> {
        self.last_read_arrival_ns
    }

    /// Events dropped to queue overflow.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Pending events for a client (tests).
    pub fn pending(&self, handle: FileHandleId) -> usize {
        self.queues.get(&handle).map_or(0, |q| q.len())
    }
}

impl FileOps for EvdevDriver {
    fn driver_name(&self) -> &str {
        self.name
    }

    fn open(&mut self, ctx: OpenContext) -> Result<(), Errno> {
        self.queues.insert(ctx.handle, VecDeque::new());
        Ok(())
    }

    fn release(&mut self, ctx: OpenContext) -> Result<(), Errno> {
        self.queues.remove(&ctx.handle);
        self.fasync.drop_handle(ctx.handle);
        Ok(())
    }

    fn read(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        buf: UserBuffer,
    ) -> Result<u64, Errno> {
        self.last_read_arrival_ns = Some(self.env.now_ns());
        let queue = self.queues.get_mut(&ctx.handle).ok_or(Errno::Ebadf)?;
        if buf.len < EVENT_BYTES {
            return Err(Errno::Einval);
        }
        if queue.is_empty() {
            return Err(Errno::Eagain);
        }
        let max_events = (buf.len / EVENT_BYTES) as usize;
        let mut written = 0u64;
        let mut cursor = buf.addr;
        for _ in 0..max_events {
            let Some(event) = queue.pop_front() else {
                break;
            };
            mem.copy_to_user(cursor, &event.to_bytes())?;
            cursor = cursor.add(EVENT_BYTES);
            written += EVENT_BYTES;
        }
        Ok(written)
    }

    fn poll(&mut self, ctx: OpenContext) -> Result<PollEvents, Errno> {
        let queue = self.queues.get(&ctx.handle).ok_or(Errno::Ebadf)?;
        Ok(if queue.is_empty() {
            PollEvents::NONE
        } else {
            PollEvents::IN
        })
    }

    fn fasync(&mut self, ctx: OpenContext, on: bool) -> Result<(), Errno> {
        self.fasync.set(ctx.task, ctx.handle, on);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_devfs::fileops::{OpenFlags, TaskId};
    use paradice_devfs::memops::BufferMemOps;
    use paradice_hypervisor::hv::{DataIsolation, Hypervisor};
    use paradice_hypervisor::vm::VmRole;
    use paradice_hypervisor::{CostModel, SimClock};
    use paradice_mem::{GuestVirtAddr, PAGE_SIZE};
    use std::cell::RefCell;

    fn driver() -> EvdevDriver {
        let mut hv = Hypervisor::new(256, SimClock::new(), CostModel::default());
        let vm = hv.create_vm(VmRole::Driver, 16 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(vm, DataIsolation::Disabled).unwrap();
        let env = KernelEnv::new(Rc::new(RefCell::new(hv)), vm, domain, false);
        EvdevDriver::usb_mouse(env)
    }

    fn ctx(handle: u64, task: u64) -> OpenContext {
        OpenContext {
            handle: FileHandleId(handle),
            task: TaskId(task),
            flags: OpenFlags::RDONLY.nonblocking(),
        }
    }

    fn motion(dx: i32) -> InputEvent {
        InputEvent {
            time_us: 0,
            kind: EventKind::Relative,
            code: 0, // REL_X
            value: dx,
        }
    }

    #[test]
    fn event_wire_roundtrip() {
        let event = InputEvent {
            time_us: 123_456,
            kind: EventKind::Key,
            code: 30,
            value: 1,
        };
        assert_eq!(InputEvent::from_bytes(&event.to_bytes()), Some(event));
    }

    #[test]
    fn read_returns_queued_events() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(256);
        drv.open(ctx(1, 1)).unwrap();
        drv.report_event(motion(5));
        drv.report_event(motion(-3));
        let n = drv
            .read(ctx(1, 1), &mut mem, UserBuffer::new(GuestVirtAddr::new(0), 64))
            .unwrap();
        assert_eq!(n, 2 * EVENT_BYTES);
        let first = InputEvent::from_bytes(mem.bytes()[0..16].try_into().unwrap()).unwrap();
        assert_eq!(first.value, 5);
        let second = InputEvent::from_bytes(mem.bytes()[16..32].try_into().unwrap()).unwrap();
        assert_eq!(second.value, -3);
    }

    #[test]
    fn empty_queue_is_eagain() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(64);
        drv.open(ctx(1, 1)).unwrap();
        assert_eq!(
            drv.read(ctx(1, 1), &mut mem, UserBuffer::new(GuestVirtAddr::new(0), 16)),
            Err(Errno::Eagain)
        );
    }

    #[test]
    fn tiny_buffer_is_einval() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(64);
        drv.open(ctx(1, 1)).unwrap();
        assert_eq!(
            drv.read(ctx(1, 1), &mut mem, UserBuffer::new(GuestVirtAddr::new(0), 8)),
            Err(Errno::Einval)
        );
    }

    #[test]
    fn poll_reflects_queue() {
        let mut drv = driver();
        drv.open(ctx(1, 1)).unwrap();
        assert_eq!(drv.poll(ctx(1, 1)).unwrap(), PollEvents::NONE);
        drv.report_event(motion(1));
        assert_eq!(drv.poll(ctx(1, 1)).unwrap(), PollEvents::IN);
    }

    #[test]
    fn fasync_signals_on_event() {
        let mut drv = driver();
        drv.open(ctx(1, 7)).unwrap();
        drv.fasync(ctx(1, 7), true).unwrap();
        let signals = drv.report_event(motion(1));
        assert_eq!(signals.len(), 1);
        assert_eq!(signals[0].task, TaskId(7));
        drv.fasync(ctx(1, 7), false).unwrap();
        assert!(drv.report_event(motion(1)).is_empty());
    }

    #[test]
    fn each_client_gets_every_event() {
        let mut drv = driver();
        drv.open(ctx(1, 1)).unwrap();
        drv.open(ctx(2, 2)).unwrap();
        drv.report_event(motion(9));
        assert_eq!(drv.pending(FileHandleId(1)), 1);
        assert_eq!(drv.pending(FileHandleId(2)), 1);
    }

    #[test]
    fn queue_overflow_drops_oldest() {
        let mut drv = driver();
        drv.open(ctx(1, 1)).unwrap();
        for i in 0..(CLIENT_QUEUE_CAP as i32 + 10) {
            drv.report_event(motion(i));
        }
        assert_eq!(drv.pending(FileHandleId(1)), CLIENT_QUEUE_CAP);
        assert_eq!(drv.dropped_events(), 10);
    }

    #[test]
    fn release_cleans_up() {
        let mut drv = driver();
        drv.open(ctx(1, 1)).unwrap();
        drv.fasync(ctx(1, 1), true).unwrap();
        drv.release(ctx(1, 1)).unwrap();
        assert!(drv.report_event(motion(1)).is_empty());
        let mut mem = BufferMemOps::new(64);
        assert_eq!(
            drv.read(ctx(1, 1), &mut mem, UserBuffer::new(GuestVirtAddr::new(0), 16)),
            Err(Errno::Ebadf)
        );
    }

    #[test]
    fn latency_probes_record_times() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(64);
        drv.open(ctx(1, 1)).unwrap();
        drv.env.advance_ns(1_000);
        drv.report_event(motion(2));
        assert_eq!(drv.last_report_ns(), Some(1_000));
        drv.env.advance_ns(39_000);
        drv.read(ctx(1, 1), &mut mem, UserBuffer::new(GuestVirtAddr::new(0), 16))
            .unwrap();
        assert_eq!(drv.last_read_arrival_ns(), Some(40_000));
    }
}
