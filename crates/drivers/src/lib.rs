//! Device models and device drivers for the Paradice reproduction.
//!
//! Each module pairs a *device model* (hardware behaviour plus a virtual-time
//! cost model) with a *device driver* implementing
//! [`FileOps`](paradice_devfs::FileOps). The drivers touch process memory
//! **only** through the [`MemOps`](paradice_devfs::MemOps) seam, which is
//! what lets the same driver code run natively, under device assignment, and
//! under Paradice with hypervisor-validated memory operations — the paper's
//! unmodified-driver property (§3.1).
//!
//! The device roster mirrors the paper's Table 1:
//!
//! | Module | Device | Driver |
//! |---|---|---|
//! | [`gpu`] | ATI Radeon HD 6450 (Evergreen) | DRM/Radeon |
//! | [`evdev`] | Dell USB mouse & keyboard | evdev |
//! | [`camera`] | Logitech HD Pro Webcam C920 | V4L2/UVC |
//! | [`audio`] | Intel Panther Point HD Audio | PCM/snd-hda-intel |
//! | [`netmap`] | Intel Gigabit Adapter | netmap/e1000e |
//!
//! The GPU driver additionally carries the paper's device-data-isolation
//! patch set (§5.3) behind [`gpu::isolation`], and ships its ioctl-handler
//! IR ([`gpu::ir`]) for the static analyzer.
//!
//! [`registry`] enumerates every shipped handler IR for `paradice-lint`
//! and the conformance tests, together with the recorded allowlist for
//! known ABI deviations.

pub mod audio;
pub mod camera;
pub mod env;
pub mod evdev;
pub mod gpu;
pub mod netmap;
pub mod registry;

pub use env::{DmaPool, KernelEnv};
pub use registry::{all_handlers, lint_allowlist};
