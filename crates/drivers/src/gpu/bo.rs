//! GEM buffer objects and the VRAM allocator.
//!
//! Applications move data to the GPU through *buffer objects* in either
//! VRAM (render targets, textures) or GTT — system memory pages the GPU
//! reaches through DMA. "Applications only use mmap to move graphics
//! textures and GPGPU input data to the device" (§4.2), which is why
//! Paradice's data-isolation policy protects exactly the mmap'd buffers:
//! VRAM objects live inside the guest's device-memory region and GTT
//! objects come from the guest's protected page pool.

use std::collections::BTreeMap;
use std::fmt;

use paradice_devfs::fileops::TaskId;
use paradice_devfs::Errno;
use paradice_mem::{GuestPhysAddr, PAGE_SIZE};

/// Where a buffer object lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoDomain {
    /// Device memory: `[offset, offset + len)` of VRAM.
    Vram {
        /// Byte offset into VRAM.
        offset: u64,
    },
    /// GTT: driver system-memory pages the device DMAs to.
    Gtt {
        /// Backing pages (driver-physical).
        pages: Vec<GuestPhysAddr>,
    },
}

/// One GEM buffer object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferObject {
    /// GEM handle.
    pub handle: u32,
    /// Size in bytes (page-aligned allocation).
    pub size: u64,
    /// Placement.
    pub domain: BoDomain,
    /// The task that created it.
    pub owner: TaskId,
    /// Whether mappings of this object populate lazily through the page
    /// fault handler instead of eagerly at `mmap` time (§2.1).
    pub lazy: bool,
}

impl BufferObject {
    /// Number of whole pages backing the object.
    pub fn pages(&self) -> u64 {
        self.size.div_ceil(PAGE_SIZE)
    }
}

/// A first-fit free-list allocator over a VRAM range.
///
/// Under data isolation each guest's region gets its own allocator over its
/// slice of VRAM; without isolation one allocator spans the whole memory.
pub struct VramAllocator {
    range_lo: u64,
    range_hi: u64,
    /// Sorted, coalesced free extents `(offset, len)`.
    free: Vec<(u64, u64)>,
    allocated: BTreeMap<u64, u64>,
}

impl fmt::Debug for VramAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VramAllocator")
            .field("range", &(self.range_lo..self.range_hi))
            .field("free_extents", &self.free.len())
            .field("live_allocations", &self.allocated.len())
            .finish()
    }
}

impl VramAllocator {
    /// Creates an allocator over `[lo, hi)` of VRAM.
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted — a configuration bug.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "inverted VRAM range");
        VramAllocator {
            range_lo: lo,
            range_hi: hi,
            free: vec![(lo, hi - lo)],
            allocated: BTreeMap::new(),
        }
    }

    /// The managed range.
    pub fn range(&self) -> (u64, u64) {
        (self.range_lo, self.range_hi)
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free.iter().map(|&(_, len)| len).sum()
    }

    /// Allocates `size` bytes (rounded up to pages), first-fit.
    ///
    /// # Errors
    ///
    /// `ENOMEM` when no extent fits — the paper notes that partitioning
    /// VRAM between regions "can affect the performance of guest
    /// applications that require more memory than their share" (§4.2); this
    /// is where that bites.
    pub fn alloc(&mut self, size: u64) -> Result<u64, Errno> {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        if size == 0 {
            return Err(Errno::Einval);
        }
        for i in 0..self.free.len() {
            let (offset, len) = self.free[i];
            if len >= size {
                if len == size {
                    self.free.remove(i);
                } else {
                    self.free[i] = (offset + size, len - size);
                }
                self.allocated.insert(offset, size);
                return Ok(offset);
            }
        }
        Err(Errno::Enomem)
    }

    /// Frees the allocation at `offset`, coalescing neighbours.
    ///
    /// # Errors
    ///
    /// `EINVAL` for unknown offsets.
    pub fn free(&mut self, offset: u64) -> Result<(), Errno> {
        let len = self.allocated.remove(&offset).ok_or(Errno::Einval)?;
        let pos = self
            .free
            .binary_search_by_key(&offset, |&(o, _)| o)
            .unwrap_err();
        self.free.insert(pos, (offset, len));
        // Coalesce around `pos`.
        if pos + 1 < self.free.len() {
            let (next_off, next_len) = self.free[pos + 1];
            let (cur_off, cur_len) = self.free[pos];
            if cur_off + cur_len == next_off {
                self.free[pos] = (cur_off, cur_len + next_len);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (prev_off, prev_len) = self.free[pos - 1];
            let (cur_off, cur_len) = self.free[pos];
            if prev_off + prev_len == cur_off {
                self.free[pos - 1] = (prev_off, prev_len + cur_len);
                self.free.remove(pos);
            }
        }
        Ok(())
    }

    /// Whether `[offset, offset+len)` lies inside this allocator's range.
    pub fn contains(&self, offset: u64, len: u64) -> bool {
        offset >= self.range_lo && offset.saturating_add(len) <= self.range_hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut vram = VramAllocator::new(0, 64 * PAGE_SIZE);
        let a = vram.alloc(PAGE_SIZE).unwrap();
        let b = vram.alloc(3 * PAGE_SIZE).unwrap();
        assert_ne!(a, b);
        assert_eq!(vram.free_bytes(), 60 * PAGE_SIZE);
        vram.free(a).unwrap();
        vram.free(b).unwrap();
        assert_eq!(vram.free_bytes(), 64 * PAGE_SIZE);
        // Fully coalesced: one extent again.
        assert_eq!(vram.free.len(), 1);
    }

    #[test]
    fn sizes_round_to_pages() {
        let mut vram = VramAllocator::new(0, 4 * PAGE_SIZE);
        let a = vram.alloc(1).unwrap();
        assert_eq!(vram.free_bytes(), 3 * PAGE_SIZE);
        vram.free(a).unwrap();
    }

    #[test]
    fn exhaustion_is_enomem() {
        let mut vram = VramAllocator::new(0, 2 * PAGE_SIZE);
        vram.alloc(PAGE_SIZE).unwrap();
        vram.alloc(PAGE_SIZE).unwrap();
        assert_eq!(vram.alloc(PAGE_SIZE), Err(Errno::Enomem));
    }

    #[test]
    fn fragmentation_then_coalesce() {
        let mut vram = VramAllocator::new(0, 8 * PAGE_SIZE);
        let a = vram.alloc(2 * PAGE_SIZE).unwrap();
        let b = vram.alloc(2 * PAGE_SIZE).unwrap();
        let c = vram.alloc(2 * PAGE_SIZE).unwrap();
        vram.free(b).unwrap();
        // A 4-page allocation must not fit in the 2-page hole…
        assert!(vram.alloc(4 * PAGE_SIZE).is_err());
        // …until the hole coalesces with its neighbour.
        vram.free(c).unwrap();
        let d = vram.alloc(4 * PAGE_SIZE).unwrap();
        assert_eq!(d, b);
        vram.free(a).unwrap();
        vram.free(d).unwrap();
    }

    #[test]
    fn double_free_rejected() {
        let mut vram = VramAllocator::new(0, 4 * PAGE_SIZE);
        let a = vram.alloc(PAGE_SIZE).unwrap();
        vram.free(a).unwrap();
        assert_eq!(vram.free(a), Err(Errno::Einval));
    }

    #[test]
    fn regioned_allocator_respects_bounds() {
        // A region covering the upper half of an 8-page VRAM.
        let mut region = VramAllocator::new(4 * PAGE_SIZE, 8 * PAGE_SIZE);
        let offset = region.alloc(PAGE_SIZE).unwrap();
        assert!(offset >= 4 * PAGE_SIZE);
        assert!(region.contains(offset, PAGE_SIZE));
        assert!(!region.contains(0, PAGE_SIZE));
    }

    #[test]
    fn zero_sized_alloc_rejected() {
        let mut vram = VramAllocator::new(0, PAGE_SIZE);
        assert_eq!(vram.alloc(0), Err(Errno::Einval));
    }

    #[test]
    fn buffer_object_pages() {
        let bo = BufferObject {
            handle: 1,
            size: PAGE_SIZE + 1,
            domain: BoDomain::Vram { offset: 0 },
            owner: TaskId(1),
            lazy: false,
        };
        assert_eq!(bo.pages(), 2);
    }
}
