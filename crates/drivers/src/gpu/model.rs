//! The Evergreen-class GPU hardware model.
//!
//! What matters to Paradice about a GPU:
//!
//! * it executes command buffers asynchronously and signals completion with
//!   **fences** — modeled as a FIFO engine on the virtual clock;
//! * it writes its **interrupt reason into system memory**, not a register:
//!   "the device writes the reason for the interrupt to this pre-allocated
//!   system buffer and then interrupts the driver" (§5.3) — which is exactly
//!   what breaks under data isolation and forces the fence-only-interrupt
//!   workaround;
//! * its VRAM accesses go through the **memory-controller aperture**, the
//!   two bound registers the hypervisor confiscates for device-memory
//!   isolation (§4.2);
//! * it reads texture uploads from system memory through **DMA** (IOMMU).

use std::collections::VecDeque;
use std::rc::Rc;

use paradice_devfs::Errno;
use paradice_mem::{DmaAddr, GuestPhysAddr, PAGE_SIZE};

use crate::env::KernelEnv;

/// Compute-engine throughput model: virtual nanoseconds per multiply-add in
/// a GEMM kernel. Calibrated so a 1000×1000 matrix multiplication runs in
/// the ~10 s regime of the paper's Figure 5 (Gallium Compute on an HD 6450
/// is slow).
pub const COMPUTE_NS_PER_ELEMENT_OP: u64 = 10;

/// Display refresh period (60 Hz VSync).
pub const VSYNC_PERIOD_NS: u64 = 16_666_667;

/// Interrupt reason codes the device writes to its status ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrqReason {
    /// A fence completed.
    Fence,
    /// Vertical sync.
    VSync,
}

impl IrqReason {
    const fn code(self) -> u32 {
        match self {
            IrqReason::Fence => 1,
            IrqReason::VSync => 2,
        }
    }
}

/// Engine scheduling policy.
///
/// The paper leaves GPU time-sharing to the driver and names better
/// scheduling (TimeGraph-style) as the fix for its fairness limitation
/// (§8: "Paradice does not guarantee fair and efficient scheduling of the
/// device between guest VMs. The solution is to add better scheduling
/// support to the device driver"). [`GpuSched::Fifo`] is the stock driver's
/// behaviour; [`GpuSched::FairShare`] is that fix: queued-but-unstarted
/// work is ordered by least-consumed engine time per guest.
///
/// Fair share is the *default* since ISSUE 10 promoted it from ablation
/// knob to the shipped discipline (it matches `paradice_cvd::fairq`, the
/// backend's cross-guest drain). The ablation now toggles *back* to FIFO
/// to reproduce the §8 starvation baseline. With a single submitting
/// guest the two are identical (least-consumed over one owner degrades to
/// submission order), so the flip is invisible off the contended path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GpuSched {
    /// Global submission order (stock driver; the ablation baseline).
    Fifo,
    /// Weighted-fair queueing across submitting guests (the §8 extension;
    /// the default).
    #[default]
    FairShare,
}

#[derive(Debug, Clone, Copy)]
struct Job {
    fence: u64,
    cost_ns: u64,
    /// Submitting guest (`None` = host/driver-local).
    owner: Option<u32>,
    /// Whether this job must start on a vblank boundary.
    vsync_paced: bool,
    start_ns: u64,
    finish_ns: u64,
    retired: bool,
}

/// A command parsed out of an indirect buffer (IB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuCommand {
    /// Render work costing `cost_ns` of engine time, targeting the VRAM
    /// range `[target_offset, target_offset + target_len)`.
    Render {
        /// Engine time.
        cost_ns: u64,
        /// Render-target offset in VRAM.
        target_offset: u64,
        /// Render-target length.
        target_len: u64,
    },
    /// A GEMM dispatch of the given matrix order.
    Compute {
        /// Square-matrix order.
        order: u64,
    },
    /// DMA a buffer from system memory into VRAM (texture upload).
    Upload {
        /// Source page in system memory (DMA address).
        src: DmaAddr,
        /// Destination offset in VRAM.
        dst_offset: u64,
        /// Bytes to move.
        len: u64,
    },
}

impl GpuCommand {
    fn engine_cost_ns(&self) -> u64 {
        match self {
            GpuCommand::Render { cost_ns, .. } => *cost_ns,
            GpuCommand::Compute { order } => {
                // order³ multiply-adds.
                order
                    .saturating_mul(*order)
                    .saturating_mul(*order)
                    .saturating_mul(COMPUTE_NS_PER_ELEMENT_OP)
            }
            // ~8 GB/s effective copy engine.
            GpuCommand::Upload { len, .. } => len / 8,
        }
    }
}

/// The GPU device model.
pub struct RadeonGpu {
    env: Rc<KernelEnv>,
    /// BAR base of VRAM in driver-physical space.
    bar_base: GuestPhysAddr,
    vram_bytes: u64,
    /// When the engine finishes everything accepted so far.
    busy_until_ns: u64,
    /// Last fence number handed out.
    fence_issued: u64,
    /// All live jobs, in submission order; starts/finishes are recomputed
    /// for not-yet-started jobs whenever new work arrives (the scheduler).
    jobs: VecDeque<Job>,
    /// Highest fence with *all* earlier fences retired.
    fence_completed: u64,
    /// Scheduling policy.
    sched: GpuSched,
    /// The interrupt-status ring page in *system memory* (driver-allocated).
    irq_status_page: Option<GuestPhysAddr>,
    irq_write_index: u64,
    /// VSync pacing: when enabled, each render is deferred to the next
    /// vertical blank, capping FPS at 60 (§6.1.3 disables it for that
    /// reason; data isolation forcibly loses it, §5.3).
    vsync_enabled: bool,
    /// Total engine-time accounted (for utilization reports).
    engine_time_ns: u64,
}

impl std::fmt::Debug for RadeonGpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadeonGpu")
            .field("vram_bytes", &self.vram_bytes)
            .field("fence_issued", &self.fence_issued)
            .field("busy_until_ns", &self.busy_until_ns)
            .field("vsync_enabled", &self.vsync_enabled)
            .finish()
    }
}

impl RadeonGpu {
    /// Creates the GPU with its VRAM BAR already mapped by the hypervisor.
    pub fn new(env: Rc<KernelEnv>, bar_base: GuestPhysAddr, vram_bytes: u64) -> Self {
        RadeonGpu {
            env,
            bar_base,
            vram_bytes,
            busy_until_ns: 0,
            fence_issued: 0,
            jobs: VecDeque::new(),
            fence_completed: 0,
            sched: GpuSched::default(),
            irq_status_page: None,
            irq_write_index: 0,
            vsync_enabled: false,
            engine_time_ns: 0,
        }
    }

    /// VRAM size in bytes.
    pub fn vram_bytes(&self) -> u64 {
        self.vram_bytes
    }

    /// The VRAM BAR base in driver-physical space.
    pub fn bar_base(&self) -> GuestPhysAddr {
        self.bar_base
    }

    /// Installs the interrupt-status ring page (driver init). The page is
    /// system memory the *device* writes — under data isolation the driver
    /// must not read it (§5.3).
    pub fn set_irq_status_page(&mut self, page: GuestPhysAddr) {
        self.irq_status_page = Some(page);
    }

    /// The interrupt-status ring page, if configured.
    pub fn irq_status_page(&self) -> Option<GuestPhysAddr> {
        self.irq_status_page
    }

    /// Selects the engine scheduling policy (the §8 fairness extension).
    pub fn set_sched(&mut self, sched: GpuSched) {
        self.sched = sched;
    }

    /// The active scheduling policy.
    pub fn sched(&self) -> GpuSched {
        self.sched
    }

    /// Enables or disables hardware VSync pacing.
    pub fn set_vsync(&mut self, enabled: bool) {
        self.vsync_enabled = enabled;
    }

    /// Whether VSync pacing is on.
    pub fn vsync_enabled(&self) -> bool {
        self.vsync_enabled
    }

    /// Cumulative engine time consumed.
    pub fn engine_time_ns(&self) -> u64 {
        self.engine_time_ns
    }

    /// When the engine goes idle given work accepted so far.
    pub fn busy_until_ns(&self) -> u64 {
        self.busy_until_ns
    }

    /// Writes `buf` into VRAM at `offset`, enforcing the aperture (§4.2):
    /// the access succeeds only inside the hypervisor-programmed bounds.
    ///
    /// # Errors
    ///
    /// `EIO` outside the aperture (audited by the hypervisor).
    pub fn vram_write(&mut self, offset: u64, buf: &[u8]) -> Result<(), Errno> {
        if offset + buf.len() as u64 > self.vram_bytes {
            return Err(Errno::Einval);
        }
        self.env.check_aperture(offset, buf.len() as u64)?;
        // The device reaches VRAM directly (it *is* the VRAM's owner and is
        // not subject to the driver VM's EPT); the BAR alias gives us the
        // backing frames.
        self.env.device_local_write(self.bar_base.add(offset), buf)
    }

    /// Reads VRAM at `offset` (aperture-checked).
    ///
    /// # Errors
    ///
    /// `EIO` outside the aperture.
    pub fn vram_read(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), Errno> {
        if offset + buf.len() as u64 > self.vram_bytes {
            return Err(Errno::Einval);
        }
        self.env.check_aperture(offset, buf.len() as u64)?;
        self.env.device_local_read(self.bar_base.add(offset), buf)
    }

    /// Submits a command for asynchronous execution; returns the fence that
    /// will signal its completion.
    ///
    /// # Errors
    ///
    /// Upload commands fail with `EIO` on IOMMU faults; render targets
    /// outside the aperture fail with `EIO`; both are audited.
    pub fn submit(&mut self, command: GpuCommand) -> Result<u64, Errno> {
        // Validate memory effects *now* (the command processor checks
        // addresses as it fetches), then schedule the time cost.
        match command {
            GpuCommand::Render {
                target_offset,
                target_len,
                ..
            } => {
                // Touch the render target: first and last page.
                let probe = [0u8; 4];
                self.vram_write(target_offset, &probe)?;
                if target_len > PAGE_SIZE {
                    self.vram_write(target_offset + target_len - 4, &probe)?;
                }
            }
            GpuCommand::Compute { .. } => {}
            GpuCommand::Upload {
                src,
                dst_offset,
                len,
            } => {
                // DMA-read the source (IOMMU-gated), then land in VRAM
                // (aperture-gated). Move a probe window, not every byte —
                // the simulation charges time, not bandwidth.
                let probe_len = len.min(64) as usize;
                let mut probe = vec![0u8; probe_len];
                self.env.device_dma_read(src, &mut probe)?;
                self.vram_write(dst_offset, &probe)?;
            }
        }
        let cost = command.engine_cost_ns();
        self.engine_time_ns += cost;
        self.fence_issued += 1;
        let vsync_paced =
            self.vsync_enabled && matches!(command, GpuCommand::Render { .. });
        let mut job = Job {
            fence: self.fence_issued,
            cost_ns: cost,
            owner: self.env.current_guest().map(|vm| vm.0),
            vsync_paced,
            start_ns: 0,
            finish_ns: 0,
            retired: false,
        };
        match self.sched {
            GpuSched::Fifo => {
                // FIFO never reorders: the new job starts when the engine
                // drains — O(1), no rescheduling of earlier work.
                let mut start = self.busy_until_ns.max(self.env.now_ns());
                if job.vsync_paced {
                    start = start.div_ceil(VSYNC_PERIOD_NS) * VSYNC_PERIOD_NS;
                }
                job.start_ns = start;
                job.finish_ns = start + job.cost_ns;
                self.busy_until_ns = job.finish_ns;
                self.jobs.push_back(job);
            }
            GpuSched::FairShare => {
                self.jobs.push_back(job);
                self.reschedule();
            }
        }
        Ok(self.fence_issued)
    }

    /// (Re)assigns start/finish times. Jobs already started (start ≤ now)
    /// are committed; the rest are ordered by policy: submission order for
    /// FIFO, least-consumed-engine-time-first across owners for fair share.
    fn reschedule(&mut self) {
        let now = self.env.now_ns();
        let mut cursor = now;
        let mut consumed: std::collections::BTreeMap<Option<u32>, u64> = Default::default();
        let mut uncommitted: Vec<usize> = Vec::new();
        for (index, job) in self.jobs.iter().enumerate() {
            if job.retired || (job.finish_ns > 0 && job.start_ns <= now) {
                // Committed: already running or done; it pins the cursor.
                cursor = cursor.max(job.finish_ns);
                *consumed.entry(job.owner).or_insert(0) += job.cost_ns;
            } else {
                uncommitted.push(index);
            }
        }
        // Order the uncommitted jobs.
        match self.sched {
            GpuSched::Fifo => {} // submission order, as stored
            GpuSched::FairShare => {
                // Stable selection: repeatedly pick the owner with the least
                // consumed time, taking that owner's oldest pending job.
                let mut remaining = uncommitted.clone();
                let mut picked = Vec::with_capacity(remaining.len());
                while !remaining.is_empty() {
                    let (pos, &index) = remaining
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &index)| {
                            let job = &self.jobs[index];
                            (*consumed.get(&job.owner).unwrap_or(&0), job.fence)
                        })
                        .expect("non-empty");
                    let job = &self.jobs[index];
                    *consumed.entry(job.owner).or_insert(0) += job.cost_ns;
                    picked.push(index);
                    remaining.remove(pos);
                }
                uncommitted = picked;
            }
        }
        for index in uncommitted {
            let job = &mut self.jobs[index];
            let mut start = cursor;
            if job.vsync_paced {
                start = start.div_ceil(VSYNC_PERIOD_NS) * VSYNC_PERIOD_NS;
            }
            job.start_ns = start;
            job.finish_ns = start + job.cost_ns;
            cursor = job.finish_ns;
        }
        self.busy_until_ns = self
            .jobs
            .iter()
            .filter(|job| !job.retired)
            .map(|job| job.finish_ns)
            .max()
            .unwrap_or(self.busy_until_ns)
            .max(self.busy_until_ns);
    }

    /// The scheduled completion time of `fence`, if it is still live.
    fn finish_of(&self, fence: u64) -> Option<u64> {
        self.jobs
            .iter()
            .find(|job| job.fence == fence && !job.retired)
            .map(|job| job.finish_ns)
    }

    /// Retires fences whose completion time has passed, DMA-writing the
    /// interrupt reason into the status ring for each (the §5.3 behaviour).
    /// Returns the newest completed fence number.
    ///
    /// # Errors
    ///
    /// `EIO` if the status-ring DMA faults (e.g. mis-set-up isolation).
    pub fn process_completions(&mut self) -> Result<u64, Errno> {
        let now = self.env.now_ns();
        // Retire finished jobs in finish order (fair share may complete
        // fences out of submission order; retirement stays time-ordered).
        let mut newly: Vec<(u64, u64)> = self
            .jobs
            .iter()
            .filter(|job| !job.retired && job.finish_ns <= now)
            .map(|job| (job.finish_ns, job.fence))
            .collect();
        newly.sort_unstable();
        for &(_, fence) in &newly {
            if let Some(job) = self.jobs.iter_mut().find(|j| j.fence == fence) {
                job.retired = true;
            }
            if let Some(page) = self.irq_status_page {
                let slot = self.irq_write_index % (PAGE_SIZE / 8);
                let mut record = [0u8; 8];
                record[0..4].copy_from_slice(&IrqReason::Fence.code().to_le_bytes());
                record[4..8].copy_from_slice(&(fence as u32).to_le_bytes());
                self.env
                    .device_dma_write(DmaAddr::new(page.raw() + slot * 8), &record)?;
                self.irq_write_index += 1;
            }
        }
        // fence_completed = highest fence with all predecessors retired.
        while let Some(front) = self.jobs.front() {
            if front.retired {
                self.fence_completed = front.fence;
                self.jobs.pop_front();
            } else {
                break;
            }
        }
        Ok(self.fence_completed)
    }

    /// Blocks until `fence` completes: advances the virtual clock to the
    /// fence's scheduled finish, then retires completions.
    ///
    /// # Errors
    ///
    /// `EINVAL` for fences never issued.
    pub fn wait_fence(&mut self, fence: u64) -> Result<(), Errno> {
        if fence > self.fence_issued {
            return Err(Errno::Einval);
        }
        if let Some(finish) = self.finish_of(fence) {
            self.env.hv().borrow().clock().advance_to(finish);
        }
        let _ = self.process_completions();
        Ok(())
    }

    /// Blocks until the engine drains completely.
    pub fn wait_idle(&mut self) {
        self.env.hv().borrow().clock().advance_to(self.busy_until_ns);
        let _ = self.process_completions();
    }

    /// Newest retired fence.
    pub fn completed_fence(&self) -> u64 {
        self.fence_completed
    }

    /// Newest issued fence.
    pub fn issued_fence(&self) -> u64 {
        self.fence_issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_hypervisor::hv::{DataIsolation, Hypervisor};
    use paradice_hypervisor::vm::VmRole;
    use paradice_hypervisor::{CostModel, SimClock};
    use std::cell::RefCell;

    fn gpu() -> RadeonGpu {
        let mut hv = Hypervisor::new(16384, SimClock::new(), CostModel::default());
        let vm = hv.create_vm(VmRole::Driver, 64 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(vm, DataIsolation::Disabled).unwrap();
        let vram_pages = 64;
        let bar = hv.map_device_bar(domain, vram_pages).unwrap();
        let env = KernelEnv::new(Rc::new(RefCell::new(hv)), vm, domain, false);
        RadeonGpu::new(env, bar, vram_pages * PAGE_SIZE)
    }

    #[test]
    fn fences_complete_in_order() {
        let mut gpu = gpu();
        let f1 = gpu
            .submit(GpuCommand::Render {
                cost_ns: 1_000,
                target_offset: 0,
                target_len: 64,
            })
            .unwrap();
        let f2 = gpu
            .submit(GpuCommand::Render {
                cost_ns: 2_000,
                target_offset: 0,
                target_len: 64,
            })
            .unwrap();
        assert_eq!((f1, f2), (1, 2));
        assert_eq!(gpu.completed_fence(), 0);
        gpu.wait_fence(f1).unwrap();
        assert!(gpu.completed_fence() >= f1);
        gpu.wait_idle();
        assert_eq!(gpu.completed_fence(), f2);
        assert_eq!(gpu.engine_time_ns(), 3_000);
    }

    #[test]
    fn compute_cost_is_cubic() {
        let mut gpu = gpu();
        let t0 = gpu.env.now_ns();
        gpu.submit(GpuCommand::Compute { order: 100 }).unwrap();
        gpu.wait_idle();
        let elapsed = gpu.env.now_ns() - t0;
        assert_eq!(elapsed, 100 * 100 * 100 * COMPUTE_NS_PER_ELEMENT_OP);
    }

    #[test]
    fn vram_bounds_checked() {
        let mut gpu = gpu();
        let vram = gpu.vram_bytes();
        assert_eq!(gpu.vram_write(vram - 2, &[0u8; 4]), Err(Errno::Einval));
        gpu.vram_write(vram - 4, &[1, 2, 3, 4]).unwrap();
        let mut buf = [0u8; 4];
        gpu.vram_read(vram - 4, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn aperture_confines_the_gpu() {
        let mut gpu = gpu();
        // Hypervisor programs a 16-KiB aperture starting at 0 (pre-
        // protection, so the direct write path works).
        {
            let mut hv = gpu.env.hv().borrow_mut();
            let vm = gpu.env.vm();
            let domain = gpu.env.domain();
            hv.mc_write_direct(vm, domain, paradice_hypervisor::hv::MC_APERTURE_LO, 0)
                .unwrap();
            hv.mc_write_direct(
                vm,
                domain,
                paradice_hypervisor::hv::MC_APERTURE_HI,
                16 * 1024,
            )
            .unwrap();
        }
        gpu.vram_write(0, &[0u8; 16]).unwrap();
        assert_eq!(gpu.vram_write(20 * 1024, &[0u8; 16]), Err(Errno::Eio));
        // A render targeting outside the aperture is refused at submit.
        assert_eq!(
            gpu.submit(GpuCommand::Render {
                cost_ns: 100,
                target_offset: 32 * 1024,
                target_len: 64,
            }),
            Err(Errno::Eio)
        );
    }

    #[test]
    fn upload_moves_system_memory_to_vram() {
        let mut gpu = gpu();
        // Stage data in a driver page (DMA-visible under passthrough).
        let page = {
            let mut hv = gpu.env.hv().borrow_mut();
            let vm = gpu.env.vm();
            let page = hv.vm_mut(vm).unwrap().alloc_kernel_page().unwrap();
            hv.vm_mem_write(vm, page, b"texture-data!").unwrap();
            page
        };
        gpu.submit(GpuCommand::Upload {
            src: DmaAddr::new(page.raw()),
            dst_offset: 4096,
            len: 13,
        })
        .unwrap();
        gpu.wait_idle();
        let mut buf = [0u8; 13];
        gpu.vram_read(4096, &mut buf).unwrap();
        assert_eq!(&buf, b"texture-data!");
    }

    #[test]
    fn irq_status_ring_receives_fence_records() {
        let mut gpu = gpu();
        let page = {
            let mut hv = gpu.env.hv().borrow_mut();
            let vm = gpu.env.vm();
            hv.vm_mut(vm).unwrap().alloc_kernel_page().unwrap()
        };
        gpu.set_irq_status_page(page);
        gpu.submit(GpuCommand::Render {
            cost_ns: 500,
            target_offset: 0,
            target_len: 64,
        })
        .unwrap();
        gpu.wait_idle();
        // The driver reads the reason from system memory (no isolation
        // here, so the read is allowed).
        let mut record = [0u8; 8];
        gpu.env.kernel_read(page, &mut record).unwrap();
        let reason = u32::from_le_bytes(record[0..4].try_into().unwrap());
        let fence = u32::from_le_bytes(record[4..8].try_into().unwrap());
        assert_eq!(reason, IrqReason::Fence.code());
        assert_eq!(fence, 1);
    }

    #[test]
    fn vsync_caps_render_rate_at_60fps() {
        let mut gpu = gpu();
        gpu.set_vsync(true);
        let t0 = gpu.env.now_ns();
        for _ in 0..30 {
            gpu.submit(GpuCommand::Render {
                cost_ns: 1_000_000, // 1 ms per frame: far faster than 60 FPS
                target_offset: 0,
                target_len: 64,
            })
            .unwrap();
            gpu.wait_idle();
        }
        let elapsed = gpu.env.now_ns() - t0;
        // 30 frames pace across 29 vblank periods from a cold start, so the
        // measured rate sits at 60·(30/29) ≈ 62 for this short run.
        let fps = 30.0 / (elapsed as f64 / 1e9);
        assert!((55.0..63.0).contains(&fps), "fps = {fps}");
        // Without VSync the same load runs at ~1000 FPS.
        gpu.set_vsync(false);
        let t1 = gpu.env.now_ns();
        for _ in 0..30 {
            gpu.submit(GpuCommand::Render {
                cost_ns: 1_000_000,
                target_offset: 0,
                target_len: 64,
            })
            .unwrap();
            gpu.wait_idle();
        }
        let fps = 30.0 / ((gpu.env.now_ns() - t1) as f64 / 1e9);
        assert!(fps > 900.0, "fps = {fps}");
    }

    #[test]
    fn waiting_on_unissued_fence_is_einval() {
        let mut gpu = gpu();
        assert_eq!(gpu.wait_fence(5), Err(Errno::Einval));
    }
}

#[cfg(test)]
mod sched_tests {
    use super::*;
    use paradice_hypervisor::hv::{DataIsolation, Hypervisor};
    use paradice_hypervisor::vm::VmRole;
    use paradice_hypervisor::{CostModel, SimClock, VmId};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn gpu() -> RadeonGpu {
        let mut hv = Hypervisor::new(16384, SimClock::new(), CostModel::default());
        let vm = hv.create_vm(VmRole::Driver, 64 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(vm, DataIsolation::Disabled).unwrap();
        let bar = hv.map_device_bar(domain, 64).unwrap();
        let env = KernelEnv::new(Rc::new(RefCell::new(hv)), vm, domain, false);
        RadeonGpu::new(env, bar, 64 * PAGE_SIZE)
    }

    fn render(cost_ns: u64) -> GpuCommand {
        GpuCommand::Render {
            cost_ns,
            target_offset: 0,
            target_len: 64,
        }
    }

    #[test]
    fn fair_share_is_the_default_policy() {
        assert_eq!(GpuSched::default(), GpuSched::FairShare);
        assert_eq!(gpu().sched(), GpuSched::FairShare);
    }

    #[test]
    fn fifo_starves_the_light_guest() {
        // Stock behaviour (§8's limitation), now the ablation's explicit
        // toggle-back: guest A floods 10×10 ms jobs; guest B's 1 ms job,
        // submitted just after, waits for all of them.
        let mut gpu = gpu();
        gpu.set_sched(GpuSched::Fifo);
        gpu.env.set_current_guest(Some(VmId(1)));
        for _ in 0..10 {
            gpu.submit(render(10_000_000)).unwrap();
        }
        gpu.env.set_current_guest(Some(VmId(2)));
        let b_fence = gpu.submit(render(1_000_000)).unwrap();
        gpu.env.set_current_guest(None);
        gpu.wait_fence(b_fence).unwrap();
        let done = gpu.env.now_ns();
        assert!(done >= 101_000_000, "B waited for A's queue: {done}");
    }

    #[test]
    fn fair_share_bounds_the_light_guests_latency() {
        // The §8 fix: under fair share, B's 1 ms job runs after at most one
        // of A's 10 ms quanta.
        let mut gpu = gpu();
        gpu.set_sched(GpuSched::FairShare);
        gpu.env.set_current_guest(Some(VmId(1)));
        for _ in 0..10 {
            gpu.submit(render(10_000_000)).unwrap();
        }
        gpu.env.set_current_guest(Some(VmId(2)));
        let b_fence = gpu.submit(render(1_000_000)).unwrap();
        gpu.env.set_current_guest(None);
        gpu.wait_fence(b_fence).unwrap();
        let done = gpu.env.now_ns();
        assert!(
            done <= 12_000_000,
            "B should preempt A's unstarted queue: {done}"
        );
        // Total work conserved: the engine still drains everything.
        gpu.wait_idle();
        assert_eq!(gpu.env.now_ns(), 101_000_000);
        assert_eq!(gpu.completed_fence(), 11);
    }

    #[test]
    fn fair_share_interleaves_equal_flows_fairly() {
        let mut gpu = gpu();
        gpu.set_sched(GpuSched::FairShare);
        // A and B each submit 4×5 ms, A first.
        let mut fences = Vec::new();
        for owner in [1u32, 2] {
            gpu.env.set_current_guest(Some(VmId(owner)));
            for _ in 0..4 {
                fences.push((owner, gpu.submit(render(5_000_000)).unwrap()));
            }
        }
        gpu.env.set_current_guest(None);
        // B's first job finishes within 2 quanta, not after all of A.
        let b_first = fences.iter().find(|(o, _)| *o == 2).unwrap().1;
        gpu.wait_fence(b_first).unwrap();
        assert!(gpu.env.now_ns() <= 10_000_000);
        gpu.wait_idle();
        assert_eq!(gpu.env.now_ns(), 40_000_000);
    }

    #[test]
    fn started_jobs_are_never_preempted() {
        // Committed work must not be rescheduled: A's job starts, the clock
        // moves into it, then B submits — B runs after it.
        let mut gpu = gpu();
        gpu.set_sched(GpuSched::FairShare);
        gpu.env.set_current_guest(Some(VmId(1)));
        let a = gpu.submit(render(10_000_000)).unwrap();
        // Halfway through A's execution…
        gpu.env.advance_ns(5_000_000);
        gpu.env.set_current_guest(Some(VmId(2)));
        let b = gpu.submit(render(1_000_000)).unwrap();
        gpu.env.set_current_guest(None);
        gpu.wait_fence(b).unwrap();
        assert_eq!(gpu.env.now_ns(), 11_000_000);
        gpu.wait_fence(a).unwrap();
        assert_eq!(gpu.env.now_ns(), 11_000_000); // A finished at 10 ms
    }
}
