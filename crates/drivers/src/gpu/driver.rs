//! The DRM/Radeon device driver.
//!
//! A scaled-down but structurally faithful Radeon driver: GEM buffer
//! objects in VRAM or GTT, `mmap` of buffer objects into the process,
//! `PREAD`/`PWRITE` uploads (nested copies!), and the command-submission
//! (`CS`) ioctl whose chunk lists are the paper's canonical nested-copy case
//! (§4.1: "for some Radeon driver ioctl commands, the driver performs nested
//! copies, in which the data from one copy operation is used as the input
//! arguments for the next one").
//!
//! Two driver *versions* are modeled, mirroring the paper's Linux 2.6.35 vs
//! 3.2.0 comparison: [`DriverVersion::V2_6_35`] lacks the four newer
//! commands (`GEM_BUSY`, `GEM_SET_TILING`, `GEM_GET_TILING`, `GEM_VA`).
//!
//! All process-memory access goes through [`MemOps`]; the driver is
//! unmodified between native and Paradice operation. The data-isolation
//! patch set lives in [`super::isolation`] and is only active when the
//! machine enables it (§5.3).

use std::collections::BTreeMap;
use std::rc::Rc;

use paradice_devfs::fileops::{FileOps, MmapRange, OpenContext, PollEvents, TaskId};
use paradice_devfs::ioc::{iow, iowr, IoctlCmd};
use paradice_devfs::{Errno, MemOps};
use paradice_mem::{DmaAddr, GuestPhysAddr, GuestVirtAddr, RegionId, PAGE_SIZE};

use crate::env::KernelEnv;
use crate::gpu::bo::{BoDomain, BufferObject, VramAllocator};
use crate::gpu::isolation::IsolationState;
use crate::gpu::model::{GpuCommand, RadeonGpu};

/// `DRM_IOCTL_RADEON_INFO`: `{u32 request, u32 pad, u64 value}`.
pub const RADEON_INFO: IoctlCmd = iowr(b'd', 0x27, 16);
/// `DRM_IOCTL_RADEON_GEM_CREATE`: `{u64 size, u32 domain, u32 flags, u32 handle, u32 pad}`.
pub const RADEON_GEM_CREATE: IoctlCmd = iowr(b'd', 0x1d, 24);
/// `DRM_IOCTL_RADEON_GEM_MMAP`: `{u32 handle, u32 pad, u64 offset}`.
pub const RADEON_GEM_MMAP: IoctlCmd = iowr(b'd', 0x1e, 16);
/// `DRM_IOCTL_RADEON_GEM_PREAD`: `{u32 handle, u32 pad, u64 offset, u64 size, u64 data_ptr}`.
pub const RADEON_GEM_PREAD: IoctlCmd = iow(b'd', 0x20, 32);
/// `DRM_IOCTL_RADEON_GEM_PWRITE`: same layout as PREAD.
pub const RADEON_GEM_PWRITE: IoctlCmd = iow(b'd', 0x21, 32);
/// `DRM_IOCTL_RADEON_GEM_WAIT_IDLE`: `{u32 handle, u32 pad}`.
pub const RADEON_GEM_WAIT_IDLE: IoctlCmd = iow(b'd', 0x24, 8);
/// `DRM_IOCTL_RADEON_CS`: `{u64 chunks_ptr, u32 num_chunks, u32 fence_out}`.
pub const RADEON_CS: IoctlCmd = iowr(b'd', 0x26, 16);
/// `DRM_IOCTL_GEM_CLOSE`: `{u32 handle, u32 pad}`.
pub const GEM_CLOSE: IoctlCmd = iow(b'd', 0x09, 8);
/// Custom: enable/disable VSync pacing (`{u32 enabled}`).
pub const RADEON_SET_VSYNC: IoctlCmd = iow(b'd', 0x50, 4);

// Commands added in the 3.2.0-era driver (the analyzer's "four new ioctl
// commands", §4.1).
/// `DRM_IOCTL_RADEON_GEM_BUSY`: `{u32 handle, u32 busy}`.
pub const RADEON_GEM_BUSY: IoctlCmd = iowr(b'd', 0x1a, 8);
/// `DRM_IOCTL_RADEON_GEM_SET_TILING`: `{u32 handle, u32 tiling, u32 pitch}`.
pub const RADEON_GEM_SET_TILING: IoctlCmd = iowr(b'd', 0x38, 12);
/// `DRM_IOCTL_RADEON_GEM_GET_TILING`: same layout.
pub const RADEON_GEM_GET_TILING: IoctlCmd = iowr(b'd', 0x39, 12);
/// `DRM_IOCTL_RADEON_GEM_VA`: `{u32 handle, u32 op, u64 va}`.
pub const RADEON_GEM_VA: IoctlCmd = iowr(b'd', 0x2b, 16);

/// `RADEON_INFO` request codes.
pub mod info {
    /// PCI device id.
    pub const DEVICE_ID: u32 = 0;
    /// VRAM size in bytes.
    pub const VRAM_SIZE: u32 = 1;
    /// Accelerator family (Evergreen = 0x45).
    pub const FAMILY: u32 = 2;
}

/// `GEM_CREATE` flag: mappings populate lazily through the page-fault
/// handler.
pub const GEM_CREATE_LAZY_MAP: u32 = 1 << 0;

/// GEM placement domains.
pub mod gem_domain {
    /// Device memory.
    pub const VRAM: u32 = 1;
    /// System memory reachable by the GPU (GTT).
    pub const GTT: u32 = 2;
}

/// CS chunk kinds.
pub mod chunk {
    /// An indirect buffer of command dwords.
    pub const IB: u32 = 1;
    /// Relocation list: `u32` buffer handles the IB references.
    pub const RELOCS: u32 = 2;
}

/// IB opcodes (6 dwords per command: `opcode, p0..p4`).
pub mod opcode {
    /// `p0` = engine cost in µs, `p1` = render-target handle.
    pub const RENDER: u32 = 1;
    /// `p0` = matrix order.
    pub const COMPUTE: u32 = 2;
    /// `p0` = source GTT handle, `p1` = destination VRAM handle,
    /// `p2` = byte length.
    pub const UPLOAD: u32 = 3;
}

/// Dwords per IB command.
pub const IB_CMD_DWORDS: usize = 6;

/// Driver generations modeled for the cross-version experiment (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum DriverVersion {
    /// The Linux 2.6.35-era driver.
    V2_6_35,
    /// The Linux 3.2.0-era driver: adds `GEM_BUSY`, `GEM_SET_TILING`,
    /// `GEM_GET_TILING` and `GEM_VA`.
    V3_2_0,
}

/// Static device information the driver reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadeonInfo {
    /// PCI device id (0x6779 = HD 6450).
    pub device_id: u16,
    /// Accelerator family code.
    pub family: u16,
}

impl Default for RadeonInfo {
    fn default() -> Self {
        RadeonInfo {
            device_id: 0x6779,
            family: 0x45,
        }
    }
}

/// The DRM/Radeon driver.
pub struct RadeonDriver {
    env: Rc<KernelEnv>,
    gpu: RadeonGpu,
    info: RadeonInfo,
    version: DriverVersion,
    bos: BTreeMap<u32, BufferObject>,
    next_handle: u32,
    tiling: BTreeMap<u32, (u32, u32)>,
    va_map: BTreeMap<u32, u64>,
    /// VRAM allocator when data isolation is off.
    global_vram: Option<VramAllocator>,
    /// Data-isolation state (per-region allocators, pools, staging).
    isolation: Option<IsolationState>,
    /// GTT pages when data isolation is off.
    global_gtt: Option<crate::env::DmaPool>,
    /// Lazily-populated mappings awaiting faults: `(task, va, len, handle)`.
    lazy_vmas: Vec<(TaskId, GuestVirtAddr, u64, u32)>,
    open_count: u32,
}

impl std::fmt::Debug for RadeonDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadeonDriver")
            .field("version", &self.version)
            .field("bos", &self.bos.len())
            .field("isolated", &self.isolation.is_some())
            .finish()
    }
}

/// GTT pool size without isolation, in pages.
const GLOBAL_GTT_PAGES: usize = 512;

impl RadeonDriver {
    /// Creates the driver atop an initialized GPU model. Without data
    /// isolation the whole VRAM is one allocation arena and the GTT pool is
    /// global; the isolation variant is built via
    /// [`RadeonDriver::new_isolated`].
    pub fn new(env: Rc<KernelEnv>, gpu: RadeonGpu, version: DriverVersion) -> Self {
        let vram = VramAllocator::new(0, gpu.vram_bytes());
        RadeonDriver {
            env,
            gpu,
            info: RadeonInfo::default(),
            version,
            bos: BTreeMap::new(),
            next_handle: 1,
            tiling: BTreeMap::new(),
            va_map: BTreeMap::new(),
            global_vram: Some(vram),
            isolation: None,
            global_gtt: None,
            lazy_vmas: Vec::new(),
            open_count: 0,
        }
    }

    /// Creates the driver with the data-isolation patch set active
    /// (§5.3): per-guest regions already created by [`IsolationState`].
    pub fn new_isolated(
        env: Rc<KernelEnv>,
        gpu: RadeonGpu,
        version: DriverVersion,
        isolation: IsolationState,
    ) -> Self {
        RadeonDriver {
            env,
            gpu,
            info: RadeonInfo::default(),
            version,
            bos: BTreeMap::new(),
            next_handle: 1,
            tiling: BTreeMap::new(),
            va_map: BTreeMap::new(),
            global_vram: None,
            isolation: Some(isolation),
            global_gtt: None,
            lazy_vmas: Vec::new(),
            open_count: 0,
        }
    }

    /// The underlying GPU model (experiments inspect fences/engine time).
    pub fn gpu(&self) -> &RadeonGpu {
        &self.gpu
    }

    /// Mutable access to the GPU model (machine wiring).
    pub fn gpu_mut(&mut self) -> &mut RadeonGpu {
        &mut self.gpu
    }

    /// The modeled driver version.
    pub fn version(&self) -> DriverVersion {
        self.version
    }

    /// Whether the data-isolation patch set is active.
    pub fn isolated(&self) -> bool {
        self.isolation.is_some()
    }

    /// Live buffer objects (tests).
    pub fn bo_count(&self) -> usize {
        self.bos.len()
    }

    fn current_region(&self) -> Option<RegionId> {
        let guest = self.env.current_guest()?;
        self.env.region_of_guest(guest)
    }

    /// The data-isolation variant of "whenever the device needs to work with
    /// the data of one guest VM, the driver asks the hypervisor to switch to
    /// the corresponding memory region" (§4.2).
    fn ensure_region_active(&mut self) -> Result<(), Errno> {
        if self.isolation.is_none() {
            return Ok(());
        }
        let region = self.current_region().ok_or(Errno::Eperm)?;
        let active = {
            let hv = self.env.hv().borrow();
            hv.active_region(self.env.domain())
        };
        if active != Some(region) {
            self.env.switch_region(Some(region))?;
        }
        Ok(())
    }

    fn alloc_vram(&mut self, size: u64) -> Result<u64, Errno> {
        match (&mut self.global_vram, &mut self.isolation) {
            (Some(vram), _) => vram.alloc(size),
            (None, Some(isolation)) => {
                let region = self
                    .env
                    .current_guest()
                    .and_then(|guest| self.env.region_of_guest(guest))
                    .ok_or(Errno::Eperm)?;
                isolation.vram_for(region)?.alloc(size)
            }
            (None, None) => Err(Errno::Enodev),
        }
    }

    fn free_vram(&mut self, offset: u64) -> Result<(), Errno> {
        if let Some(vram) = &mut self.global_vram {
            return vram.free(offset);
        }
        if let Some(isolation) = &mut self.isolation {
            return isolation.free_vram(offset);
        }
        Err(Errno::Enodev)
    }

    fn alloc_gtt_pages(&mut self, pages: u64) -> Result<Vec<GuestPhysAddr>, Errno> {
        if let Some(isolation) = &mut self.isolation {
            let region = self
                .env
                .current_guest()
                .and_then(|guest| self.env.region_of_guest(guest))
                .ok_or(Errno::Eperm)?;
            return isolation.take_gtt_pages(region, pages as usize);
        }
        if self.global_gtt.is_none() {
            self.global_gtt = Some(crate::env::DmaPool::new(
                &self.env,
                GLOBAL_GTT_PAGES,
                paradice_mem::Access::RW,
                None,
            )?);
        }
        let pool = self.global_gtt.as_mut().expect("just created");
        (0..pages).map(|_| pool.take()).collect()
    }

    fn bo(&self, handle: u32) -> Result<&BufferObject, Errno> {
        self.bos.get(&handle).ok_or(Errno::Enoent)
    }

    /// Resolves a CS command into a device command, translating handles to
    /// addresses.
    fn resolve_command(&self, dwords: &[u32]) -> Result<GpuCommand, Errno> {
        match dwords[0] {
            opcode::RENDER => {
                let cost_us = u64::from(dwords[1]);
                let target = self.bo(dwords[2])?;
                let BoDomain::Vram { offset } = &target.domain else {
                    return Err(Errno::Einval);
                };
                Ok(GpuCommand::Render {
                    cost_ns: cost_us * 1_000,
                    target_offset: *offset,
                    target_len: target.size,
                })
            }
            opcode::COMPUTE => Ok(GpuCommand::Compute {
                order: u64::from(dwords[1]),
            }),
            opcode::UPLOAD => {
                let src = self.bo(dwords[1])?;
                let BoDomain::Gtt { pages } = &src.domain else {
                    return Err(Errno::Einval);
                };
                let dst = self.bo(dwords[2])?;
                let BoDomain::Vram { offset } = &dst.domain else {
                    return Err(Errno::Einval);
                };
                let len = u64::from(dwords[3]).min(src.size).min(dst.size);
                Ok(GpuCommand::Upload {
                    src: DmaAddr::new(pages.first().ok_or(Errno::Einval)?.raw()),
                    dst_offset: *offset,
                    len,
                })
            }
            _ => Err(Errno::Einval),
        }
    }

    /// The CS ioctl body: the nested-copy pattern. Copies the args struct,
    /// then the chunk headers (address from the struct), then each chunk's
    /// data (addresses and lengths from the headers).
    fn ioctl_cs(
        &mut self,
        _ctx: OpenContext,
        mem: &mut dyn MemOps,
        arg: u64,
    ) -> Result<i64, Errno> {
        self.ensure_region_active()?;
        let arg_ptr = GuestVirtAddr::new(arg);
        let mut args = [0u8; 16];
        mem.copy_from_user(arg_ptr, &mut args)?;
        let chunks_ptr = u64::from_le_bytes(args[0..8].try_into().expect("len 8"));
        let num_chunks = u32::from_le_bytes(args[8..12].try_into().expect("len 4"));
        if num_chunks == 0 || num_chunks > 16 {
            return Err(Errno::Einval);
        }

        let mut relocs: Vec<u32> = Vec::new();
        let mut commands: Vec<GpuCommand> = Vec::new();
        for i in 0..u64::from(num_chunks) {
            // Nested copy #1: the i-th chunk header, at an address taken
            // from the args struct.
            let mut header = [0u8; 16];
            mem.copy_from_user(GuestVirtAddr::new(chunks_ptr + i * 16), &mut header)?;
            let data_ptr = u64::from_le_bytes(header[0..8].try_into().expect("len 8"));
            let length_dw = u32::from_le_bytes(header[8..12].try_into().expect("len 4"));
            let kind = u32::from_le_bytes(header[12..16].try_into().expect("len 4"));
            if length_dw == 0 || length_dw > 16_384 {
                return Err(Errno::Einval);
            }
            // Nested copy #2: the chunk's payload, whose address and length
            // came from the header just copied.
            let mut data = vec![0u8; length_dw as usize * 4];
            mem.copy_from_user(GuestVirtAddr::new(data_ptr), &mut data)?;
            let dwords: Vec<u32> = data
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("len 4")))
                .collect();
            match kind {
                chunk::IB => {
                    if !dwords.len().is_multiple_of(IB_CMD_DWORDS) {
                        return Err(Errno::Einval);
                    }
                    for cmd in dwords.chunks_exact(IB_CMD_DWORDS) {
                        commands.push(self.resolve_command(cmd)?);
                    }
                }
                chunk::RELOCS => relocs.extend_from_slice(&dwords),
                _ => return Err(Errno::Einval),
            }
        }
        // Validate relocations: every referenced handle must exist.
        for &handle in &relocs {
            self.bo(handle)?;
        }
        let mut fence = 0u64;
        for command in commands {
            fence = self.gpu.submit(command)?;
        }
        // Return the fence in the args struct (IOWR: copy back).
        args[12..16].copy_from_slice(&(fence as u32).to_le_bytes());
        mem.copy_to_user(arg_ptr, &args)?;
        Ok(0)
    }

    fn ioctl_pwrite(
        &mut self,
        mem: &mut dyn MemOps,
        arg: u64,
    ) -> Result<i64, Errno> {
        let mut args = [0u8; 32];
        mem.copy_from_user(GuestVirtAddr::new(arg), &mut args)?;
        let handle = u32::from_le_bytes(args[0..4].try_into().expect("len 4"));
        let offset = u64::from_le_bytes(args[8..16].try_into().expect("len 8"));
        let size = u64::from_le_bytes(args[16..24].try_into().expect("len 8"));
        let data_ptr = u64::from_le_bytes(args[24..32].try_into().expect("len 8"));
        if size > 16 * 1024 * 1024 {
            return Err(Errno::Einval);
        }
        let bo = self.bo(handle)?.clone();
        if offset + size > bo.size {
            return Err(Errno::Einval);
        }
        // Nested copy: the payload, whose address and length came from the
        // args struct.
        let mut data = vec![0u8; size as usize];
        mem.copy_from_user(GuestVirtAddr::new(data_ptr), &mut data)?;
        match &bo.domain {
            BoDomain::Gtt { pages } => {
                // GTT pages may be protected (region pool); the *driver*
                // writes them only without isolation — with isolation it
                // stages through the write-only-emulated page and lets the
                // device move the data (§5.3(iv)).
                if self.isolation.is_some() {
                    self.ensure_region_active()?;
                    let region = self.current_region().ok_or(Errno::Eperm)?;
                    let isolation = self.isolation.as_mut().expect("checked above");
                    let mut written = 0usize;
                    while written < data.len() {
                        let cursor = offset + written as u64;
                        let page = pages[(cursor / PAGE_SIZE) as usize];
                        let page_off = cursor % PAGE_SIZE;
                        let len =
                            ((PAGE_SIZE - page_off) as usize).min(data.len() - written);
                        isolation.stage_to_page(
                            &self.env,
                            region,
                            &mut self.gpu,
                            page,
                            page_off,
                            &data[written..written + len],
                        )?;
                        written += len;
                    }
                } else {
                    let mut written = 0usize;
                    let mut cursor = offset;
                    while written < data.len() {
                        let page = pages[(cursor / PAGE_SIZE) as usize];
                        let page_off = cursor % PAGE_SIZE;
                        let len = ((PAGE_SIZE - page_off) as usize).min(data.len() - written);
                        self.env
                            .kernel_write(page.add(page_off), &data[written..written + len])?;
                        written += len;
                        cursor += len as u64;
                    }
                }
            }
            BoDomain::Vram { offset: vram_off } => {
                if self.isolation.is_some() {
                    // The driver VM has no access to protected VRAM: stage
                    // through the region's staging page and let the device
                    // copy (§5.3(iv)).
                    self.ensure_region_active()?;
                    let region = self.current_region().ok_or(Errno::Eperm)?;
                    let isolation = self.isolation.as_mut().expect("checked above");
                    isolation.stage_to_vram(
                        &self.env,
                        region,
                        &mut self.gpu,
                        vram_off + offset,
                        &data,
                    )?;
                } else {
                    // CPU write through the BAR.
                    self.env
                        .kernel_write(self.gpu.bar_base().add(vram_off + offset), &data)?;
                }
            }
        }
        Ok(0)
    }

    /// The driver-physical page number backing page `index` of a buffer
    /// object (VRAM pages live behind the BAR; GTT pages are pool pages).
    fn bo_pfn(&self, bo: &BufferObject, index: u64) -> Result<u64, Errno> {
        if index >= bo.pages() {
            return Err(Errno::Einval);
        }
        match &bo.domain {
            BoDomain::Vram { offset } => {
                Ok((self.gpu.bar_base().raw() + offset) / PAGE_SIZE + index)
            }
            BoDomain::Gtt { pages } => Ok(pages
                .get(index as usize)
                .ok_or(Errno::Einval)?
                .page_number()),
        }
    }

    fn ioctl_pread(&mut self, mem: &mut dyn MemOps, arg: u64) -> Result<i64, Errno> {
        let mut args = [0u8; 32];
        mem.copy_from_user(GuestVirtAddr::new(arg), &mut args)?;
        let handle = u32::from_le_bytes(args[0..4].try_into().expect("len 4"));
        let offset = u64::from_le_bytes(args[8..16].try_into().expect("len 8"));
        let size = u64::from_le_bytes(args[16..24].try_into().expect("len 8"));
        let data_ptr = u64::from_le_bytes(args[24..32].try_into().expect("len 8"));
        if size > 16 * 1024 * 1024 {
            return Err(Errno::Einval);
        }
        if self.isolation.is_some() {
            // Protected buffers are never read by the driver (§4.2: "all the
            // sensitive data that we determined for the GPU were never read
            // by the driver"); PREAD is refused under isolation.
            return Err(Errno::Eperm);
        }
        let bo = self.bo(handle)?.clone();
        if offset + size > bo.size {
            return Err(Errno::Einval);
        }
        let mut data = vec![0u8; size as usize];
        match &bo.domain {
            BoDomain::Gtt { pages } => {
                let mut read = 0usize;
                let mut cursor = offset;
                while read < data.len() {
                    let page = pages[(cursor / PAGE_SIZE) as usize];
                    let page_off = cursor % PAGE_SIZE;
                    let len = ((PAGE_SIZE - page_off) as usize).min(data.len() - read);
                    self.env
                        .kernel_read(page.add(page_off), &mut data[read..read + len])?;
                    read += len;
                    cursor += len as u64;
                }
            }
            BoDomain::Vram { offset: vram_off } => {
                self.env
                    .kernel_read(self.gpu.bar_base().add(vram_off + offset), &mut data)?;
            }
        }
        // Nested copy out: destination from the args struct.
        mem.copy_to_user(GuestVirtAddr::new(data_ptr), &data)?;
        Ok(0)
    }
}

impl FileOps for RadeonDriver {
    fn driver_name(&self) -> &str {
        "DRM/Radeon"
    }

    fn open(&mut self, _ctx: OpenContext) -> Result<(), Errno> {
        // The DRM node is multi-open (GPUs are shared, §3.2.3).
        self.open_count += 1;
        Ok(())
    }

    fn release(&mut self, ctx: OpenContext) -> Result<(), Errno> {
        self.open_count = self.open_count.saturating_sub(1);
        // Free buffer objects owned by the departing task.
        let doomed: Vec<u32> = self
            .bos
            .iter()
            .filter(|(_, bo)| bo.owner == ctx.task)
            .map(|(&handle, _)| handle)
            .collect();
        for handle in doomed {
            if let Some(bo) = self.bos.remove(&handle) {
                if let BoDomain::Vram { offset } = bo.domain {
                    let _ = self.free_vram(offset);
                }
            }
            self.tiling.remove(&handle);
            self.va_map.remove(&handle);
        }
        self.lazy_vmas.retain(|(task, ..)| *task != ctx.task);
        Ok(())
    }

    fn ioctl(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        cmd: IoctlCmd,
        arg: u64,
    ) -> Result<i64, Errno> {
        let arg_ptr = GuestVirtAddr::new(arg);
        match cmd {
            RADEON_INFO => {
                let mut req = [0u8; 16];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let request = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                let value: u64 = match request {
                    info::DEVICE_ID => u64::from(self.info.device_id),
                    info::VRAM_SIZE => self.gpu.vram_bytes(),
                    info::FAMILY => u64::from(self.info.family),
                    _ => return Err(Errno::Einval),
                };
                req[8..16].copy_from_slice(&value.to_le_bytes());
                mem.copy_to_user(arg_ptr, &req)?;
                Ok(0)
            }
            RADEON_GEM_CREATE => {
                let mut req = [0u8; 24];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let size = u64::from_le_bytes(req[0..8].try_into().expect("len 8"));
                let domain_code = u32::from_le_bytes(req[8..12].try_into().expect("len 4"));
                let flags = u32::from_le_bytes(req[12..16].try_into().expect("len 4"));
                if size == 0 || size > 256 * 1024 * 1024 {
                    return Err(Errno::Einval);
                }
                let domain = match domain_code {
                    gem_domain::VRAM => BoDomain::Vram {
                        offset: self.alloc_vram(size)?,
                    },
                    gem_domain::GTT => BoDomain::Gtt {
                        pages: self.alloc_gtt_pages(size.div_ceil(PAGE_SIZE))?,
                    },
                    _ => return Err(Errno::Einval),
                };
                let handle = self.next_handle;
                self.next_handle += 1;
                self.bos.insert(
                    handle,
                    BufferObject {
                        handle,
                        size: size.div_ceil(PAGE_SIZE) * PAGE_SIZE,
                        domain,
                        owner: ctx.task,
                        lazy: flags & GEM_CREATE_LAZY_MAP != 0,
                    },
                );
                req[16..20].copy_from_slice(&handle.to_le_bytes());
                mem.copy_to_user(arg_ptr, &req)?;
                Ok(0)
            }
            RADEON_GEM_MMAP => {
                let mut req = [0u8; 16];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                self.bo(handle)?;
                // The fake mmap offset: handle-indexed 256-MiB spans.
                let offset = u64::from(handle) << 28;
                req[8..16].copy_from_slice(&offset.to_le_bytes());
                mem.copy_to_user(arg_ptr, &req)?;
                Ok(0)
            }
            RADEON_GEM_PREAD => self.ioctl_pread(mem, arg),
            RADEON_GEM_PWRITE => self.ioctl_pwrite(mem, arg),
            RADEON_CS => self.ioctl_cs(ctx, mem, arg),
            RADEON_GEM_WAIT_IDLE => {
                let mut req = [0u8; 8];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                self.bo(handle)?;
                self.gpu.wait_idle();
                Ok(0)
            }
            GEM_CLOSE => {
                let mut req = [0u8; 8];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                let bo = self.bos.remove(&handle).ok_or(Errno::Enoent)?;
                if let BoDomain::Vram { offset } = bo.domain {
                    self.free_vram(offset)?;
                }
                self.tiling.remove(&handle);
                self.va_map.remove(&handle);
                Ok(0)
            }
            RADEON_SET_VSYNC => {
                if self.isolation.is_some() {
                    // Hardware VSync interrupts are lost under data
                    // isolation (§5.3); the machine layer may install the
                    // software emulation instead.
                    return Err(Errno::Enotsup);
                }
                let enabled = mem.read_user_u32(arg_ptr)?;
                self.gpu.set_vsync(enabled != 0);
                Ok(0)
            }
            RADEON_GEM_BUSY if self.version == DriverVersion::V3_2_0 => {
                let mut req = [0u8; 8];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                self.bo(handle)?;
                let _ = self.gpu.process_completions();
                let busy = u32::from(self.gpu.completed_fence() < self.gpu.issued_fence());
                req[4..8].copy_from_slice(&busy.to_le_bytes());
                mem.copy_to_user(arg_ptr, &req)?;
                Ok(0)
            }
            RADEON_GEM_SET_TILING if self.version == DriverVersion::V3_2_0 => {
                let mut req = [0u8; 12];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                self.bo(handle)?;
                let tiling = u32::from_le_bytes(req[4..8].try_into().expect("len 4"));
                let pitch = u32::from_le_bytes(req[8..12].try_into().expect("len 4"));
                self.tiling.insert(handle, (tiling, pitch));
                Ok(0)
            }
            RADEON_GEM_GET_TILING if self.version == DriverVersion::V3_2_0 => {
                let mut req = [0u8; 12];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                let (tiling, pitch) = self.tiling.get(&handle).copied().unwrap_or((0, 0));
                req[4..8].copy_from_slice(&tiling.to_le_bytes());
                req[8..12].copy_from_slice(&pitch.to_le_bytes());
                mem.copy_to_user(arg_ptr, &req)?;
                Ok(0)
            }
            RADEON_GEM_VA if self.version == DriverVersion::V3_2_0 => {
                let mut req = [0u8; 16];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                self.bo(handle)?;
                let op = u32::from_le_bytes(req[4..8].try_into().expect("len 4"));
                let va = u64::from_le_bytes(req[8..16].try_into().expect("len 8"));
                match op {
                    1 => {
                        self.va_map.insert(handle, va);
                    }
                    2 => {
                        self.va_map.remove(&handle);
                    }
                    _ => return Err(Errno::Einval),
                }
                mem.copy_to_user(arg_ptr, &req)?;
                Ok(0)
            }
            _ => Err(Errno::Enotty),
        }
    }

    fn mmap(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        range: MmapRange,
    ) -> Result<(), Errno> {
        let handle = (range.offset >> 28) as u32;
        let bo = self.bo(handle)?.clone();
        let pages_needed = range.len.div_ceil(PAGE_SIZE);
        if pages_needed > bo.pages() {
            return Err(Errno::Einval);
        }
        if bo.lazy {
            // Fault-driven population: record the VMA; pages arrive one at
            // a time through `fault` (§2.1's "supporting page fault
            // handler").
            self.lazy_vmas.push((ctx.task, range.va, range.len, handle));
            return Ok(());
        }
        for i in 0..pages_needed {
            let pfn = self.bo_pfn(&bo, i)?;
            mem.insert_pfn(range.va.add(i * PAGE_SIZE), pfn, range.access)?;
        }
        Ok(())
    }

    fn fault(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        va: GuestVirtAddr,
    ) -> Result<(), Errno> {
        let (vma_va, handle) = self
            .lazy_vmas
            .iter()
            .find(|(task, start, len, _)| {
                *task == ctx.task && va.raw() >= start.raw() && va.raw() < start.raw() + len
            })
            .map(|(_, start, _, handle)| (*start, *handle))
            .ok_or(Errno::Efault)?;
        let bo = self.bo(handle)?.clone();
        let page_index = (va.raw() - vma_va.raw()) / PAGE_SIZE;
        let pfn = self.bo_pfn(&bo, page_index)?;
        mem.insert_pfn(va.page_base(), pfn, paradice_mem::Access::RW)
    }

    fn munmap(
        &mut self,
        _ctx: OpenContext,
        mem: &mut dyn MemOps,
        va: GuestVirtAddr,
        len: u64,
    ) -> Result<(), Errno> {
        for i in 0..len.div_ceil(PAGE_SIZE) {
            mem.zap_pfn(va.add(i * PAGE_SIZE))?;
        }
        Ok(())
    }

    fn poll(&mut self, _ctx: OpenContext) -> Result<PollEvents, Errno> {
        let _ = self.gpu.process_completions();
        Ok(
            if self.gpu.completed_fence() == self.gpu.issued_fence() {
                PollEvents::IN | PollEvents::OUT
            } else {
                PollEvents::OUT
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_devfs::fileops::{OpenFlags, TaskId};
    use paradice_devfs::memops::BufferMemOps;
    use paradice_devfs::registry::FileHandleId;
    use paradice_hypervisor::hv::{DataIsolation, Hypervisor};
    use paradice_hypervisor::vm::VmRole;
    use paradice_hypervisor::{CostModel, SharedHypervisor, SimClock};
    use std::cell::RefCell;
    use std::rc::Rc;

    const VRAM_PAGES: u64 = 256;

    fn native_driver() -> RadeonDriver {
        let mut hv = Hypervisor::new(16384, SimClock::new(), CostModel::default());
        let vm = hv.create_vm(VmRole::Driver, 1024 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(vm, DataIsolation::Disabled).unwrap();
        let bar = hv.map_device_bar(domain, VRAM_PAGES).unwrap();
        let env = KernelEnv::new(Rc::new(RefCell::new(hv)), vm, domain, false);
        let gpu = RadeonGpu::new(env.clone(), bar, VRAM_PAGES * PAGE_SIZE);
        RadeonDriver::new(env, gpu, DriverVersion::V3_2_0)
    }

    fn isolated_driver() -> (RadeonDriver, Vec<paradice_hypervisor::VmId>, SharedHypervisor) {
        let mut hv = Hypervisor::new(16384, SimClock::new(), CostModel::default());
        let g1 = hv.create_vm(VmRole::Guest, 8 * PAGE_SIZE).unwrap();
        let g2 = hv.create_vm(VmRole::Guest, 8 * PAGE_SIZE).unwrap();
        let vm = hv.create_vm(VmRole::Driver, 1024 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(vm, DataIsolation::Enabled).unwrap();
        let bar = hv.map_device_bar(domain, VRAM_PAGES).unwrap();
        let shared = Rc::new(RefCell::new(hv));
        let env = KernelEnv::new(shared.clone(), vm, domain, true);
        let gpu = RadeonGpu::new(env.clone(), bar, VRAM_PAGES * PAGE_SIZE);
        let isolation =
            crate::gpu::isolation::IsolationState::setup(&env, &gpu, &[g1, g2], 16).unwrap();
        let driver = RadeonDriver::new_isolated(env, gpu, DriverVersion::V3_2_0, isolation);
        (driver, vec![g1, g2], shared)
    }

    fn ctx(task: u64) -> OpenContext {
        OpenContext {
            handle: FileHandleId(task),
            task: TaskId(task),
            flags: OpenFlags::RDWR,
        }
    }

    fn gem_create(
        drv: &mut RadeonDriver,
        mem: &mut BufferMemOps,
        task: u64,
        size: u64,
        domain: u32,
    ) -> Result<u32, Errno> {
        let mut req = [0u8; 24];
        req[0..8].copy_from_slice(&size.to_le_bytes());
        req[8..12].copy_from_slice(&domain.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0), &req).unwrap();
        drv.ioctl(ctx(task), mem, RADEON_GEM_CREATE, 0)?;
        Ok(mem.read_user_u32(GuestVirtAddr::new(16)).unwrap())
    }

    /// Builds a CS submission at user address 0x400: args at 0x400, one
    /// chunk header at 0x500, IB payload at 0x600.
    fn submit_cs(
        drv: &mut RadeonDriver,
        mem: &mut BufferMemOps,
        task: u64,
        dwords: &[u32],
    ) -> Result<u32, Errno> {
        let mut payload = Vec::new();
        for d in dwords {
            payload.extend_from_slice(&d.to_le_bytes());
        }
        mem.copy_to_user(GuestVirtAddr::new(0x600), &payload).unwrap();
        let mut header = [0u8; 16];
        header[0..8].copy_from_slice(&0x600u64.to_le_bytes());
        header[8..12].copy_from_slice(&(dwords.len() as u32).to_le_bytes());
        header[12..16].copy_from_slice(&chunk::IB.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x500), &header).unwrap();
        let mut args = [0u8; 16];
        args[0..8].copy_from_slice(&0x500u64.to_le_bytes());
        args[8..12].copy_from_slice(&1u32.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x400), &args).unwrap();
        drv.ioctl(ctx(task), mem, RADEON_CS, 0x400)?;
        Ok(mem.read_user_u32(GuestVirtAddr::new(0x40c)).unwrap())
    }

    #[test]
    fn info_reports_identity() {
        let mut drv = native_driver();
        let mut mem = BufferMemOps::new(4096);
        for (request, expected) in [
            (info::DEVICE_ID, 0x6779u64),
            (info::VRAM_SIZE, VRAM_PAGES * PAGE_SIZE),
            (info::FAMILY, 0x45),
        ] {
            mem.write_user_u32(GuestVirtAddr::new(0), request).unwrap();
            drv.ioctl(ctx(1), &mut mem, RADEON_INFO, 0).unwrap();
            assert_eq!(mem.read_user_u64(GuestVirtAddr::new(8)).unwrap(), expected);
        }
    }

    #[test]
    fn gem_lifecycle_vram_and_gtt() {
        let mut drv = native_driver();
        let mut mem = BufferMemOps::new(4096);
        let vram_bo = gem_create(&mut drv, &mut mem, 1, 8192, gem_domain::VRAM).unwrap();
        let gtt_bo = gem_create(&mut drv, &mut mem, 1, 4096, gem_domain::GTT).unwrap();
        assert_ne!(vram_bo, gtt_bo);
        assert_eq!(drv.bo_count(), 2);
        // Close frees VRAM for reuse.
        let mut req = [0u8; 8];
        req[0..4].copy_from_slice(&vram_bo.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(64), &req).unwrap();
        drv.ioctl(ctx(1), &mut mem, GEM_CLOSE, 64).unwrap();
        assert_eq!(drv.bo_count(), 1);
        // Double close is ENOENT.
        assert_eq!(drv.ioctl(ctx(1), &mut mem, GEM_CLOSE, 64), Err(Errno::Enoent));
    }

    #[test]
    fn gem_mmap_installs_pages() {
        let mut drv = native_driver();
        let mut mem = BufferMemOps::new(4096);
        let bo = gem_create(&mut drv, &mut mem, 1, 2 * PAGE_SIZE, gem_domain::VRAM).unwrap();
        let mut req = [0u8; 16];
        req[0..4].copy_from_slice(&bo.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(32), &req).unwrap();
        drv.ioctl(ctx(1), &mut mem, RADEON_GEM_MMAP, 32).unwrap();
        let offset = mem.read_user_u64(GuestVirtAddr::new(40)).unwrap();
        assert_eq!(offset, u64::from(bo) << 28);
        drv.mmap(
            ctx(1),
            &mut mem,
            MmapRange {
                va: GuestVirtAddr::new(0x10_0000),
                len: 2 * PAGE_SIZE,
                offset,
                access: paradice_mem::Access::RW,
            },
        )
        .unwrap();
        assert_eq!(mem.mappings().len(), 2);
    }

    #[test]
    fn cs_render_and_wait() {
        let mut drv = native_driver();
        let mut mem = BufferMemOps::new(8192);
        let fb = gem_create(&mut drv, &mut mem, 1, 16 * PAGE_SIZE, gem_domain::VRAM).unwrap();
        let t0 = drv.env.now_ns();
        let fence = submit_cs(&mut drv, &mut mem, 1, &[opcode::RENDER, 5_000, fb, 0, 0, 0])
            .unwrap();
        assert_eq!(fence, 1);
        // Wait idle advances the clock by the render cost (5 ms).
        let mut req = [0u8; 8];
        req[0..4].copy_from_slice(&fb.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x700), &req).unwrap();
        drv.ioctl(ctx(1), &mut mem, RADEON_GEM_WAIT_IDLE, 0x700).unwrap();
        assert_eq!(drv.env.now_ns() - t0, 5_000_000);
    }

    #[test]
    fn cs_compute_cost_is_cubic() {
        let mut drv = native_driver();
        let mut mem = BufferMemOps::new(8192);
        let bo = gem_create(&mut drv, &mut mem, 1, PAGE_SIZE, gem_domain::VRAM).unwrap();
        let t0 = drv.env.now_ns();
        submit_cs(&mut drv, &mut mem, 1, &[opcode::COMPUTE, 200, 0, 0, 0, 0]).unwrap();
        let mut req = [0u8; 8];
        req[0..4].copy_from_slice(&bo.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x700), &req).unwrap();
        drv.ioctl(ctx(1), &mut mem, RADEON_GEM_WAIT_IDLE, 0x700).unwrap();
        assert_eq!(
            drv.env.now_ns() - t0,
            200 * 200 * 200 * crate::gpu::model::COMPUTE_NS_PER_ELEMENT_OP
        );
    }

    #[test]
    fn cs_rejects_malformed_chunks() {
        let mut drv = native_driver();
        let mut mem = BufferMemOps::new(8192);
        // Zero chunks.
        let mut args = [0u8; 16];
        mem.copy_to_user(GuestVirtAddr::new(0x400), &args).unwrap();
        assert_eq!(drv.ioctl(ctx(1), &mut mem, RADEON_CS, 0x400), Err(Errno::Einval));
        // Bad opcode.
        assert_eq!(
            submit_cs(&mut drv, &mut mem, 1, &[99, 0, 0, 0, 0, 0]),
            Err(Errno::Einval)
        );
        // Ragged IB (not a multiple of 6 dwords).
        assert_eq!(
            submit_cs(&mut drv, &mut mem, 1, &[opcode::COMPUTE, 10, 0, 0]),
            Err(Errno::Einval)
        );
        args[8..12].copy_from_slice(&17u32.to_le_bytes()); // too many chunks
        mem.copy_to_user(GuestVirtAddr::new(0x400), &args).unwrap();
        assert_eq!(drv.ioctl(ctx(1), &mut mem, RADEON_CS, 0x400), Err(Errno::Einval));
    }

    #[test]
    fn pwrite_then_pread_roundtrip_native() {
        let mut drv = native_driver();
        let mut mem = BufferMemOps::new(16384);
        let bo = gem_create(&mut drv, &mut mem, 1, PAGE_SIZE, gem_domain::VRAM).unwrap();
        // Data at user 0x2000.
        mem.copy_to_user(GuestVirtAddr::new(0x2000), b"texels!!").unwrap();
        let mut args = [0u8; 32];
        args[0..4].copy_from_slice(&bo.to_le_bytes());
        args[8..16].copy_from_slice(&0u64.to_le_bytes()); // offset
        args[16..24].copy_from_slice(&8u64.to_le_bytes()); // size
        args[24..32].copy_from_slice(&0x2000u64.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x100), &args).unwrap();
        drv.ioctl(ctx(1), &mut mem, RADEON_GEM_PWRITE, 0x100).unwrap();
        // Read back to user 0x3000.
        args[24..32].copy_from_slice(&0x3000u64.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x100), &args).unwrap();
        drv.ioctl(ctx(1), &mut mem, RADEON_GEM_PREAD, 0x100).unwrap();
        let mut back = [0u8; 8];
        mem.copy_from_user(GuestVirtAddr::new(0x3000), &mut back).unwrap();
        assert_eq!(&back, b"texels!!");
    }

    #[test]
    fn v2_6_35_lacks_new_commands() {
        let mut hv = Hypervisor::new(16384, SimClock::new(), CostModel::default());
        let vm = hv.create_vm(VmRole::Driver, 1024 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(vm, DataIsolation::Disabled).unwrap();
        let bar = hv.map_device_bar(domain, VRAM_PAGES).unwrap();
        let env = KernelEnv::new(Rc::new(RefCell::new(hv)), vm, domain, false);
        let gpu = RadeonGpu::new(env.clone(), bar, VRAM_PAGES * PAGE_SIZE);
        let mut drv = RadeonDriver::new(env, gpu, DriverVersion::V2_6_35);
        let mut mem = BufferMemOps::new(4096);
        assert_eq!(
            drv.ioctl(ctx(1), &mut mem, RADEON_GEM_BUSY, 0),
            Err(Errno::Enotty)
        );
        assert_eq!(
            drv.ioctl(ctx(1), &mut mem, RADEON_GEM_VA, 0),
            Err(Errno::Enotty)
        );
    }

    #[test]
    fn tiling_roundtrip() {
        let mut drv = native_driver();
        let mut mem = BufferMemOps::new(4096);
        let bo = gem_create(&mut drv, &mut mem, 1, PAGE_SIZE, gem_domain::VRAM).unwrap();
        let mut req = [0u8; 12];
        req[0..4].copy_from_slice(&bo.to_le_bytes());
        req[4..8].copy_from_slice(&2u32.to_le_bytes());
        req[8..12].copy_from_slice(&512u32.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0), &req).unwrap();
        drv.ioctl(ctx(1), &mut mem, RADEON_GEM_SET_TILING, 0).unwrap();
        // Clear the user struct and read back.
        let mut query = [0u8; 12];
        query[0..4].copy_from_slice(&bo.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0), &query).unwrap();
        drv.ioctl(ctx(1), &mut mem, RADEON_GEM_GET_TILING, 0).unwrap();
        assert_eq!(mem.read_user_u32(GuestVirtAddr::new(4)).unwrap(), 2);
        assert_eq!(mem.read_user_u32(GuestVirtAddr::new(8)).unwrap(), 512);
    }

    #[test]
    fn release_frees_task_objects() {
        let mut drv = native_driver();
        let mut mem = BufferMemOps::new(4096);
        gem_create(&mut drv, &mut mem, 1, PAGE_SIZE, gem_domain::VRAM).unwrap();
        gem_create(&mut drv, &mut mem, 2, PAGE_SIZE, gem_domain::VRAM).unwrap();
        drv.release(ctx(1)).unwrap();
        assert_eq!(drv.bo_count(), 1);
    }

    #[test]
    fn isolated_alloc_requires_guest_context() {
        let (mut drv, guests, _hv) = isolated_driver();
        let mut mem = BufferMemOps::new(4096);
        // No guest mark: EPERM.
        assert_eq!(
            gem_create(&mut drv, &mut mem, 1, PAGE_SIZE, gem_domain::VRAM),
            Err(Errno::Eperm)
        );
        // Marked as guest 1: allocation lands in its region's VRAM slice.
        drv.env.set_current_guest(Some(guests[0]));
        let bo = gem_create(&mut drv, &mut mem, 1, PAGE_SIZE, gem_domain::VRAM).unwrap();
        let BoDomain::Vram { offset } = drv.bo(bo).unwrap().domain else {
            panic!("expected VRAM bo");
        };
        let half = VRAM_PAGES * PAGE_SIZE / 2;
        assert!(offset < half, "guest 1 allocates in the lower half");
        drv.env.set_current_guest(Some(guests[1]));
        let bo2 = gem_create(&mut drv, &mut mem, 2, PAGE_SIZE, gem_domain::VRAM).unwrap();
        let BoDomain::Vram { offset: offset2 } = drv.bo(bo2).unwrap().domain else {
            panic!("expected VRAM bo");
        };
        assert!(offset2 >= half, "guest 2 allocates in the upper half");
    }

    #[test]
    fn isolated_pwrite_stages_through_device_copy() {
        let (mut drv, guests, hv) = isolated_driver();
        let mut mem = BufferMemOps::new(16384);
        drv.env.set_current_guest(Some(guests[0]));
        let bo = gem_create(&mut drv, &mut mem, 1, PAGE_SIZE, gem_domain::VRAM).unwrap();
        mem.copy_to_user(GuestVirtAddr::new(0x2000), b"isolated").unwrap();
        let mut args = [0u8; 32];
        args[0..4].copy_from_slice(&bo.to_le_bytes());
        args[16..24].copy_from_slice(&8u64.to_le_bytes());
        args[24..32].copy_from_slice(&0x2000u64.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x100), &args).unwrap();
        drv.ioctl(ctx(1), &mut mem, RADEON_GEM_PWRITE, 0x100).unwrap();
        // PREAD is refused under isolation (the driver must never read
        // protected data, §4.2).
        assert_eq!(
            drv.ioctl(ctx(1), &mut mem, RADEON_GEM_PREAD, 0x100),
            Err(Errno::Eperm)
        );
        // Ground truth: the data landed in protected VRAM (device-side
        // probe), while the driver VM itself cannot read it.
        let BoDomain::Vram { offset } = drv.bo(bo).unwrap().domain else {
            panic!("expected VRAM bo");
        };
        let gpa = drv.gpu().bar_base().add(offset);
        let driver_vm = drv.env.vm();
        let mut probe = [0u8; 8];
        hv.borrow_mut()
            .gpa_read_privileged(driver_vm, gpa, &mut probe)
            .unwrap();
        assert_eq!(&probe, b"isolated");
        let mut blocked = [0u8; 8];
        assert!(hv
            .borrow_mut()
            .vm_mem_read(driver_vm, gpa, &mut blocked)
            .is_err());
    }

    #[test]
    fn isolated_cs_switches_region() {
        let (mut drv, guests, hv) = isolated_driver();
        let mut mem = BufferMemOps::new(16384);
        drv.env.set_current_guest(Some(guests[0]));
        let fb1 = gem_create(&mut drv, &mut mem, 1, PAGE_SIZE, gem_domain::VRAM).unwrap();
        submit_cs(&mut drv, &mut mem, 1, &[opcode::RENDER, 100, fb1, 0, 0, 0]).unwrap();
        let r1 = drv.env.region_of_guest(guests[0]).unwrap();
        assert_eq!(hv.borrow().active_region(drv.env.domain()), Some(r1));
        // Guest 2 renders: region switches, and its framebuffer is in its
        // own aperture.
        drv.gpu_mut().wait_idle();
        drv.env.set_current_guest(Some(guests[1]));
        let fb2 = gem_create(&mut drv, &mut mem, 2, PAGE_SIZE, gem_domain::VRAM).unwrap();
        submit_cs(&mut drv, &mut mem, 2, &[opcode::RENDER, 100, fb2, 0, 0, 0]).unwrap();
        let r2 = drv.env.region_of_guest(guests[1]).unwrap();
        assert_eq!(hv.borrow().active_region(drv.env.domain()), Some(r2));
        // Rendering to guest 1's framebuffer while guest 2's region is
        // active violates the aperture.
        drv.gpu_mut().wait_idle();
        assert_eq!(
            submit_cs(&mut drv, &mut mem, 2, &[opcode::RENDER, 100, fb1, 0, 0, 0]),
            Err(Errno::Eio)
        );
    }

    #[test]
    fn isolated_vsync_ioctl_refused() {
        let (mut drv, guests, _hv) = isolated_driver();
        let mut mem = BufferMemOps::new(4096);
        drv.env.set_current_guest(Some(guests[0]));
        mem.write_user_u32(GuestVirtAddr::new(0), 1).unwrap();
        assert_eq!(
            drv.ioctl(ctx(1), &mut mem, RADEON_SET_VSYNC, 0),
            Err(Errno::Enotsup)
        );
    }
}
