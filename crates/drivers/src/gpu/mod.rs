//! The Radeon GPU: Evergreen-class device model + DRM-style driver.
//!
//! The GPU is the paper's showcase device — "GPU has not previously been
//! amenable to virtualization due to its functional and implementation
//! complexity. Yet, Paradice easily virtualizes GPUs of various makes and
//! models with full functionality and close-to-native performance" (§1) —
//! and the only device needing driver changes for device data isolation
//! (~400 LoC, §5.3).
//!
//! * [`model`] — the `RadeonGpu` hardware model: execution engine with
//!   fences, VRAM behind the memory-controller aperture, the
//!   interrupt-status ring *in system memory* (the §5.3 interrupt problem),
//!   and software VSync.
//! * [`bo`] — GEM buffer objects and the VRAM allocator (per-region under
//!   data isolation).
//! * [`driver`] — the `RadeonDriver` file operations: `INFO`, `GEM_CREATE`,
//!   `GEM_MMAP`, `GEM_PREAD`/`GEM_PWRITE`, `CS` (command submission with
//!   netsed chunk copies), `GEM_WAIT_IDLE`, `GEM_CLOSE`, plus the 3.2.0-era
//!   additions used by the analyzer's cross-version experiment.
//! * [`ir`] — the driver's ioctl-handler IR for the static analyzer, in two
//!   versions mirroring the paper's Linux 2.6.35 vs 3.2.0 comparison.
//! * [`isolation`] — the data-isolation patch set (§5.3(i)–(iv)).

pub mod bo;
pub mod i915;
pub mod driver;
pub mod ir;
pub mod isolation;
pub mod model;

pub use bo::{BoDomain, BufferObject, VramAllocator};
pub use i915::I915Driver;
pub use driver::{RadeonDriver, RadeonInfo};
pub use model::{GpuCommand, RadeonGpu, COMPUTE_NS_PER_ELEMENT_OP};
