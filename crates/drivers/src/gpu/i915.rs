//! The DRM/i915 device driver: a second GPU make behind the same CVD.
//!
//! Table 1 lists an "Int. Intel Mobile GM965/GL960" driven by DRM/i915 —
//! the paper's point being that the device-file boundary virtualizes "GPUs
//! of various makes and models with full functionality" without any
//! class-specific paravirtual driver work. This driver shares *nothing*
//! driver-level with the Radeon one: different ioctl numbers, different
//! struct layouts, a different submission model (`EXECBUFFER2` with an
//! exec-object list instead of CS chunk lists), and a UMA memory model
//! (one "GTT aperture" arena instead of VRAM/GTT domains). What it *does*
//! share is the engine/fence model underneath — faithful to reality, where
//! both drivers program very different hardware through the same kernel
//! abstractions.

use std::collections::BTreeMap;
use std::rc::Rc;

use paradice_devfs::fileops::{FileOps, MmapRange, OpenContext, PollEvents, TaskId};
use paradice_devfs::ioc::{iow, iowr, IoctlCmd};
use paradice_devfs::{Errno, MemOps};
use paradice_mem::{GuestVirtAddr, PAGE_SIZE};

use crate::env::KernelEnv;
use crate::gpu::bo::VramAllocator;
use crate::gpu::model::{GpuCommand, RadeonGpu as GpuEngine};

/// `DRM_IOCTL_I915_GETPARAM`: `{u32 param, u32 pad, u64 value}`.
pub const I915_GETPARAM: IoctlCmd = iowr(b'd', 0x46, 16);
/// `DRM_IOCTL_I915_GEM_CREATE`: `{u64 size, u32 handle, u32 pad}`.
pub const I915_GEM_CREATE: IoctlCmd = iowr(b'd', 0x5b, 16);
/// `DRM_IOCTL_I915_GEM_PWRITE`: `{u32 handle, u32 pad, u64 offset, u64 size, u64 data_ptr}`.
pub const I915_GEM_PWRITE: IoctlCmd = iow(b'd', 0x5d, 32);
/// `DRM_IOCTL_I915_GEM_MMAP_GTT`: `{u32 handle, u32 pad, u64 offset}`.
pub const I915_GEM_MMAP_GTT: IoctlCmd = iowr(b'd', 0x64, 16);
/// `DRM_IOCTL_I915_GEM_EXECBUFFER2`:
/// `{u64 buffers_ptr, u32 buffer_count, u32 batch_dw, u64 batch_ptr}`.
pub const I915_GEM_EXECBUFFER2: IoctlCmd = iow(b'd', 0x69, 24);
/// `DRM_IOCTL_I915_GEM_BUSY`: `{u32 handle, u32 busy}`.
pub const I915_GEM_BUSY: IoctlCmd = iowr(b'd', 0x57, 8);
/// `DRM_IOCTL_I915_GEM_WAIT`: `{u32 handle, u32 pad, u64 timeout}`.
pub const I915_GEM_WAIT: IoctlCmd = iow(b'd', 0x6c, 16);
/// `DRM_IOCTL_GEM_CLOSE` (generic DRM): `{u32 handle, u32 pad}`.
pub const I915_GEM_CLOSE: IoctlCmd = iow(b'd', 0x09, 8);

/// `GETPARAM` parameter codes.
pub mod param {
    /// PCI chipset id (0x2a02 = GM965).
    pub const CHIPSET_ID: u32 = 4;
    /// Aperture size in bytes.
    pub const APERTURE_SIZE: u32 = 998;
    /// Whether the GPU supports execbuffer2 (always 1 here).
    pub const HAS_EXECBUF2: u32 = 30;
}

/// Batch-buffer opcodes (same encoding scheme as the Radeon IB in this
/// simulation: 6 dwords per command).
pub mod batch_op {
    /// `p0` = engine cost in µs, `p1` = render-target handle.
    pub const RENDER: u32 = 1;
    /// `p0` = matrix order.
    pub const COMPUTE: u32 = 2;
}

/// One exec object entry on the wire: `{u32 handle, u32 pad, u64 offset}`.
pub const EXEC_OBJECT_BYTES: u64 = 16;

#[derive(Debug, Clone)]
struct I915Bo {
    size: u64,
    /// Offset in the GTT aperture (UMA: one arena for everything).
    offset: u64,
    owner: TaskId,
}

/// The DRM/i915 driver.
pub struct I915Driver {
    env: Rc<KernelEnv>,
    gpu: GpuEngine,
    bos: BTreeMap<u32, I915Bo>,
    next_handle: u32,
    aperture: VramAllocator,
}

impl std::fmt::Debug for I915Driver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("I915Driver")
            .field("bos", &self.bos.len())
            .finish()
    }
}

impl I915Driver {
    /// Creates the driver atop an initialized engine (the GM965's "stolen
    /// memory" aperture is the engine's device memory).
    pub fn new(env: Rc<KernelEnv>, gpu: GpuEngine) -> Self {
        let aperture = VramAllocator::new(0, gpu.vram_bytes());
        I915Driver {
            env,
            gpu,
            bos: BTreeMap::new(),
            next_handle: 1,
            aperture,
        }
    }

    /// The underlying engine (machine wiring, experiments).
    pub fn gpu(&self) -> &GpuEngine {
        &self.gpu
    }

    /// Mutable engine access.
    pub fn gpu_mut(&mut self) -> &mut GpuEngine {
        &mut self.gpu
    }

    /// Live buffer objects.
    pub fn bo_count(&self) -> usize {
        self.bos.len()
    }

    fn bo(&self, handle: u32) -> Result<&I915Bo, Errno> {
        self.bos.get(&handle).ok_or(Errno::Enoent)
    }

    fn resolve_batch_command(&self, dwords: &[u32]) -> Result<GpuCommand, Errno> {
        match dwords[0] {
            batch_op::RENDER => {
                let target = self.bo(dwords[2])?;
                Ok(GpuCommand::Render {
                    cost_ns: u64::from(dwords[1]) * 1_000,
                    target_offset: target.offset,
                    target_len: target.size,
                })
            }
            batch_op::COMPUTE => Ok(GpuCommand::Compute {
                order: u64::from(dwords[1]),
            }),
            _ => Err(Errno::Einval),
        }
    }
}

impl FileOps for I915Driver {
    fn driver_name(&self) -> &str {
        "DRM/i915"
    }

    fn release(&mut self, ctx: OpenContext) -> Result<(), Errno> {
        let doomed: Vec<u32> = self
            .bos
            .iter()
            .filter(|(_, bo)| bo.owner == ctx.task)
            .map(|(&handle, _)| handle)
            .collect();
        for handle in doomed {
            if let Some(bo) = self.bos.remove(&handle) {
                let _ = self.aperture.free(bo.offset);
            }
        }
        Ok(())
    }

    fn ioctl(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        cmd: IoctlCmd,
        arg: u64,
    ) -> Result<i64, Errno> {
        let arg_ptr = GuestVirtAddr::new(arg);
        match cmd {
            I915_GETPARAM => {
                let mut req = [0u8; 16];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let code = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                let value: u64 = match code {
                    param::CHIPSET_ID => 0x2a02,
                    param::APERTURE_SIZE => self.gpu.vram_bytes(),
                    param::HAS_EXECBUF2 => 1,
                    _ => return Err(Errno::Einval),
                };
                req[8..16].copy_from_slice(&value.to_le_bytes());
                mem.copy_to_user(arg_ptr, &req)?;
                Ok(0)
            }
            I915_GEM_CREATE => {
                let mut req = [0u8; 16];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let size = u64::from_le_bytes(req[0..8].try_into().expect("len 8"));
                if size == 0 || size > 128 * 1024 * 1024 {
                    return Err(Errno::Einval);
                }
                let offset = self.aperture.alloc(size)?;
                let handle = self.next_handle;
                self.next_handle += 1;
                self.bos.insert(
                    handle,
                    I915Bo {
                        size: size.div_ceil(PAGE_SIZE) * PAGE_SIZE,
                        offset,
                        owner: ctx.task,
                    },
                );
                req[8..12].copy_from_slice(&handle.to_le_bytes());
                mem.copy_to_user(arg_ptr, &req)?;
                Ok(0)
            }
            I915_GEM_MMAP_GTT => {
                let mut req = [0u8; 16];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                self.bo(handle)?;
                let offset = u64::from(handle) << 28;
                req[8..16].copy_from_slice(&offset.to_le_bytes());
                mem.copy_to_user(arg_ptr, &req)?;
                Ok(0)
            }
            I915_GEM_PWRITE => {
                let mut req = [0u8; 32];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                let offset = u64::from_le_bytes(req[8..16].try_into().expect("len 8"));
                let size = u64::from_le_bytes(req[16..24].try_into().expect("len 8"));
                let data_ptr = u64::from_le_bytes(req[24..32].try_into().expect("len 8"));
                let bo = self.bo(handle)?.clone();
                if size > 16 * 1024 * 1024 || offset + size > bo.size {
                    return Err(Errno::Einval);
                }
                // Nested copy: the payload address and length come from the
                // just-copied struct.
                let mut data = vec![0u8; size as usize];
                mem.copy_from_user(GuestVirtAddr::new(data_ptr), &mut data)?;
                self.env
                    .kernel_write(self.gpu.bar_base().add(bo.offset + offset), &data)?;
                Ok(0)
            }
            I915_GEM_EXECBUFFER2 => {
                let mut req = [0u8; 24];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let buffers_ptr = u64::from_le_bytes(req[0..8].try_into().expect("len 8"));
                let buffer_count = u32::from_le_bytes(req[8..12].try_into().expect("len 4"));
                let batch_dw = u32::from_le_bytes(req[12..16].try_into().expect("len 4"));
                let batch_ptr = u64::from_le_bytes(req[16..24].try_into().expect("len 8"));
                if buffer_count == 0 || buffer_count > 64 || batch_dw == 0 || batch_dw > 16_384
                {
                    return Err(Errno::Einval);
                }
                // Nested copy #1: the exec-object list — every referenced
                // buffer must exist.
                for i in 0..u64::from(buffer_count) {
                    let mut object = [0u8; EXEC_OBJECT_BYTES as usize];
                    mem.copy_from_user(
                        GuestVirtAddr::new(buffers_ptr + i * EXEC_OBJECT_BYTES),
                        &mut object,
                    )?;
                    let handle = u32::from_le_bytes(object[0..4].try_into().expect("len 4"));
                    self.bo(handle)?;
                }
                // Nested copy #2: the batch buffer itself.
                let mut batch = vec![0u8; batch_dw as usize * 4];
                mem.copy_from_user(GuestVirtAddr::new(batch_ptr), &mut batch)?;
                let dwords: Vec<u32> = batch
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("len 4")))
                    .collect();
                if !dwords.len().is_multiple_of(6) {
                    return Err(Errno::Einval);
                }
                let mut fence = 0;
                for command in dwords.chunks_exact(6) {
                    let resolved = self.resolve_batch_command(command)?;
                    fence = self.gpu.submit(resolved)?;
                }
                Ok(fence as i64)
            }
            I915_GEM_BUSY => {
                let mut req = [0u8; 8];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                self.bo(handle)?;
                let _ = self.gpu.process_completions();
                let busy = u32::from(self.gpu.completed_fence() < self.gpu.issued_fence());
                req[4..8].copy_from_slice(&busy.to_le_bytes());
                mem.copy_to_user(arg_ptr, &req)?;
                Ok(0)
            }
            I915_GEM_WAIT => {
                let mut req = [0u8; 16];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                self.bo(handle)?;
                self.gpu.wait_idle();
                Ok(0)
            }
            I915_GEM_CLOSE => {
                let mut req = [0u8; 8];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let handle = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                let bo = self.bos.remove(&handle).ok_or(Errno::Enoent)?;
                self.aperture.free(bo.offset)?;
                Ok(0)
            }
            _ => Err(Errno::Enotty),
        }
    }

    fn mmap(
        &mut self,
        _ctx: OpenContext,
        mem: &mut dyn MemOps,
        range: MmapRange,
    ) -> Result<(), Errno> {
        let handle = (range.offset >> 28) as u32;
        let bo = self.bo(handle)?.clone();
        let pages_needed = range.len.div_ceil(PAGE_SIZE);
        if pages_needed > bo.size.div_ceil(PAGE_SIZE) {
            return Err(Errno::Einval);
        }
        let first_pfn = (self.gpu.bar_base().raw() + bo.offset) / PAGE_SIZE;
        for i in 0..pages_needed {
            mem.insert_pfn(range.va.add(i * PAGE_SIZE), first_pfn + i, range.access)?;
        }
        Ok(())
    }

    fn munmap(
        &mut self,
        _ctx: OpenContext,
        mem: &mut dyn MemOps,
        va: GuestVirtAddr,
        len: u64,
    ) -> Result<(), Errno> {
        for i in 0..len.div_ceil(PAGE_SIZE) {
            mem.zap_pfn(va.add(i * PAGE_SIZE))?;
        }
        Ok(())
    }

    fn poll(&mut self, _ctx: OpenContext) -> Result<PollEvents, Errno> {
        let _ = self.gpu.process_completions();
        Ok(
            if self.gpu.completed_fence() == self.gpu.issued_fence() {
                PollEvents::IN | PollEvents::OUT
            } else {
                PollEvents::OUT
            },
        )
    }
}

/// The i915 driver's ioctl-handler IR for the static analyzer (§4.1): a
/// *different* driver with a different nested-copy structure, analyzed by
/// the same tool.
pub fn i915_handler_ir() -> paradice_analyzer::ir::Handler {
    use paradice_analyzer::ir::{Cond, Expr, Stmt, VarId};
    let v = VarId;
    let inout = |len: u64| {
        vec![
            Stmt::CopyFromUser {
                dst: v(0),
                src: Expr::Arg,
                len: Expr::Const(len),
            },
            Stmt::CopyToUser {
                dst: Expr::Arg,
                len: Expr::Const(len),
            },
        ]
    };
    let input_only = |len: u64| {
        vec![Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(len),
        }]
    };
    paradice_analyzer::ir::Handler::single(vec![Stmt::SwitchCmd {
        arms: vec![
            (I915_GETPARAM.raw(), inout(16)),
            (I915_GEM_CREATE.raw(), inout(16)),
            (I915_GEM_MMAP_GTT.raw(), inout(16)),
            (
                I915_GEM_PWRITE.raw(),
                vec![
                    Stmt::CopyFromUser {
                        dst: v(0),
                        src: Expr::Arg,
                        len: Expr::Const(32),
                    },
                    // `if (size > 16 MiB) return -EINVAL;` (above).
                    Stmt::If {
                        cond: Cond::Gt(
                            Expr::field(v(0), 16, 8),
                            Expr::Const(16 * 1024 * 1024),
                        ),
                        then: vec![Stmt::Return],
                        els: vec![],
                    },
                    Stmt::CopyFromUser {
                        dst: v(1),
                        src: Expr::field(v(0), 24, 8),
                        len: Expr::field(v(0), 16, 8),
                    },
                ],
            ),
            (
                I915_GEM_EXECBUFFER2.raw(),
                vec![
                    Stmt::CopyFromUser {
                        dst: v(0),
                        src: Expr::Arg,
                        len: Expr::Const(24),
                    },
                    // `if (buffer_count > 64 || batch_dw > 16384)
                    //      return -EINVAL;` (above).
                    Stmt::If {
                        cond: Cond::Gt(Expr::field(v(0), 8, 4), Expr::Const(64)),
                        then: vec![Stmt::Return],
                        els: vec![],
                    },
                    Stmt::If {
                        cond: Cond::Gt(Expr::field(v(0), 12, 4), Expr::Const(16_384)),
                        then: vec![Stmt::Return],
                        els: vec![],
                    },
                    Stmt::ForRange {
                        var: v(9),
                        count: Expr::field(v(0), 8, 4),
                        body: vec![Stmt::CopyFromUser {
                            dst: v(1),
                            src: Expr::add(
                                Expr::field(v(0), 0, 8),
                                Expr::mul(Expr::Var(v(9)), Expr::Const(EXEC_OBJECT_BYTES)),
                            ),
                            len: Expr::Const(EXEC_OBJECT_BYTES),
                        }],
                    },
                    Stmt::CopyFromUser {
                        dst: v(2),
                        src: Expr::field(v(0), 16, 8),
                        len: Expr::mul(Expr::field(v(0), 12, 4), Expr::Const(4)),
                    },
                ],
            ),
            (I915_GEM_BUSY.raw(), inout(8)),
            (I915_GEM_WAIT.raw(), input_only(16)),
            (I915_GEM_CLOSE.raw(), input_only(8)),
        ],
        default: vec![Stmt::Return],
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_analyzer::extract::analyze_handler;
    use paradice_devfs::fileops::OpenFlags;
    use paradice_devfs::memops::BufferMemOps;
    use paradice_devfs::registry::FileHandleId;
    use paradice_hypervisor::hv::{DataIsolation, Hypervisor};
    use paradice_hypervisor::vm::VmRole;
    use paradice_hypervisor::{CostModel, SimClock};
    use std::cell::RefCell;

    fn driver() -> I915Driver {
        let mut hv = Hypervisor::new(8192, SimClock::new(), CostModel::default());
        let vm = hv.create_vm(VmRole::Driver, 256 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(vm, DataIsolation::Disabled).unwrap();
        let bar = hv.map_device_bar(domain, 256).unwrap();
        let env = KernelEnv::new(Rc::new(RefCell::new(hv)), vm, domain, false);
        let gpu = GpuEngine::new(env.clone(), bar, 256 * PAGE_SIZE);
        I915Driver::new(env, gpu)
    }

    fn ctx() -> OpenContext {
        OpenContext {
            handle: FileHandleId(1),
            task: TaskId(1),
            flags: OpenFlags::RDWR,
        }
    }

    fn create_bo(drv: &mut I915Driver, mem: &mut BufferMemOps, size: u64) -> u32 {
        let mut req = [0u8; 16];
        req[0..8].copy_from_slice(&size.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0), &req).unwrap();
        drv.ioctl(ctx(), mem, I915_GEM_CREATE, 0).unwrap();
        mem.read_user_u32(GuestVirtAddr::new(8)).unwrap()
    }

    #[test]
    fn getparam_reports_gm965() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        let mut req = [0u8; 16];
        req[0..4].copy_from_slice(&param::CHIPSET_ID.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0), &req).unwrap();
        drv.ioctl(ctx(), &mut mem, I915_GETPARAM, 0).unwrap();
        assert_eq!(mem.read_user_u64(GuestVirtAddr::new(8)).unwrap(), 0x2a02);
    }

    #[test]
    fn execbuffer2_renders_and_fences() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(16384);
        let fb = create_bo(&mut drv, &mut mem, 4 * PAGE_SIZE);
        // Exec-object list at 0x400 (one entry), batch at 0x500.
        let mut object = [0u8; 16];
        object[0..4].copy_from_slice(&fb.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x400), &object).unwrap();
        let batch: Vec<u8> = [batch_op::RENDER, 2_000, fb, 0, 0, 0]
            .iter()
            .flat_map(|d| d.to_le_bytes())
            .collect();
        mem.copy_to_user(GuestVirtAddr::new(0x500), &batch).unwrap();
        let mut req = [0u8; 24];
        req[0..8].copy_from_slice(&0x400u64.to_le_bytes());
        req[8..12].copy_from_slice(&1u32.to_le_bytes());
        req[12..16].copy_from_slice(&6u32.to_le_bytes());
        req[16..24].copy_from_slice(&0x500u64.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x600), &req).unwrap();
        let t0 = drv.env.now_ns();
        let fence = drv
            .ioctl(ctx(), &mut mem, I915_GEM_EXECBUFFER2, 0x600)
            .unwrap();
        assert_eq!(fence, 1);
        // WAIT drains the 2 ms render.
        let mut wait = [0u8; 16];
        wait[0..4].copy_from_slice(&fb.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x700), &wait).unwrap();
        drv.ioctl(ctx(), &mut mem, I915_GEM_WAIT, 0x700).unwrap();
        assert_eq!(drv.env.now_ns() - t0, 2_000_000);
    }

    #[test]
    fn execbuffer2_rejects_unknown_buffers() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(16384);
        let mut object = [0u8; 16];
        object[0..4].copy_from_slice(&77u32.to_le_bytes()); // no such bo
        mem.copy_to_user(GuestVirtAddr::new(0x400), &object).unwrap();
        let mut req = [0u8; 24];
        req[0..8].copy_from_slice(&0x400u64.to_le_bytes());
        req[8..12].copy_from_slice(&1u32.to_le_bytes());
        req[12..16].copy_from_slice(&6u32.to_le_bytes());
        req[16..24].copy_from_slice(&0x500u64.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x600), &req).unwrap();
        assert_eq!(
            drv.ioctl(ctx(), &mut mem, I915_GEM_EXECBUFFER2, 0x600),
            Err(Errno::Enoent)
        );
    }

    #[test]
    fn pwrite_then_mmap_roundtrip() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(16384);
        let bo = create_bo(&mut drv, &mut mem, PAGE_SIZE);
        mem.copy_to_user(GuestVirtAddr::new(0x2000), b"intel-bytes").unwrap();
        let mut req = [0u8; 32];
        req[0..4].copy_from_slice(&bo.to_le_bytes());
        req[16..24].copy_from_slice(&11u64.to_le_bytes());
        req[24..32].copy_from_slice(&0x2000u64.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0x100), &req).unwrap();
        drv.ioctl(ctx(), &mut mem, I915_GEM_PWRITE, 0x100).unwrap();
        // mmap installs the aperture pages.
        drv.mmap(
            ctx(),
            &mut mem,
            MmapRange {
                va: GuestVirtAddr::new(0x10_0000),
                len: PAGE_SIZE,
                offset: u64::from(bo) << 28,
                access: paradice_mem::Access::RW,
            },
        )
        .unwrap();
        assert_eq!(mem.mappings().len(), 1);
        // The data is in the aperture (read through the BAR alias).
        let offset = drv.bo(bo).unwrap().offset;
        let mut seen = [0u8; 11];
        drv.env
            .kernel_read(drv.gpu.bar_base().add(offset), &mut seen)
            .unwrap();
        assert_eq!(&seen, b"intel-bytes");
    }

    #[test]
    fn close_frees_aperture() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        let before = drv.aperture.free_bytes();
        let bo = create_bo(&mut drv, &mut mem, 8 * PAGE_SIZE);
        assert_eq!(drv.aperture.free_bytes(), before - 8 * PAGE_SIZE);
        let mut req = [0u8; 8];
        req[0..4].copy_from_slice(&bo.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0), &req).unwrap();
        drv.ioctl(ctx(), &mut mem, I915_GEM_CLOSE, 0).unwrap();
        assert_eq!(drv.aperture.free_bytes(), before);
        assert_eq!(drv.bo_count(), 0);
    }

    #[test]
    fn analyzer_handles_the_second_driver() {
        // The same tool analyzes a structurally different driver: PWRITE
        // and EXECBUFFER2 are its nested-copy commands.
        let report = analyze_handler(&i915_handler_ir()).unwrap();
        assert_eq!(report.commands.len(), 8);
        assert_eq!(report.nested_copy_commands(), 2);
        assert!(report.commands[&I915_GEM_EXECBUFFER2.raw()].has_nested_copies());
        assert!(report.commands[&I915_GEM_PWRITE.raw()].has_nested_copies());
        assert!(report.commands[&I915_GETPARAM.raw()].is_static());
    }
}
