//! The Radeon driver's ioctl-handler IR, as consumed by the static
//! analyzer (`paradice-analyzer`).
//!
//! The real Paradice parses the driver's C source with Clang; our drivers
//! *declare* their handlers in the analyzer's IR instead. The declaration is
//! load-bearing: integration tests execute the actual driver under a
//! recording `MemOps` and assert that the operations performed are exactly
//! the operations the analyzer extracts from this IR — the same
//! ground-truth relationship the paper's tool has with the driver source.
//!
//! Two versions are provided for the cross-version experiment (§4.1):
//! [`radeon_handler_2_6_35`] and [`radeon_handler_3_2_0`], the latter with
//! the four extra commands. Common commands have identical memory
//! operations, as the paper observed.

use paradice_analyzer::ir::{Cond, Expr, Handler, Stmt, VarId};

use super::driver::{
    GEM_CLOSE, RADEON_CS, RADEON_GEM_BUSY, RADEON_GEM_CREATE, RADEON_GEM_GET_TILING,
    RADEON_GEM_MMAP, RADEON_GEM_PREAD, RADEON_GEM_PWRITE, RADEON_GEM_SET_TILING,
    RADEON_GEM_VA, RADEON_GEM_WAIT_IDLE, RADEON_INFO, RADEON_SET_VSYNC,
};

fn v(n: u32) -> VarId {
    VarId(n)
}

/// `copy_from_user(buf, arg, len); copy_to_user(arg, buf, len);` — the
/// classic `_IOWR` body.
fn inout(len: u64) -> Vec<Stmt> {
    vec![
        Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(len),
        },
        Stmt::CopyToUser {
            dst: Expr::Arg,
            len: Expr::Const(len),
        },
    ]
}

/// `copy_from_user(buf, arg, len);` — the `_IOW` body.
fn input_only(len: u64) -> Vec<Stmt> {
    vec![Stmt::CopyFromUser {
        dst: v(0),
        src: Expr::Arg,
        len: Expr::Const(len),
    }]
}

/// `if (args.size > 16 MiB) return -EINVAL;` — the size clamp both
/// transfer ioctls perform (driver.rs) before sizing the nested copy.
fn size_guard() -> Stmt {
    Stmt::If {
        cond: Cond::Gt(Expr::field(v(0), 16, 8), Expr::Const(16 * 1024 * 1024)),
        then: vec![Stmt::Return],
        els: vec![],
    }
}

/// The PREAD body: args in, then a nested copy **to** user memory at
/// `args.data_ptr` of `args.size` bytes.
fn pread_body() -> Vec<Stmt> {
    vec![
        Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(32),
        },
        size_guard(),
        Stmt::CopyToUser {
            dst: Expr::field(v(0), 24, 8),
            len: Expr::field(v(0), 16, 8),
        },
    ]
}

/// The PWRITE body: args in, then a nested copy **from** user memory.
fn pwrite_body() -> Vec<Stmt> {
    vec![
        Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(32),
        },
        size_guard(),
        Stmt::CopyFromUser {
            dst: v(1),
            src: Expr::field(v(0), 24, 8),
            len: Expr::field(v(0), 16, 8),
        },
    ]
}

/// The CS body: args in; per chunk, a header copy at
/// `args.chunks_ptr + i·16` and a payload copy at `header.data_ptr` of
/// `header.length_dw · 4` bytes; fence written back into the args struct.
fn cs_body() -> Vec<Stmt> {
    vec![
        Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(16),
        },
        // `if (num_chunks > 16) return -EINVAL;` (driver.rs).
        Stmt::If {
            cond: Cond::Gt(Expr::field(v(0), 8, 4), Expr::Const(16)),
            then: vec![Stmt::Return],
            els: vec![],
        },
        Stmt::ForRange {
            var: v(9),
            count: Expr::field(v(0), 8, 4),
            body: vec![
                Stmt::CopyFromUser {
                    dst: v(1),
                    src: Expr::add(
                        Expr::field(v(0), 0, 8),
                        Expr::mul(Expr::Var(v(9)), Expr::Const(16)),
                    ),
                    len: Expr::Const(16),
                },
                // `if (length_dw > 16384) return -EINVAL;` (driver.rs) —
                // per header, before the payload copy it sizes.
                Stmt::If {
                    cond: Cond::Gt(Expr::field(v(1), 8, 4), Expr::Const(16_384)),
                    then: vec![Stmt::Return],
                    els: vec![],
                },
                Stmt::CopyFromUser {
                    dst: v(2),
                    src: Expr::field(v(1), 0, 8),
                    len: Expr::mul(Expr::field(v(1), 8, 4), Expr::Const(4)),
                },
            ],
        },
        Stmt::CopyToUser {
            dst: Expr::Arg,
            len: Expr::Const(16),
        },
    ]
}

fn common_arms() -> Vec<(u32, Vec<Stmt>)> {
    vec![
        (RADEON_INFO.raw(), inout(16)),
        (RADEON_GEM_CREATE.raw(), inout(24)),
        (RADEON_GEM_MMAP.raw(), inout(16)),
        (RADEON_GEM_PREAD.raw(), pread_body()),
        (RADEON_GEM_PWRITE.raw(), pwrite_body()),
        (RADEON_CS.raw(), cs_body()),
        (RADEON_GEM_WAIT_IDLE.raw(), input_only(8)),
        (GEM_CLOSE.raw(), input_only(8)),
        (RADEON_SET_VSYNC.raw(), input_only(4)),
    ]
}

/// The Linux 2.6.35-era Radeon ioctl handler.
pub fn radeon_handler_2_6_35() -> Handler {
    Handler::single(vec![Stmt::SwitchCmd {
        arms: common_arms(),
        default: vec![Stmt::Return],
    }])
}

/// The Linux 3.2.0-era handler: common commands unchanged, plus four new
/// ones (`GEM_BUSY`, `GEM_SET_TILING`, `GEM_GET_TILING`, `GEM_VA`) — the
/// paper's observation verbatim.
pub fn radeon_handler_3_2_0() -> Handler {
    let mut arms = common_arms();
    arms.push((RADEON_GEM_BUSY.raw(), inout(8)));
    arms.push((RADEON_GEM_SET_TILING.raw(), input_only(12)));
    arms.push((RADEON_GEM_GET_TILING.raw(), inout(12)));
    arms.push((RADEON_GEM_VA.raw(), inout(16)));
    Handler::single(vec![Stmt::SwitchCmd {
        arms,
        default: vec![Stmt::Return],
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_analyzer::diff::{diff_handlers, CommandDelta};
    use paradice_analyzer::extract::analyze_handler;

    #[test]
    fn nested_copy_commands_detected() {
        let report = analyze_handler(&radeon_handler_3_2_0()).unwrap();
        // PREAD, PWRITE and CS are the nested-copy commands in our scaled
        // driver (the paper's full driver has 14).
        assert_eq!(report.nested_copy_commands(), 3);
        assert!(report.commands[&RADEON_CS.raw()].has_nested_copies());
        assert!(report.commands[&RADEON_GEM_PREAD.raw()].has_nested_copies());
        assert!(report.commands[&RADEON_GEM_PWRITE.raw()].has_nested_copies());
    }

    #[test]
    fn simple_commands_are_static() {
        let report = analyze_handler(&radeon_handler_3_2_0()).unwrap();
        assert!(report.commands[&RADEON_INFO.raw()].is_static());
        assert!(report.commands[&RADEON_GEM_CREATE.raw()].is_static());
        assert!(report.commands[&RADEON_GEM_WAIT_IDLE.raw()].is_static());
        assert_eq!(report.jit_commands(), 3);
    }

    #[test]
    fn version_diff_matches_the_paper() {
        // "The memory operations of common ioctl commands are identical in
        // both drivers, while the latter has four new ioctl commands."
        let diff =
            diff_handlers(&radeon_handler_2_6_35(), &radeon_handler_3_2_0()).unwrap();
        assert_eq!(diff.count(CommandDelta::Added), 4);
        assert_eq!(diff.count(CommandDelta::Changed), 0);
        assert_eq!(diff.count(CommandDelta::Removed), 0);
        assert_eq!(diff.count(CommandDelta::Identical), 9);
    }

    #[test]
    fn extracted_code_is_substantial() {
        let report = analyze_handler(&radeon_handler_3_2_0()).unwrap();
        assert!(report.extracted_statements() >= 8);
    }
}
