//! The Radeon data-isolation patch set (paper §5.3, ~400 LoC in the real
//! driver).
//!
//! Four sets of changes, mirrored here one-for-one:
//!
//! 1. **Explicit IOMMU management** — "we allocate a pool of pages for each
//!    memory region and map them in IOMMU in the initialization phase."
//!    ([`IsolationState::setup`] builds a per-region [`DmaPool`].)
//! 2. **Per-region device buffers** — "the driver normally creates some data
//!    buffers on the device memory that are used by the GPU, such as the GPU
//!    address translations buffer. We create these buffers on all memory
//!    regions so that the GPU has access to them regardless of the active
//!    memory region." (One GART page is reserved in each region's VRAM
//!    slice.)
//! 3. **Protected MMIO** — "we unmap from the driver VM the MMIO page that
//!    contains the GPU memory controller registers … If the driver needs to
//!    read/write to other registers in the same MMIO page, it issues a
//!    hypercall." ([`IsolationState::setup`] calls `hc_protect_mmio`.)
//! 4. **Write-only emulation** — x86 has no write-only EPT encoding, so
//!    driver-writable staging buffers are made read-only to the *device*
//!    through the IOMMU while the driver VM keeps read/write
//!    (`hc_emulate_write_only`); uploads then flow driver → staging page →
//!    device copy engine → protected destination.

use paradice_devfs::Errno;
use paradice_hypervisor::regions::DevMemRange;
use paradice_hypervisor::VmId;
use paradice_mem::{Access, DmaAddr, GuestPhysAddr, RegionId, PAGE_SIZE};

use crate::env::{hv_to_errno, DmaPool, KernelEnv};
use crate::gpu::bo::VramAllocator;
use crate::gpu::model::RadeonGpu;

/// Effective copy-engine rate for staged uploads, bytes per nanosecond⁻¹
/// denominator (8 B/ns ≈ 8 GB/s).
const COPY_ENGINE_BYTES_PER_NS: u64 = 8;

/// Per-guest isolation resources.
#[derive(Debug)]
struct RegionState {
    region: RegionId,
    guest: VmId,
    /// This region's slice of VRAM.
    vram: VramAllocator,
    /// Pre-mapped protected page pool for GTT objects (§5.3(i)).
    gtt: DmaPool,
    /// Driver-writable, device-readable staging page (§5.3(iv)).
    staging: GuestPhysAddr,
    /// The per-region GART page reserved in device memory (§5.3(ii)).
    gart_offset: u64,
}

/// All data-isolation state of the Radeon driver.
#[derive(Debug)]
pub struct IsolationState {
    regions: Vec<RegionState>,
}

impl IsolationState {
    /// Runs the trusted driver-initialization phase: creates one protected
    /// region per guest (VRAM split evenly), builds the per-region GTT
    /// pools and staging pages, reserves the per-region GART pages, and
    /// confiscates the MC MMIO page.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor refusals and allocation failures.
    pub fn setup(
        env: &KernelEnv,
        gpu: &RadeonGpu,
        guests: &[VmId],
        gtt_pool_pages: usize,
    ) -> Result<IsolationState, Errno> {
        if guests.is_empty() {
            return Err(Errno::Einval);
        }
        let slice_bytes =
            (gpu.vram_bytes() / guests.len() as u64) / PAGE_SIZE * PAGE_SIZE;
        let mut regions = Vec::with_capacity(guests.len());
        for (i, &guest) in guests.iter().enumerate() {
            let lo = i as u64 * slice_bytes;
            let hi = lo + slice_bytes;
            // Region creation: non-overlapping device-memory range (§4.2).
            let region = env
                .hv()
                .borrow_mut()
                .hc_create_region(
                    env.vm(),
                    env.domain(),
                    guest,
                    Some(DevMemRange::new(lo, hi)),
                )
                .map_err(|e| hv_to_errno(&e))?;
            // The driver VM loses CPU access to this VRAM slice.
            env.hv()
                .borrow_mut()
                .hc_protect_bar_range(env.vm(), env.domain(), region, lo, slice_bytes)
                .map_err(|e| hv_to_errno(&e))?;
            // (i) The protected GTT page pool, IOMMU-mapped up front.
            let gtt = DmaPool::new(env, gtt_pool_pages, Access::RW, Some(region))?;
            // (iv) The staging page: protected, then write-only-emulated so
            // the driver can fill it and only the device can read it.
            let staging = env.alloc_kernel_page()?;
            env.iommu_map(
                DmaAddr::new(staging.raw()),
                staging,
                Access::RW,
                Some(region),
            )?;
            env.hv()
                .borrow_mut()
                .hc_emulate_write_only(env.vm(), env.domain(), DmaAddr::new(staging.raw()))
                .map_err(|e| hv_to_errno(&e))?;
            // (ii) Reserve the per-region GART page in device memory.
            let mut vram = VramAllocator::new(lo, hi);
            let gart_offset = vram.alloc(PAGE_SIZE)?;
            regions.push(RegionState {
                region,
                guest,
                vram,
                gtt,
                staging,
                gart_offset,
            });
        }
        // (iii) Confiscate the memory-controller MMIO page.
        env.hv()
            .borrow_mut()
            .hc_protect_mmio(env.vm(), env.domain())
            .map_err(|e| hv_to_errno(&e))?;
        Ok(IsolationState { regions })
    }

    fn state_of(&mut self, region: RegionId) -> Result<&mut RegionState, Errno> {
        self.regions
            .iter_mut()
            .find(|state| state.region == region)
            .ok_or(Errno::Eperm)
    }

    /// Number of configured regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The region configured for `guest`, if any.
    pub fn region_of_guest(&self, guest: VmId) -> Option<RegionId> {
        self.regions
            .iter()
            .find(|state| state.guest == guest)
            .map(|state| state.region)
    }

    /// The per-region GART page offset in device memory (§5.3(ii)).
    pub fn gart_offset(&self, region: RegionId) -> Option<u64> {
        self.regions
            .iter()
            .find(|state| state.region == region)
            .map(|state| state.gart_offset)
    }

    /// The VRAM allocator of a region.
    ///
    /// # Errors
    ///
    /// `EPERM` for unknown regions.
    pub fn vram_for(&mut self, region: RegionId) -> Result<&mut VramAllocator, Errno> {
        Ok(&mut self.state_of(region)?.vram)
    }

    /// Frees a VRAM allocation, finding the owning region by offset.
    ///
    /// # Errors
    ///
    /// `EINVAL` if no region owns the offset.
    pub fn free_vram(&mut self, offset: u64) -> Result<(), Errno> {
        for state in &mut self.regions {
            if state.vram.contains(offset, 1) {
                return state.vram.free(offset);
            }
        }
        Err(Errno::Einval)
    }

    /// Takes `n` pages from a region's protected GTT pool.
    ///
    /// # Errors
    ///
    /// `ENOMEM` when the pool is exhausted.
    pub fn take_gtt_pages(
        &mut self,
        region: RegionId,
        n: usize,
    ) -> Result<Vec<GuestPhysAddr>, Errno> {
        let state = self.state_of(region)?;
        (0..n).map(|_| state.gtt.take()).collect()
    }

    /// Stages `data` through the region's write-only-emulated page and has
    /// the device's copy engine move it into protected VRAM at
    /// `vram_offset` (§5.3(iv)). The region must already be active.
    ///
    /// # Errors
    ///
    /// IOMMU/aperture faults surface as `EIO`.
    pub fn stage_to_vram(
        &mut self,
        env: &KernelEnv,
        region: RegionId,
        gpu: &mut RadeonGpu,
        vram_offset: u64,
        data: &[u8],
    ) -> Result<(), Errno> {
        let staging = self.state_of(region)?.staging;
        let mut written = 0usize;
        while written < data.len() {
            let chunk = (data.len() - written).min(PAGE_SIZE as usize);
            // Driver writes the staging page (write-only emulation keeps the
            // driver's EPT access).
            env.kernel_write(staging, &data[written..written + chunk])?;
            // Device copy engine: DMA-read staging (read-only to the
            // device), write VRAM (aperture-checked).
            let mut bounce = vec![0u8; chunk];
            env.device_dma_read(DmaAddr::new(staging.raw()), &mut bounce)?;
            gpu.vram_write(vram_offset + written as u64, &bounce)?;
            env.advance_ns(chunk as u64 / COPY_ENGINE_BYTES_PER_NS);
            written += chunk;
        }
        Ok(())
    }

    /// Stages `data` into a protected *system-memory* page (GTT object)
    /// through the staging page and a device copy (§5.3(iv)).
    ///
    /// # Errors
    ///
    /// IOMMU faults surface as `EIO`; `EINVAL` for out-of-page writes.
    pub fn stage_to_page(
        &mut self,
        env: &KernelEnv,
        region: RegionId,
        _gpu: &mut RadeonGpu,
        dst_page: GuestPhysAddr,
        page_offset: u64,
        data: &[u8],
    ) -> Result<(), Errno> {
        if page_offset + data.len() as u64 > PAGE_SIZE {
            return Err(Errno::Einval);
        }
        let staging = self.state_of(region)?.staging;
        env.kernel_write(staging, data)?;
        let mut bounce = vec![0u8; data.len()];
        env.device_dma_read(DmaAddr::new(staging.raw()), &mut bounce)?;
        env.device_dma_write(DmaAddr::new(dst_page.raw() + page_offset), &bounce)?;
        env.advance_ns(data.len() as u64 / COPY_ENGINE_BYTES_PER_NS);
        Ok(())
    }
}
