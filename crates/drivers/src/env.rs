//! The kernel environment a driver runs inside.
//!
//! A real driver lives in a kernel that gives it page allocation, DMA
//! mapping, MMIO access and interrupt plumbing. [`KernelEnv`] bundles the
//! simulation's equivalents: a shared hypervisor handle, the identity of the
//! VM hosting the driver, the assigned device's IOMMU domain, and the
//! *thread mark* the CVD backend sets while it executes a guest's file
//! operation (the paper's `task_struct` flag, §5.2), which data-isolation
//! code uses to find the active guest's protected region.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

use paradice_devfs::Errno;
use paradice_hypervisor::hv::HvError;
use paradice_hypervisor::{SharedHypervisor, VmId};
use paradice_mem::iommu::DomainId;
use paradice_mem::{Access, DmaAddr, GuestPhysAddr, RegionId};

/// Converts hypervisor failures into the errno a driver would observe.
pub fn hv_to_errno(err: &HvError) -> Errno {
    match err {
        HvError::Grant(_) | HvError::GuestPagePerms { .. } | HvError::Pt(_) => Errno::Efault,
        HvError::Ept(_) | HvError::EptMap(_) => Errno::Efault,
        HvError::Mem(_) => Errno::Enomem,
        HvError::Iommu(_) | HvError::ApertureViolation { .. } => Errno::Eio,
        HvError::ProtectedMmio { .. } => Errno::Eperm,
        HvError::GpaWindowExhausted => Errno::Enomem,
        HvError::DriverVmFailed { .. } => Errno::Eio,
        _ => Errno::Einval,
    }
}

/// The surroundings of a driver: its kernel, its device's IOMMU domain, and
/// the Paradice thread mark.
pub struct KernelEnv {
    hv: SharedHypervisor,
    vm: VmId,
    domain: DomainId,
    data_isolation: bool,
    /// The guest VM whose file operation the current "thread" is executing;
    /// set by the CVD backend before dispatching (the paper's marked
    /// threads). `None` means a host/driver-VM-local caller.
    current_guest: Cell<Option<VmId>>,
}

impl fmt::Debug for KernelEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelEnv")
            .field("vm", &self.vm)
            .field("domain", &self.domain)
            .field("data_isolation", &self.data_isolation)
            .field("current_guest", &self.current_guest.get())
            .finish()
    }
}

impl KernelEnv {
    /// Creates the environment for a driver hosted in `vm` driving the
    /// device behind `domain`.
    pub fn new(
        hv: SharedHypervisor,
        vm: VmId,
        domain: DomainId,
        data_isolation: bool,
    ) -> Rc<Self> {
        Rc::new(KernelEnv {
            hv,
            vm,
            domain,
            data_isolation,
            current_guest: Cell::new(None),
        })
    }

    /// The shared hypervisor handle.
    pub fn hv(&self) -> &SharedHypervisor {
        &self.hv
    }

    /// The VM hosting the driver.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The assigned device's IOMMU domain.
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// Whether device data isolation is enabled for this device.
    pub fn data_isolation(&self) -> bool {
        self.data_isolation
    }

    /// Marks the current "thread" as executing `guest`'s file operation
    /// (CVD backend) or clears the mark (`None`).
    pub fn set_current_guest(&self, guest: Option<VmId>) {
        self.current_guest.set(guest);
    }

    /// The guest whose operation is currently executing, if any.
    pub fn current_guest(&self) -> Option<VmId> {
        self.current_guest.get()
    }

    /// Current virtual time, ns.
    pub fn now_ns(&self) -> u64 {
        self.hv.borrow().clock().now_ns()
    }

    /// Advances virtual time (driver-side CPU work).
    pub fn advance_ns(&self, delta: u64) {
        self.hv.borrow().clock().advance(delta);
    }

    /// Allocates one kernel page in the driver VM, returning its
    /// driver-physical (guest-physical) address.
    ///
    /// # Errors
    ///
    /// `ENOMEM` when the driver VM's kernel memory is exhausted.
    pub fn alloc_kernel_page(&self) -> Result<GuestPhysAddr, Errno> {
        self.hv
            .borrow_mut()
            .vm_mut(self.vm)
            .map_err(|e| hv_to_errno(&e))?
            .alloc_kernel_page()
            .ok_or(Errno::Enomem)
    }

    /// Driver CPU read of its own memory (EPT-checked: protected-region
    /// pages fault, §4.2).
    ///
    /// # Errors
    ///
    /// `EFAULT` on EPT violations.
    pub fn kernel_read(&self, gpa: GuestPhysAddr, buf: &mut [u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .vm_mem_read(self.vm, gpa, buf)
            .map_err(|e| hv_to_errno(&e))
    }

    /// Driver CPU write of its own memory (EPT-checked).
    ///
    /// # Errors
    ///
    /// `EFAULT` on EPT violations.
    pub fn kernel_write(&self, gpa: GuestPhysAddr, buf: &[u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .vm_mem_write(self.vm, gpa, buf)
            .map_err(|e| hv_to_errno(&e))
    }

    /// Asks the hypervisor to map a driver page into the device's IOMMU
    /// domain at `dma` (with the region tag under data isolation, §5.3(i)).
    ///
    /// # Errors
    ///
    /// `EIO`/`EINVAL` on hypervisor refusal.
    pub fn iommu_map(
        &self,
        dma: DmaAddr,
        page: GuestPhysAddr,
        access: Access,
        region: Option<RegionId>,
    ) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .hc_iommu_map(self.vm, self.domain, dma, page, access, region)
            .map_err(|e| hv_to_errno(&e))
    }

    /// Unmaps a DMA page (the hypervisor zeroes it first).
    ///
    /// # Errors
    ///
    /// `EIO`/`EINVAL` on hypervisor refusal.
    pub fn iommu_unmap(&self, dma: DmaAddr) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .hc_iommu_unmap(self.vm, self.domain, dma)
            .map_err(|e| hv_to_errno(&e))
    }

    /// Asks the hypervisor to make the device work with `region`'s data.
    ///
    /// # Errors
    ///
    /// `EINVAL` for unknown regions.
    pub fn switch_region(&self, region: Option<RegionId>) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .hc_switch_region(self.vm, self.domain, region)
            .map_err(|e| hv_to_errno(&e))
    }

    /// The protected region of `guest` on this device, if any.
    pub fn region_of_guest(&self, guest: VmId) -> Option<RegionId> {
        self.hv.borrow().region_of_guest(self.domain, guest)
    }

    /// A DMA write performed by the *device* (IOMMU-translated, region-gated
    /// under data isolation). Device models use this to deposit sensor
    /// frames, RX packets, fence values, etc.
    ///
    /// # Errors
    ///
    /// `EIO` on IOMMU faults (which are audited by the hypervisor).
    pub fn device_dma_write(&self, dma: DmaAddr, buf: &[u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .device_dma_write(self.domain, dma, buf)
            .map_err(|e| hv_to_errno(&e))
    }

    /// A DMA read performed by the *device* (IOMMU-translated).
    ///
    /// # Errors
    ///
    /// `EIO` on IOMMU faults.
    pub fn device_dma_read(&self, dma: DmaAddr, buf: &mut [u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .device_dma_read(self.domain, dma, buf)
            .map_err(|e| hv_to_errno(&e))
    }

    /// Checks a device-memory access against the active aperture (§4.2).
    ///
    /// # Errors
    ///
    /// `EIO` outside the aperture (audited).
    pub fn check_aperture(&self, offset: u64, len: u64) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .check_aperture(self.domain, offset, len)
            .map_err(|e| hv_to_errno(&e))
    }

    /// The *device's* access to its own BAR-backed memory (VRAM): bypasses
    /// the driver VM's EPT (a device is not subject to the CPU's page
    /// tables). Aperture enforcement is the device model's job before
    /// calling this.
    ///
    /// # Errors
    ///
    /// `EFAULT` for unmapped BAR addresses.
    pub fn device_local_write(&self, gpa: GuestPhysAddr, buf: &[u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .gpa_write_privileged(self.vm, gpa, buf)
            .map_err(|e| hv_to_errno(&e))
    }

    /// Device-side read counterpart of [`KernelEnv::device_local_write`].
    ///
    /// # Errors
    ///
    /// `EFAULT` for unmapped BAR addresses.
    pub fn device_local_read(&self, gpa: GuestPhysAddr, buf: &mut [u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .gpa_read_privileged(self.vm, gpa, buf)
            .map_err(|e| hv_to_errno(&e))
    }
}

/// A pre-allocated pool of DMA-able driver pages.
///
/// The isolation patch set "allocate\[s\] a pool of pages for each memory
/// region and map\[s\] them in IOMMU in the initialization phase" for
/// efficiency (§5.3(i)); without isolation the same pool provides ordinary
/// DMA buffers (rings, frame buffers).
#[derive(Debug)]
pub struct DmaPool {
    pages: Vec<GuestPhysAddr>,
    next: usize,
}

impl DmaPool {
    /// Allocates `pages` kernel pages and maps each in the device's IOMMU at
    /// a DMA address equal to its driver-physical address (the natural
    /// layout when DMA space mirrors driver-physical space).
    ///
    /// # Errors
    ///
    /// `ENOMEM` or hypervisor refusal.
    pub fn new(
        env: &KernelEnv,
        pages: usize,
        access: Access,
        region: Option<RegionId>,
    ) -> Result<Self, Errno> {
        let mut pool = Vec::with_capacity(pages);
        for _ in 0..pages {
            let page = env.alloc_kernel_page()?;
            env.iommu_map(DmaAddr::new(page.raw()), page, access, region)?;
            pool.push(page);
        }
        Ok(DmaPool {
            pages: pool,
            next: 0,
        })
    }

    /// Takes the next unused page from the pool.
    ///
    /// # Errors
    ///
    /// `ENOMEM` when the pool is exhausted.
    pub fn take(&mut self) -> Result<GuestPhysAddr, Errno> {
        let page = self.pages.get(self.next).copied().ok_or(Errno::Enomem)?;
        self.next += 1;
        Ok(page)
    }

    /// Pages handed out so far.
    pub fn used(&self) -> usize {
        self.next
    }

    /// Total pool size.
    pub fn capacity(&self) -> usize {
        self.pages.len()
    }

    /// All pages in the pool (used and unused).
    pub fn pages(&self) -> &[GuestPhysAddr] {
        &self.pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_hypervisor::hv::{DataIsolation, Hypervisor};
    use paradice_hypervisor::vm::VmRole;
    use paradice_hypervisor::{CostModel, SimClock};
    use paradice_mem::PAGE_SIZE;
    use std::cell::RefCell;

    fn setup(di: bool) -> Rc<KernelEnv> {
        let mut hv = Hypervisor::new(1024, SimClock::new(), CostModel::default());
        let vm = hv.create_vm(VmRole::Driver, 64 * PAGE_SIZE).unwrap();
        let isolation = if di {
            DataIsolation::Enabled
        } else {
            DataIsolation::Disabled
        };
        let domain = hv.assign_device(vm, isolation).unwrap();
        KernelEnv::new(Rc::new(RefCell::new(hv)), vm, domain, di)
    }

    #[test]
    fn kernel_page_allocation_and_rw() {
        let env = setup(false);
        let page = env.alloc_kernel_page().unwrap();
        env.kernel_write(page, b"ring").unwrap();
        let mut buf = [0u8; 4];
        env.kernel_read(page, &mut buf).unwrap();
        assert_eq!(&buf, b"ring");
    }

    #[test]
    fn thread_mark_roundtrip() {
        let env = setup(false);
        assert_eq!(env.current_guest(), None);
        env.set_current_guest(Some(VmId(3)));
        assert_eq!(env.current_guest(), Some(VmId(3)));
        env.set_current_guest(None);
        assert_eq!(env.current_guest(), None);
    }

    #[test]
    fn dma_pool_without_isolation() {
        let env = setup(false);
        let mut pool = DmaPool::new(&env, 4, Access::RW, None).unwrap();
        assert_eq!(pool.capacity(), 4);
        let a = pool.take().unwrap();
        let b = pool.take().unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.used(), 2);
    }

    #[test]
    fn dma_pool_with_isolation_requires_region() {
        let env = setup(true);
        // Without a region tag the hypervisor refuses (EIO path).
        assert!(DmaPool::new(&env, 1, Access::RW, None).is_err());
        // With a region it succeeds, and the pages become unreadable to the
        // driver VM.
        let guest = {
            let mut hv = env.hv().borrow_mut();
            hv.create_vm(VmRole::Guest, 4 * PAGE_SIZE).unwrap()
        };
        let region = {
            let mut hv = env.hv().borrow_mut();
            hv.hc_create_region(env.vm(), env.domain(), guest, None)
                .unwrap()
        };
        let pool = DmaPool::new(&env, 2, Access::RW, Some(region)).unwrap();
        let page = pool.pages()[0];
        let mut buf = [0u8; 1];
        assert_eq!(env.kernel_read(page, &mut buf), Err(Errno::Efault));
    }

    #[test]
    fn pool_exhaustion() {
        let env = setup(false);
        let mut pool = DmaPool::new(&env, 1, Access::RW, None).unwrap();
        pool.take().unwrap();
        assert_eq!(pool.take(), Err(Errno::Enomem));
    }

    #[test]
    fn clock_helpers() {
        let env = setup(false);
        let t0 = env.now_ns();
        env.advance_ns(500);
        assert_eq!(env.now_ns(), t0 + 500);
    }
}
