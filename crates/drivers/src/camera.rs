//! Camera: a UVC-style sensor behind a V4L2-style driver.
//!
//! The paper virtualizes a Logitech HD Pro Webcam C920 through the V4L2/UVC
//! stack and finds that "for all the resolutions, native, device assignment,
//! and Paradice achieve about 29.5 FPS" (§6.1.6) — the sensor's frame period
//! dominates the per-frame file-operation overhead. The driver here follows
//! the V4L2 streaming-I/O shape: format negotiation, buffer request,
//! `mmap`'d frame buffers, a QBUF/DQBUF rotation, and stream on/off. The
//! camera driver "only allow\[s\] one process at a time" (§5.1): the devfs
//! registration is exclusive-open, and the driver itself guards too.

use std::collections::VecDeque;
use std::rc::Rc;

use paradice_devfs::fileops::{FileOps, MmapRange, OpenContext, PollEvents};
use paradice_devfs::ioc::{io, ior, iowr, IoctlCmd};
use paradice_devfs::registry::FileHandleId;
use paradice_devfs::{Errno, MemOps};
use paradice_mem::{DmaAddr, GuestPhysAddr, GuestVirtAddr, PAGE_SIZE};

use crate::env::{DmaPool, KernelEnv};

/// `VIDIOC_QUERYCAP`: 32-byte card name out.
pub const VIDIOC_QUERYCAP: IoctlCmd = ior(b'V', 0, 32);
/// `VIDIOC_S_FMT`: `{u32 width, u32 height, u32 fourcc, u32 sizeimage}`.
pub const VIDIOC_S_FMT: IoctlCmd = iowr(b'V', 5, 16);
/// `VIDIOC_REQBUFS`: `{u32 count}` in/out.
pub const VIDIOC_REQBUFS: IoctlCmd = iowr(b'V', 8, 4);
/// `VIDIOC_QUERYBUF`: `{u32 index, u32 length, u64 offset}`.
pub const VIDIOC_QUERYBUF: IoctlCmd = iowr(b'V', 9, 16);
/// `VIDIOC_QBUF`: `{u32 index}`.
pub const VIDIOC_QBUF: IoctlCmd = iowr(b'V', 15, 4);
/// `VIDIOC_DQBUF`: `{u32 index, u32 bytesused, u64 sequence}`.
pub const VIDIOC_DQBUF: IoctlCmd = ior(b'V', 17, 16);
/// `VIDIOC_STREAMON`.
pub const VIDIOC_STREAMON: IoctlCmd = io(b'V', 18);
/// `VIDIOC_STREAMOFF`.
pub const VIDIOC_STREAMOFF: IoctlCmd = io(b'V', 19);

/// The sensor's frame period: 29.5 frames per second (§6.1.6).
pub const SENSOR_PERIOD_NS: u64 = 1_000_000_000 / 295 * 10; // 33_898_300 ns

/// Resolutions the paper tests ("the three highest video resolutions
/// supported by our test camera for MJPG output", §6.1.6).
pub const MJPG_RESOLUTIONS: [(u32, u32); 3] = [(1280, 720), (1600, 896), (1920, 1080)];

/// Compressed MJPG frame size model: about a tenth of the raw frame.
pub fn mjpg_frame_bytes(width: u32, height: u32) -> u64 {
    (u64::from(width) * u64::from(height)) / 10
}

/// Maximum frame buffers a client may request.
const MAX_BUFFERS: u32 = 8;

#[derive(Debug, Clone)]
struct FrameBuffer {
    pages: Vec<GuestPhysAddr>,
    length: u64,
    bytesused: u64,
}

/// The UVC camera driver plus its sensor model.
pub struct UvcDriver {
    env: Rc<KernelEnv>,
    owner: Option<FileHandleId>,
    width: u32,
    height: u32,
    buffers: Vec<FrameBuffer>,
    /// Indices of buffers queued for the sensor to fill, in order.
    incoming: VecDeque<u32>,
    /// Indices of filled buffers awaiting DQBUF.
    outgoing: VecDeque<u32>,
    streaming: bool,
    next_frame_ns: u64,
    sequence: u64,
}

impl std::fmt::Debug for UvcDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UvcDriver")
            .field("format", &(self.width, self.height))
            .field("buffers", &self.buffers.len())
            .field("streaming", &self.streaming)
            .field("sequence", &self.sequence)
            .finish()
    }
}

impl UvcDriver {
    /// Creates the driver for the Logitech C920 of Table 1.
    pub fn new(env: Rc<KernelEnv>) -> Self {
        UvcDriver {
            env,
            owner: None,
            width: 1280,
            height: 720,
            buffers: Vec::new(),
            incoming: VecDeque::new(),
            outgoing: VecDeque::new(),
            streaming: false,
            next_frame_ns: 0,
            sequence: 0,
        }
    }

    /// Frames delivered since stream-on (the workload's FPS numerator).
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    fn check_owner(&self, ctx: OpenContext) -> Result<(), Errno> {
        match self.owner {
            Some(owner) if owner == ctx.handle => Ok(()),
            Some(_) => Err(Errno::Ebusy),
            None => Err(Errno::Ebadf),
        }
    }

    fn frame_bytes(&self) -> u64 {
        mjpg_frame_bytes(self.width, self.height)
    }

    fn pages_per_buffer(&self) -> u64 {
        self.frame_bytes().div_ceil(PAGE_SIZE)
    }

    /// The sensor fills the next queued buffer. Advances the clock to the
    /// frame's arrival and DMA-writes a frame header into the buffer —
    /// exercising the IOMMU path a real UVC transfer would take.
    fn capture_frame(&mut self) -> Result<u32, Errno> {
        let index = self.incoming.pop_front().ok_or(Errno::Einval)?;
        self.env
            .hv()
            .borrow()
            .clock()
            .advance_to(self.next_frame_ns);
        self.next_frame_ns = self.env.now_ns() + SENSOR_PERIOD_NS;
        self.sequence += 1;
        let frame_len = self.frame_bytes();
        {
            let buffer = &self.buffers[index as usize];
            // The device deposits an MJPG header + sequence stamp.
            let mut header = [0u8; 16];
            header[0..4].copy_from_slice(&0xffd8_ffe0u32.to_le_bytes()); // JPEG SOI/APP0
            header[4..12].copy_from_slice(&self.sequence.to_le_bytes());
            header[12..16].copy_from_slice(&(frame_len as u32).to_le_bytes());
            self.env
                .device_dma_write(DmaAddr::new(buffer.pages[0].raw()), &header)?;
        }
        self.buffers[index as usize].bytesused = frame_len;
        self.outgoing.push_back(index);
        Ok(index)
    }
}

impl FileOps for UvcDriver {
    fn driver_name(&self) -> &str {
        "V4L2/UVC"
    }

    fn open(&mut self, ctx: OpenContext) -> Result<(), Errno> {
        if self.owner.is_some() {
            return Err(Errno::Ebusy);
        }
        self.owner = Some(ctx.handle);
        Ok(())
    }

    fn release(&mut self, ctx: OpenContext) -> Result<(), Errno> {
        if self.owner == Some(ctx.handle) {
            self.owner = None;
            self.streaming = false;
            self.buffers.clear();
            self.incoming.clear();
            self.outgoing.clear();
        }
        Ok(())
    }

    fn ioctl(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        cmd: IoctlCmd,
        arg: u64,
    ) -> Result<i64, Errno> {
        self.check_owner(ctx)?;
        let arg_ptr = GuestVirtAddr::new(arg);
        match cmd {
            VIDIOC_QUERYCAP => {
                let mut card = [0u8; 32];
                card[..28].copy_from_slice(b"Logitech HD Pro Webcam C920\0");
                mem.copy_to_user(arg_ptr, &card)?;
                Ok(0)
            }
            VIDIOC_S_FMT => {
                if self.streaming {
                    return Err(Errno::Ebusy);
                }
                let mut fmt = [0u8; 16];
                mem.copy_from_user(arg_ptr, &mut fmt)?;
                let width = u32::from_le_bytes(fmt[0..4].try_into().expect("len 4"));
                let height = u32::from_le_bytes(fmt[4..8].try_into().expect("len 4"));
                if !MJPG_RESOLUTIONS.contains(&(width, height)) {
                    return Err(Errno::Einval);
                }
                self.width = width;
                self.height = height;
                self.buffers.clear();
                // Report the negotiated sizeimage back.
                fmt[12..16].copy_from_slice(&(self.frame_bytes() as u32).to_le_bytes());
                mem.copy_to_user(arg_ptr, &fmt)?;
                Ok(0)
            }
            VIDIOC_REQBUFS => {
                if self.streaming {
                    return Err(Errno::Ebusy);
                }
                let count = mem.read_user_u32(arg_ptr)?.min(MAX_BUFFERS);
                if count == 0 {
                    return Err(Errno::Einval);
                }
                self.buffers.clear();
                self.incoming.clear();
                self.outgoing.clear();
                let pages = self.pages_per_buffer() as usize;
                let region = self
                    .env
                    .current_guest()
                    .and_then(|guest| self.env.region_of_guest(guest));
                for _ in 0..count {
                    let mut pool =
                        DmaPool::new(&self.env, pages, paradice_mem::Access::RW, region)?;
                    let mut buffer_pages = Vec::with_capacity(pages);
                    for _ in 0..pages {
                        buffer_pages.push(pool.take()?);
                    }
                    self.buffers.push(FrameBuffer {
                        pages: buffer_pages,
                        length: self.frame_bytes(),
                        bytesused: 0,
                    });
                }
                mem.write_user_u32(arg_ptr, count)?;
                Ok(0)
            }
            VIDIOC_QUERYBUF => {
                let mut req = [0u8; 16];
                mem.copy_from_user(arg_ptr, &mut req)?;
                let index = u32::from_le_bytes(req[0..4].try_into().expect("len 4"));
                let buffer = self
                    .buffers
                    .get(index as usize)
                    .ok_or(Errno::Einval)?;
                let span = self.pages_per_buffer() * PAGE_SIZE;
                req[4..8].copy_from_slice(&(buffer.length as u32).to_le_bytes());
                req[8..16].copy_from_slice(&(u64::from(index) * span).to_le_bytes());
                mem.copy_to_user(arg_ptr, &req)?;
                Ok(0)
            }
            VIDIOC_QBUF => {
                let index = mem.read_user_u32(arg_ptr)?;
                if index as usize >= self.buffers.len() {
                    return Err(Errno::Einval);
                }
                if self.incoming.contains(&index) || self.outgoing.contains(&index) {
                    return Err(Errno::Einval);
                }
                self.incoming.push_back(index);
                Ok(0)
            }
            VIDIOC_DQBUF => {
                if !self.streaming {
                    return Err(Errno::Einval);
                }
                // If no frame is ready yet, the caller blocks until the
                // sensor fills the next queued buffer.
                if self.outgoing.is_empty() {
                    self.capture_frame()?;
                }
                let index = self.outgoing.pop_front().expect("just captured");
                let buffer = &self.buffers[index as usize];
                let mut out = [0u8; 16];
                out[0..4].copy_from_slice(&index.to_le_bytes());
                out[4..8].copy_from_slice(&(buffer.bytesused as u32).to_le_bytes());
                out[8..16].copy_from_slice(&self.sequence.to_le_bytes());
                mem.copy_to_user(arg_ptr, &out)?;
                Ok(0)
            }
            VIDIOC_STREAMON => {
                if self.buffers.is_empty() {
                    return Err(Errno::Einval);
                }
                self.streaming = true;
                self.next_frame_ns = self.env.now_ns() + SENSOR_PERIOD_NS;
                Ok(0)
            }
            VIDIOC_STREAMOFF => {
                self.streaming = false;
                self.incoming.clear();
                self.outgoing.clear();
                Ok(0)
            }
            _ => Err(Errno::Enotty),
        }
    }

    fn mmap(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        range: MmapRange,
    ) -> Result<(), Errno> {
        self.check_owner(ctx)?;
        let span = self.pages_per_buffer() * PAGE_SIZE;
        if span == 0 || !range.offset.is_multiple_of(span) {
            return Err(Errno::Einval);
        }
        let index = (range.offset / span) as usize;
        let buffer = self.buffers.get(index).ok_or(Errno::Einval)?;
        let pages_needed = range.len.div_ceil(PAGE_SIZE) as usize;
        if pages_needed > buffer.pages.len() {
            return Err(Errno::Einval);
        }
        for (i, page) in buffer.pages.iter().take(pages_needed).enumerate() {
            mem.insert_pfn(
                range.va.add(i as u64 * PAGE_SIZE),
                page.page_number(),
                range.access,
            )?;
        }
        Ok(())
    }

    fn poll(&mut self, ctx: OpenContext) -> Result<PollEvents, Errno> {
        self.check_owner(ctx)?;
        Ok(if self.outgoing.is_empty() {
            PollEvents::NONE
        } else {
            PollEvents::IN
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_devfs::fileops::{OpenFlags, TaskId};
    use paradice_devfs::memops::BufferMemOps;
    use paradice_hypervisor::hv::{DataIsolation, Hypervisor};
    use paradice_hypervisor::vm::VmRole;
    use paradice_hypervisor::{CostModel, SimClock};
    use std::cell::RefCell;

    fn driver() -> UvcDriver {
        let mut hv = Hypervisor::new(4096, SimClock::new(), CostModel::default());
        let vm = hv.create_vm(VmRole::Driver, 512 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(vm, DataIsolation::Disabled).unwrap();
        let env = KernelEnv::new(Rc::new(RefCell::new(hv)), vm, domain, false);
        UvcDriver::new(env)
    }

    fn ctx(handle: u64) -> OpenContext {
        OpenContext {
            handle: FileHandleId(handle),
            task: TaskId(1),
            flags: OpenFlags::RDWR,
        }
    }

    fn set_format(drv: &mut UvcDriver, mem: &mut BufferMemOps, w: u32, h: u32) {
        let mut fmt = [0u8; 16];
        fmt[0..4].copy_from_slice(&w.to_le_bytes());
        fmt[4..8].copy_from_slice(&h.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0), &fmt).unwrap();
        drv.ioctl(ctx(1), mem, VIDIOC_S_FMT, 0).unwrap();
    }

    fn reqbufs(drv: &mut UvcDriver, mem: &mut BufferMemOps, count: u32) -> u32 {
        mem.write_user_u32(GuestVirtAddr::new(64), count).unwrap();
        drv.ioctl(ctx(1), mem, VIDIOC_REQBUFS, 64).unwrap();
        mem.read_user_u32(GuestVirtAddr::new(64)).unwrap()
    }

    fn qbuf(drv: &mut UvcDriver, mem: &mut BufferMemOps, index: u32) {
        mem.write_user_u32(GuestVirtAddr::new(96), index).unwrap();
        drv.ioctl(ctx(1), mem, VIDIOC_QBUF, 96).unwrap();
    }

    fn dqbuf(drv: &mut UvcDriver, mem: &mut BufferMemOps) -> (u32, u32) {
        drv.ioctl(ctx(1), mem, VIDIOC_DQBUF, 128).unwrap();
        let mut out = [0u8; 16];
        mem.copy_from_user(GuestVirtAddr::new(128), &mut out).unwrap();
        (
            u32::from_le_bytes(out[0..4].try_into().unwrap()),
            u32::from_le_bytes(out[4..8].try_into().unwrap()),
        )
    }

    #[test]
    fn exclusive_open() {
        let mut drv = driver();
        drv.open(ctx(1)).unwrap();
        assert_eq!(drv.open(ctx(2)), Err(Errno::Ebusy));
        drv.release(ctx(1)).unwrap();
        assert!(drv.open(ctx(2)).is_ok());
    }

    #[test]
    fn format_negotiation() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        drv.open(ctx(1)).unwrap();
        set_format(&mut drv, &mut mem, 1920, 1080);
        assert_eq!((drv.width, drv.height), (1920, 1080));
        // sizeimage reported back.
        let size = mem.read_user_u32(GuestVirtAddr::new(12)).unwrap();
        assert_eq!(u64::from(size), mjpg_frame_bytes(1920, 1080));
        // Unsupported resolution rejected.
        let mut fmt = [0u8; 16];
        fmt[0..4].copy_from_slice(&640u32.to_le_bytes());
        fmt[4..8].copy_from_slice(&480u32.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0), &fmt).unwrap();
        assert_eq!(
            drv.ioctl(ctx(1), &mut mem, VIDIOC_S_FMT, 0),
            Err(Errno::Einval)
        );
    }

    #[test]
    fn streaming_delivers_at_sensor_rate() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        drv.open(ctx(1)).unwrap();
        set_format(&mut drv, &mut mem, 1280, 720);
        let granted = reqbufs(&mut drv, &mut mem, 4);
        assert_eq!(granted, 4);
        for i in 0..4 {
            qbuf(&mut drv, &mut mem, i);
        }
        drv.ioctl(ctx(1), &mut mem, VIDIOC_STREAMON, 0).unwrap();
        let start = drv.env.now_ns();
        let mut frames = 0u64;
        for _ in 0..30 {
            let (index, bytesused) = dqbuf(&mut drv, &mut mem);
            assert_eq!(u64::from(bytesused), mjpg_frame_bytes(1280, 720));
            frames += 1;
            qbuf(&mut drv, &mut mem, index);
        }
        let elapsed = drv.env.now_ns() - start;
        let fps = frames as f64 / (elapsed as f64 / 1e9);
        assert!((29.0..30.0).contains(&fps), "fps = {fps}");
    }

    #[test]
    fn dqbuf_requires_streaming_and_queued_buffers() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        drv.open(ctx(1)).unwrap();
        set_format(&mut drv, &mut mem, 1280, 720);
        reqbufs(&mut drv, &mut mem, 2);
        assert_eq!(
            drv.ioctl(ctx(1), &mut mem, VIDIOC_DQBUF, 128),
            Err(Errno::Einval)
        );
        drv.ioctl(ctx(1), &mut mem, VIDIOC_STREAMON, 0).unwrap();
        // Streaming but nothing queued: still EINVAL.
        assert_eq!(
            drv.ioctl(ctx(1), &mut mem, VIDIOC_DQBUF, 128),
            Err(Errno::Einval)
        );
    }

    #[test]
    fn double_qbuf_rejected() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        drv.open(ctx(1)).unwrap();
        set_format(&mut drv, &mut mem, 1280, 720);
        reqbufs(&mut drv, &mut mem, 2);
        qbuf(&mut drv, &mut mem, 0);
        mem.write_user_u32(GuestVirtAddr::new(96), 0).unwrap();
        assert_eq!(
            drv.ioctl(ctx(1), &mut mem, VIDIOC_QBUF, 96),
            Err(Errno::Einval)
        );
    }

    #[test]
    fn mmap_installs_buffer_pages() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        drv.open(ctx(1)).unwrap();
        set_format(&mut drv, &mut mem, 1280, 720);
        reqbufs(&mut drv, &mut mem, 2);
        // QUERYBUF for index 1 to get the mmap offset.
        let mut req = [0u8; 16];
        req[0..4].copy_from_slice(&1u32.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(160), &req).unwrap();
        drv.ioctl(ctx(1), &mut mem, VIDIOC_QUERYBUF, 160).unwrap();
        let mut out = [0u8; 16];
        mem.copy_from_user(GuestVirtAddr::new(160), &mut out).unwrap();
        let offset = u64::from_le_bytes(out[8..16].try_into().unwrap());
        let len = u64::from(u32::from_le_bytes(out[4..8].try_into().unwrap()));
        drv.mmap(
            ctx(1),
            &mut mem,
            MmapRange {
                va: GuestVirtAddr::new(0x10_0000),
                len,
                offset,
                access: paradice_mem::Access::RW,
            },
        )
        .unwrap();
        let expected_pages = mjpg_frame_bytes(1280, 720).div_ceil(PAGE_SIZE) as usize;
        assert_eq!(mem.mappings().len(), expected_pages);
    }

    #[test]
    fn frame_header_reaches_buffer_via_dma() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        drv.open(ctx(1)).unwrap();
        set_format(&mut drv, &mut mem, 1280, 720);
        reqbufs(&mut drv, &mut mem, 1);
        qbuf(&mut drv, &mut mem, 0);
        drv.ioctl(ctx(1), &mut mem, VIDIOC_STREAMON, 0).unwrap();
        let (index, _) = dqbuf(&mut drv, &mut mem);
        let page = drv.buffers[index as usize].pages[0];
        let mut header = [0u8; 4];
        drv.env.kernel_read(page, &mut header).unwrap();
        assert_eq!(u32::from_le_bytes(header), 0xffd8_ffe0);
    }

    #[test]
    fn non_owner_calls_rejected() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        drv.open(ctx(1)).unwrap();
        assert_eq!(
            drv.ioctl(ctx(9), &mut mem, VIDIOC_STREAMON, 0),
            Err(Errno::Ebusy)
        );
    }
}
