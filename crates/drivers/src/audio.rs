//! Audio: an HDA-style PCM playback device.
//!
//! §6.1.6: "We play the same audio file on our test speaker. Native, device
//! assignment, and Paradice all take the same amount of time to finish
//! playing the file, showing that they all achieve similar audio rates." The
//! reason is the playback clock: the DMA buffer drains at the sample rate,
//! so once the (small) buffer fills, `write` blocks until samples drain —
//! per-write forwarding overhead hides completely behind the drain time.
//!
//! The driver exposes the PCM shape: an `hw_params` ioctl fixing
//! rate/channels/format, a `prepare` ioctl, and `write` for interleaved
//! samples.

use std::rc::Rc;

use paradice_devfs::fileops::{FileOps, OpenContext, PollEvents, UserBuffer};
use paradice_devfs::ioc::{io, iowr, IoctlCmd};
use paradice_devfs::{Errno, MemOps};
use paradice_mem::GuestVirtAddr;

use crate::env::KernelEnv;

/// `SNDRV_PCM_IOCTL_HW_PARAMS`-ish: `{u32 rate, u32 channels, u32 bits}`.
pub const PCM_HW_PARAMS: IoctlCmd = iowr(b'A', 0x11, 12);
/// `SNDRV_PCM_IOCTL_PREPARE`-ish.
pub const PCM_PREPARE: IoctlCmd = io(b'A', 0x40);
/// `SNDRV_PCM_IOCTL_DROP`-ish: stop and flush.
pub const PCM_DROP: IoctlCmd = io(b'A', 0x43);

/// Hardware DMA buffer: 64 KiB, typical for HDA.
pub const HW_BUFFER_BYTES: u64 = 64 * 1024;

/// Supported sample rates.
const SUPPORTED_RATES: [u32; 3] = [44_100, 48_000, 96_000];

/// The PCM playback driver plus its drain-clock device model.
pub struct PcmDriver {
    env: Rc<KernelEnv>,
    rate: u32,
    channels: u32,
    bits: u32,
    prepared: bool,
    /// Virtual time at which the last queued sample will have played.
    drained_at_ns: u64,
    /// Total bytes accepted since prepare.
    bytes_played: u64,
}

impl std::fmt::Debug for PcmDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcmDriver")
            .field("rate", &self.rate)
            .field("channels", &self.channels)
            .field("bits", &self.bits)
            .field("prepared", &self.prepared)
            .field("bytes_played", &self.bytes_played)
            .finish()
    }
}

impl PcmDriver {
    /// Creates the driver for the Intel Panther Point HD Audio controller.
    pub fn new(env: Rc<KernelEnv>) -> Self {
        PcmDriver {
            env,
            rate: 48_000,
            channels: 2,
            bits: 16,
            prepared: false,
            drained_at_ns: 0,
            bytes_played: 0,
        }
    }

    /// Bytes per second at the negotiated parameters.
    pub fn byte_rate(&self) -> u64 {
        u64::from(self.rate) * u64::from(self.channels) * u64::from(self.bits / 8)
    }

    /// Total bytes accepted since the last prepare.
    pub fn bytes_played(&self) -> u64 {
        self.bytes_played
    }

    /// When the queue will be fully drained (virtual ns).
    pub fn drained_at_ns(&self) -> u64 {
        self.drained_at_ns
    }

    fn ns_for_bytes(&self, bytes: u64) -> u64 {
        bytes.saturating_mul(1_000_000_000) / self.byte_rate()
    }
}

impl FileOps for PcmDriver {
    fn driver_name(&self) -> &str {
        "PCM/snd-hda-intel"
    }

    fn ioctl(
        &mut self,
        _ctx: OpenContext,
        mem: &mut dyn MemOps,
        cmd: IoctlCmd,
        arg: u64,
    ) -> Result<i64, Errno> {
        match cmd {
            PCM_HW_PARAMS => {
                let arg_ptr = GuestVirtAddr::new(arg);
                let mut params = [0u8; 12];
                mem.copy_from_user(arg_ptr, &mut params)?;
                let rate = u32::from_le_bytes(params[0..4].try_into().expect("len 4"));
                let channels = u32::from_le_bytes(params[4..8].try_into().expect("len 4"));
                let bits = u32::from_le_bytes(params[8..12].try_into().expect("len 4"));
                if !SUPPORTED_RATES.contains(&rate)
                    || !(1..=2).contains(&channels)
                    || !(bits == 16 || bits == 24)
                {
                    return Err(Errno::Einval);
                }
                self.rate = rate;
                self.channels = channels;
                self.bits = bits;
                self.prepared = false;
                // Report the accepted parameters back (drivers may adjust).
                mem.copy_to_user(arg_ptr, &params)?;
                Ok(0)
            }
            PCM_PREPARE => {
                self.prepared = true;
                self.drained_at_ns = self.env.now_ns();
                self.bytes_played = 0;
                Ok(0)
            }
            PCM_DROP => {
                self.prepared = false;
                self.drained_at_ns = self.env.now_ns();
                Ok(0)
            }
            _ => Err(Errno::Enotty),
        }
    }

    fn write(
        &mut self,
        _ctx: OpenContext,
        mem: &mut dyn MemOps,
        buf: UserBuffer,
    ) -> Result<u64, Errno> {
        if !self.prepared {
            return Err(Errno::Eio);
        }
        if buf.len == 0 {
            return Ok(0);
        }
        // The driver copies the samples into the DMA buffer (we read a
        // window of them to exercise the copy path without materializing
        // megabytes).
        let probe = buf.len.min(256);
        let mut samples = vec![0u8; probe as usize];
        mem.copy_from_user(buf.addr, &mut samples)?;

        let now = self.env.now_ns();
        let queue_start = self.drained_at_ns.max(now);
        let new_drained = queue_start + self.ns_for_bytes(buf.len);
        // Block until the new samples fit in the hardware buffer: the write
        // returns once at most HW_BUFFER_BYTES remain queued.
        let buffer_span_ns = self.ns_for_bytes(HW_BUFFER_BYTES);
        if new_drained > now + buffer_span_ns {
            self.env
                .hv()
                .borrow()
                .clock()
                .advance_to(new_drained - buffer_span_ns);
        }
        self.drained_at_ns = new_drained;
        self.bytes_played += buf.len;
        Ok(buf.len)
    }

    fn poll(&mut self, _ctx: OpenContext) -> Result<PollEvents, Errno> {
        let now = self.env.now_ns();
        let queued = self.drained_at_ns.saturating_sub(now);
        Ok(if queued < self.ns_for_bytes(HW_BUFFER_BYTES) {
            PollEvents::OUT
        } else {
            PollEvents::NONE
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_devfs::fileops::{OpenFlags, TaskId};
    use paradice_devfs::memops::BufferMemOps;
    use paradice_devfs::registry::FileHandleId;
    use paradice_hypervisor::hv::{DataIsolation, Hypervisor};
    use paradice_hypervisor::vm::VmRole;
    use paradice_hypervisor::{CostModel, SimClock};
    use paradice_mem::PAGE_SIZE;
    use std::cell::RefCell;

    fn driver() -> PcmDriver {
        let mut hv = Hypervisor::new(256, SimClock::new(), CostModel::default());
        let vm = hv.create_vm(VmRole::Driver, 16 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(vm, DataIsolation::Disabled).unwrap();
        let env = KernelEnv::new(Rc::new(RefCell::new(hv)), vm, domain, false);
        PcmDriver::new(env)
    }

    fn ctx() -> OpenContext {
        OpenContext {
            handle: FileHandleId(1),
            task: TaskId(1),
            flags: OpenFlags::WRONLY,
        }
    }

    fn set_params(drv: &mut PcmDriver, mem: &mut BufferMemOps, rate: u32, ch: u32, bits: u32) {
        let mut params = [0u8; 12];
        params[0..4].copy_from_slice(&rate.to_le_bytes());
        params[4..8].copy_from_slice(&ch.to_le_bytes());
        params[8..12].copy_from_slice(&bits.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0), &params).unwrap();
        drv.ioctl(ctx(), mem, PCM_HW_PARAMS, 0).unwrap();
    }

    #[test]
    fn hw_params_negotiation() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        set_params(&mut drv, &mut mem, 44_100, 2, 16);
        assert_eq!(drv.byte_rate(), 44_100 * 2 * 2);
        // Bogus rate rejected.
        let mut params = [0u8; 12];
        params[0..4].copy_from_slice(&12345u32.to_le_bytes());
        params[4..8].copy_from_slice(&2u32.to_le_bytes());
        params[8..12].copy_from_slice(&16u32.to_le_bytes());
        mem.copy_to_user(GuestVirtAddr::new(0), &params).unwrap();
        assert_eq!(
            drv.ioctl(ctx(), &mut mem, PCM_HW_PARAMS, 0),
            Err(Errno::Einval)
        );
    }

    #[test]
    fn write_requires_prepare() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        assert_eq!(
            drv.write(ctx(), &mut mem, UserBuffer::new(GuestVirtAddr::new(0), 64)),
            Err(Errno::Eio)
        );
    }

    #[test]
    fn playback_time_matches_sample_rate() {
        // A "file" of exactly 2 seconds of audio must take ~2 virtual
        // seconds to play — the §6.1.6 result.
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        set_params(&mut drv, &mut mem, 48_000, 2, 16);
        drv.ioctl(ctx(), &mut mem, PCM_PREPARE, 0).unwrap();
        let start = drv.env.now_ns();
        let total = drv.byte_rate() * 2; // 2 seconds of audio
        let chunk = 4096u64;
        let mut sent = 0;
        while sent < total {
            let n = drv
                .write(
                    ctx(),
                    &mut mem,
                    UserBuffer::new(GuestVirtAddr::new(0), chunk.min(total - sent)),
                )
                .unwrap();
            sent += n;
        }
        // Wait for drain.
        let end = drv.drained_at_ns();
        let elapsed_s = (end - start) as f64 / 1e9;
        assert!((1.99..2.01).contains(&elapsed_s), "elapsed {elapsed_s}s");
        assert_eq!(drv.bytes_played(), total);
    }

    #[test]
    fn writes_block_only_when_buffer_full() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        set_params(&mut drv, &mut mem, 48_000, 2, 16);
        drv.ioctl(ctx(), &mut mem, PCM_PREPARE, 0).unwrap();
        let t0 = drv.env.now_ns();
        // First 64 KiB fit in the hardware buffer without blocking.
        drv.write(
            ctx(),
            &mut mem,
            UserBuffer::new(GuestVirtAddr::new(0), HW_BUFFER_BYTES),
        )
        .unwrap();
        assert_eq!(drv.env.now_ns(), t0, "fill without blocking");
        // The next write must block until space drains.
        drv.write(ctx(), &mut mem, UserBuffer::new(GuestVirtAddr::new(0), 4096))
            .unwrap();
        assert!(drv.env.now_ns() > t0);
    }

    #[test]
    fn poll_signals_writability() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        set_params(&mut drv, &mut mem, 48_000, 2, 16);
        drv.ioctl(ctx(), &mut mem, PCM_PREPARE, 0).unwrap();
        assert_eq!(drv.poll(ctx()).unwrap(), PollEvents::OUT);
        drv.write(
            ctx(),
            &mut mem,
            UserBuffer::new(GuestVirtAddr::new(0), HW_BUFFER_BYTES),
        )
        .unwrap();
        assert_eq!(drv.poll(ctx()).unwrap(), PollEvents::NONE);
    }

    #[test]
    fn drop_resets_queue() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        set_params(&mut drv, &mut mem, 48_000, 2, 16);
        drv.ioctl(ctx(), &mut mem, PCM_PREPARE, 0).unwrap();
        drv.write(
            ctx(),
            &mut mem,
            UserBuffer::new(GuestVirtAddr::new(0), HW_BUFFER_BYTES),
        )
        .unwrap();
        drv.ioctl(ctx(), &mut mem, PCM_DROP, 0).unwrap();
        assert_eq!(drv.drained_at_ns(), drv.env.now_ns());
        assert_eq!(
            drv.write(ctx(), &mut mem, UserBuffer::new(GuestVirtAddr::new(0), 64)),
            Err(Errno::Eio)
        );
    }
}
