//! Ethernet for the netmap framework: an e1000-style NIC with netmap rings.
//!
//! netmap [Rizzo, USENIX ATC'12] maps NIC descriptor rings and packet
//! buffers straight into the application, which then sends "packets at the
//! line rate" using one `poll`/`NIOCTXSYNC` per *batch*. The paper uses this
//! as its highest-rate stress test (Figure 2): per-batch forwarding overhead
//! is Paradice's only cost, so the transmit rate converges to native as the
//! batch grows — with polling mode converging at a batch of ~4 and interrupt
//! mode needing tens of packets per batch (§6.1.2).
//!
//! Layout of the `mmap`'d region (offsets in bytes):
//!
//! ```text
//! 0                .. PAGE     TX ring page (head/tail/nslots + slots)
//! PAGE             .. 2·PAGE   RX ring page
//! 2·PAGE           .. +N·PAGE  TX packet buffers (one page each)
//! 2·PAGE + N·PAGE  .. +N·PAGE  RX packet buffers
//! ```
//!
//! Ring page layout: `u32 head, u32 tail, u32 num_slots, u32 pad`, then
//! `num_slots` slots of `{u32 len, u32 buf_index}`. The producer (app for
//! TX) advances `head`; the consumer (NIC) advances `tail`; the ring is full
//! when `(head + 1) % N == tail` (a simplified-but-faithful SPSC contract).

use std::collections::VecDeque;
use std::rc::Rc;

use paradice_devfs::fileops::{FileOps, MmapRange, OpenContext, PollEvents};
use paradice_devfs::ioc::{io, iowr, IoctlCmd};
use paradice_devfs::registry::FileHandleId;
use paradice_devfs::{Errno, MemOps};
use paradice_mem::{Access, GuestPhysAddr, GuestVirtAddr, PAGE_SIZE};

use crate::env::{DmaPool, KernelEnv};

/// `NIOCGINFO`: `{u32 num_slots, u32 buf_size}` out.
pub const NIOCGINFO: IoctlCmd = iowr(b'i', 145, 8);
/// `NIOCREGIF`: `{u32 num_slots, u32 buf_size, u64 memsize}` out.
pub const NIOCREGIF: IoctlCmd = iowr(b'i', 146, 16);
/// `NIOCTXSYNC`.
pub const NIOCTXSYNC: IoctlCmd = io(b'i', 148);
/// `NIOCRXSYNC`.
pub const NIOCRXSYNC: IoctlCmd = io(b'i', 149);

/// Slots per ring (netmap's default for e1000 is 256).
pub const NUM_SLOTS: u32 = 256;

/// Maximum packet bytes per buffer (netmap's default buffer is 2048).
pub const BUF_SIZE: u32 = 2048;

/// Nanoseconds on a 1 Gbps wire for a frame of `len` payload bytes:
/// Ethernet pads to 60 bytes and adds 4 CRC + 8 preamble + 12 IFG.
pub fn wire_ns(len: u32) -> u64 {
    let on_wire = u64::from(len.max(60)) + 4 + 8 + 12;
    on_wire * 8 // 1 Gbps = 1 bit/ns
}

/// Line rate in packets/s for 64-byte packets: the 1.488 Mpps of Figure 2.
pub fn line_rate_pps(len: u32) -> f64 {
    1e9 / wire_ns(len) as f64
}

const RING_HEAD_OFF: u64 = 0;
const RING_TAIL_OFF: u64 = 4;
const RING_NSLOTS_OFF: u64 = 8;
const RING_SLOTS_OFF: u64 = 16;

/// The netmap-mode NIC driver plus its link model.
pub struct NetmapDriver {
    env: Rc<KernelEnv>,
    owner: Option<FileHandleId>,
    registered: bool,
    tx_ring: Option<GuestPhysAddr>,
    rx_ring: Option<GuestPhysAddr>,
    tx_bufs: Vec<GuestPhysAddr>,
    rx_bufs: Vec<GuestPhysAddr>,
    /// TX slots handed to the NIC: `(finish_ns, slot_index)` in wire order.
    inflight: VecDeque<(u64, u32)>,
    /// When the transmitter finishes everything queued so far.
    nic_busy_until_ns: u64,
    last_tx_head: u32,
    tx_tail: u32,
    tx_packets: u64,
    /// RX generator: when enabled, frames of `rx_frame_len` arrive back to
    /// back at line rate.
    rx_enabled: bool,
    rx_frame_len: u32,
    rx_next_arrival_ns: u64,
    rx_head: u32,
    rx_packets: u64,
}

impl std::fmt::Debug for NetmapDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetmapDriver")
            .field("registered", &self.registered)
            .field("tx_packets", &self.tx_packets)
            .field("rx_packets", &self.rx_packets)
            .field("nic_busy_until_ns", &self.nic_busy_until_ns)
            .finish()
    }
}

impl NetmapDriver {
    /// Creates the driver for the Intel Gigabit Adapter of Table 1.
    pub fn new(env: Rc<KernelEnv>) -> Self {
        NetmapDriver {
            env,
            owner: None,
            registered: false,
            tx_ring: None,
            rx_ring: None,
            tx_bufs: Vec::new(),
            rx_bufs: Vec::new(),
            inflight: VecDeque::new(),
            nic_busy_until_ns: 0,
            last_tx_head: 0,
            tx_tail: 0,
            tx_packets: 0,
            rx_enabled: false,
            rx_frame_len: 64,
            rx_next_arrival_ns: 0,
            rx_head: 0,
            rx_packets: 0,
        }
    }

    /// Total packets handed to the wire.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Total packets delivered to the RX ring.
    pub fn rx_packets(&self) -> u64 {
        self.rx_packets
    }

    /// When the transmitter will drain everything queued so far.
    pub fn nic_busy_until_ns(&self) -> u64 {
        self.nic_busy_until_ns
    }

    /// Enables the RX traffic generator: `frame_len`-byte frames arriving
    /// back to back at line rate (for receive-path experiments).
    pub fn enable_rx_generator(&mut self, frame_len: u32) {
        self.rx_enabled = true;
        self.rx_frame_len = frame_len.clamp(60, BUF_SIZE);
        self.rx_next_arrival_ns = self.env.now_ns() + wire_ns(self.rx_frame_len);
    }

    fn check_owner(&self, ctx: OpenContext) -> Result<(), Errno> {
        match self.owner {
            Some(owner) if owner == ctx.handle => Ok(()),
            Some(_) => Err(Errno::Ebusy),
            None => Err(Errno::Ebadf),
        }
    }

    fn ring_read_u32(&self, ring: GuestPhysAddr, off: u64) -> Result<u32, Errno> {
        let mut raw = [0u8; 4];
        self.env.kernel_read(ring.add(off), &mut raw)?;
        Ok(u32::from_le_bytes(raw))
    }

    fn ring_write_u32(&self, ring: GuestPhysAddr, off: u64, value: u32) -> Result<(), Errno> {
        self.env.kernel_write(ring.add(off), &value.to_le_bytes())
    }

    fn slot_len(&self, ring: GuestPhysAddr, slot: u32) -> Result<u32, Errno> {
        self.ring_read_u32(ring, RING_SLOTS_OFF + u64::from(slot) * 8)
    }

    /// Retires completed transmissions: slots whose wire time has passed
    /// free up, advancing `tail`.
    fn reap_tx(&mut self) -> Result<(), Errno> {
        let now = self.env.now_ns();
        while let Some(&(finish, _slot)) = self.inflight.front() {
            if finish > now {
                break;
            }
            self.inflight.pop_front();
            self.tx_tail = (self.tx_tail + 1) % NUM_SLOTS;
        }
        if let Some(ring) = self.tx_ring {
            self.ring_write_u32(ring, RING_TAIL_OFF, self.tx_tail)?;
        }
        Ok(())
    }

    fn tx_free_slots(&self) -> u32 {
        let used = (self.last_tx_head + NUM_SLOTS - self.tx_tail) % NUM_SLOTS;
        NUM_SLOTS - 1 - used
    }

    /// The TX half of `NIOCTXSYNC`: pick up new slots `[last_head, head)`,
    /// validate them, and queue them on the wire.
    fn txsync(&mut self) -> Result<(), Errno> {
        let ring = self.tx_ring.ok_or(Errno::Einval)?;
        self.reap_tx()?;
        let head = self.ring_read_u32(ring, RING_HEAD_OFF)? % NUM_SLOTS;
        let mut cursor = self.last_tx_head;
        let now = self.env.now_ns();
        let mut busy = self.nic_busy_until_ns.max(now);
        while cursor != head {
            let len = self.slot_len(ring, cursor)?;
            if len == 0 || len > BUF_SIZE {
                return Err(Errno::Einval);
            }
            // The NIC DMA-reads the frame from its buffer page (probe the
            // first bytes to exercise the IOMMU path).
            let buf = self.tx_bufs[cursor as usize];
            let mut probe = [0u8; 16];
            self.env
                .device_dma_read(paradice_mem::DmaAddr::new(buf.raw()), &mut probe)?;
            busy += wire_ns(len);
            self.inflight.push_back((busy, cursor));
            self.tx_packets += 1;
            cursor = (cursor + 1) % NUM_SLOTS;
        }
        self.nic_busy_until_ns = busy;
        self.last_tx_head = head;
        self.reap_tx()
    }

    /// The RX half of `NIOCRXSYNC`: deliver generated frames that have
    /// arrived since the last sync into free RX slots.
    fn rxsync(&mut self) -> Result<u32, Errno> {
        let ring = self.rx_ring.ok_or(Errno::Einval)?;
        if !self.rx_enabled {
            return Ok(0);
        }
        let now = self.env.now_ns();
        let consumer_tail = self.ring_read_u32(ring, RING_TAIL_OFF)? % NUM_SLOTS;
        let mut delivered = 0u32;
        while self.rx_next_arrival_ns <= now {
            let next_head = (self.rx_head + 1) % NUM_SLOTS;
            if next_head == consumer_tail {
                break; // ring full; the generator drops (like real traffic)
            }
            let slot = self.rx_head;
            let buf = self.rx_bufs[slot as usize];
            let mut frame_header = [0u8; 16];
            frame_header[0..8].copy_from_slice(&self.rx_packets.to_le_bytes());
            frame_header[8..12].copy_from_slice(&self.rx_frame_len.to_le_bytes());
            self.env
                .device_dma_write(paradice_mem::DmaAddr::new(buf.raw()), &frame_header)?;
            self.ring_write_u32(
                ring,
                RING_SLOTS_OFF + u64::from(slot) * 8,
                self.rx_frame_len,
            )?;
            self.rx_head = next_head;
            self.rx_packets += 1;
            delivered += 1;
            self.rx_next_arrival_ns += wire_ns(self.rx_frame_len);
        }
        self.ring_write_u32(ring, RING_HEAD_OFF, self.rx_head)?;
        Ok(delivered)
    }
}

impl FileOps for NetmapDriver {
    fn driver_name(&self) -> &str {
        "netmap/e1000e"
    }

    fn open(&mut self, ctx: OpenContext) -> Result<(), Errno> {
        if self.owner.is_some() {
            // netmap's driver "only allow[s] access from one guest VM at a
            // time" (§5.1).
            return Err(Errno::Ebusy);
        }
        self.owner = Some(ctx.handle);
        Ok(())
    }

    fn release(&mut self, ctx: OpenContext) -> Result<(), Errno> {
        if self.owner == Some(ctx.handle) {
            self.owner = None;
            self.registered = false;
        }
        Ok(())
    }

    fn ioctl(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        cmd: IoctlCmd,
        arg: u64,
    ) -> Result<i64, Errno> {
        self.check_owner(ctx)?;
        let arg_ptr = GuestVirtAddr::new(arg);
        match cmd {
            NIOCGINFO => {
                let mut info = [0u8; 8];
                info[0..4].copy_from_slice(&NUM_SLOTS.to_le_bytes());
                info[4..8].copy_from_slice(&BUF_SIZE.to_le_bytes());
                mem.copy_to_user(arg_ptr, &info)?;
                Ok(0)
            }
            NIOCREGIF => {
                if !self.registered {
                    let mut pool = DmaPool::new(
                        &self.env,
                        2 + 2 * NUM_SLOTS as usize,
                        Access::RW,
                        None,
                    )?;
                    let tx_ring = pool.take()?;
                    let rx_ring = pool.take()?;
                    self.tx_bufs = (0..NUM_SLOTS).map(|_| pool.take()).collect::<Result<_, _>>()?;
                    self.rx_bufs = (0..NUM_SLOTS).map(|_| pool.take()).collect::<Result<_, _>>()?;
                    self.ring_write_u32(tx_ring, RING_NSLOTS_OFF, NUM_SLOTS)?;
                    self.ring_write_u32(rx_ring, RING_NSLOTS_OFF, NUM_SLOTS)?;
                    self.tx_ring = Some(tx_ring);
                    self.rx_ring = Some(rx_ring);
                    self.registered = true;
                }
                let memsize = (2 + 2 * u64::from(NUM_SLOTS)) * PAGE_SIZE;
                let mut reg = [0u8; 16];
                reg[0..4].copy_from_slice(&NUM_SLOTS.to_le_bytes());
                reg[4..8].copy_from_slice(&BUF_SIZE.to_le_bytes());
                reg[8..16].copy_from_slice(&memsize.to_le_bytes());
                mem.copy_to_user(arg_ptr, &reg)?;
                Ok(0)
            }
            NIOCTXSYNC => {
                self.txsync()?;
                Ok(0)
            }
            NIOCRXSYNC => {
                let delivered = self.rxsync()?;
                Ok(i64::from(delivered))
            }
            _ => Err(Errno::Enotty),
        }
    }

    fn mmap(
        &mut self,
        ctx: OpenContext,
        mem: &mut dyn MemOps,
        range: MmapRange,
    ) -> Result<(), Errno> {
        self.check_owner(ctx)?;
        if !self.registered {
            return Err(Errno::Einval);
        }
        if !range.va.is_page_aligned() || !range.offset.is_multiple_of(PAGE_SIZE) {
            return Err(Errno::Einval);
        }
        let pages = range.len.div_ceil(PAGE_SIZE);
        let layout: Vec<GuestPhysAddr> = {
            let mut all = Vec::with_capacity(2 + 2 * NUM_SLOTS as usize);
            all.push(self.tx_ring.expect("registered"));
            all.push(self.rx_ring.expect("registered"));
            all.extend_from_slice(&self.tx_bufs);
            all.extend_from_slice(&self.rx_bufs);
            all
        };
        let first = (range.offset / PAGE_SIZE) as usize;
        for i in 0..pages as usize {
            let page = layout.get(first + i).ok_or(Errno::Einval)?;
            mem.insert_pfn(
                range.va.add(i as u64 * PAGE_SIZE),
                page.page_number(),
                range.access,
            )?;
        }
        Ok(())
    }

    fn poll(&mut self, ctx: OpenContext) -> Result<PollEvents, Errno> {
        self.check_owner(ctx)?;
        if !self.registered {
            return Ok(PollEvents::ERR);
        }
        // netmap's poll performs the syncs itself; the TX side blocks until
        // ring space is available.
        self.txsync()?;
        if self.tx_free_slots() == 0 {
            if let Some(&(finish, _)) = self.inflight.front() {
                self.env.hv().borrow().clock().advance_to(finish);
            }
            self.reap_tx()?;
        }
        let mut events = PollEvents::NONE;
        if self.tx_free_slots() > 0 {
            events = events | PollEvents::OUT;
        }
        if self.rxsync()? > 0 {
            events = events | PollEvents::IN;
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_devfs::fileops::{OpenFlags, TaskId};
    use paradice_devfs::memops::BufferMemOps;
    use paradice_hypervisor::hv::{DataIsolation, Hypervisor};
    use paradice_hypervisor::vm::VmRole;
    use paradice_hypervisor::{CostModel, SimClock};
    use std::cell::RefCell;

    fn driver() -> NetmapDriver {
        let mut hv = Hypervisor::new(8192, SimClock::new(), CostModel::default());
        let vm = hv.create_vm(VmRole::Driver, 2048 * PAGE_SIZE).unwrap();
        let domain = hv.assign_device(vm, DataIsolation::Disabled).unwrap();
        let env = KernelEnv::new(Rc::new(RefCell::new(hv)), vm, domain, false);
        NetmapDriver::new(env)
    }

    fn ctx(handle: u64) -> OpenContext {
        OpenContext {
            handle: FileHandleId(handle),
            task: TaskId(1),
            flags: OpenFlags::RDWR,
        }
    }

    fn register(drv: &mut NetmapDriver, mem: &mut BufferMemOps) {
        drv.open(ctx(1)).unwrap();
        drv.ioctl(ctx(1), mem, NIOCREGIF, 0).unwrap();
    }

    /// Simulates the application writing `n` packets of `len` bytes through
    /// its mapped ring (the mapped page *is* the ring page, so writing via
    /// the kernel alias is the same memory).
    fn produce(drv: &mut NetmapDriver, n: u32, len: u32) {
        let ring = drv.tx_ring.unwrap();
        let head = drv.ring_read_u32(ring, RING_HEAD_OFF).unwrap();
        for i in 0..n {
            let slot = (head + i) % NUM_SLOTS;
            drv.ring_write_u32(ring, RING_SLOTS_OFF + u64::from(slot) * 8, len)
                .unwrap();
        }
        drv.ring_write_u32(ring, RING_HEAD_OFF, (head + n) % NUM_SLOTS)
            .unwrap();
    }

    #[test]
    fn wire_time_matches_line_rate() {
        assert_eq!(wire_ns(64), (64 + 24) * 8);
        let pps = line_rate_pps(64);
        assert!((1.40e6..1.45e6).contains(&pps), "pps = {pps}");
        // Short frames pad to 60 bytes.
        assert_eq!(wire_ns(1), wire_ns(60));
    }

    #[test]
    fn registration_reports_geometry() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        register(&mut drv, &mut mem);
        let slots = mem.read_user_u32(GuestVirtAddr::new(0)).unwrap();
        assert_eq!(slots, NUM_SLOTS);
        let memsize = mem.read_user_u64(GuestVirtAddr::new(8)).unwrap();
        assert_eq!(memsize, (2 + 2 * u64::from(NUM_SLOTS)) * PAGE_SIZE);
    }

    #[test]
    fn txsync_transmits_produced_packets() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        register(&mut drv, &mut mem);
        produce(&mut drv, 10, 64);
        drv.ioctl(ctx(1), &mut mem, NIOCTXSYNC, 0).unwrap();
        assert_eq!(drv.tx_packets(), 10);
        assert_eq!(
            drv.nic_busy_until_ns(),
            drv.env.now_ns() + 10 * wire_ns(64)
        );
    }

    #[test]
    fn invalid_slot_length_rejected() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        register(&mut drv, &mut mem);
        produce(&mut drv, 1, BUF_SIZE + 1);
        assert_eq!(
            drv.ioctl(ctx(1), &mut mem, NIOCTXSYNC, 0),
            Err(Errno::Einval)
        );
    }

    #[test]
    fn ring_full_poll_blocks_until_drain() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        register(&mut drv, &mut mem);
        // Fill the ring completely (255 usable slots).
        produce(&mut drv, NUM_SLOTS - 1, 64);
        drv.ioctl(ctx(1), &mut mem, NIOCTXSYNC, 0).unwrap();
        assert_eq!(drv.tx_free_slots(), 0);
        let before = drv.env.now_ns();
        let events = drv.poll(ctx(1)).unwrap();
        assert!(events.contains(PollEvents::OUT));
        assert!(drv.env.now_ns() > before, "poll had to wait for the wire");
    }

    #[test]
    fn sustained_tx_hits_line_rate() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        register(&mut drv, &mut mem);
        let start = drv.env.now_ns();
        let total = 100_000u64;
        let batch = 64u32;
        let mut sent = 0u64;
        while sent < total {
            // Wait for space, then produce a batch.
            let events = drv.poll(ctx(1)).unwrap();
            assert!(events.contains(PollEvents::OUT));
            let n = batch.min(drv.tx_free_slots()).min((total - sent) as u32);
            produce(&mut drv, n, 64);
            drv.ioctl(ctx(1), &mut mem, NIOCTXSYNC, 0).unwrap();
            sent += u64::from(n);
        }
        let end = drv.nic_busy_until_ns().max(drv.env.now_ns());
        let pps = sent as f64 / ((end - start) as f64 / 1e9);
        let line = line_rate_pps(64);
        assert!(
            pps > 0.99 * line && pps <= line * 1.01,
            "pps = {pps}, line = {line}"
        );
    }

    #[test]
    fn rx_generator_delivers_frames() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        register(&mut drv, &mut mem);
        drv.enable_rx_generator(64);
        // Let 100 frames' worth of wire time pass.
        drv.env.advance_ns(100 * wire_ns(64));
        let delivered = drv.ioctl(ctx(1), &mut mem, NIOCRXSYNC, 0).unwrap();
        assert_eq!(delivered, 100);
        assert_eq!(drv.rx_packets(), 100);
        // The first frame's header landed in the first RX buffer.
        let buf = drv.rx_bufs[0];
        let mut header = [0u8; 8];
        drv.env.kernel_read(buf, &mut header).unwrap();
        assert_eq!(u64::from_le_bytes(header), 0);
    }

    #[test]
    fn rx_ring_overflow_drops() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        register(&mut drv, &mut mem);
        drv.enable_rx_generator(64);
        // Far more arrivals than ring capacity.
        drv.env.advance_ns(1_000 * wire_ns(64));
        let delivered = drv.ioctl(ctx(1), &mut mem, NIOCRXSYNC, 0).unwrap();
        assert_eq!(delivered, i64::from(NUM_SLOTS) - 1);
    }

    #[test]
    fn mmap_layout() {
        let mut drv = driver();
        let mut mem = BufferMemOps::new(4096);
        register(&mut drv, &mut mem);
        // Map the TX ring page and the first two TX buffers.
        drv.mmap(
            ctx(1),
            &mut mem,
            MmapRange {
                va: GuestVirtAddr::new(0x100000),
                len: PAGE_SIZE,
                offset: 0,
                access: Access::RW,
            },
        )
        .unwrap();
        drv.mmap(
            ctx(1),
            &mut mem,
            MmapRange {
                va: GuestVirtAddr::new(0x200000),
                len: 2 * PAGE_SIZE,
                offset: 2 * PAGE_SIZE,
                access: Access::RW,
            },
        )
        .unwrap();
        assert_eq!(mem.mappings().len(), 3);
        assert_eq!(mem.mappings()[0].1, drv.tx_ring.unwrap().page_number());
        assert_eq!(mem.mappings()[1].1, drv.tx_bufs[0].page_number());
        // Out-of-range offset rejected.
        assert_eq!(
            drv.mmap(
                ctx(1),
                &mut mem,
                MmapRange {
                    va: GuestVirtAddr::new(0x300000),
                    len: PAGE_SIZE,
                    offset: (2 + 2 * u64::from(NUM_SLOTS)) * PAGE_SIZE,
                    access: Access::RW,
                },
            ),
            Err(Errno::Einval)
        );
    }

    #[test]
    fn exclusive_open() {
        let mut drv = driver();
        drv.open(ctx(1)).unwrap();
        assert_eq!(drv.open(ctx(2)), Err(Errno::Ebusy));
    }
}
