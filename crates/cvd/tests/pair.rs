//! CVD pair contract tests: frontend + backend + a real driver, assembled
//! by hand (no machine facade). Pins the layer's own behaviour: handle
//! mapping, grant lifecycle, notification routing, queue caps, and the
//! transport statistics.

use std::cell::RefCell;
use std::rc::Rc;

use paradice_cvd::backend::{Backend, DEFAULT_QUEUE_CAP};
use paradice_cvd::frontend::{Frontend, OsPersonality};
use paradice_cvd::sharing::{SharingPolicy, VirtualTerminals};
use paradice_devfs::fileops::{OpenFlags, TaskId};
use paradice_devfs::registry::OpenPolicy;
use paradice_devfs::sysinfo::DeviceClass;
use paradice_devfs::Errno;
use paradice_drivers::env::KernelEnv;
use paradice_drivers::evdev::{EvdevDriver, EventKind, InputEvent};
use paradice_hypervisor::hv::{DataIsolation, Hypervisor};
use paradice_hypervisor::vm::VmRole;
use paradice_cvd::proto::CvdChannel;
use paradice_hypervisor::{CostModel, SimClock, TransportMode, VmId};
use paradice_mem::pagetable::GuestPageTables;
use paradice_mem::{Access, GuestPhysAddr, GuestVirtAddr, PAGE_SIZE};

struct Rig {
    hv: paradice_hypervisor::SharedHypervisor,
    guest: VmId,
    frontend: Frontend,
    backend: paradice_cvd::backend::SharedBackend,
    mouse: Rc<RefCell<EvdevDriver>>,
    mouse_id: paradice_devfs::DeviceId,
    pt: GuestPageTables,
    channel: Rc<RefCell<CvdChannel>>,
}

fn rig(transport: TransportMode) -> Rig {
    let mut hv = Hypervisor::new(2048, SimClock::new(), CostModel::default());
    let guest = hv.create_vm(VmRole::Guest, 256 * PAGE_SIZE).unwrap();
    let driver_vm = hv.create_vm(VmRole::Driver, 256 * PAGE_SIZE).unwrap();
    let domain = hv.assign_device(driver_vm, DataIsolation::Disabled).unwrap();
    let pt = {
        let mut space = hv.gpa_space(guest);
        let mut pt = GuestPageTables::new(&mut space).unwrap();
        // A small user buffer at 0x10000.
        for i in 0..4u64 {
            pt.map(
                &mut space,
                GuestVirtAddr::new(0x10000 + i * PAGE_SIZE),
                paradice_mem::GuestPhysAddr::new(0x1000 + i * PAGE_SIZE),
                Access::RW,
            )
            .unwrap();
        }
        pt
    };
    let hv = Rc::new(RefCell::new(hv));
    let env = KernelEnv::new(hv.clone(), driver_vm, domain, false);
    let mouse = Rc::new(RefCell::new(EvdevDriver::usb_mouse(env.clone())));

    let backend = Backend::new(hv.clone(), driver_vm);
    let mouse_id = backend
        .borrow_mut()
        .register_device(
            "/dev/input/event0",
            DeviceClass::Input,
            OpenPolicy::Shared,
            SharingPolicy::ForegroundInput,
            mouse.clone(),
            env,
        )
        .unwrap();
    let clock = hv.borrow().clock().clone();
    let channel = Rc::new(RefCell::new(CvdChannel::new(
        transport,
        clock,
        CostModel::default(),
    )));
    backend
        .borrow_mut()
        .attach_guest(guest, channel.clone(), DEFAULT_QUEUE_CAP);
    backend.borrow_mut().register_task(TaskId(1), guest);
    backend
        .borrow_mut()
        .set_terminals(Rc::new(RefCell::new(VirtualTerminals::new(vec![guest]))));
    let frontend = Frontend::new(
        hv.clone(),
        guest,
        OsPersonality::LINUX_3_2_0,
        channel.clone(),
        backend.clone(),
    );
    Rig {
        hv,
        guest,
        frontend,
        backend,
        mouse,
        mouse_id,
        pt,
        channel,
    }
}

#[test]
fn open_read_poll_release_through_the_pair() {
    let mut r = rig(TransportMode::Interrupts);
    let task = TaskId(1);
    let fd = r
        .frontend
        .open(task, "/dev/input/event0", OpenFlags::RDWR)
        .unwrap();
    // Queue an event at the device, then read it through the pair: the
    // driver's copy_to_user becomes a grant-checked hypercall landing in
    // the guest's buffer.
    r.mouse.borrow_mut().report_event(InputEvent {
        time_us: 1,
        kind: EventKind::Relative,
        code: 0,
        value: 42,
    });
    let n = r
        .frontend
        .read(task, r.pt, fd, GuestVirtAddr::new(0x10000), 64)
        .unwrap();
    assert_eq!(n, 16);
    // The event bytes are in guest memory (value field = 42).
    let mut raw = [0u8; 16];
    r.hv
        .borrow_mut()
        .process_read(r.guest, r.pt.root(), GuestVirtAddr::new(0x10000), &mut raw)
        .unwrap();
    assert_eq!(i32::from_le_bytes(raw[12..16].try_into().unwrap()), 42);
    // Poll: empty again.
    let events = r.frontend.poll(task, fd).unwrap();
    assert!(events.is_empty());
    // Grants all revoked.
    assert_eq!(r.hv.borrow().outstanding_grants(r.guest), 0);
    r.frontend.release(task, fd).unwrap();
    assert_eq!(r.frontend.poll(task, fd), Err(Errno::Ebadf));
}

#[test]
fn notifications_map_backend_handles_to_local_fds() {
    let mut r = rig(TransportMode::Interrupts);
    let task = TaskId(1);
    let fd = r
        .frontend
        .open(task, "/dev/input/event0", OpenFlags::RDWR)
        .unwrap();
    r.frontend.fasync(task, fd, true).unwrap();
    let signals = r.mouse.borrow_mut().report_event(InputEvent {
        time_us: 0,
        kind: EventKind::Key,
        code: 1,
        value: 1,
    });
    let forwarded = r
        .backend
        .borrow_mut()
        .deliver_signals(r.mouse_id, &signals);
    assert_eq!(forwarded, 1);
    let delivered = r.frontend.drain_notifications();
    assert_eq!(delivered, vec![(task, fd)]);
    // Unsubscribe: nothing flows.
    r.frontend.fasync(task, fd, false).unwrap();
    let signals = r.mouse.borrow_mut().report_event(InputEvent {
        time_us: 0,
        kind: EventKind::Key,
        code: 1,
        value: 0,
    });
    assert!(signals.is_empty());
}

#[test]
fn transport_stats_count_deliveries() {
    let mut r = rig(TransportMode::polling_default());
    let task = TaskId(1);
    let fd = r
        .frontend
        .open(task, "/dev/input/event0", OpenFlags::RDWR)
        .unwrap();
    for _ in 0..10 {
        r.frontend.poll(task, fd).unwrap();
    }
    // 11 ops (open + 10 polls) × 2 deliveries; back-to-back ops keep the
    // shared page hot, so everything after boot polls.
    let stats = r.channel.borrow().stats();
    assert_eq!(stats.requests, 11);
    assert_eq!(stats.responses, 11);
    assert_eq!(stats.interrupt_deliveries + stats.polling_deliveries, 22);
    assert!(stats.polling_deliveries >= 21, "stats: {stats:?}");
}

#[test]
fn per_guest_isolation_of_backend_handles() {
    // A second guest cannot drive the first guest's backend handle even if
    // it forges the number.
    let mut hv = Hypervisor::new(2048, SimClock::new(), CostModel::default());
    let guest_a = hv.create_vm(VmRole::Guest, 64 * PAGE_SIZE).unwrap();
    let guest_b = hv.create_vm(VmRole::Guest, 64 * PAGE_SIZE).unwrap();
    let driver_vm = hv.create_vm(VmRole::Driver, 128 * PAGE_SIZE).unwrap();
    let domain = hv.assign_device(driver_vm, DataIsolation::Disabled).unwrap();
    let hv = Rc::new(RefCell::new(hv));
    let env = KernelEnv::new(hv.clone(), driver_vm, domain, false);
    let mouse: Rc<RefCell<EvdevDriver>> =
        Rc::new(RefCell::new(EvdevDriver::usb_mouse(env.clone())));
    let backend = Backend::new(hv.clone(), driver_vm);
    backend
        .borrow_mut()
        .register_device(
            "/dev/input/event0",
            DeviceClass::Input,
            OpenPolicy::Shared,
            SharingPolicy::ForegroundInput,
            mouse,
            env,
        )
        .unwrap();
    let clock = hv.borrow().clock().clone();
    let chan_a = Rc::new(RefCell::new(CvdChannel::new(
        TransportMode::Interrupts,
        clock.clone(),
        CostModel::default(),
    )));
    let chan_b = Rc::new(RefCell::new(CvdChannel::new(
        TransportMode::Interrupts,
        clock,
        CostModel::default(),
    )));
    backend.borrow_mut().attach_guest(guest_a, chan_a.clone(), 100);
    backend.borrow_mut().attach_guest(guest_b, chan_b.clone(), 100);
    let mut front_a = Frontend::new(
        hv.clone(),
        guest_a,
        OsPersonality::LINUX_3_2_0,
        chan_a,
        backend.clone(),
    );
    let fd_a = front_a
        .open(TaskId(1), "/dev/input/event0", OpenFlags::RDWR)
        .unwrap();
    let _ = fd_a;
    // Guest B forges a request against backend handle 0 (guest A's open).
    use paradice_cvd::proto::{WireOp, WireRequest, WireResponse};
    let forged = WireRequest {
        task: 99,
        pt_root: GuestPhysAddr::new(0).raw().into(),
        handle: 0,
        span: 0,
        grant: None,
        op: WireOp::Poll,
    };
    chan_b.borrow_mut().send_request(forged).unwrap();
    backend.borrow_mut().handle_request(guest_b).unwrap();
    let response = chan_b.borrow_mut().take_response().unwrap();
    assert_eq!(response, WireResponse::Err(Errno::Eperm));
}

#[test]
fn remote_transport_works_and_costs_the_network() {
    let mut r = rig(TransportMode::remote_default());
    let task = TaskId(1);
    let fd = r
        .frontend
        .open(task, "/dev/input/event0", OpenFlags::RDWR)
        .unwrap();
    let clock = r.hv.borrow().clock().clone();
    let before = clock.now_ns();
    r.frontend.poll(task, fd).unwrap();
    let elapsed = clock.now_ns() - before;
    // Request + response: two 25 µs network hops plus marshalling/dispatch.
    assert!(
        (50_000..53_000).contains(&elapsed),
        "remote round trip {elapsed} ns"
    );
}

#[test]
fn unknown_device_open_fails_cleanly() {
    let mut r = rig(TransportMode::Interrupts);
    assert_eq!(
        r.frontend.open(TaskId(1), "/dev/nope", OpenFlags::RDWR),
        Err(Errno::Enoent)
    );
}
