//! The Common Virtual Driver (CVD): Paradice's class-agnostic paravirtual
//! driver pair.
//!
//! "The paravirtual drivers, i.e., the CVD frontend and backend, deliver
//! these operations to the actual device file to be executed by the device
//! driver" (paper §3.1). One frontend/backend pair supports *every* device
//! class — that is the paper's headline engineering-effort result (Table 2:
//! the CVD is ~3900 LoC of the ~7700 total, shared by all five classes).
//!
//! * [`proto`] — the shared-page wire format for file operations and their
//!   results (operation descriptors only: bulk data never crosses the
//!   channel; the driver reaches guest memory through hypervisor calls).
//! * [`memops`] — the backend's [`MemOps`](paradice_devfs::MemOps) binding:
//!   every driver memory operation becomes a grant-checked hypercall.
//! * [`frontend`] — the guest-side virtual device file: derives the
//!   legitimate memory operations of each file operation (from arguments,
//!   `_IOC` encodings, or the analyzer's static/JIT extraction, §4.1),
//!   declares them as grants, and forwards the operation.
//! * [`cache`] — the pure grant-declaration cache kernel behind the fast
//!   path: shape-keyed FIFO memoization with explicit ref-ownership
//!   transfer, small enough for the bounded-model checker to exhaust.
//! * [`backend`] — the driver-VM side: per-guest wait queues capped at 100
//!   operations (DoS guard, §5.1), thread marking, driver dispatch, and
//!   asynchronous-notification forwarding.
//! * [`fairq`] — the device-class-agnostic fair-share queue discipline
//!   (the default since ISSUE 10): least-consumed-service-time pick with
//!   arrival tie-break, shared by the GPU scheduler, the backend drain,
//!   and the multi-guest engines.
//! * [`multi`] — multi-guest execution substrates: per-guest ring
//!   channels through the engine seam, per-guest wait-queue caps, and
//!   fair-share backend service on both virtual and wall time.
//! * [`info`] — device info modules and the virtual PCI bus (§5.1).
//! * [`sharing`] — device-sharing policies: foreground/background graphics,
//!   concurrent GPGPU, foreground-only input, exclusive camera/netmap
//!   (§3.2.3, §5.1).

pub mod backend;
pub mod cache;
pub mod exec;
pub mod fairq;
pub mod frontend;
pub mod multi;
pub mod info;
pub mod memops;
pub mod proto;
pub mod sharing;

pub use backend::{Backend, SharedBackend};
pub use cache::{Eviction, GrantCache, GrantCacheKey};
pub use exec::{
    run_workload, CvdEngine, DeviceService, ExecRun, ScriptedService, VirtualEngine, WallEngine,
    WorkloadOp, EXEC_RING_DEPTH,
};
pub use fairq::{FairSched, SchedPolicy};
pub use frontend::{Frontend, IoctlKnowledge, OsPersonality};
pub use multi::{
    build_multi, Completion, MultiEngine, MultiVirtualEngine, MultiWallEngine, MULTI_QUEUE_CAP,
};
pub use info::{DeviceInfoModule, VirtualPciBus};
pub use memops::HypercallMemOps;
pub use proto::{WireOp, WireRequest, WireResponse};
pub use sharing::{SharingPolicy, VirtualTerminals};
