//! The pure grant-declaration cache kernel behind the frontend fast path.
//!
//! The fast path memoizes grant declarations per op shape so repeated
//! `read`/`write`/`ioctl` calls skip the declare/revoke hypercall pair
//! (PR 5). The correctness-critical part is the *lifecycle*: a cached
//! [`GrantRef`] must never be revoked while a pipelined operation that
//! attached it is still in flight — the backend's hypercalls for that op
//! would fail validation spuriously and pollute the audit log — and no
//! cached ref may remain observable after its grant-set is revoked.
//! [`GrantCache`] isolates exactly that bookkeeping, with no hypervisor,
//! channel, or clock dependencies, so the bounded-model checker in
//! `crates/verify` can explore its full state space against the revocation
//! model: hit, cold insert, FIFO eviction, purge-with-revoke (fast path
//! off), purge-without-revoke (containment and recovery).
//!
//! The cache never issues hypercalls itself. Every mutation *returns* the
//! refs whose authority must now change hands — [`Eviction::Revoke`] /
//! [`GrantCache::purge`] hand refs back for the frontend to revoke, and
//! [`Eviction::Transfer`] re-assigns an in-flight ref's ownership to the
//! pipeline entry that still uses it — keeping the kernel pure and the
//! policy auditable.

use std::collections::{BTreeMap, VecDeque};

use paradice_hypervisor::{GrantRef, MemOpGrant};

use crate::proto::WireOp;

/// Key of one memoized grant declaration: the op shape whose repeated
/// occurrences may reuse a single declared [`GrantRef`]. Only `read`,
/// `write`, and `ioctl` shapes are cached — the ops the ioctl-heavy
/// workloads repeat — and the *full* canonical grant tuple participates, so
/// any shape change (different buffer, length, or derived grant set) misses
/// and declares cold.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GrantCacheKey {
    /// Owning guest: cached declarations live in a per-guest grant shard
    /// (ISSUE 10), so the key is guest-qualified — one guest's cache
    /// entries can never be confused with (or evicted by key-collision
    /// against) a neighbor's identical op shape.
    pub guest: u32,
    /// Backend file handle the shape belongs to.
    pub handle: u64,
    /// Op discriminant: 0 = read, 1 = write, 2 = ioctl.
    pub op: u8,
    /// The ioctl command (0 for read/write).
    pub cmd: u32,
    /// Canonicalized grant set (kind, addr, len, access-bits).
    pub grants: Vec<(u8, u64, u64, u8)>,
}

impl GrantCacheKey {
    /// The cache key for `op` with grant set `grants`, or `None` when the
    /// shape is not cacheable.
    pub fn for_op(
        guest: u32,
        handle: u64,
        op: &WireOp,
        grants: &[MemOpGrant],
    ) -> Option<GrantCacheKey> {
        let (tag, cmd) = match op {
            WireOp::Read { .. } => (0u8, 0u32),
            WireOp::Write { .. } => (1, 0),
            WireOp::Ioctl { cmd, .. } => (2, cmd.raw()),
            _ => return None,
        };
        Some(GrantCacheKey {
            guest,
            handle,
            op: tag,
            cmd,
            grants: grants.iter().map(Self::canon).collect(),
        })
    }

    fn canon(grant: &MemOpGrant) -> (u8, u64, u64, u8) {
        match *grant {
            MemOpGrant::CopyFromGuest { addr, len } => (0, addr.raw(), len, 0),
            MemOpGrant::CopyToGuest { addr, len } => (1, addr.raw(), len, 0),
            MemOpGrant::MapPages { va, pages, access } => (2, va.raw(), pages, access.bits()),
            MemOpGrant::UnmapPages { va, pages } => (3, va.raw(), pages, 0),
        }
    }
}

/// What a cold [`GrantCache::insert`] displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Eviction {
    /// Nothing was displaced (the cache had room).
    None,
    /// The FIFO-oldest entry was displaced and its ref is idle: the caller
    /// must revoke it now.
    Revoke(GrantRef),
    /// The FIFO-oldest entry was displaced but its ref is still attached to
    /// an in-flight operation: revoking now would fail that op's hypercalls
    /// mid-flight. Ownership transfers to the pipeline — the caller must
    /// mark the *last* pending op using this ref as revoke-on-completion.
    Transfer(GrantRef),
}

/// Bounded FIFO cache of live grant declarations, keyed by op shape.
#[derive(Debug)]
pub struct GrantCache {
    cap: usize,
    map: BTreeMap<GrantCacheKey, GrantRef>,
    order: VecDeque<GrantCacheKey>,
}

impl GrantCache {
    /// An empty cache holding at most `cap` declarations.
    pub fn new(cap: usize) -> GrantCache {
        GrantCache {
            cap,
            map: BTreeMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The memoized ref for `key`, if any.
    pub fn lookup(&self, key: &GrantCacheKey) -> Option<GrantRef> {
        self.map.get(key).copied()
    }

    /// Entries in FIFO (insertion) order, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = (&GrantCacheKey, GrantRef)> {
        self.order
            .iter()
            .filter_map(|key| self.map.get(key).map(|&grant| (key, grant)))
    }

    /// Memoizes a fresh declaration, evicting the FIFO-oldest entry when
    /// full. `in_flight` answers whether a ref is still attached to a
    /// pending operation — the caller passes its pipeline — and decides
    /// whether the displaced ref is returned for immediate revocation
    /// ([`Eviction::Revoke`]) or handed to the pipeline
    /// ([`Eviction::Transfer`]).
    pub fn insert(
        &mut self,
        key: GrantCacheKey,
        grant: GrantRef,
        in_flight: impl Fn(GrantRef) -> bool,
    ) -> Eviction {
        let mut eviction = Eviction::None;
        if self.map.len() >= self.cap {
            if let Some(oldest) = self.order.pop_front() {
                if let Some(evicted) = self.map.remove(&oldest) {
                    eviction = if in_flight(evicted) {
                        Eviction::Transfer(evicted)
                    } else {
                        Eviction::Revoke(evicted)
                    };
                }
            }
        }
        self.map.insert(key.clone(), grant);
        self.order.push_back(key);
        eviction
    }

    /// Empties the cache, returning every displaced ref (in FIFO order) for
    /// the caller to revoke — or to discard, on the containment/recovery
    /// paths where the hypervisor already revoked the whole table.
    pub fn purge(&mut self) -> Vec<GrantRef> {
        let refs = self.entries().map(|(_, grant)| grant).collect();
        self.map.clear();
        self.order.clear();
        refs
    }

    /// Removes every entry matching `pred` (handle close), returning the
    /// displaced refs for revocation.
    pub fn remove_matching(&mut self, pred: impl Fn(&GrantCacheKey) -> bool) -> Vec<GrantRef> {
        let stale: Vec<GrantCacheKey> = self.map.keys().filter(|k| pred(k)).cloned().collect();
        let refs = stale
            .iter()
            .filter_map(|key| self.map.remove(key))
            .collect();
        self.order.retain(|key| !pred(key));
        refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_mem::GuestVirtAddr;

    fn key(handle: u64, addr: u64) -> GrantCacheKey {
        GrantCacheKey::for_op(
            1,
            handle,
            &WireOp::Read {
                addr: GuestVirtAddr::new(addr),
                len: 16,
            },
            &[MemOpGrant::CopyToGuest {
                addr: GuestVirtAddr::new(addr),
                len: 16,
            }],
        )
        .expect("read is cacheable")
    }

    #[test]
    fn identical_shapes_of_different_guests_are_distinct_keys() {
        let op = WireOp::Read {
            addr: GuestVirtAddr::new(0x1000),
            len: 16,
        };
        let grants = [MemOpGrant::CopyToGuest {
            addr: GuestVirtAddr::new(0x1000),
            len: 16,
        }];
        let mine = GrantCacheKey::for_op(1, 7, &op, &grants).expect("cacheable");
        let theirs = GrantCacheKey::for_op(2, 7, &op, &grants).expect("cacheable");
        assert_ne!(mine, theirs, "guest id must qualify the key");
        let mut cache = GrantCache::new(4);
        cache.insert(mine.clone(), GrantRef(7), |_| false);
        assert_eq!(cache.lookup(&theirs), None, "no cross-guest hits");
        assert_eq!(cache.lookup(&mine), Some(GrantRef(7)));
    }

    #[test]
    fn lookup_hits_and_misses() {
        let mut cache = GrantCache::new(2);
        assert!(cache.is_empty());
        assert_eq!(cache.insert(key(1, 0x1000), GrantRef(7), |_| false), Eviction::None);
        assert_eq!(cache.lookup(&key(1, 0x1000)), Some(GrantRef(7)));
        assert_eq!(cache.lookup(&key(1, 0x2000)), None);
        assert_eq!(cache.lookup(&key(2, 0x1000)), None);
    }

    #[test]
    fn fifo_eviction_names_the_oldest_idle_ref() {
        let mut cache = GrantCache::new(2);
        cache.insert(key(1, 0x1000), GrantRef(0), |_| false);
        cache.insert(key(1, 0x2000), GrantRef(1), |_| false);
        // Full: the third insert displaces the oldest (ref 0), idle.
        assert_eq!(
            cache.insert(key(1, 0x3000), GrantRef(2), |_| false),
            Eviction::Revoke(GrantRef(0))
        );
        assert_eq!(cache.lookup(&key(1, 0x1000)), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_of_an_in_flight_ref_transfers_ownership() {
        let mut cache = GrantCache::new(1);
        cache.insert(key(1, 0x1000), GrantRef(0), |_| false);
        // Ref 0 is attached to a pending pipelined op: it must NOT be
        // revoked out from under it.
        assert_eq!(
            cache.insert(key(1, 0x2000), GrantRef(1), |r| r == GrantRef(0)),
            Eviction::Transfer(GrantRef(0))
        );
    }

    #[test]
    fn purge_returns_refs_oldest_first() {
        let mut cache = GrantCache::new(4);
        cache.insert(key(1, 0x1000), GrantRef(3), |_| false);
        cache.insert(key(1, 0x2000), GrantRef(1), |_| false);
        cache.insert(key(2, 0x1000), GrantRef(2), |_| false);
        assert_eq!(cache.purge(), vec![GrantRef(3), GrantRef(1), GrantRef(2)]);
        assert!(cache.is_empty());
        assert!(cache.purge().is_empty());
    }

    #[test]
    fn remove_matching_strips_one_handle() {
        let mut cache = GrantCache::new(4);
        cache.insert(key(1, 0x1000), GrantRef(0), |_| false);
        cache.insert(key(2, 0x1000), GrantRef(1), |_| false);
        cache.insert(key(1, 0x2000), GrantRef(2), |_| false);
        let removed = cache.remove_matching(|k| k.handle == 1);
        assert_eq!(removed.len(), 2);
        assert!(removed.contains(&GrantRef(0)) && removed.contains(&GrantRef(2)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key(2, 0x1000)), Some(GrantRef(1)));
        // FIFO order survives the removal.
        assert_eq!(
            cache.entries().map(|(_, g)| g).collect::<Vec<_>>(),
            vec![GrantRef(1)]
        );
    }
}
