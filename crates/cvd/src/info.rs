//! Device info modules and the virtual PCI bus.
//!
//! "Applications may need some information about the device before they can
//! use it. In Paradice, we extract device information and export it to the
//! guest VM by providing a small kernel module for the guest OS to load.
//! Developing these modules is easy because they are small, simple, and not
//! performance-sensitive. For example, the device info module for GPU has
//! about 100 LoC, and mainly provides the device PCI configuration
//! information … We also developed modules to create or reuse a virtual PCI
//! bus in the guest for Paradice devices" (paper §5.1).

use paradice_devfs::sysinfo::{DeviceClass, PciDeviceInfo};

/// A device info module: the per-class ~100-LoC guest kernel module that
/// exports the real device's identity into the guest (Table 1's
/// "class-specific code").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceInfoModule {
    /// The device identity exported.
    pub pci: PciDeviceInfo,
    /// The virtual device file the guest should open.
    pub dev_path: String,
}

impl DeviceInfoModule {
    /// Creates the module for a device at `dev_path`.
    pub fn new(pci: PciDeviceInfo, dev_path: &str) -> Self {
        DeviceInfoModule {
            pci,
            dev_path: dev_path.to_owned(),
        }
    }

    /// The device class.
    pub fn class(&self) -> DeviceClass {
        self.pci.class
    }

    /// The `/sys`-style attribute files the module exports in the guest,
    /// as `(relative path, contents)` pairs — what the X server reads to
    /// pick its libraries (§2.1).
    pub fn sysfs_entries(&self) -> Vec<(String, String)> {
        vec![
            ("vendor".to_owned(), format!("{:#06x}", self.pci.vendor_id)),
            ("device".to_owned(), format!("{:#06x}", self.pci.device_id)),
            ("class".to_owned(), format!("{:#06x}", self.pci.class_code)),
            (
                "subsystem_vendor".to_owned(),
                format!("{:#06x}", self.pci.subsystem_vendor),
            ),
            (
                "subsystem_device".to_owned(),
                format!("{:#06x}", self.pci.subsystem_device),
            ),
            ("revision".to_owned(), format!("{:#04x}", self.pci.revision)),
            ("model".to_owned(), self.pci.model_name.clone()),
            ("paradice_dev".to_owned(), self.dev_path.clone()),
        ]
    }
}

/// The virtual PCI bus exported into a guest: one slot per Paradice device.
#[derive(Debug, Default)]
pub struct VirtualPciBus {
    slots: Vec<DeviceInfoModule>,
}

impl VirtualPciBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        VirtualPciBus::default()
    }

    /// Plugs a device info module into the next slot; returns the slot
    /// number (the guest sees it as `00:<slot>.0`).
    pub fn plug(&mut self, module: DeviceInfoModule) -> usize {
        self.slots.push(module);
        self.slots.len() - 1
    }

    /// Number of populated slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the bus is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The module in `slot`.
    pub fn slot(&self, slot: usize) -> Option<&DeviceInfoModule> {
        self.slots.get(slot)
    }

    /// Finds the first device of a class (how a guest's X server locates
    /// "the" GPU).
    pub fn find_class(&self, class: DeviceClass) -> Option<(usize, &DeviceInfoModule)> {
        self.slots
            .iter()
            .enumerate()
            .find(|(_, m)| m.class() == class)
    }

    /// An `lspci`-style listing of the bus.
    pub fn scan(&self) -> Vec<String> {
        self.slots
            .iter()
            .enumerate()
            .map(|(slot, m)| {
                format!(
                    "00:{slot:02x}.0 {}: {} [{}]",
                    m.class(),
                    m.pci.model_name,
                    m.pci.pci_id()
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_devfs::sysinfo::known;

    #[test]
    fn info_module_exports_identity() {
        let module = DeviceInfoModule::new(known::radeon_hd6450(), "/dev/dri/card0");
        let entries = module.sysfs_entries();
        let get = |k: &str| {
            entries
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert_eq!(get("vendor"), "0x1002");
        assert_eq!(get("device"), "0x6779");
        assert_eq!(get("paradice_dev"), "/dev/dri/card0");
        assert_eq!(module.class(), DeviceClass::Gpu);
    }

    #[test]
    fn bus_scan_and_lookup() {
        let mut bus = VirtualPciBus::new();
        assert!(bus.is_empty());
        bus.plug(DeviceInfoModule::new(known::radeon_hd6450(), "/dev/dri/card0"));
        bus.plug(DeviceInfoModule::new(known::intel_gigabit(), "/dev/netmap"));
        assert_eq!(bus.len(), 2);
        let (slot, module) = bus.find_class(DeviceClass::Net).unwrap();
        assert_eq!(slot, 1);
        assert_eq!(module.dev_path, "/dev/netmap");
        assert!(bus.find_class(DeviceClass::Camera).is_none());
        let listing = bus.scan();
        assert_eq!(listing.len(), 2);
        assert!(listing[0].contains("1002:6779"));
        assert!(listing[1].starts_with("00:01.0"));
        assert!(bus.slot(0).is_some());
        assert!(bus.slot(5).is_none());
    }
}
