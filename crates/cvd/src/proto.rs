//! Wire format for file operations on the shared page.
//!
//! "The frontend puts the file operation arguments in a shared page, and
//! uses an interrupt to inform the backend to read them. The backend
//! communicates the return values of the file operation in a similar way"
//! (paper §5.1). Only *descriptors* travel: buffer contents move through
//! hypervisor-executed memory operations, never through the channel.
//!
//! Every request carries the calling task, the process page-table root (the
//! CR3 the hypervisor walks, §5.2), the open-file handle, and the grant
//! reference covering the operation's declared memory operations (§4.1).

use paradice_devfs::ioc::IoctlCmd;
use paradice_devfs::{Errno, OpenFlags, PollEvents};
use paradice_hypervisor::{Channel, GrantRef, WireCodec};
use paradice_mem::{Access, GuestPhysAddr, GuestVirtAddr};

/// The CVD transport: a typed [`Channel`] that encodes/decodes the three
/// wire types at the channel boundary. Frontend and backend exchange
/// [`WireRequest`]/[`WireResponse`]/[`WireSignal`] values directly and
/// never touch raw bytes.
pub type CvdChannel = Channel<WireRequest, WireResponse, WireSignal>;

/// Maximum device path length on the wire.
pub const MAX_PATH: usize = 256;

/// A file operation as transmitted frontend → backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOp {
    /// Open the device file at `path`.
    Open {
        /// Device path in the driver VM's devfs.
        path: String,
        /// Open flags.
        flags: OpenFlags,
    },
    /// Close the (backend) handle.
    Release,
    /// `read(buf, len)`.
    Read {
        /// User buffer start.
        addr: GuestVirtAddr,
        /// Buffer length.
        len: u64,
    },
    /// `write(buf, len)`.
    Write {
        /// User buffer start.
        addr: GuestVirtAddr,
        /// Buffer length.
        len: u64,
    },
    /// `ioctl(cmd, arg)`.
    Ioctl {
        /// Command number.
        cmd: IoctlCmd,
        /// Untyped argument.
        arg: u64,
    },
    /// `mmap(va, len, offset, access)`.
    Mmap {
        /// Target process address (page-aligned).
        va: GuestVirtAddr,
        /// Mapping length.
        len: u64,
        /// Device offset cookie.
        offset: u64,
        /// Requested access.
        access: Access,
    },
    /// `munmap(va, len)` notification.
    Munmap {
        /// Mapped range start.
        va: GuestVirtAddr,
        /// Range length.
        len: u64,
    },
    /// A page fault in a lazily-populated device mapping: the supporting
    /// page-fault handler of `mmap` (paper §2.1).
    Fault {
        /// The faulting address.
        va: GuestVirtAddr,
    },
    /// `poll()`.
    Poll,
    /// `fasync(on)`.
    Fasync {
        /// Subscribe or unsubscribe.
        on: bool,
    },
}

impl WireOp {
    /// The operation's wire name, used for fault-plan triggers and trace
    /// events (stable, lowercase, matches the devfs file-operation names).
    pub const fn name(&self) -> &'static str {
        match self {
            WireOp::Open { .. } => "open",
            WireOp::Release => "release",
            WireOp::Read { .. } => "read",
            WireOp::Write { .. } => "write",
            WireOp::Ioctl { .. } => "ioctl",
            WireOp::Mmap { .. } => "mmap",
            WireOp::Munmap { .. } => "munmap",
            WireOp::Poll => "poll",
            WireOp::Fasync { .. } => "fasync",
            WireOp::Fault { .. } => "fault",
        }
    }

    /// Whether the frontend may post this operation to the ring without
    /// waiting for its response (the pipelined fast path). Only operations
    /// whose responses are plain `Value`s and whose effects are confined to
    /// their declared grant envelope qualify: `Open`/`Release` mutate handle
    /// lifetime the frontend must observe before issuing the next op, `Mmap`/
    /// `Munmap`/`Fault` change address-space shape, and `Poll`/`Fasync`
    /// return event masks the caller consumes synchronously.
    pub const fn is_pipelineable(&self) -> bool {
        matches!(
            self,
            WireOp::Read { .. } | WireOp::Write { .. } | WireOp::Ioctl { .. }
        )
    }

    const fn opcode(&self) -> u8 {
        match self {
            WireOp::Open { .. } => 1,
            WireOp::Release => 2,
            WireOp::Read { .. } => 3,
            WireOp::Write { .. } => 4,
            WireOp::Ioctl { .. } => 5,
            WireOp::Mmap { .. } => 6,
            WireOp::Munmap { .. } => 7,
            WireOp::Poll => 8,
            WireOp::Fasync { .. } => 9,
            WireOp::Fault { .. } => 10,
        }
    }
}

/// A full request: header plus operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// Calling task (globally unique in the machine).
    pub task: u64,
    /// Root of the calling process's page tables.
    pub pt_root: GuestPhysAddr,
    /// Backend file handle (0 for `Open`).
    pub handle: u64,
    /// Trace span stamped by the frontend (0 = untraced): lets the backend
    /// and hypervisor attribute their work to this operation's span.
    pub span: u64,
    /// Grant reference covering this operation's memory operations, if any.
    pub grant: Option<GrantRef>,
    /// The operation.
    pub op: WireOp,
}

/// Decoding errors: a malformed shared page (a buggy or malicious frontend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError;

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("malformed shared-page message")
    }
}

impl std::error::Error for WireError {}

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
}

/// Observes every byte-range read a wire decoder performs against the
/// shared page. The shared page is writable by the peer at any time, so
/// the decoders must read each byte *at most once* (the WP001 single-read
/// discipline) — a re-read is a TOCTOU window. The `crates/verify` model
/// checker proves that property on the *real* decoders by running them
/// under a counting probe; production decoding uses [`NoProbe`], which
/// inlines to nothing.
pub trait ReadProbe {
    /// Called once per successful field read of `bytes[at..at + len)`.
    fn on_read(&mut self, at: usize, len: usize);
}

/// The zero-cost probe the production decode paths use.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl ReadProbe for NoProbe {
    #[inline(always)]
    fn on_read(&mut self, _at: usize, _len: usize) {}
}

struct Reader<'a, 'p, P: ReadProbe> {
    bytes: &'a [u8],
    at: usize,
    probe: &'p mut P,
}

impl<'a, P: ReadProbe> Reader<'a, '_, P> {
    fn u8(&mut self) -> Result<u8, WireError> {
        let v = *self.bytes.get(self.at).ok_or(WireError)?;
        self.probe.on_read(self.at, 1);
        self.at += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let slice = self.bytes.get(self.at..self.at + 4).ok_or(WireError)?;
        self.probe.on_read(self.at, 4);
        self.at += 4;
        Ok(u32::from_le_bytes(slice.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let slice = self.bytes.get(self.at..self.at + 8).ok_or(WireError)?;
        self.probe.on_read(self.at, 8);
        self.at += 8;
        Ok(u64::from_le_bytes(slice.try_into().expect("len 8")))
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        let slice = self.bytes.get(self.at..self.at + len).ok_or(WireError)?;
        if len > 0 {
            self.probe.on_read(self.at, len);
        }
        self.at += len;
        Ok(slice)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError)
        }
    }
}

fn encode_flags(flags: OpenFlags) -> u8 {
    u8::from(flags.read) | (u8::from(flags.write) << 1) | (u8::from(flags.nonblock) << 2)
}

fn decode_flags(raw: u8) -> OpenFlags {
    OpenFlags {
        read: raw & 1 != 0,
        write: raw & 2 != 0,
        nonblock: raw & 4 != 0,
    }
}

impl WireRequest {
    /// Serializes the request for the shared page.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer(Vec::with_capacity(64));
        w.u8(self.op.opcode());
        w.u64(self.task);
        w.u64(self.pt_root.raw());
        w.u64(self.handle);
        w.u64(self.span);
        match self.grant {
            Some(grant) => {
                w.u8(1);
                w.u32(grant.0);
            }
            None => w.u8(0),
        }
        match &self.op {
            WireOp::Open { path, flags } => {
                w.u8(encode_flags(*flags));
                let bytes = path.as_bytes();
                w.u32(bytes.len() as u32);
                w.0.extend_from_slice(bytes);
            }
            WireOp::Release | WireOp::Poll => {}
            WireOp::Read { addr, len } | WireOp::Write { addr, len } => {
                w.u64(addr.raw());
                w.u64(*len);
            }
            WireOp::Ioctl { cmd, arg } => {
                w.u32(cmd.raw());
                w.u64(*arg);
            }
            WireOp::Mmap {
                va,
                len,
                offset,
                access,
            } => {
                w.u64(va.raw());
                w.u64(*len);
                w.u64(*offset);
                w.u8(access.bits());
            }
            WireOp::Munmap { va, len } => {
                w.u64(va.raw());
                w.u64(*len);
            }
            WireOp::Fault { va } => w.u64(va.raw()),
            WireOp::Fasync { on } => w.u8(u8::from(*on)),
        }
        w.0
    }

    /// Parses a request from the shared page.
    ///
    /// # Errors
    ///
    /// [`WireError`] for truncated, oversized or trailing-garbage messages.
    pub fn decode(bytes: &[u8]) -> Result<WireRequest, WireError> {
        WireRequest::decode_probed(bytes, &mut NoProbe)
    }

    /// [`WireRequest::decode`] with every field read reported to `probe`.
    /// This is the *same* decode path production uses (with [`NoProbe`]);
    /// the verify crate runs it under a counting probe to prove the
    /// single-read property on the real codec.
    ///
    /// # Errors
    ///
    /// Exactly as [`WireRequest::decode`].
    pub fn decode_probed<P: ReadProbe>(
        bytes: &[u8],
        probe: &mut P,
    ) -> Result<WireRequest, WireError> {
        let mut r = Reader { bytes, at: 0, probe };
        let opcode = r.u8()?;
        let task = r.u64()?;
        let pt_root = GuestPhysAddr::new(r.u64()?);
        let handle = r.u64()?;
        let span = r.u64()?;
        let grant = if r.u8()? == 1 {
            Some(GrantRef(r.u32()?))
        } else {
            None
        };
        let op = match opcode {
            1 => {
                let flags = decode_flags(r.u8()?);
                let len = r.u32()? as usize;
                if len > MAX_PATH {
                    return Err(WireError);
                }
                let path =
                    String::from_utf8(r.bytes(len)?.to_vec()).map_err(|_| WireError)?;
                WireOp::Open { path, flags }
            }
            2 => WireOp::Release,
            3 => WireOp::Read {
                addr: GuestVirtAddr::new(r.u64()?),
                len: r.u64()?,
            },
            4 => WireOp::Write {
                addr: GuestVirtAddr::new(r.u64()?),
                len: r.u64()?,
            },
            5 => WireOp::Ioctl {
                cmd: IoctlCmd(r.u32()?),
                arg: r.u64()?,
            },
            6 => WireOp::Mmap {
                va: GuestVirtAddr::new(r.u64()?),
                len: r.u64()?,
                offset: r.u64()?,
                access: Access::from_bits(r.u8()?),
            },
            7 => WireOp::Munmap {
                va: GuestVirtAddr::new(r.u64()?),
                len: r.u64()?,
            },
            8 => WireOp::Poll,
            9 => WireOp::Fasync { on: r.u8()? == 1 },
            10 => WireOp::Fault {
                va: GuestVirtAddr::new(r.u64()?),
            },
            _ => return Err(WireError),
        };
        r.done()?;
        Ok(WireRequest {
            task,
            pt_root,
            handle,
            span,
            grant,
            op,
        })
    }
}

/// A response, tagged by what the operation returned.
///
/// Poll readiness is its own variant: the old API smuggled `PollEvents`
/// through an `i64` (`from_poll`/`to_poll`), so nothing stopped a caller
/// from misreading a byte count as a readiness mask. Now the type says
/// which it is, and the frontend rejects a mismatched variant outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireResponse {
    /// A non-negative result value (byte count, handle, 0-for-success).
    Value(i64),
    /// `poll()` readiness events.
    Poll(PollEvents),
    /// The operation failed with an errno.
    Err(Errno),
}

impl WireResponse {
    /// Wraps a classic `Result` (non-poll operations).
    pub fn from_result(result: Result<i64, Errno>) -> WireResponse {
        match result {
            Ok(value) => WireResponse::Value(value),
            Err(errno) => WireResponse::Err(errno),
        }
    }

    /// Collapses to a classic `Result`. Poll readiness degrades to its raw
    /// bits — callers that expect poll events should match
    /// [`WireResponse::Poll`] instead.
    pub fn result(self) -> Result<i64, Errno> {
        match self {
            WireResponse::Value(value) => Ok(value),
            WireResponse::Poll(events) => Ok(i64::from(events.bits())),
            WireResponse::Err(errno) => Err(errno),
        }
    }

    /// Serializes the response.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer(Vec::with_capacity(9));
        match self {
            WireResponse::Value(value) => {
                w.u8(0);
                w.u64(*value as u64);
            }
            WireResponse::Err(errno) => {
                w.u8(1);
                w.u32(errno.code() as u32);
            }
            WireResponse::Poll(events) => {
                w.u8(2);
                w.u32(u32::from(events.bits()));
            }
        }
        w.0
    }

    /// Parses a response.
    ///
    /// # Errors
    ///
    /// [`WireError`] for malformed bytes, trailing bytes, unknown errno
    /// codes, or poll bits outside the `PollEvents` domain.
    pub fn decode(bytes: &[u8]) -> Result<WireResponse, WireError> {
        WireResponse::decode_probed(bytes, &mut NoProbe)
    }

    /// [`WireResponse::decode`] with every field read reported to `probe`
    /// (see [`WireRequest::decode_probed`]).
    ///
    /// # Errors
    ///
    /// Exactly as [`WireResponse::decode`].
    pub fn decode_probed<P: ReadProbe>(
        bytes: &[u8],
        probe: &mut P,
    ) -> Result<WireResponse, WireError> {
        let mut r = Reader { bytes, at: 0, probe };
        let tag = r.u8()?;
        let response = match tag {
            0 => WireResponse::Value(r.u64()? as i64),
            1 => WireResponse::Err(Errno::from_code(r.u32()? as i32).ok_or(WireError)?),
            2 => {
                let raw = r.u32()?;
                let bits = u16::try_from(raw).map_err(|_| WireError)?;
                WireResponse::Poll(PollEvents::from_bits(bits))
            }
            _ => return Err(WireError),
        };
        r.done()?;
        Ok(response)
    }
}

/// A forwarded asynchronous notification (backend → frontend, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSignal {
    /// The task to notify.
    pub task: u64,
    /// The guest-local handle the notification is for.
    pub handle: u64,
}

impl WireSignal {
    /// Serializes the signal.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer(Vec::with_capacity(16));
        w.u64(self.task);
        w.u64(self.handle);
        w.0
    }

    /// Parses a signal.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation.
    pub fn decode(bytes: &[u8]) -> Result<WireSignal, WireError> {
        WireSignal::decode_probed(bytes, &mut NoProbe)
    }

    /// [`WireSignal::decode`] with every field read reported to `probe`
    /// (see [`WireRequest::decode_probed`]).
    ///
    /// # Errors
    ///
    /// Exactly as [`WireSignal::decode`].
    pub fn decode_probed<P: ReadProbe>(
        bytes: &[u8],
        probe: &mut P,
    ) -> Result<WireSignal, WireError> {
        let mut r = Reader { bytes, at: 0, probe };
        let signal = WireSignal {
            task: r.u64()?,
            handle: r.u64()?,
        };
        r.done()?;
        Ok(signal)
    }
}

// ---------------------------------------------------------------------------
// Decode-as-IR: the wire protocol through the analyzer's eyes
// ---------------------------------------------------------------------------

/// [`WireRequest::decode`] modeled in the analyzer's driver IR, so the
/// dataflow lint suite (`WP001`, `TA00x`) covers the shared page the same
/// way it covers ioctl handlers. The shared page *is* a user-controlled
/// buffer: the frontend can rewrite it between the backend's reads, which
/// is exactly the double-fetch threat model with "process" replaced by
/// "guest".
///
/// The model follows the length-word-then-payload path ([`WireOp::Open`],
/// the only variable-length request) on the grant-present layout, where the
/// fixed prefix — opcode, task, pt_root, handle, span, grant flag, grant
/// ref, open flags — spans bytes `[0, 39)`, the path length word sits at
/// `[39, 43)`, and the path bytes follow. Fixed-size opcodes decode from
/// the same prefix and are subsumed by it. Mirrored by
/// `decode_ir_matches_decoder` below: the IR is kept honest against the
/// real `Reader` offsets.
pub fn wire_request_decode_ir() -> paradice_analyzer::ir::Handler {
    use paradice_analyzer::ir::{Cond, Expr, Function, Stmt, VarId};
    let v = VarId;
    let body = vec![
        // Fixed prefix: everything up to and including the open flags.
        Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(39),
        },
        // The decoder dispatches on the opcode byte.
        Stmt::Assign {
            var: v(5),
            value: Expr::field(v(0), 0, 1),
        },
        // Path length word.
        Stmt::CopyFromUser {
            dst: v(1),
            src: Expr::add(Expr::Arg, Expr::Const(39)),
            len: Expr::Const(4),
        },
        // `if len > MAX_PATH { return Err(WireError) }`.
        Stmt::If {
            cond: Cond::Gt(
                Expr::field(v(1), 0, 4),
                Expr::Const(MAX_PATH as u64),
            ),
            then: vec![Stmt::Return],
            els: vec![],
        },
        // Path bytes, sized by the validated length word.
        Stmt::CopyFromUser {
            dst: v(2),
            src: Expr::add(Expr::Arg, Expr::Const(43)),
            len: Expr::field(v(1), 0, 4),
        },
        Stmt::Return,
    ];
    let mut functions = std::collections::BTreeMap::new();
    functions.insert("decode_request".to_owned(), Function { body });
    paradice_analyzer::ir::Handler::new("decode_request", functions)
}

/// [`WireResponse::decode`] in driver IR: a tag byte selects how wide the
/// value word is (`Value` reads 8 bytes, `Err`/`Poll` read 4). The two
/// reads overlap but sit on exclusive branches — a shape only a
/// branch-sensitive pass can prove clean.
pub fn wire_response_decode_ir() -> paradice_analyzer::ir::Handler {
    use paradice_analyzer::ir::{Cond, Expr, Function, Stmt, VarId};
    let v = VarId;
    let body = vec![
        Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(1),
        },
        Stmt::If {
            cond: Cond::Eq(Expr::field(v(0), 0, 1), Expr::Const(0)),
            then: vec![Stmt::CopyFromUser {
                dst: v(1),
                src: Expr::add(Expr::Arg, Expr::Const(1)),
                len: Expr::Const(8),
            }],
            els: vec![Stmt::CopyFromUser {
                dst: v(2),
                src: Expr::add(Expr::Arg, Expr::Const(1)),
                len: Expr::Const(4),
            }],
        },
        Stmt::Return,
    ];
    let mut functions = std::collections::BTreeMap::new();
    functions.insert("decode_response".to_owned(), Function { body });
    paradice_analyzer::ir::Handler::new("decode_response", functions)
}

/// A deliberately broken request decoder: it re-reads the path length word
/// *after* validating it, then sizes the payload read from the second copy
/// — the classic TOCTOU a malicious frontend exploits by growing the length
/// between the two reads. Exists so the wire lint (`WP001`) has a known-bad
/// fixture; `paradice-lint --fixtures` must flag it and must *not* flag the
/// real [`wire_request_decode_ir`].
pub fn doctored_wire_request_decode_ir() -> paradice_analyzer::ir::Handler {
    use paradice_analyzer::ir::{Cond, Expr, Function, Stmt, VarId};
    let v = VarId;
    let body = vec![
        Stmt::CopyFromUser {
            dst: v(0),
            src: Expr::Arg,
            len: Expr::Const(39),
        },
        Stmt::CopyFromUser {
            dst: v(1),
            src: Expr::add(Expr::Arg, Expr::Const(39)),
            len: Expr::Const(4),
        },
        Stmt::If {
            cond: Cond::Gt(
                Expr::field(v(1), 0, 4),
                Expr::Const(MAX_PATH as u64),
            ),
            then: vec![Stmt::Return],
            els: vec![],
        },
        // The bug: the length word is fetched again after the check…
        Stmt::CopyFromUser {
            dst: v(3),
            src: Expr::add(Expr::Arg, Expr::Const(39)),
            len: Expr::Const(4),
        },
        // …and the unvalidated second copy sizes the payload read.
        Stmt::CopyFromUser {
            dst: v(2),
            src: Expr::add(Expr::Arg, Expr::Const(43)),
            len: Expr::field(v(3), 0, 4),
        },
        Stmt::Return,
    ];
    let mut functions = std::collections::BTreeMap::new();
    functions.insert("decode_request".to_owned(), Function { body });
    paradice_analyzer::ir::Handler::new("decode_request", functions)
}

// The typed-channel boundary: [`CvdChannel`] serializes each message type
// through these impls, so encode/decode happens in exactly one place.

impl WireCodec for WireRequest {
    fn encode_wire(&self) -> Vec<u8> {
        self.encode()
    }

    fn decode_wire(bytes: &[u8]) -> Option<Self> {
        WireRequest::decode(bytes).ok()
    }
}

impl WireCodec for WireResponse {
    fn encode_wire(&self) -> Vec<u8> {
        self.encode()
    }

    fn decode_wire(bytes: &[u8]) -> Option<Self> {
        WireResponse::decode(bytes).ok()
    }
}

impl WireCodec for WireSignal {
    fn encode_wire(&self) -> Vec<u8> {
        self.encode()
    }

    fn decode_wire(bytes: &[u8]) -> Option<Self> {
        WireSignal::decode(bytes).ok()
    }
}

/// Kani proof harnesses (run via `cargo kani`; absent from normal builds).
///
/// Symbolic counterparts of the `crates/verify` codec properties: the
/// exhaustive checker sweeps boundary-value message domains; these prove
/// round-trip and the single-read discipline for *every* value of the
/// symbolic fields on the fixed-size wire types.
#[cfg(kani)]
mod kani_proofs {
    use super::*;

    /// Counts how often each shared-page byte is read.
    struct CountProbe {
        counts: [u8; 32],
    }

    impl ReadProbe for CountProbe {
        fn on_read(&mut self, at: usize, len: usize) {
            for i in at..at + len {
                self.counts[i] += 1;
            }
        }
    }

    #[kani::proof]
    fn response_value_roundtrips() {
        let value: i64 = kani::any();
        let resp = WireResponse::Value(value);
        let bytes = resp.encode();
        assert!(WireResponse::decode(&bytes) == Ok(resp));
    }

    #[kani::proof]
    fn signal_roundtrips_and_reads_each_byte_once() {
        let signal = WireSignal {
            task: kani::any(),
            handle: kani::any(),
        };
        let bytes = signal.encode();
        let mut probe = CountProbe { counts: [0; 32] };
        assert!(WireSignal::decode_probed(&bytes, &mut probe) == Ok(signal));
        let mut i = 0;
        while i < bytes.len() {
            assert!(probe.counts[i] == 1);
            i += 1;
        }
    }

    #[kani::proof]
    fn response_decode_reads_each_byte_at_most_once() {
        // Arbitrary 9-byte shared-page contents, decoded: whether or not it
        // parses, no byte is consulted twice.
        let bytes: [u8; 9] = kani::any();
        let len: usize = kani::any();
        kani::assume(len <= bytes.len());
        let mut probe = CountProbe { counts: [0; 32] };
        let _ = WireResponse::decode_probed(&bytes[..len], &mut probe);
        let mut i = 0;
        while i < len {
            assert!(probe.counts[i] <= 1);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_devfs::ioc::iowr;

    fn roundtrip(req: WireRequest) {
        let bytes = req.encode();
        assert_eq!(WireRequest::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn all_ops_roundtrip() {
        let header = |op| WireRequest {
            task: 42,
            pt_root: GuestPhysAddr::new(0x7000),
            handle: 9,
            span: 1234,
            grant: Some(GrantRef(17)),
            op,
        };
        roundtrip(header(WireOp::Open {
            path: "/dev/dri/card0".to_owned(),
            flags: OpenFlags::RDWR.nonblocking(),
        }));
        roundtrip(header(WireOp::Release));
        roundtrip(header(WireOp::Read {
            addr: GuestVirtAddr::new(0x1234),
            len: 4096,
        }));
        roundtrip(header(WireOp::Write {
            addr: GuestVirtAddr::new(0x1234),
            len: 16,
        }));
        roundtrip(header(WireOp::Ioctl {
            cmd: iowr(b'd', 0x26, 16),
            arg: 0xdead_beef,
        }));
        roundtrip(header(WireOp::Mmap {
            va: GuestVirtAddr::new(0x10000),
            len: 8192,
            offset: 1 << 28,
            access: Access::RW,
        }));
        roundtrip(header(WireOp::Munmap {
            va: GuestVirtAddr::new(0x10000),
            len: 8192,
        }));
        roundtrip(header(WireOp::Poll));
        roundtrip(header(WireOp::Fasync { on: true }));
        roundtrip(header(WireOp::Fault {
            va: GuestVirtAddr::new(0x7fff_0000),
        }));
    }

    #[test]
    fn decode_ir_matches_decoder() {
        // The IR's hardcoded offsets (fixed prefix [0, 39), length word
        // [39, 43), path at 43) must match what the real codec produces on
        // the grant-present Open path it models.
        let path = "/dev/dri/card0";
        let req = WireRequest {
            task: 42,
            pt_root: GuestPhysAddr::new(0x7000),
            handle: 9,
            span: 1234,
            grant: Some(GrantRef(17)),
            op: WireOp::Open {
                path: path.to_owned(),
                flags: OpenFlags::RDWR,
            },
        };
        let bytes = req.encode();
        assert_eq!(bytes.len(), 43 + path.len());
        assert_eq!(
            u32::from_le_bytes(bytes[39..43].try_into().unwrap()) as usize,
            path.len()
        );
        assert_eq!(&bytes[43..], path.as_bytes());
    }

    #[test]
    fn shipped_decode_irs_lint_clean() {
        use paradice_analyzer::lint::wire::check_wire;
        for (name, handler) in [
            ("cvd-wire-request", wire_request_decode_ir()),
            ("cvd-wire-response", wire_response_decode_ir()),
        ] {
            let mut diags = Vec::new();
            check_wire(name, &handler, &mut diags);
            assert!(diags.is_empty(), "{name}: {diags:?}");
        }
    }

    #[test]
    fn doctored_decode_ir_fires_wp001() {
        use paradice_analyzer::lint::wire::check_wire;
        use paradice_analyzer::lint::{has_errors, DiagCode};
        let mut diags = Vec::new();
        check_wire("cvd-wire-doctored", &doctored_wire_request_decode_ir(), &mut diags);
        assert!(
            diags.iter().any(|d| d.code == DiagCode::Wp001),
            "{diags:?}"
        );
        assert!(has_errors(&diags));
    }

    #[test]
    fn grantless_request_roundtrips() {
        roundtrip(WireRequest {
            task: 1,
            pt_root: GuestPhysAddr::new(0),
            handle: 0,
            span: 0,
            grant: None,
            op: WireOp::Poll,
        });
    }

    #[test]
    fn truncated_request_rejected() {
        let req = WireRequest {
            task: 1,
            pt_root: GuestPhysAddr::new(0),
            handle: 0,
            span: 0,
            grant: None,
            op: WireOp::Read {
                addr: GuestVirtAddr::new(0),
                len: 10,
            },
        };
        let bytes = req.encode();
        assert_eq!(WireRequest::decode(&bytes[..bytes.len() - 1]), Err(WireError));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = WireRequest {
            task: 1,
            pt_root: GuestPhysAddr::new(0),
            handle: 0,
            span: 0,
            grant: None,
            op: WireOp::Poll,
        }
        .encode();
        bytes.push(0xff);
        assert_eq!(WireRequest::decode(&bytes), Err(WireError));
    }

    #[test]
    fn bogus_opcode_rejected() {
        let mut bytes = WireRequest {
            task: 1,
            pt_root: GuestPhysAddr::new(0),
            handle: 0,
            span: 0,
            grant: None,
            op: WireOp::Poll,
        }
        .encode();
        bytes[0] = 0x7f;
        assert_eq!(WireRequest::decode(&bytes), Err(WireError));
    }

    #[test]
    fn oversized_path_rejected() {
        let req = WireRequest {
            task: 1,
            pt_root: GuestPhysAddr::new(0),
            handle: 0,
            span: 0,
            grant: None,
            op: WireOp::Open {
                path: "x".repeat(MAX_PATH + 1),
                flags: OpenFlags::RDWR,
            },
        };
        assert_eq!(WireRequest::decode(&req.encode()), Err(WireError));
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            WireResponse::Value(0),
            WireResponse::Value(i64::MAX),
            WireResponse::Value(-1),
            WireResponse::Poll(PollEvents::IN | PollEvents::ERR),
            WireResponse::Err(Errno::Efault),
            WireResponse::Err(Errno::Edquot),
        ] {
            assert_eq!(WireResponse::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn poll_events_are_a_distinct_variant() {
        let events = PollEvents::IN | PollEvents::ERR;
        let resp = WireResponse::Poll(events);
        // The wire tag distinguishes poll readiness from a value that
        // happens to share the bit pattern.
        let as_value = WireResponse::Value(i64::from(events.bits()));
        assert_ne!(resp.encode(), as_value.encode());
        assert_eq!(WireResponse::decode(&resp.encode()).unwrap(), resp);
        // `result()` still collapses for legacy-style callers.
        assert_eq!(resp.result(), Ok(i64::from(events.bits())));
    }

    #[test]
    fn response_trailing_and_bogus_bytes_rejected() {
        let mut bytes = WireResponse::Value(7).encode();
        bytes.push(0);
        assert_eq!(WireResponse::decode(&bytes), Err(WireError));
        assert_eq!(WireResponse::decode(&[3, 0, 0, 0, 0]), Err(WireError));
        // Poll bits beyond u16 are not representable events.
        let mut poll = Writer(Vec::new());
        poll.u8(2);
        poll.u32(0x1_0000);
        assert_eq!(WireResponse::decode(&poll.0), Err(WireError));
    }

    #[test]
    fn from_result_and_result_are_inverse_for_non_poll() {
        for result in [Ok(17), Ok(-1), Err(Errno::Eio)] {
            assert_eq!(WireResponse::from_result(result).result(), result);
        }
    }

    #[test]
    fn signals_roundtrip() {
        let signal = WireSignal { task: 7, handle: 3 };
        assert_eq!(WireSignal::decode(&signal.encode()).unwrap(), signal);
        assert_eq!(WireSignal::decode(&[1, 2, 3]), Err(WireError));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use paradice_devfs::Errno;
    use proptest::prelude::*;

    fn arbitrary_op(pick: u8, a: u64, b: u64, c: u64) -> WireOp {
        match pick % 10 {
            0 => WireOp::Open {
                path: format!("/dev/fuzz{}", a % 1000),
                flags: OpenFlags {
                    read: a & 1 != 0,
                    write: b & 1 != 0,
                    nonblock: c & 1 != 0,
                },
            },
            1 => WireOp::Release,
            2 => WireOp::Read {
                addr: GuestVirtAddr::new(a),
                len: b,
            },
            3 => WireOp::Write {
                addr: GuestVirtAddr::new(a),
                len: b,
            },
            4 => WireOp::Ioctl {
                cmd: IoctlCmd(a as u32),
                arg: b,
            },
            5 => WireOp::Mmap {
                va: GuestVirtAddr::new(a),
                len: b,
                offset: c,
                access: Access::from_bits((a % 8) as u8),
            },
            6 => WireOp::Munmap {
                va: GuestVirtAddr::new(a),
                len: b,
            },
            7 => WireOp::Poll,
            8 => WireOp::Fasync { on: a & 1 != 0 },
            _ => WireOp::Fault {
                va: GuestVirtAddr::new(a),
            },
        }
    }

    proptest! {
        /// Every representable request survives the wire round trip, and
        /// the decoder rejects any truncation of it.
        #[test]
        fn requests_roundtrip_and_reject_truncation(
            pick in 0u8..10,
            fields in (any::<u64>(), any::<u64>(), any::<u64>()),
            header in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            grant in (any::<bool>(), any::<u32>()),
        ) {
            let (a, b, c) = fields;
            let (task, pt_root, handle, span) = header;
            let request = WireRequest {
                task,
                pt_root: GuestPhysAddr::new(pt_root),
                handle,
                span,
                grant: grant.0.then_some(GrantRef(grant.1)),
                op: arbitrary_op(pick, a, b, c),
            };
            let bytes = request.encode();
            prop_assert_eq!(WireRequest::decode(&bytes).unwrap(), request.clone());
            prop_assert_eq!(
                <WireRequest as WireCodec>::decode_wire(&bytes),
                Some(request)
            );
            for cut in 0..bytes.len() {
                prop_assert_eq!(WireRequest::decode(&bytes[..cut]), Err(WireError));
            }
        }

        /// Responses round-trip through all three variants.
        #[test]
        fn responses_roundtrip(tag in 0u8..3, value in any::<i64>(), errno_pick in 0u8..8) {
            let response = match tag {
                0 => WireResponse::Value(value),
                1 => WireResponse::Poll(PollEvents::from_bits(value as u16)),
                _ => WireResponse::Err(
                    [
                        Errno::Eperm,
                        Errno::Eio,
                        Errno::Efault,
                        Errno::Einval,
                        Errno::Enoent,
                        Errno::Ebusy,
                        Errno::Enodev,
                        Errno::Edquot,
                    ][errno_pick as usize % 8],
                ),
            };
            let bytes = response.encode();
            prop_assert_eq!(WireResponse::decode(&bytes).unwrap(), response);
            let mut padded = bytes;
            padded.push(0);
            prop_assert_eq!(WireResponse::decode(&padded), Err(WireError));
        }

        /// Signals round-trip and reject trailing bytes.
        #[test]
        fn signals_roundtrip(task in any::<u64>(), handle in any::<u64>()) {
            let signal = WireSignal { task, handle };
            let bytes = signal.encode();
            prop_assert_eq!(WireSignal::decode(&bytes).unwrap(), signal);
            let mut padded = bytes;
            padded.push(9);
            prop_assert_eq!(WireSignal::decode(&padded), Err(WireError));
        }
    }
}
