//! The CVD backend: the driver-VM half of the paravirtual pair.
//!
//! "The CVD backend puts new file operations on a wait-queue to be executed.
//! We use separate wait-queues for each guest VM. We also set the maximum
//! number of queued operations for each wait-queue to 100 to prevent
//! malicious guest VMs from causing denial-of-service problems … We can
//! modify this cap for different queues for better load balancing or
//! enforcing priorities between guest VMs" (paper §5.1).
//!
//! Dispatch marks the executing "thread" with the calling guest (the
//! `task_struct` flag of §5.2) so the driver's wrapper stubs — our
//! [`HypercallMemOps`] — and the data-isolation code know whose memory and
//! region to use. Asynchronous notifications flow backend → frontend over
//! the same channels, filtered by the input-sharing policy (§5.1: "for
//! input devices, we only send notifications to the foreground guest VM").

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use paradice_devfs::fasync::Signal;
use paradice_devfs::fileops::{FileOps, MmapRange, OpenContext, TaskId, UserBuffer};
use paradice_devfs::registry::{DevFs, DeviceId, FileHandleId, OpenPolicy};
use paradice_devfs::sysinfo::DeviceClass;
use paradice_devfs::Errno;
use paradice_drivers::env::KernelEnv;
use paradice_faults::{FaultKind, FaultPlan};
use paradice_hypervisor::audit::AuditEvent;
use paradice_hypervisor::{ChannelError, GrantRef, SharedHypervisor, VmId};
use paradice_mem::GuestVirtAddr;
use paradice_trace::SpanId;

use crate::fairq::{FairSched, SchedPolicy};
use crate::memops::{BatchedMemOps, HypercallMemOps, MemEngine};
use crate::proto::{CvdChannel, WireOp, WireRequest, WireResponse, WireSignal};
use crate::sharing::{SharingPolicy, VirtualTerminals};

/// The paper's per-guest wait-queue cap.
pub const DEFAULT_QUEUE_CAP: usize = 100;

/// What an injected dispatch fault does to the request being executed.
enum InjectOutcome {
    /// Answer with this response instead of running the driver.
    Response(WireResponse),
    /// Post no response at all (panic/hang: the frontend watchdog detects).
    NoResponse,
    /// Run the driver normally; the fault applies at the wire afterwards.
    Proceed,
}

/// A shared handle to the backend (one backend serves every guest, §3.2.3).
pub type SharedBackend = Rc<RefCell<Backend>>;

struct DeviceSlot {
    ops: Rc<RefCell<dyn FileOps>>,
    env: Rc<KernelEnv>,
    class: DeviceClass,
    policy: SharingPolicy,
}

struct GuestState {
    channel: Rc<RefCell<CvdChannel>>,
    /// Queued requests with their global arrival stamps (per-guest FIFO;
    /// the fair-share drain interleaves *across* guests only).
    queue: VecDeque<(u64, WireRequest)>,
    cap: usize,
    /// This guest's open files: per-guest handle tables (ISSUE 10), so a
    /// neighbor's open/close churn never touches another guest's lookup
    /// path. Handle ids stay globally unique (devfs allocates them).
    opens: BTreeMap<u64, OpenState>,
}

/// Per-open-file bookkeeping. Lives in the owning guest's table, so the
/// owner is the table itself rather than a field.
#[derive(Debug, Clone, Copy)]
struct OpenState {
    device: DeviceId,
    flags: paradice_devfs::OpenFlags,
}

/// The CVD backend.
pub struct Backend {
    hv: SharedHypervisor,
    driver_vm: VmId,
    devfs: DevFs,
    devices: BTreeMap<u32, DeviceSlot>,
    guests: BTreeMap<u32, GuestState>,
    task_origin: BTreeMap<u64, VmId>,
    /// The cross-guest drain discipline (fair-share by default) and its
    /// per-guest consumed-service-time accounting.
    sched: FairSched,
    /// Global arrival counter stamping queued requests.
    arrivals: u64,
    terminals: Option<Rc<RefCell<VirtualTerminals>>>,
    /// When paused, requests queue without executing (lets tests exercise
    /// the DoS cap; in the live system the queue only backs up when the
    /// driver is slow).
    paused: bool,
    ops_executed: u64,
    /// Armed fault plan (§7.1 experiments); `None` in production.
    plan: Option<Rc<RefCell<FaultPlan>>>,
    /// A wire-level fault picked during dispatch, applied to the response
    /// slot after the response is posted.
    pending_wire_fault: Option<FaultKind>,
    /// Virtual time the last response was posted to a channel — the
    /// frontend watchdog measures *delivery* lag against this, so blocking
    /// operations may legitimately run long without tripping it.
    last_post_ns: u64,
    /// Fast path: dispatch with [`BatchedMemOps`], coalescing each file
    /// operation's memory operations into one vectored hypercall.
    fastpath_batch: bool,
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backend")
            .field("driver_vm", &self.driver_vm)
            .field("devices", &self.devices.len())
            .field("guests", &self.guests.len())
            .field("ops_executed", &self.ops_executed)
            .finish()
    }
}

impl Backend {
    /// Creates a backend hosted in `driver_vm`.
    pub fn new(hv: SharedHypervisor, driver_vm: VmId) -> SharedBackend {
        Rc::new(RefCell::new(Backend {
            hv,
            driver_vm,
            devfs: DevFs::new(),
            devices: BTreeMap::new(),
            guests: BTreeMap::new(),
            task_origin: BTreeMap::new(),
            sched: FairSched::default(),
            arrivals: 0,
            terminals: None,
            paused: false,
            ops_executed: 0,
            plan: None,
            pending_wire_fault: None,
            last_post_ns: 0,
            fastpath_batch: false,
        }))
    }

    /// Enables or disables vectored-hypercall dispatch (fast path): the
    /// driver's memory operations are deferred into one `hv_memops_batch`,
    /// validated atomically — all-or-nothing on a grant violation.
    pub fn set_fastpath_batch(&mut self, on: bool) {
        self.fastpath_batch = on;
    }

    /// Whether vectored-hypercall dispatch is active.
    pub fn fastpath_batch(&self) -> bool {
        self.fastpath_batch
    }

    /// The driver VM hosting this backend.
    pub fn driver_vm(&self) -> VmId {
        self.driver_vm
    }

    /// Total file operations executed.
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Registers a device driver at `path` in the driver VM's devfs.
    ///
    /// # Errors
    ///
    /// `EBUSY` for duplicate paths.
    pub fn register_device(
        &mut self,
        path: &str,
        class: DeviceClass,
        open_policy: OpenPolicy,
        sharing: SharingPolicy,
        ops: Rc<RefCell<dyn FileOps>>,
        env: Rc<KernelEnv>,
    ) -> Result<DeviceId, Errno> {
        let id = self.devfs.register(path, class, open_policy)?;
        self.devices.insert(
            id.0,
            DeviceSlot {
                ops,
                env,
                class,
                policy: sharing,
            },
        );
        Ok(id)
    }

    /// Attaches a guest VM with its shared-page channel and queue cap.
    pub fn attach_guest(&mut self, guest: VmId, channel: Rc<RefCell<CvdChannel>>, cap: usize) {
        self.guests.insert(
            guest.0,
            GuestState {
                channel,
                queue: VecDeque::new(),
                cap,
                opens: BTreeMap::new(),
            },
        );
    }

    /// Adjusts a guest's wait-queue cap ("for better load balancing or
    /// enforcing priorities", §5.1).
    ///
    /// # Errors
    ///
    /// `EINVAL` for unknown guests.
    pub fn set_queue_cap(&mut self, guest: VmId, cap: usize) -> Result<(), Errno> {
        self.guests
            .get_mut(&guest.0)
            .map(|state| state.cap = cap)
            .ok_or(Errno::Einval)
    }

    /// Switches the cross-guest drain discipline (fair-share is the
    /// default; FIFO is the ablation's toggle-back knob). Resets the
    /// consumed-time accounting.
    pub fn set_sched_policy(&mut self, policy: SchedPolicy) {
        self.sched = FairSched::new(policy);
    }

    /// The active cross-guest drain discipline.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.sched.policy()
    }

    /// Service time charged to `guest` by the drain scheduler (virtual ns).
    pub fn consumed_ns(&self, guest: VmId) -> u64 {
        self.sched.consumed(guest.0)
    }

    /// Records which guest a task belongs to (set when the machine spawns a
    /// guest process; used for notification routing).
    pub fn register_task(&mut self, task: TaskId, guest: VmId) {
        self.task_origin.insert(task.0, guest);
    }

    /// Installs the virtual-terminal tracker used for foreground filtering.
    pub fn set_terminals(&mut self, terminals: Rc<RefCell<VirtualTerminals>>) {
        self.terminals = Some(terminals);
    }

    /// Stops executing requests (they queue instead). Test/diagnostic knob.
    pub fn pause(&mut self) {
        self.paused = true;
    }

    /// Whether the backend is paused (the frontend watchdog must not treat
    /// a paused backend's silence as a dead driver).
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Arms a fault plan: faults fire at dispatch and channel boundaries
    /// per the plan's triggers (paper §7.1 fault-injection experiments).
    pub fn arm_faults(&mut self, plan: Rc<RefCell<FaultPlan>>) {
        self.plan = Some(plan);
    }

    /// Clears driver-visible state after a driver-VM reboot: force-closes
    /// every open file in devfs, flushes the per-guest wait queues, and
    /// drops any staged wire fault. Channel slots are reset by the
    /// frontends; device registrations survive (the machine swaps in the
    /// freshly instantiated driver objects).
    pub fn reset_for_recovery(&mut self) {
        for state in self.guests.values_mut() {
            let handles: Vec<u64> = state.opens.keys().copied().collect();
            for handle in handles {
                let _ = self.devfs.close(FileHandleId(handle));
            }
            state.opens.clear();
            state.queue.clear();
        }
        self.paused = false;
        self.pending_wire_fault = None;
    }

    /// Swaps the driver object (and its kernel environment) behind an
    /// already-registered device: the recovery path re-instantiates drivers
    /// in the rebooted driver VM without re-registering devfs paths.
    ///
    /// # Errors
    ///
    /// `ENODEV` for unknown devices.
    pub fn replace_device_ops(
        &mut self,
        device: DeviceId,
        ops: Rc<RefCell<dyn FileOps>>,
        env: Rc<KernelEnv>,
    ) -> Result<(), Errno> {
        let slot = self.devices.get_mut(&device.0).ok_or(Errno::Enodev)?;
        slot.ops = ops;
        slot.env = env;
        Ok(())
    }

    /// Virtual time the last response was posted to a channel. The
    /// frontend watchdog compares its read time against this: a blocking
    /// operation may legitimately execute for longer than the deadline,
    /// but a response that sits *posted yet undelivered* past the deadline
    /// means the transport (or a fault) is holding it.
    pub fn last_post_ns(&self) -> u64 {
        self.last_post_ns
    }

    /// Depth of a guest's wait queue.
    pub fn queue_depth(&self, guest: VmId) -> usize {
        self.guests.get(&guest.0).map_or(0, |s| s.queue.len())
    }

    /// Accepts one request from `guest`'s channel: enqueue (subject to the
    /// cap), then — unless paused — execute it and post the response.
    ///
    /// # Errors
    ///
    /// `EINVAL` for unattached guests or an empty channel. A full wait
    /// queue is *not* an error here: the EDQUOT response is posted on the
    /// channel (and the flood audited), exactly as the guest would see it.
    pub fn handle_request(&mut self, guest: VmId) -> Result<(), Errno> {
        let driver_dead = self.hv.borrow().driver_vm_failed(self.driver_vm);
        let state = self.guests.get_mut(&guest.0).ok_or(Errno::Einval)?;
        let request = match state.channel.borrow_mut().take_request() {
            Ok(request) => request,
            Err(ChannelError::Malformed) => {
                // The slot held bytes that do not decode as a WireRequest.
                // The channel already consumed them; answer EINVAL so the
                // guest is not left waiting on an empty response slot.
                let _ = state
                    .channel
                    .borrow_mut()
                    .send_response(WireResponse::Err(Errno::Einval));
                self.last_post_ns = self.hv.borrow().clock().now_ns();
                return Ok(());
            }
            Err(_) => return Err(Errno::Einval),
        };
        if driver_dead {
            // The driver VM is marked failed: nothing in it may run. The
            // request is consumed and refused immediately so the guest gets
            // a clean errno instead of a hang (§7.1 fail-fast).
            let _ = state
                .channel
                .borrow_mut()
                .send_response(WireResponse::Err(Errno::Eio));
            self.last_post_ns = self.hv.borrow().clock().now_ns();
            return Ok(());
        }
        if state.queue.len() >= state.cap {
            let depth = state.queue.len();
            let _ = state
                .channel
                .borrow_mut()
                .send_response(WireResponse::Err(Errno::Edquot));
            self.last_post_ns = self.hv.borrow().clock().now_ns();
            self.hv
                .borrow_mut()
                .record_audit(AuditEvent::WaitQueueOverflow { guest, depth });
            return Ok(());
        }
        let stamp = self.arrivals;
        self.arrivals += 1;
        state.queue.push_back((stamp, request));
        if !self.paused {
            if let Some(response) = self.execute_next(guest) {
                let state = self.guests.get_mut(&guest.0).expect("attached above");
                let _ = state.channel.borrow_mut().send_response(response);
                self.last_post_ns = self.hv.borrow().clock().now_ns();
            }
            self.apply_pending_wire_fault(guest);
        }
        Ok(())
    }

    /// Applies a wire-level fault staged during dispatch to the response
    /// just posted on `guest`'s channel.
    fn apply_pending_wire_fault(&mut self, guest: VmId) {
        let Some(kind) = self.pending_wire_fault.take() else {
            return;
        };
        let Some(state) = self.guests.get(&guest.0) else {
            return;
        };
        match kind {
            FaultKind::MalformedResponse => {
                let _ = state.channel.borrow_mut().scramble_response_slot();
            }
            FaultKind::TruncatedResponse => {
                let _ = state.channel.borrow_mut().truncate_response_slot();
            }
            FaultKind::DropDelivery => {
                let _ = state.channel.borrow_mut().drop_response_slot();
            }
            FaultKind::DelayDelivery => {
                // The response sits in the slot while the virtual clock
                // runs past the frontend's watchdog deadline.
                let delay = self
                    .plan
                    .as_ref()
                    .map_or(paradice_faults::DEFAULT_DELAY_NS, |p| {
                        p.borrow().delay_ns()
                    });
                self.hv.borrow().clock().advance(delay);
            }
            _ => {}
        }
    }

    /// Resumes a paused backend, draining `guest`'s backlog and returning
    /// the responses in order (the live system would post them as the
    /// response slot frees up).
    pub fn resume(&mut self, guest: VmId) -> Vec<WireResponse> {
        self.paused = false;
        let mut responses = Vec::new();
        while self.queue_depth(guest) > 0 {
            if let Some(response) = self.execute_next(guest) {
                responses.push(response);
            }
        }
        responses
    }

    /// Resumes a paused backend, draining *every* guest's backlog under
    /// the active scheduling discipline: fair-share picks the backlogged
    /// guest with least consumed service time per step (a light guest's
    /// ops overtake a heavy neighbor's backlog); FIFO drains in global
    /// arrival order. Each guest's own requests stay in FIFO order either
    /// way. Returns `(guest, response)` in service order.
    pub fn resume_all(&mut self) -> Vec<(VmId, WireResponse)> {
        self.paused = false;
        let mut responses = Vec::new();
        loop {
            let backlogged = self
                .guests
                .iter()
                .filter(|(_, state)| !state.queue.is_empty())
                .map(|(id, state)| (*id, state.queue.front().expect("non-empty").0));
            let Some(guest) = self.sched.pick(backlogged) else {
                break;
            };
            if let Some(response) = self.execute_next(VmId(guest)) {
                responses.push((VmId(guest), response));
            }
        }
        responses
    }

    fn execute_next(&mut self, guest: VmId) -> Option<WireResponse> {
        let (_, request) = self.guests.get_mut(&guest.0)?.queue.pop_front()?;
        let started_ns = self.hv.borrow().clock().now_ns();
        self.hv.borrow().clock().advance(
            self.hv.borrow().cost().backend_dispatch_ns,
        );
        // Span marking, mirroring the guest-thread mark: every grant-checked
        // hypercall the driver performs for this request lands in the span
        // the frontend stamped on the wire (as do injected faults).
        self.hv.borrow_mut().set_current_span(SpanId(request.span));
        let outcome = 'serve: {
            if let Some(kind) = self.consult_fault_plan(&request) {
                match self.inject_dispatch_fault(kind, guest, &request) {
                    InjectOutcome::Response(response) => break 'serve Some(response),
                    InjectOutcome::NoResponse => break 'serve None,
                    InjectOutcome::Proceed => {}
                }
            }
            self.ops_executed += 1;
            Some(match self.dispatch(guest, request) {
                Ok(response) => response,
                Err(errno) => WireResponse::Err(errno),
            })
        };
        self.hv.borrow_mut().set_current_span(SpanId::NONE);
        // Charge the serving guest whatever virtual time its operation
        // actually consumed (dispatch overhead plus every hypercall the
        // driver made) — the fair-share discipline's input. Faulted
        // dispatches charge too: injected work is still work.
        let service_ns = self
            .hv
            .borrow()
            .clock()
            .now_ns()
            .saturating_sub(started_ns)
            .max(1);
        self.sched.charge(guest.0, service_ns);
        outcome
    }

    /// Asks the armed plan (if any) whether a fault fires on this dispatch.
    fn consult_fault_plan(&mut self, request: &WireRequest) -> Option<FaultKind> {
        let now_ns = self.hv.borrow().clock().now_ns();
        self.plan
            .as_ref()?
            .borrow_mut()
            .on_dispatch(request.op.name(), now_ns)
    }

    /// Simulates `kind` firing inside the driver while it dispatches
    /// `request` (paper §7.1: "we injected faults in the device drivers
    /// running inside the driver VM").
    fn inject_dispatch_fault(
        &mut self,
        kind: FaultKind,
        guest: VmId,
        request: &WireRequest,
    ) -> InjectOutcome {
        self.hv
            .borrow()
            .trace_fault_injected(kind.as_str(), request.op.name());
        match kind {
            FaultKind::DriverPanic => {
                // A kernel panic takes the whole driver VM down: no
                // response is ever posted, and containment revokes every
                // outstanding grant before anything else can run.
                let _ = self.hv.borrow_mut().mark_driver_vm_failed(self.driver_vm);
                InjectOutcome::NoResponse
            }
            FaultKind::DriverOops => {
                // An oops kills the handler thread but the driver VM
                // survives; the guest sees the failed operation's errno.
                InjectOutcome::Response(WireResponse::Err(Errno::Eio))
            }
            FaultKind::Hang => {
                // The driver wedges and never answers. Detection must live
                // outside the untrusted driver: the frontend watchdog — not
                // this code — declares the VM failed.
                InjectOutcome::NoResponse
            }
            FaultKind::WildMemOp => {
                // A corrupted driver touches guest memory it holds no grant
                // for. The hypervisor fails the access closed and audits
                // it; the stricken VM is then declared failed.
                let wild = self.hv.borrow_mut().hc_copy_to_guest(
                    self.driver_vm,
                    guest,
                    request.pt_root,
                    GuestVirtAddr::new(0xdead_0000),
                    &[0xff; 8],
                    GrantRef(u32::MAX),
                );
                debug_assert!(wild.is_err(), "ungranted op must fail closed");
                let _ = self.hv.borrow_mut().mark_driver_vm_failed(self.driver_vm);
                InjectOutcome::NoResponse
            }
            FaultKind::MalformedResponse
            | FaultKind::TruncatedResponse
            | FaultKind::DropDelivery
            | FaultKind::DelayDelivery => {
                // Wire-level faults: the operation itself runs; the fault
                // hits the response slot after it is posted.
                self.pending_wire_fault = Some(kind);
                InjectOutcome::Proceed
            }
        }
    }

    fn dispatch(&mut self, guest: VmId, request: WireRequest) -> Result<WireResponse, Errno> {
        let task = TaskId(request.task);
        match &request.op {
            WireOp::Open { path, flags } => {
                let (handle, device) = self.devfs.open(path, task, *flags)?;
                let slot = self.devices.get(&device.0).ok_or(Errno::Enodev)?;
                let ctx = OpenContext {
                    handle,
                    task,
                    flags: *flags,
                };
                slot.env.set_current_guest(Some(guest));
                let result = slot.ops.borrow_mut().open(ctx);
                slot.env.set_current_guest(None);
                if let Err(errno) = result {
                    let _ = self.devfs.close(handle);
                    return Err(errno);
                }
                self.guests
                    .get_mut(&guest.0)
                    .ok_or(Errno::Einval)?
                    .opens
                    .insert(
                        handle.0,
                        OpenState {
                            device,
                            flags: *flags,
                        },
                    );
                Ok(WireResponse::Value(handle.0 as i64))
            }
            op => {
                let handle = FileHandleId(request.handle);
                // Per-guest handle tables: the fast path touches only the
                // calling guest's table. A miss falls to the error path,
                // which distinguishes a neighbor's handle (EPERM — a guest
                // may only drive its own open files) from a handle nobody
                // holds (EBADF); neighbors pay that scan only when already
                // faulting.
                let own = self
                    .guests
                    .get(&guest.0)
                    .and_then(|state| state.opens.get(&request.handle))
                    .copied();
                let Some(open) = own else {
                    let foreign = self.guests.iter().any(|(id, state)| {
                        *id != guest.0 && state.opens.contains_key(&request.handle)
                    });
                    return Err(if foreign { Errno::Eperm } else { Errno::Ebadf });
                };
                let slot = self.devices.get(&open.device.0).ok_or(Errno::Enodev)?;
                let ctx = OpenContext {
                    handle,
                    task,
                    flags: open.flags,
                };
                // The wrapper-stub binding: every memory operation the
                // driver performs for this request is a grant-checked
                // hypercall. A missing grant fails closed (no declaration
                // can ever match).
                let grant = request.grant.unwrap_or(GrantRef(u32::MAX));
                let mut mem = if self.fastpath_batch {
                    MemEngine::Batched(BatchedMemOps::new(
                        self.hv.clone(),
                        self.driver_vm,
                        guest,
                        request.pt_root,
                        grant,
                        Some(slot.env.domain()),
                    ))
                } else {
                    MemEngine::Plain(HypercallMemOps::new(
                        self.hv.clone(),
                        self.driver_vm,
                        guest,
                        request.pt_root,
                        grant,
                        Some(slot.env.domain()),
                    ))
                };
                // Thread marking (§5.2).
                slot.env.set_current_guest(Some(guest));
                let result = match op {
                    WireOp::Read { addr, len } => slot.ops.borrow_mut().read(
                        ctx,
                        &mut mem,
                        UserBuffer::new(*addr, *len),
                    ).map(|n| WireResponse::Value(n as i64)),
                    WireOp::Write { addr, len } => slot.ops.borrow_mut().write(
                        ctx,
                        &mut mem,
                        UserBuffer::new(*addr, *len),
                    ).map(|n| WireResponse::Value(n as i64)),
                    WireOp::Ioctl { cmd, arg } => slot
                        .ops
                        .borrow_mut()
                        .ioctl(ctx, &mut mem, *cmd, *arg)
                        .map(WireResponse::Value),
                    WireOp::Mmap {
                        va,
                        len,
                        offset,
                        access,
                    } => slot
                        .ops
                        .borrow_mut()
                        .mmap(
                            ctx,
                            &mut mem,
                            MmapRange {
                                va: *va,
                                len: *len,
                                offset: *offset,
                                access: *access,
                            },
                        )
                        .map(|()| WireResponse::Value(0)),
                    WireOp::Munmap { va, len } => slot
                        .ops
                        .borrow_mut()
                        .munmap(ctx, &mut mem, *va, *len)
                        .map(|()| WireResponse::Value(0)),
                    WireOp::Fault { va } => slot
                        .ops
                        .borrow_mut()
                        .fault(ctx, &mut mem, *va)
                        .map(|()| WireResponse::Value(0)),
                    // `poll` answers with its dedicated variant: event bits
                    // are not a return value and never masquerade as one.
                    WireOp::Poll => slot.ops.borrow_mut().poll(ctx).map(WireResponse::Poll),
                    WireOp::Fasync { on } => slot
                        .ops
                        .borrow_mut()
                        .fasync(ctx, *on)
                        .map(|()| WireResponse::Value(0)),
                    WireOp::Release => {
                        let result = slot.ops.borrow_mut().release(ctx);
                        let _ = self.devfs.close(handle);
                        if let Some(state) = self.guests.get_mut(&guest.0) {
                            state.opens.remove(&request.handle);
                        }
                        result.map(|()| WireResponse::Value(0))
                    }
                    WireOp::Open { .. } => unreachable!("handled above"),
                };
                slot.env.set_current_guest(None);
                // Fast path: trailing deferred memory operations land as one
                // vectored hypercall before the response is posted. A flush
                // failure (grant violation in the batch) fails the whole op
                // — nothing was applied. The driver's own errno wins when
                // both fail.
                let flushed = mem.flush();
                match (result, flushed) {
                    (Ok(response), Ok(())) => Ok(response),
                    (Ok(_), Err(errno)) => Err(errno),
                    (Err(errno), _) => Err(errno),
                }
            }
        }
    }

    /// Routes asynchronous notifications from a driver to the guests whose
    /// tasks subscribed (§5.1). Input-class notifications only reach the
    /// foreground guest. Returns how many were forwarded.
    pub fn deliver_signals(&mut self, device: DeviceId, signals: &[Signal]) -> usize {
        let Some(slot) = self.devices.get(&device.0) else {
            return 0;
        };
        let input_filtered =
            slot.class == DeviceClass::Input || slot.policy == SharingPolicy::ForegroundInput;
        let foreground = self
            .terminals
            .as_ref()
            .map(|t| t.borrow().foreground());
        let mut forwarded = 0;
        for signal in signals {
            let Some(&guest) = self.task_origin.get(&signal.task.0) else {
                continue; // host-local subscriber; the kernel signals it directly
            };
            if input_filtered {
                if let Some(fg) = foreground {
                    if fg != guest {
                        continue;
                    }
                }
            }
            if let Some(state) = self.guests.get(&guest.0) {
                let wire = WireSignal {
                    task: signal.task.0,
                    handle: signal.handle.0,
                };
                if state.channel.borrow_mut().send_notification(wire).is_ok() {
                    forwarded += 1;
                }
            }
        }
        forwarded
    }

    /// Resolves the device behind a backend handle (machine plumbing):
    /// scans the per-guest tables, since handle ids are globally unique.
    pub fn device_of_handle(&self, handle: u64) -> Option<DeviceId> {
        self.guests
            .values()
            .find_map(|state| state.opens.get(&handle).map(|open| open.device))
    }

    /// The kernel environment of a device (machine plumbing for device
    /// models that need the thread mark, e.g. injecting input events).
    pub fn env_of_device(&self, device: DeviceId) -> Option<Rc<KernelEnv>> {
        self.devices.get(&device.0).map(|slot| slot.env.clone())
    }

    /// Validates `va` for map targets as a defence-in-depth check and
    /// records suspicious addresses.
    pub fn audit_bad_map_target(&mut self, guest: VmId, va: GuestVirtAddr) {
        self.hv
            .borrow_mut()
            .record_audit(AuditEvent::BadMapTarget { guest, va });
    }
}
