//! The device-class-agnostic fair-share queue discipline.
//!
//! ISSUE 10 promoted fair-share device scheduling from a GPU ablation knob
//! to the *default* discipline everywhere the backend chooses which
//! guest's queued work to serve next: the GPU command-queue scheduler
//! ([`GpuSched::FairShare`](paradice_drivers::gpu::model::GpuSched)), the
//! virtual-time backend's cross-guest drain, and both multi-guest
//! execution substrates ([`crate::multi`]). This module is the shared
//! kernel of that discipline, independent of device class, substrate, and
//! clock: it only ever sees guest ids, arrival order, and consumed
//! service time.
//!
//! # Invariants
//!
//! * **Fairness.** Under [`SchedPolicy::FairShare`] the next guest served
//!   is a backlogged guest with the *least consumed service time* (ties
//!   broken by arrival order, so the discipline degrades to FIFO between
//!   equally-consuming guests). A light guest therefore waits for at most
//!   one in-service operation plus its own, no matter how deep a heavy
//!   neighbor's backlog is — the 100.6 ms → 10.6 ms light-guest result of
//!   the GPU ablation, generalized.
//! * **No starvation.** Every queued operation is eventually served: a
//!   backlogged guest's consumed time is frozen while it waits, while
//!   every service charges the served guest, so any guest that keeps
//!   getting picked eventually consumes past the waiter. FIFO order is
//!   preserved *within* each guest — the scheduler picks guests, never
//!   reorders one guest's queue.
//! * **Bounded memory.** Consumed-time accounting lives here, one `u64`
//!   per guest that ever queued; queue *contents* stay with the caller,
//!   whose per-guest wait-queue caps (backpressure, [`crate::multi`];
//!   `EDQUOT`, [`crate::backend`]) bound them.

use std::collections::BTreeMap;

/// Which discipline [`FairSched::pick`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Global arrival order across all guests (the pre-ISSUE-10 default;
    /// kept as the ablation's toggle-back knob).
    Fifo,
    /// Least consumed service time first, arrival order as tie-break
    /// (the default).
    #[default]
    FairShare,
}

impl SchedPolicy {
    /// Human-readable name (bench labels).
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::FairShare => "fair-share",
        }
    }
}

/// Per-guest service-time accounting plus the pick rule. Device- and
/// substrate-agnostic: callers present the backlogged guests with the
/// arrival stamp of each guest's *oldest* queued item, and charge actual
/// service time (virtual or wall ns) after serving.
#[derive(Debug, Default)]
pub struct FairSched {
    policy: SchedPolicy,
    consumed: BTreeMap<u32, u64>,
}

impl FairSched {
    /// A scheduler applying `policy`.
    pub fn new(policy: SchedPolicy) -> FairSched {
        FairSched {
            policy,
            consumed: BTreeMap::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Picks the next guest to serve from `backlogged`, an iterator of
    /// `(guest, oldest_arrival)` pairs — one entry per guest with queued
    /// work, stamped with the arrival sequence of that guest's oldest
    /// item. Returns `None` when nothing is backlogged.
    pub fn pick(&self, backlogged: impl Iterator<Item = (u32, u64)>) -> Option<u32> {
        match self.policy {
            SchedPolicy::Fifo => backlogged.min_by_key(|&(_, arrival)| arrival),
            SchedPolicy::FairShare => {
                backlogged.min_by_key(|&(guest, arrival)| (self.consumed(guest), arrival))
            }
        }
        .map(|(guest, _)| guest)
    }

    /// Charges `ns` of service time to `guest` after serving one of its
    /// operations.
    pub fn charge(&mut self, guest: u32, ns: u64) {
        *self.consumed.entry(guest).or_insert(0) += ns;
    }

    /// Total service time charged to `guest`.
    pub fn consumed(&self, guest: u32) -> u64 {
        self.consumed.get(&guest).copied().unwrap_or(0)
    }

    /// Forgets a departed guest's accounting.
    pub fn forget(&mut self, guest: u32) {
        self.consumed.remove(&guest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_picks_global_arrival_order() {
        let sched = FairSched::new(SchedPolicy::Fifo);
        let picked = sched.pick([(7, 3), (2, 1), (5, 2)].into_iter());
        assert_eq!(picked, Some(2));
    }

    #[test]
    fn fair_share_picks_least_consumed() {
        let mut sched = FairSched::new(SchedPolicy::FairShare);
        sched.charge(1, 1_000_000);
        sched.charge(2, 10);
        // Guest 3 never served: least consumed wins even though it
        // arrived last.
        let picked = sched.pick([(1, 1), (2, 2), (3, 3)].into_iter());
        assert_eq!(picked, Some(3));
    }

    #[test]
    fn fair_share_ties_break_by_arrival() {
        let sched = FairSched::new(SchedPolicy::FairShare);
        let picked = sched.pick([(9, 5), (4, 2)].into_iter());
        assert_eq!(picked, Some(4), "equal consumption degrades to FIFO");
    }

    /// The no-starvation argument, executed: a heavy guest with an
    /// always-full queue cannot shut out a light one, and vice versa —
    /// every queued item is served within a bounded number of picks.
    #[test]
    fn no_starvation_under_permanent_flood() {
        let mut sched = FairSched::new(SchedPolicy::FairShare);
        let mut served = BTreeMap::new();
        let mut arrival = 0u64;
        for _ in 0..1_000 {
            // Both guests always backlogged; the heavy guest's ops cost
            // 100x the light guest's.
            let picked = sched
                .pick([(1, arrival), (2, arrival + 1)].into_iter())
                .expect("backlogged");
            arrival += 2;
            let cost = if picked == 1 { 10_000 } else { 100 };
            sched.charge(picked, cost);
            *served.entry(picked).or_insert(0u64) += 1;
        }
        let heavy = served.get(&1).copied().unwrap_or(0);
        let light = served.get(&2).copied().unwrap_or(0);
        assert!(heavy > 0, "heavy guest starved");
        assert!(light > 0, "light guest starved");
        // Service time equalizes: the light guest gets ~100x the picks.
        assert!(light > heavy * 50, "light={light} heavy={heavy}");
        let diff = sched.consumed(1).abs_diff(sched.consumed(2));
        assert!(diff <= 10_000, "consumed time diverged by {diff}");
    }
}
