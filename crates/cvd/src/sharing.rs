//! Device-sharing policies between guest VMs.
//!
//! "We define the policies for how each device is shared. For GPU for
//! graphics, we adopt a foreground-background model … We assign each guest
//! VM to one of the virtual terminals of the driver VM, and the user can
//! easily navigate between them using simple key combinations. For input
//! devices, we only send notifications to the foreground guest VM. For GPU
//! for computation (GPGPU), we allow concurrent access from multiple guest
//! VMs. For camera and Ethernet card for netmap, we only allow access from
//! one guest VM at a time" (paper §5.1).

use paradice_hypervisor::VmId;

/// How a device is shared between guests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingPolicy {
    /// Only the foreground guest renders; others pause (GPU graphics).
    ForegroundBackground,
    /// All guests may use the device concurrently (GPGPU).
    Concurrent,
    /// One guest at a time (camera, netmap) — also enforced by the devfs
    /// exclusive-open policy.
    Exclusive,
    /// Events go to the foreground guest only (input devices).
    ForegroundInput,
}

/// The driver VM's virtual terminals: which guest is "on screen".
#[derive(Debug)]
pub struct VirtualTerminals {
    guests: Vec<VmId>,
    foreground: usize,
    switches: u64,
}

impl VirtualTerminals {
    /// Creates the terminal set; the first guest starts in the foreground.
    ///
    /// # Panics
    ///
    /// Panics on an empty guest list — a configuration error.
    pub fn new(guests: Vec<VmId>) -> Self {
        assert!(!guests.is_empty(), "need at least one guest terminal");
        VirtualTerminals {
            guests,
            foreground: 0,
            switches: 0,
        }
    }

    /// The guest currently in the foreground.
    pub fn foreground(&self) -> VmId {
        self.guests[self.foreground]
    }

    /// Whether `guest` is in the foreground (GPU graphics gate: background
    /// guests pause rendering).
    pub fn is_foreground(&self, guest: VmId) -> bool {
        self.foreground() == guest
    }

    /// Switches the foreground to `guest` (the user's key combination).
    ///
    /// Returns `false` if the guest has no terminal.
    pub fn switch_to(&mut self, guest: VmId) -> bool {
        match self.guests.iter().position(|&g| g == guest) {
            Some(index) => {
                if index != self.foreground {
                    self.foreground = index;
                    self.switches += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Cycles to the next terminal (Ctrl-Alt-Fn style).
    pub fn cycle(&mut self) -> VmId {
        self.foreground = (self.foreground + 1) % self.guests.len();
        self.switches += 1;
        self.foreground()
    }

    /// Number of terminal switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// All guests with terminals.
    pub fn guests(&self) -> &[VmId] {
        &self.guests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_guest_starts_foreground() {
        let vt = VirtualTerminals::new(vec![VmId(1), VmId(2)]);
        assert_eq!(vt.foreground(), VmId(1));
        assert!(vt.is_foreground(VmId(1)));
        assert!(!vt.is_foreground(VmId(2)));
    }

    #[test]
    fn switching_and_cycling() {
        let mut vt = VirtualTerminals::new(vec![VmId(1), VmId(2), VmId(3)]);
        assert!(vt.switch_to(VmId(3)));
        assert_eq!(vt.foreground(), VmId(3));
        assert_eq!(vt.cycle(), VmId(1));
        assert_eq!(vt.cycle(), VmId(2));
        assert_eq!(vt.switches(), 3);
        assert!(!vt.switch_to(VmId(9)));
        assert_eq!(vt.foreground(), VmId(2));
    }

    #[test]
    fn switch_to_current_is_not_counted() {
        let mut vt = VirtualTerminals::new(vec![VmId(1), VmId(2)]);
        assert!(vt.switch_to(VmId(1)));
        assert_eq!(vt.switches(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one guest")]
    fn empty_terminals_panic() {
        let _ = VirtualTerminals::new(vec![]);
    }
}
