//! The backend's [`MemOps`] binding: driver memory operations become
//! grant-checked hypercalls.
//!
//! "To support unmodified drivers, we provide wrapper stubs in the driver VM
//! kernel that intercept the driver's kernel function invocations for memory
//! operations and redirect them to the hypervisor through the aforementioned
//! API. … The backend then needs to attach the \[grant\] reference to every
//! request for the memory operations of that file operation" (paper §3.1,
//! §5.1). [`HypercallMemOps`] is that binding: one instance is constructed
//! per dispatched file operation, carrying the target guest, the process
//! page-table root, the grant reference, and the device's IOMMU domain (for
//! the data-isolation foreign-page check).

use paradice_devfs::{Errno, MemOps};
use paradice_drivers::env::hv_to_errno;
use paradice_hypervisor::{GrantRef, SharedHypervisor, VmId};
use paradice_mem::iommu::DomainId;
use paradice_mem::{Access, GuestPhysAddr, GuestVirtAddr};

/// The Paradice [`MemOps`]: every call is a hypercall from the driver VM,
/// validated against the guest's grant table (§4.1).
pub struct HypercallMemOps {
    hv: SharedHypervisor,
    driver_vm: VmId,
    guest: VmId,
    pt_root: GuestPhysAddr,
    grant: GrantRef,
    domain: Option<DomainId>,
}

impl std::fmt::Debug for HypercallMemOps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HypercallMemOps")
            .field("driver_vm", &self.driver_vm)
            .field("guest", &self.guest)
            .field("grant", &self.grant)
            .finish()
    }
}

impl HypercallMemOps {
    /// Binds one file operation's memory-operation context.
    pub fn new(
        hv: SharedHypervisor,
        driver_vm: VmId,
        guest: VmId,
        pt_root: GuestPhysAddr,
        grant: GrantRef,
        domain: Option<DomainId>,
    ) -> Self {
        HypercallMemOps {
            hv,
            driver_vm,
            guest,
            pt_root,
            grant,
            domain,
        }
    }
}

impl MemOps for HypercallMemOps {
    fn copy_from_user(&mut self, src: GuestVirtAddr, buf: &mut [u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .hc_copy_from_guest(self.driver_vm, self.guest, self.pt_root, src, buf, self.grant)
            .map_err(|e| hv_to_errno(&e))
    }

    fn copy_to_user(&mut self, dst: GuestVirtAddr, buf: &[u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .hc_copy_to_guest(self.driver_vm, self.guest, self.pt_root, dst, buf, self.grant)
            .map_err(|e| hv_to_errno(&e))
    }

    fn insert_pfn(&mut self, va: GuestVirtAddr, pfn: u64, access: Access) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .hc_insert_pfn(
                self.driver_vm,
                self.guest,
                self.pt_root,
                va,
                pfn,
                access,
                self.grant,
                self.domain,
            )
            .map_err(|e| hv_to_errno(&e))
    }

    fn zap_pfn(&mut self, va: GuestVirtAddr) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .hc_zap_page(self.driver_vm, self.guest, self.pt_root, va, self.grant)
            .map_err(|e| hv_to_errno(&e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_hypervisor::hv::Hypervisor;
    use paradice_hypervisor::vm::VmRole;
    use paradice_hypervisor::{CostModel, MemOpGrant, SimClock};
    use paradice_mem::pagetable::GuestPageTables;
    use paradice_mem::PAGE_SIZE;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn granted_ops_execute_and_ungranted_fail() {
        let mut hv = Hypervisor::new(1024, SimClock::new(), CostModel::default());
        let guest = hv.create_vm(VmRole::Guest, 64 * PAGE_SIZE).unwrap();
        let driver = hv.create_vm(VmRole::Driver, 16 * PAGE_SIZE).unwrap();
        let mut pt = {
            let mut space = hv.gpa_space(guest);
            GuestPageTables::new(&mut space).unwrap()
        };
        {
            let mut space = hv.gpa_space(guest);
            pt.map(
                &mut space,
                GuestVirtAddr::new(0x1000),
                paradice_mem::GuestPhysAddr::new(0x1000),
                Access::RW,
            )
            .unwrap();
        }
        let grant = hv
            .declare_grants(
                guest,
                vec![MemOpGrant::CopyToGuest {
                    addr: GuestVirtAddr::new(0x1000),
                    len: 64,
                }],
            )
            .unwrap();
        let shared = Rc::new(RefCell::new(hv));
        let mut memops = HypercallMemOps::new(
            shared.clone(),
            driver,
            guest,
            pt.root(),
            grant,
            None,
        );
        memops
            .copy_to_user(GuestVirtAddr::new(0x1000), b"ok")
            .unwrap();
        // Reads were never granted.
        let mut buf = [0u8; 2];
        assert_eq!(
            memops.copy_from_user(GuestVirtAddr::new(0x1000), &mut buf),
            Err(Errno::Efault)
        );
        // The violation was audited.
        assert_eq!(shared.borrow().audit().len(), 1);
    }
}
