//! The backend's [`MemOps`] binding: driver memory operations become
//! grant-checked hypercalls.
//!
//! "To support unmodified drivers, we provide wrapper stubs in the driver VM
//! kernel that intercept the driver's kernel function invocations for memory
//! operations and redirect them to the hypervisor through the aforementioned
//! API. … The backend then needs to attach the \[grant\] reference to every
//! request for the memory operations of that file operation" (paper §3.1,
//! §5.1). [`HypercallMemOps`] is that binding: one instance is constructed
//! per dispatched file operation, carrying the target guest, the process
//! page-table root, the grant reference, and the device's IOMMU domain (for
//! the data-isolation foreign-page check).

use paradice_devfs::{Errno, MemOps};
use paradice_drivers::env::hv_to_errno;
use paradice_hypervisor::{BatchMemOp, BatchMemOpResult, GrantRef, SharedHypervisor, VmId};
use paradice_mem::iommu::DomainId;
use paradice_mem::{Access, GuestPhysAddr, GuestVirtAddr};

/// The Paradice [`MemOps`]: every call is a hypercall from the driver VM,
/// validated against the guest's grant table (§4.1).
pub struct HypercallMemOps {
    hv: SharedHypervisor,
    driver_vm: VmId,
    guest: VmId,
    pt_root: GuestPhysAddr,
    grant: GrantRef,
    domain: Option<DomainId>,
}

impl std::fmt::Debug for HypercallMemOps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HypercallMemOps")
            .field("driver_vm", &self.driver_vm)
            .field("guest", &self.guest)
            .field("grant", &self.grant)
            .finish()
    }
}

impl HypercallMemOps {
    /// Binds one file operation's memory-operation context.
    pub fn new(
        hv: SharedHypervisor,
        driver_vm: VmId,
        guest: VmId,
        pt_root: GuestPhysAddr,
        grant: GrantRef,
        domain: Option<DomainId>,
    ) -> Self {
        HypercallMemOps {
            hv,
            driver_vm,
            guest,
            pt_root,
            grant,
            domain,
        }
    }
}

impl MemOps for HypercallMemOps {
    fn copy_from_user(&mut self, src: GuestVirtAddr, buf: &mut [u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .hc_copy_from_guest(self.driver_vm, self.guest, self.pt_root, src, buf, self.grant)
            .map_err(|e| hv_to_errno(&e))
    }

    fn copy_to_user(&mut self, dst: GuestVirtAddr, buf: &[u8]) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .hc_copy_to_guest(self.driver_vm, self.guest, self.pt_root, dst, buf, self.grant)
            .map_err(|e| hv_to_errno(&e))
    }

    fn insert_pfn(&mut self, va: GuestVirtAddr, pfn: u64, access: Access) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .hc_insert_pfn(
                self.driver_vm,
                self.guest,
                self.pt_root,
                va,
                pfn,
                access,
                self.grant,
                self.domain,
            )
            .map_err(|e| hv_to_errno(&e))
    }

    fn zap_pfn(&mut self, va: GuestVirtAddr) -> Result<(), Errno> {
        self.hv
            .borrow_mut()
            .hc_zap_page(self.driver_vm, self.guest, self.pt_root, va, self.grant)
            .map_err(|e| hv_to_errno(&e))
    }
}

/// Fast-path [`MemOps`]: defers driver memory operations and flushes them
/// as **one** vectored `hv_memops_batch` hypercall.
///
/// Guest-visible writes (`copy_to_user`, `insert_pfn`, `zap_pfn`) are queued
/// rather than issued immediately. A `copy_from_user` appends the read to the
/// queue and flushes the whole batch — the hypervisor applies the batch in
/// order, so the read observes any queued writes (no read-after-write
/// hazard). The dispatcher must call [`BatchedMemOps::flush`] when the file
/// operation returns so trailing writes land before the response is posted.
///
/// Semantics differ from [`HypercallMemOps`] in exactly one observable way:
/// the batch is validated atomically, so if *any* queued op violates the
/// grant envelope, **none** of them apply (all-or-nothing, ISSUE 5 tentpole
/// 2). A partially-applied wild batch can never leak into the guest.
pub struct BatchedMemOps {
    hv: SharedHypervisor,
    driver_vm: VmId,
    guest: VmId,
    pt_root: GuestPhysAddr,
    grant: GrantRef,
    domain: Option<DomainId>,
    pending: Vec<BatchMemOp>,
}

impl std::fmt::Debug for BatchedMemOps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedMemOps")
            .field("driver_vm", &self.driver_vm)
            .field("guest", &self.guest)
            .field("grant", &self.grant)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl BatchedMemOps {
    /// Binds one file operation's memory-operation context, batched.
    pub fn new(
        hv: SharedHypervisor,
        driver_vm: VmId,
        guest: VmId,
        pt_root: GuestPhysAddr,
        grant: GrantRef,
        domain: Option<DomainId>,
    ) -> Self {
        BatchedMemOps {
            hv,
            driver_vm,
            guest,
            pt_root,
            grant,
            domain,
            pending: Vec::new(),
        }
    }

    /// Number of queued, not-yet-issued operations.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Issues everything queued (plus an optional trailing read) as one
    /// vectored hypercall. Returns the trailing read's bytes, if any.
    fn issue(&mut self, tail: Option<BatchMemOp>) -> Result<Option<Vec<u8>>, Errno> {
        let mut ops = std::mem::take(&mut self.pending);
        let want_bytes = tail.is_some();
        if let Some(op) = tail {
            ops.push(op);
        }
        if ops.is_empty() {
            return Ok(None);
        }
        let mut results = self
            .hv
            .borrow_mut()
            .hv_memops_batch(
                self.driver_vm,
                self.guest,
                self.pt_root,
                self.grant,
                self.domain,
                ops,
            )
            .map_err(|e| hv_to_errno(&e))?;
        if want_bytes {
            match results.pop() {
                Some(BatchMemOpResult::Bytes(b)) => Ok(Some(b)),
                _ => Err(Errno::Efault),
            }
        } else {
            Ok(None)
        }
    }

    /// Flushes all queued operations; must run before the dispatch's
    /// response is posted. All-or-nothing on a grant violation.
    pub fn flush(&mut self) -> Result<(), Errno> {
        self.issue(None).map(|_| ())
    }
}

impl MemOps for BatchedMemOps {
    fn copy_from_user(&mut self, src: GuestVirtAddr, buf: &mut [u8]) -> Result<(), Errno> {
        let bytes = self
            .issue(Some(BatchMemOp::CopyFromGuest {
                src,
                len: buf.len() as u64,
            }))?
            .ok_or(Errno::Efault)?;
        if bytes.len() != buf.len() {
            return Err(Errno::Efault);
        }
        buf.copy_from_slice(&bytes);
        Ok(())
    }

    fn copy_to_user(&mut self, dst: GuestVirtAddr, buf: &[u8]) -> Result<(), Errno> {
        self.pending.push(BatchMemOp::CopyToGuest {
            dst,
            data: buf.to_vec(),
        });
        Ok(())
    }

    fn insert_pfn(&mut self, va: GuestVirtAddr, pfn: u64, access: Access) -> Result<(), Errno> {
        self.pending.push(BatchMemOp::InsertPfn {
            va,
            driver_pfn: pfn,
            access,
        });
        Ok(())
    }

    fn zap_pfn(&mut self, va: GuestVirtAddr) -> Result<(), Errno> {
        self.pending.push(BatchMemOp::ZapPage { va });
        Ok(())
    }
}

/// Either memory-operation binding, chosen per dispatch by the backend's
/// fast-path flag. Lets the dispatcher hold one concrete type.
#[derive(Debug)]
pub enum MemEngine {
    /// One hypercall per memory operation (the paper's baseline).
    Plain(HypercallMemOps),
    /// Deferred writes flushed as one vectored hypercall.
    Batched(BatchedMemOps),
}

impl MemEngine {
    /// Flushes any deferred operations (no-op for the plain engine).
    pub fn flush(&mut self) -> Result<(), Errno> {
        match self {
            MemEngine::Plain(_) => Ok(()),
            MemEngine::Batched(b) => b.flush(),
        }
    }
}

impl MemOps for MemEngine {
    fn copy_from_user(&mut self, src: GuestVirtAddr, buf: &mut [u8]) -> Result<(), Errno> {
        match self {
            MemEngine::Plain(m) => m.copy_from_user(src, buf),
            MemEngine::Batched(m) => m.copy_from_user(src, buf),
        }
    }

    fn copy_to_user(&mut self, dst: GuestVirtAddr, buf: &[u8]) -> Result<(), Errno> {
        match self {
            MemEngine::Plain(m) => m.copy_to_user(dst, buf),
            MemEngine::Batched(m) => m.copy_to_user(dst, buf),
        }
    }

    fn insert_pfn(&mut self, va: GuestVirtAddr, pfn: u64, access: Access) -> Result<(), Errno> {
        match self {
            MemEngine::Plain(m) => m.insert_pfn(va, pfn, access),
            MemEngine::Batched(m) => m.insert_pfn(va, pfn, access),
        }
    }

    fn zap_pfn(&mut self, va: GuestVirtAddr) -> Result<(), Errno> {
        match self {
            MemEngine::Plain(m) => m.zap_pfn(va),
            MemEngine::Batched(m) => m.zap_pfn(va),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_hypervisor::hv::Hypervisor;
    use paradice_hypervisor::vm::VmRole;
    use paradice_hypervisor::{CostModel, MemOpGrant, SimClock};
    use paradice_mem::pagetable::GuestPageTables;
    use paradice_mem::PAGE_SIZE;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn granted_ops_execute_and_ungranted_fail() {
        let mut hv = Hypervisor::new(1024, SimClock::new(), CostModel::default());
        let guest = hv.create_vm(VmRole::Guest, 64 * PAGE_SIZE).unwrap();
        let driver = hv.create_vm(VmRole::Driver, 16 * PAGE_SIZE).unwrap();
        let mut pt = {
            let mut space = hv.gpa_space(guest);
            GuestPageTables::new(&mut space).unwrap()
        };
        {
            let mut space = hv.gpa_space(guest);
            pt.map(
                &mut space,
                GuestVirtAddr::new(0x1000),
                paradice_mem::GuestPhysAddr::new(0x1000),
                Access::RW,
            )
            .unwrap();
        }
        let grant = hv
            .declare_grants(
                guest,
                vec![MemOpGrant::CopyToGuest {
                    addr: GuestVirtAddr::new(0x1000),
                    len: 64,
                }],
            )
            .unwrap();
        let shared = Rc::new(RefCell::new(hv));
        let mut memops = HypercallMemOps::new(
            shared.clone(),
            driver,
            guest,
            pt.root(),
            grant,
            None,
        );
        memops
            .copy_to_user(GuestVirtAddr::new(0x1000), b"ok")
            .unwrap();
        // Reads were never granted.
        let mut buf = [0u8; 2];
        assert_eq!(
            memops.copy_from_user(GuestVirtAddr::new(0x1000), &mut buf),
            Err(Errno::Efault)
        );
        // The violation was audited.
        assert_eq!(shared.borrow().audit().len(), 1);
    }

    fn batched_fixture() -> (SharedHypervisor, VmId, VmId, GuestPageTables) {
        let mut hv = Hypervisor::new(1024, SimClock::new(), CostModel::default());
        let guest = hv.create_vm(VmRole::Guest, 64 * PAGE_SIZE).unwrap();
        let driver = hv.create_vm(VmRole::Driver, 16 * PAGE_SIZE).unwrap();
        let mut pt = {
            let mut space = hv.gpa_space(guest);
            GuestPageTables::new(&mut space).unwrap()
        };
        {
            let mut space = hv.gpa_space(guest);
            pt.map(
                &mut space,
                GuestVirtAddr::new(0x1000),
                paradice_mem::GuestPhysAddr::new(0x1000),
                Access::RW,
            )
            .unwrap();
        }
        (Rc::new(RefCell::new(hv)), guest, driver, pt)
    }

    #[test]
    fn batched_writes_defer_until_flush_and_cost_one_hypercall() {
        let (shared, guest, driver, pt) = batched_fixture();
        let grant = shared
            .borrow_mut()
            .declare_grants(
                guest,
                vec![MemOpGrant::CopyToGuest {
                    addr: GuestVirtAddr::new(0x1000),
                    len: 64,
                }],
            )
            .unwrap();
        let mut memops =
            BatchedMemOps::new(shared.clone(), driver, guest, pt.root(), grant, None);
        memops.copy_to_user(GuestVirtAddr::new(0x1000), b"aa").unwrap();
        memops.copy_to_user(GuestVirtAddr::new(0x1010), b"bb").unwrap();
        assert_eq!(memops.pending_len(), 2);
        // Nothing reached guest memory yet.
        let mut probe = [0u8; 2];
        shared
            .borrow_mut()
            .process_read(guest, pt.root(), GuestVirtAddr::new(0x1000), &mut probe)
            .unwrap();
        assert_eq!(&probe, &[0, 0]);
        let before = shared.borrow().hypercall_count();
        memops.flush().unwrap();
        assert_eq!(shared.borrow().hypercall_count() - before, 1);
        shared
            .borrow_mut()
            .process_read(guest, pt.root(), GuestVirtAddr::new(0x1010), &mut probe)
            .unwrap();
        assert_eq!(&probe, b"bb");
        // An empty flush is free.
        memops.flush().unwrap();
        assert_eq!(shared.borrow().hypercall_count() - before, 1);
    }

    #[test]
    fn batched_read_observes_queued_writes_in_the_same_hypercall() {
        let (shared, guest, driver, pt) = batched_fixture();
        let grant = shared
            .borrow_mut()
            .declare_grants(
                guest,
                vec![
                    MemOpGrant::CopyToGuest {
                        addr: GuestVirtAddr::new(0x1000),
                        len: 64,
                    },
                    MemOpGrant::CopyFromGuest {
                        addr: GuestVirtAddr::new(0x1000),
                        len: 64,
                    },
                ],
            )
            .unwrap();
        let mut memops =
            BatchedMemOps::new(shared.clone(), driver, guest, pt.root(), grant, None);
        memops
            .copy_to_user(GuestVirtAddr::new(0x1000), b"ordered")
            .unwrap();
        let before = shared.borrow().hypercall_count();
        let mut buf = [0u8; 7];
        memops.copy_from_user(GuestVirtAddr::new(0x1000), &mut buf).unwrap();
        assert_eq!(&buf, b"ordered", "read-after-write within one batch");
        assert_eq!(shared.borrow().hypercall_count() - before, 1);
        assert_eq!(memops.pending_len(), 0);
    }

    #[test]
    fn batched_flush_is_all_or_nothing_on_violation() {
        let (shared, guest, driver, pt) = batched_fixture();
        let grant = shared
            .borrow_mut()
            .declare_grants(
                guest,
                vec![MemOpGrant::CopyToGuest {
                    addr: GuestVirtAddr::new(0x1000),
                    len: 8,
                }],
            )
            .unwrap();
        let mut memops =
            BatchedMemOps::new(shared.clone(), driver, guest, pt.root(), grant, None);
        memops.copy_to_user(GuestVirtAddr::new(0x1000), b"ok").unwrap();
        // Out of envelope: poisons the whole batch.
        memops.copy_to_user(GuestVirtAddr::new(0x1800), b"wild").unwrap();
        assert_eq!(memops.flush(), Err(Errno::Efault));
        let mut probe = [0u8; 2];
        shared
            .borrow_mut()
            .process_read(guest, pt.root(), GuestVirtAddr::new(0x1000), &mut probe)
            .unwrap();
        assert_eq!(&probe, &[0, 0], "granted sibling write must not apply");
        assert_eq!(shared.borrow().audit().len(), 1);
    }
}
