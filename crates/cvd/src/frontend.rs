//! The CVD frontend: the guest-side virtual device file.
//!
//! "We create a virtual device file inside the guest VM that mirrors the
//! actual device file. Applications in the guest VM issue file operations to
//! this virtual device file as if it were the real one" (paper §3.1). Before
//! forwarding each operation, the frontend *declares its legitimate memory
//! operations* in the grant table (§4.1):
//!
//! * `read`/`write` — directly from the buffer arguments;
//! * `ioctl` — from the analyzer's static entries, by JIT-evaluating the
//!   extracted slice against the caller's own memory (nested copies), or —
//!   for commands absent from the table — from the `_IOC` command encoding;
//! * `mmap` — a `MapPages` window; the frontend also pre-creates all guest
//!   page-table levels except the last (§5.2);
//! * `munmap` — the guest kernel destroys its own leaf mappings first, then
//!   declares an `UnmapPages` window.
//!
//! OS personalities capture the paper's cross-OS result (§3.2.2/§5.1): the
//! file-operation list differs slightly per kernel (14 LoC to support a new
//! Linux), and FreeBSD needs a 12-LoC hook to pass the `mmap` address range
//! to the frontend.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use paradice_analyzer::extract::{AddrTemplate, Extraction, HandlerReport};
use paradice_analyzer::ir::OpKind;
use paradice_analyzer::jit::{evaluate_slice, UserReader};
use paradice_devfs::fileops::{FileOpKind, OpenFlags, PollEvents, TaskId};
use paradice_devfs::ioc::IoctlCmd;
use paradice_devfs::Errno;
use paradice_hypervisor::{ChannelError, ChannelStats, GrantRef, MemOpGrant, SharedHypervisor, VmId};
use paradice_mem::pagetable::GuestPageTables;
use paradice_mem::{Access, GuestVirtAddr, PAGE_SIZE};
use paradice_trace::{SpanId, TraceEvent, TraceGrant, TraceOpKind, Tracer, WireDelta};

use crate::backend::SharedBackend;
use crate::cache::{Eviction, GrantCache, GrantCacheKey};
use crate::proto::{CvdChannel, WireOp, WireRequest, WireResponse};

/// Default per-operation watchdog deadline on the virtual clock (50 ms).
///
/// Far above any legitimate forwarding cost (an interrupt round trip is
/// ~35 µs, §6.2) yet short enough that a guest process blocked on a dead
/// driver unblocks promptly with `ETIMEDOUT` (§7.1).
pub const DEFAULT_OP_DEADLINE_NS: u64 = 50_000_000;

/// The guest OS flavor a frontend is built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsPersonality {
    /// Linux with the given kernel version.
    Linux {
        /// Major version (2 or 3 in the paper's deployment).
        major: u8,
        /// Minor version.
        minor: u8,
        /// Patch level.
        patch: u8,
    },
    /// FreeBSD 9-era.
    FreeBsd,
}

impl OsPersonality {
    /// The paper's Linux 2.6.35 guest.
    pub const LINUX_2_6_35: OsPersonality = OsPersonality::Linux {
        major: 2,
        minor: 6,
        patch: 35,
    };
    /// The paper's Linux 3.2.0 guest/driver VM.
    pub const LINUX_3_2_0: OsPersonality = OsPersonality::Linux {
        major: 3,
        minor: 2,
        patch: 0,
    };

    /// The kernel's possible file operations — "we added only 14 LoC to the
    /// CVD to update the list of all possible file operations based on the
    /// new kernel" (§5.1). The core set used by device drivers is identical
    /// everywhere; 3.x adds `fallocate` to `file_operations`.
    pub fn supported_ops(self) -> Vec<FileOpKind> {
        let mut ops = vec![
            FileOpKind::Open,
            FileOpKind::Release,
            FileOpKind::Read,
            FileOpKind::Write,
            FileOpKind::Ioctl,
            FileOpKind::Mmap,
            FileOpKind::Fault,
            FileOpKind::Poll,
            FileOpKind::Fasync,
            FileOpKind::Llseek,
            FileOpKind::Flush,
            FileOpKind::Fsync,
        ];
        match self {
            OsPersonality::Linux { major, .. } if major >= 3 => {
                ops.push(FileOpKind::CompatIoctl);
                ops.push(FileOpKind::Fallocate);
            }
            OsPersonality::Linux { .. } => ops.push(FileOpKind::CompatIoctl),
            OsPersonality::FreeBsd => {}
        }
        ops
    }

    /// Whether this kernel passes the `mmap` range implicitly (Linux) or
    /// needs the explicit 12-LoC hook (FreeBSD, §5.1).
    pub fn needs_mmap_hook(self) -> bool {
        self == OsPersonality::FreeBsd
    }
}

/// What the frontend knows about a device's ioctl commands: the analyzer's
/// per-command extraction ("static entries in a source file that is included
/// in the CVD frontend", §4.1).
#[derive(Debug, Clone)]
pub struct IoctlKnowledge {
    report: Option<Rc<HandlerReport>>,
}

impl IoctlKnowledge {
    /// Knowledge from an analyzer report.
    pub fn from_report(report: HandlerReport) -> Self {
        IoctlKnowledge {
            report: Some(Rc::new(report)),
        }
    }

    /// No analysis available: fall back to `_IOC` parsing for every command
    /// (sufficient for drivers whose ioctls only copy their parameter
    /// struct, like UVC, §4.1).
    pub fn ioc_only() -> Self {
        IoctlKnowledge { report: None }
    }

    /// Derives the legitimate memory operations of `ioctl(cmd, arg)`.
    ///
    /// # Errors
    ///
    /// `EFAULT` if JIT evaluation cannot read the caller's memory (the
    /// operation would fault in the driver anyway).
    pub fn grants_for(
        &self,
        cmd: IoctlCmd,
        arg: u64,
        reader: &mut dyn UserReader,
    ) -> Result<Vec<MemOpGrant>, Errno> {
        if let Some(report) = &self.report {
            if let Some(extraction) = report.commands.get(&cmd.raw()) {
                return match extraction {
                    Extraction::Static(templates) => Ok(templates
                        .iter()
                        .map(|t| {
                            let addr = GuestVirtAddr::new(match t.addr {
                                AddrTemplate::Abs(a) => a,
                                AddrTemplate::ArgPlus(k) => arg.wrapping_add(k),
                            });
                            match t.kind {
                                OpKind::CopyFromUser => MemOpGrant::CopyFromGuest {
                                    addr,
                                    len: t.len,
                                },
                                OpKind::CopyToUser => MemOpGrant::CopyToGuest {
                                    addr,
                                    len: t.len,
                                },
                            }
                        })
                        .collect()),
                    Extraction::Jit { slice, .. } => {
                        let ops = evaluate_slice(slice, cmd.raw(), arg, reader)
                            .map_err(|_| Errno::Efault)?;
                        Ok(ops
                            .into_iter()
                            .map(|op| match op.kind {
                                OpKind::CopyFromUser => MemOpGrant::CopyFromGuest {
                                    addr: GuestVirtAddr::new(op.addr),
                                    len: op.len,
                                },
                                OpKind::CopyToUser => MemOpGrant::CopyToGuest {
                                    addr: GuestVirtAddr::new(op.addr),
                                    len: op.len,
                                },
                            })
                            .collect())
                    }
                };
            }
        }
        // Fallback: the `_IOC` encoding embeds size and direction (§4.1).
        let mut grants = Vec::new();
        let size = u64::from(cmd.size());
        if size > 0 {
            let addr = GuestVirtAddr::new(arg);
            if cmd.dir().copies_from_user() {
                grants.push(MemOpGrant::CopyFromGuest { addr, len: size });
            }
            if cmd.dir().copies_to_user() {
                grants.push(MemOpGrant::CopyToGuest { addr, len: size });
            }
        }
        Ok(grants)
    }
}

/// Reads the calling process's own memory for JIT grant derivation.
struct ProcessReader {
    hv: SharedHypervisor,
    guest: VmId,
    pt_root: paradice_mem::GuestPhysAddr,
}

impl UserReader for ProcessReader {
    fn read_user(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), ()> {
        self.hv
            .borrow_mut()
            .process_read(self.guest, self.pt_root, GuestVirtAddr::new(addr), buf)
            .map_err(|_| ())
    }
}

#[derive(Debug, Clone)]
struct OpenFile {
    backend_handle: u64,
    path: String,
}

/// Per-operation metadata stamped on the `OpStart` trace event.
#[derive(Debug, Clone)]
struct OpTrace {
    device: String,
    kind: TraceOpKind,
    cmd: Option<u32>,
    addr: Option<u64>,
    len: Option<u64>,
}

impl OpTrace {
    fn new(device: String, kind: TraceOpKind) -> Self {
        OpTrace {
            device,
            kind,
            cmd: None,
            addr: None,
            len: None,
        }
    }

    fn range(mut self, addr: u64, len: u64) -> Self {
        self.addr = Some(addr);
        self.len = Some(len);
        self
    }

    fn cmd(mut self, cmd: u32) -> Self {
        self.cmd = Some(cmd);
        self
    }
}

/// Mirrors a declared grant into its trace representation.
fn trace_grant(grant: &MemOpGrant) -> TraceGrant {
    match *grant {
        MemOpGrant::CopyFromGuest { addr, len } => TraceGrant::CopyFromGuest {
            addr: addr.raw(),
            len,
        },
        MemOpGrant::CopyToGuest { addr, len } => TraceGrant::CopyToGuest {
            addr: addr.raw(),
            len,
        },
        MemOpGrant::MapPages { va, pages, access } => TraceGrant::MapPages {
            va: va.raw(),
            pages,
            access: access.bits(),
        },
        MemOpGrant::UnmapPages { va, pages } => TraceGrant::UnmapPages {
            va: va.raw(),
            pages,
        },
    }
}

/// A device mapping the frontend has forwarded: needed to derive grants for
/// page faults in lazily-populated mappings (§2.1's "supporting page fault
/// handler").
#[derive(Debug, Clone, Copy)]
struct Vma {
    fd: u64,
    va: GuestVirtAddr,
    len: u64,
    access: Access,
}

/// Frontend statistics (development-effort and overhead reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// File operations forwarded.
    pub ops_forwarded: u64,
    /// Grants declared.
    pub grants_declared: u64,
    /// Ioctls whose grants came from JIT evaluation.
    pub jit_evaluations: u64,
    /// Declare hypercalls skipped because the grant-declaration cache held
    /// a live reference for the identical op shape (fast path).
    pub grant_cache_hits: u64,
}

/// Capacity of the grant-declaration cache, comfortably under the
/// hypervisor's per-guest grant-table capacity so transient per-op
/// declarations always have room. Public so eviction tests can fill the
/// cache to exactly this many shapes.
pub const GRANT_CACHE_CAP: usize = 64;

/// Ring depth the fast path asks of the channel (clamped by the channel to
/// what the shared page supports).
const FASTPATH_RING_DEPTH: usize = 8;

/// First half-open retry window after the breaker trips (virtual ns).
/// Four watchdog deadlines: long enough that a freshly-contained driver VM
/// is never probed while the guest is still timing out, short enough that a
/// recovered VM is rediscovered without an explicit frontend reset.
pub const BREAKER_BASE_BACKOFF_NS: u64 = 4 * DEFAULT_OP_DEADLINE_NS;

/// Ceiling on the exponential backoff (16× the base window).
pub const BREAKER_MAX_BACKOFF_NS: u64 = 16 * BREAKER_BASE_BACKOFF_NS;

/// The watchdog circuit breaker (§7.1) as a half-open state machine.
///
/// `Closed` forwards normally. A trip opens the breaker for an
/// exponentially growing backoff window on the virtual clock: inside the
/// window every op fails fast (`EIO`, nothing forwarded). At expiry, if the
/// hypervisor still reports the driver VM failed the breaker re-opens with
/// a doubled window (probing a known-dead VM cannot succeed — its
/// hypercalls are refused); otherwise the next synchronous op runs as the
/// `HalfOpen` probe, whose outcome closes the breaker (and resets the
/// backoff) or re-trips it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Forwarding normally.
    Closed,
    /// Failing fast until `until_ns` on the virtual clock.
    Open {
        /// End of the current backoff window.
        until_ns: u64,
    },
    /// One probe op is in flight; its outcome settles the breaker.
    HalfOpen,
}

/// An operation posted to the ring whose response has not been taken yet.
#[derive(Debug)]
struct PendingOp {
    span: SpanId,
    start_ns: u64,
    stats_before: ChannelStats,
    grant: Option<GrantRef>,
    /// `true` when the grant reference lives in the cache and must survive
    /// this op's completion; `false` means per-op declare → revoke.
    cache_owned: bool,
}

/// The CVD frontend for one guest VM.
pub struct Frontend {
    hv: SharedHypervisor,
    guest: VmId,
    personality: OsPersonality,
    channel: Rc<RefCell<CvdChannel>>,
    backend: SharedBackend,
    knowledge: BTreeMap<String, Rc<IoctlKnowledge>>,
    open: BTreeMap<u64, OpenFile>,
    backend_to_local: BTreeMap<u64, u64>,
    next_fd: u64,
    /// The FreeBSD 12-LoC hook's state: the VA range of the next `mmap`.
    pending_mmap_range: Option<(GuestVirtAddr, u64)>,
    /// Forwarded device mappings, for fault-grant derivation.
    vmas: Vec<Vma>,
    stats: FrontendStats,
    /// paradice-trace sink; disabled by default (zero-cost path).
    tracer: Tracer,
    /// Watchdog deadline per forwarded operation (virtual nanoseconds).
    deadline_ns: u64,
    /// Circuit breaker: once the watchdog declares the driver VM dead,
    /// operations fail fast without forwarding until a half-open probe
    /// succeeds or the machine recovers the driver VM (§7.1).
    breaker: BreakerState,
    /// Current backoff window width; 0 while the breaker has never tripped
    /// since the last close, then doubling per re-trip up to the cap.
    breaker_backoff_ns: u64,
    /// Fast path enabled: grant-declaration cache + pipelined ring.
    fastpath: bool,
    /// Memoized grant declarations (fast path): op shape → live reference,
    /// with explicit ownership handoff on eviction (see [`crate::cache`]).
    grant_cache: GrantCache,
    /// Requests posted to the ring, awaiting their FIFO-ordered responses.
    pipeline: Vec<PendingOp>,
    /// Results of completed pipelined ops, handed out by `flush_pipeline`.
    completed: Vec<Result<i64, Errno>>,
}

impl std::fmt::Debug for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frontend")
            .field("guest", &self.guest)
            .field("personality", &self.personality)
            .field("open_files", &self.open.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Frontend {
    /// Creates a frontend for `guest` speaking to `backend` over `channel`.
    pub fn new(
        hv: SharedHypervisor,
        guest: VmId,
        personality: OsPersonality,
        channel: Rc<RefCell<CvdChannel>>,
        backend: SharedBackend,
    ) -> Self {
        Frontend {
            hv,
            guest,
            personality,
            channel,
            backend,
            knowledge: BTreeMap::new(),
            open: BTreeMap::new(),
            backend_to_local: BTreeMap::new(),
            next_fd: 3, // after stdio, for verisimilitude
            pending_mmap_range: None,
            vmas: Vec::new(),
            stats: FrontendStats::default(),
            tracer: Tracer::disabled(),
            deadline_ns: DEFAULT_OP_DEADLINE_NS,
            breaker: BreakerState::Closed,
            breaker_backoff_ns: 0,
            fastpath: false,
            grant_cache: GrantCache::new(GRANT_CACHE_CAP),
            pipeline: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// Enables or disables the fast path: the grant-declaration cache plus
    /// a multi-entry ring on the channel (one doorbell per batch). Turning
    /// it off revokes every cached declaration and restores the paper's
    /// single bounded slot.
    pub fn set_fastpath(&mut self, on: bool) {
        if self.fastpath && !on {
            // In-flight pipelined ops may still carry cache-owned refs;
            // complete them before revoking the cache, or the backend's
            // hypercalls for those ops would fail validation spuriously.
            // (The bounded-model checker's revocation model caught the
            // revoke-before-drain ordering; see `crates/verify`.)
            let _ = self.drain_pipeline();
            self.purge_grant_cache(true);
        }
        self.fastpath = on;
        self.channel
            .borrow_mut()
            .set_ring_depth(if on { FASTPATH_RING_DEPTH } else { 1 });
    }

    /// Whether the fast path is enabled.
    pub fn fastpath(&self) -> bool {
        self.fastpath
    }

    /// Live grant-cache entries (tests and overhead accounting).
    pub fn grant_cache_len(&self) -> usize {
        self.grant_cache.len()
    }

    /// Snapshot of this guest's channel statistics (bench reporting).
    pub fn channel_stats(&self) -> ChannelStats {
        self.channel.borrow().stats()
    }

    /// Drops every cached declaration. `revoke` issues the revoke
    /// hypercalls; failure/recovery paths pass `false` because
    /// `mark_driver_vm_failed` already revoked everything server-side and
    /// the cached references are stale.
    fn purge_grant_cache(&mut self, revoke: bool) {
        let refs = self.grant_cache.purge();
        if revoke {
            let mut hv = self.hv.borrow_mut();
            for grant in refs {
                let _ = hv.revoke_grant(self.guest, grant);
            }
        }
    }

    /// Trips the circuit breaker after driver-VM containment: cached grant
    /// references died with the VM's grant table, so the cache empties
    /// without revoke hypercalls. Each trip doubles the half-open backoff
    /// window (capped), starting from [`BREAKER_BASE_BACKOFF_NS`].
    fn trip_breaker(&mut self) {
        self.breaker_backoff_ns = match self.breaker_backoff_ns {
            0 => BREAKER_BASE_BACKOFF_NS,
            backoff => (backoff * 2).min(BREAKER_MAX_BACKOFF_NS),
        };
        let until_ns = self
            .hv
            .borrow()
            .clock()
            .now_ns()
            .saturating_add(self.breaker_backoff_ns);
        self.breaker = BreakerState::Open { until_ns };
        self.purge_grant_cache(false);
    }

    /// Closes the breaker after a successful half-open probe (or recovery):
    /// forwarding resumes and the backoff resets to the base window.
    fn close_breaker(&mut self) {
        self.breaker = BreakerState::Closed;
        self.breaker_backoff_ns = 0;
    }

    /// Admission control for one synchronous op: `Ok(false)` to forward
    /// normally, `Ok(true)` when this op is the half-open probe, `Err` to
    /// fail fast while the breaker holds.
    fn admit_op(&mut self) -> Result<bool, Errno> {
        let failed = self
            .hv
            .borrow()
            .driver_vm_failed(self.backend.borrow().driver_vm());
        match self.breaker {
            BreakerState::Closed => {
                if failed {
                    // The hypervisor learned of the failure first (another
                    // guest's watchdog, or a direct containment): trip
                    // without forwarding.
                    self.trip_breaker();
                    return Err(Errno::Eio);
                }
                Ok(false)
            }
            BreakerState::Open { until_ns } => {
                if self.hv.borrow().clock().now_ns() < until_ns {
                    return Err(Errno::Eio);
                }
                if failed {
                    // Backoff expired but the driver VM is still contained:
                    // a probe cannot succeed (its hypercalls are refused),
                    // so stay open with a doubled window.
                    self.trip_breaker();
                    return Err(Errno::Eio);
                }
                self.breaker = BreakerState::HalfOpen;
                Ok(true)
            }
            // Single-threaded frontends never re-enter here mid-probe, but
            // treat it as the probe if they do.
            BreakerState::HalfOpen => Ok(true),
        }
    }

    /// Overrides the per-operation watchdog deadline (virtual time).
    pub fn set_op_deadline_ns(&mut self, deadline_ns: u64) {
        self.deadline_ns = deadline_ns;
    }

    /// Whether the circuit breaker has tripped (operations fail fast).
    pub fn breaker_open(&self) -> bool {
        self.breaker != BreakerState::Closed
    }

    /// The current half-open backoff window width (0 = never tripped since
    /// the last close). Tests pin the exponential schedule through this.
    pub fn breaker_backoff_ns(&self) -> u64 {
        self.breaker_backoff_ns
    }

    /// Rebinds the frontend to a recovered driver VM: every guest-local
    /// descriptor is invalidated (backend handles died with the VM, so the
    /// guest must reopen, §7.1), device mappings are forgotten, the channel
    /// slots are cleared of stale bytes, and the circuit breaker closes.
    pub fn reset_after_recovery(&mut self) {
        self.open.clear();
        self.backend_to_local.clear();
        self.vmas.clear();
        self.pending_mmap_range = None;
        self.close_breaker();
        // Cached references died with the old driver VM's grant table; no
        // stale ref may survive recovery, and no revoke hypercalls are owed.
        self.purge_grant_cache(false);
        self.pipeline.clear();
        self.completed.clear();
        self.channel.borrow_mut().reset();
    }

    /// Installs the trace sink (shared with the hypervisor and the other
    /// frontends; see `Machine::enable_tracing`).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The guest this frontend serves.
    pub fn guest(&self) -> VmId {
        self.guest
    }

    /// The OS personality.
    pub fn personality(&self) -> OsPersonality {
        self.personality
    }

    /// Statistics so far.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    /// Installs analyzer knowledge for the device at `path` (the generated
    /// source file of §4.1).
    pub fn install_knowledge(&mut self, path: &str, knowledge: IoctlKnowledge) {
        self.knowledge.insert(path.to_owned(), Rc::new(knowledge));
    }

    /// The FreeBSD hook (§5.1): records the VA range of the upcoming `mmap`
    /// "since these addresses are needed by the Linux device driver and by
    /// the Paradice hypervisor API".
    pub fn freebsd_set_mmap_range(&mut self, va: GuestVirtAddr, len: u64) {
        self.pending_mmap_range = Some((va, len));
    }

    fn forward(&mut self, request: WireRequest) -> Result<WireResponse, Errno> {
        self.stats.ops_forwarded += 1;
        let was_open = matches!(request.op, WireOp::Open { .. });
        let (req_task, req_pt_root) = (request.task, request.pt_root);
        let start_ns = self.hv.borrow().clock().now_ns();
        self.channel
            .borrow_mut()
            .send_request(request)
            .map_err(|_| Errno::Eagain)?;
        self.backend.borrow_mut().handle_request(self.guest)?;
        let taken = self.channel.borrow_mut().take_response();
        match taken {
            Ok(response) => {
                // The watchdog measures *delivery* lag — time the response
                // sat in the slot after the backend posted it — not total
                // execution time: blocking operations (a GEM wait-idle, a
                // read on an idle device) may legitimately run longer than
                // any fixed deadline. A wedged driver never posts at all
                // and is caught by the `Empty` arm below.
                let lag = self
                    .hv
                    .borrow()
                    .clock()
                    .now_ns()
                    .saturating_sub(self.backend.borrow().last_post_ns());
                if lag > self.deadline_ns {
                    // The response arrived, but past the watchdog deadline:
                    // the guest kernel has already timed the call out. The
                    // driver is demonstrably alive (it answered), so no
                    // containment — just the errno.
                    if let (true, WireResponse::Value(handle)) = (was_open, &response) {
                        if *handle >= 0 {
                            // The open itself succeeded, after the caller
                            // gave up: release the orphaned backend handle
                            // so exclusive devices don't stay wedged.
                            let release = WireRequest {
                                task: req_task,
                                pt_root: req_pt_root,
                                handle: *handle as u64,
                                span: 0,
                                grant: None,
                                op: WireOp::Release,
                            };
                            if self.channel.borrow_mut().send_request(release).is_ok() {
                                let _ = self.backend.borrow_mut().handle_request(self.guest);
                                let _ = self.channel.borrow_mut().take_response();
                            }
                        }
                    }
                    return Err(Errno::Etimedout);
                }
                Ok(response)
            }
            Err(ChannelError::Empty) => {
                if self.backend.borrow().is_paused() {
                    // A paused backend is a test/diagnostic state queueing
                    // requests on purpose, not a dead driver: keep the
                    // legacy behaviour and do not trip the watchdog.
                    return Err(Errno::Eio);
                }
                // No response and the backend is live: a hung or dead
                // driver. Model the guest blocking until the watchdog
                // deadline on the virtual clock, then contain the driver
                // VM — grants revoked, further hypercalls refused — and
                // unblock the caller with ETIMEDOUT (§7.1).
                let waited = self
                    .hv
                    .borrow()
                    .clock()
                    .now_ns()
                    .saturating_sub(start_ns);
                self.hv
                    .borrow()
                    .clock()
                    .advance(self.deadline_ns.saturating_sub(waited));
                let driver_vm = self.backend.borrow().driver_vm();
                let _ = self.hv.borrow_mut().mark_driver_vm_failed(driver_vm);
                self.trip_breaker();
                Err(Errno::Etimedout)
            }
            Err(ChannelError::Malformed) => {
                // Garbage in the response slot: the driver VM is corrupted.
                // Contain it before its next move.
                let driver_vm = self.backend.borrow().driver_vm();
                let _ = self.hv.borrow_mut().mark_driver_vm_failed(driver_vm);
                self.trip_breaker();
                Err(Errno::Eio)
            }
            Err(_) => Err(Errno::Eio),
        }
    }

    fn declare(&mut self, ops: Vec<MemOpGrant>) -> Result<GrantRef, Errno> {
        self.stats.grants_declared += 1;
        self.hv
            .borrow_mut()
            .declare_grants(self.guest, ops)
            .map_err(|_| Errno::Enomem)
    }

    fn revoke(&mut self, grant: GrantRef) {
        let _ = self.hv.borrow_mut().revoke_grant(self.guest, grant);
    }

    /// The single declare → forward → revoke path every file operation
    /// rides, with span bookkeeping around it.
    ///
    /// `grants: Some(ops)` declares `ops` (even when empty — a grant
    /// reference is still allocated, matching the paper's per-operation
    /// grant lifecycle) and attaches the reference to the request;
    /// `None` forwards grant-free (open/release/poll/fasync).
    fn run_op(
        &mut self,
        task: TaskId,
        pt_root: paradice_mem::GuestPhysAddr,
        handle: u64,
        grants: Option<Vec<MemOpGrant>>,
        op: WireOp,
        trace: OpTrace,
    ) -> Result<WireResponse, Errno> {
        // Responses are FIFO-matched on the ring: any pipelined submissions
        // must complete before a synchronous op shares the channel.
        if !self.pipeline.is_empty() {
            self.drain_pipeline()?;
        }
        // Circuit breaker (§7.1): while the driver VM is down, fail fast —
        // no grant, no forwarding, no deadline wait — until a half-open
        // probe succeeds or the machine recovers the driver VM.
        let probing = self.admit_op()?;
        let enabled = self.tracer.is_enabled();
        let span = self.tracer.begin_span();
        let (start_ns, stats_before) = if enabled {
            let start_ns = self.hv.borrow().clock().now_ns();
            let stats = self.channel.borrow().stats();
            self.tracer.record(TraceEvent::OpStart {
                span,
                t_ns: start_ns,
                guest: u64::from(self.guest.0),
                task: task.0,
                handle,
                device: trace.device,
                op: trace.kind,
                cmd: trace.cmd,
                addr: trace.addr,
                len: trace.len,
            });
            (start_ns, stats)
        } else {
            (0, ChannelStats::default())
        };
        let (grant, cache_owned) = match grants {
            Some(ops) => {
                if enabled {
                    self.tracer.record(TraceEvent::Grants {
                        span,
                        grants: ops.iter().map(trace_grant).collect(),
                    });
                }
                match self.resolve_grant(handle, &op, ops, span, enabled) {
                    Ok(resolved) => resolved,
                    Err(errno) => {
                        self.trace_op_end(span, start_ns, stats_before, Err(errno));
                        return Err(errno);
                    }
                }
            }
            None => (None, false),
        };
        let result = self.forward(WireRequest {
            task: task.0,
            pt_root,
            handle,
            span: span.0,
            grant,
            op,
        });
        if probing {
            match (&result, self.breaker) {
                // Any answer — even an errno from the driver — proves the
                // driver VM is serving again: close and reset the backoff.
                (Ok(_), _) => self.close_breaker(),
                // The probe failed without containment (e.g. delivery past
                // the deadline): re-trip with a doubled window. A probe
                // that *did* contain already re-tripped inside `forward`.
                (Err(_), BreakerState::HalfOpen) => self.trip_breaker(),
                (Err(_), _) => {}
            }
        }
        self.trace_op_end(span, start_ns, stats_before, result);
        if let (Some(grant), false) = (grant, cache_owned) {
            self.revoke(grant);
        }
        result
    }

    /// Resolves the grant reference for one op: on the fast path, cacheable
    /// shapes (`read`/`write`/`ioctl`) reuse a memoized declaration when the
    /// full canonical grant set matches — skipping the declare hypercall —
    /// and a cold declare populates the cache (skipping the revoke). Every
    /// cached reference is still strictly validated by the hypervisor on
    /// each use. Returns `(grant, cache_owned)`.
    fn resolve_grant(
        &mut self,
        handle: u64,
        op: &WireOp,
        ops: Vec<MemOpGrant>,
        span: SpanId,
        enabled: bool,
    ) -> Result<(Option<GrantRef>, bool), Errno> {
        if self.fastpath {
            if let Some(key) = GrantCacheKey::for_op(self.guest.0, handle, op, &ops) {
                if let Some(grant) = self.grant_cache.lookup(&key) {
                    self.stats.grant_cache_hits += 1;
                    if enabled {
                        self.tracer.record(TraceEvent::GrantCache { span, hit: true });
                    }
                    return Ok((Some(grant), true));
                }
                let grant = self.declare(ops)?;
                let pipeline = &self.pipeline;
                let eviction = self.grant_cache.insert(key, grant, |evicted| {
                    pipeline.iter().any(|p| p.grant == Some(evicted))
                });
                match eviction {
                    Eviction::None => {}
                    Eviction::Revoke(evicted) => self.revoke(evicted),
                    // The evicted ref is still attached to in-flight
                    // pipelined ops: revoking now would fail their
                    // hypercalls mid-flight. Hand ownership to the *last*
                    // pending op using it — `drain_pipeline` revokes
                    // non-cache-owned grants after completion, and earlier
                    // ops sharing the ref stay `cache_owned` so only the
                    // final use revokes.
                    Eviction::Transfer(evicted) => {
                        if let Some(entry) = self
                            .pipeline
                            .iter_mut()
                            .rev()
                            .find(|p| p.grant == Some(evicted))
                        {
                            entry.cache_owned = false;
                        }
                    }
                }
                if enabled {
                    self.tracer.record(TraceEvent::GrantCache { span, hit: false });
                }
                return Ok((Some(grant), true));
            }
        }
        self.declare(ops).map(|grant| (Some(grant), false))
    }

    /// Closes a span: final result, duration, and the channel-stats delta
    /// the operation was responsible for.
    fn trace_op_end(
        &self,
        span: SpanId,
        start_ns: u64,
        stats_before: ChannelStats,
        outcome: Result<WireResponse, Errno>,
    ) {
        if !self.tracer.is_enabled() {
            return;
        }
        let end_ns = self.hv.borrow().clock().now_ns();
        let after = self.channel.borrow().stats();
        let (ok, value) = match outcome {
            Ok(WireResponse::Value(value)) => (true, value),
            Ok(WireResponse::Poll(events)) => (true, i64::from(events.bits())),
            Ok(WireResponse::Err(errno)) | Err(errno) => (false, -i64::from(errno.code())),
        };
        self.tracer.record(TraceEvent::OpEnd {
            span,
            t_ns: end_ns,
            ok,
            value,
            duration_ns: end_ns.saturating_sub(start_ns),
            wire: WireDelta {
                bytes_out: after.request_bytes - stats_before.request_bytes,
                bytes_in: (after.response_bytes + after.notification_bytes)
                    - (stats_before.response_bytes + stats_before.notification_bytes),
                deliveries: after.deliveries() - stats_before.deliveries(),
            },
        });
    }

    /// The device path for span labels, cloned only when tracing is live.
    fn trace_device(&self, path: &str) -> String {
        if self.tracer.is_enabled() {
            path.to_owned()
        } else {
            String::new()
        }
    }

    /// Opens the virtual device file mirroring `path`; returns a guest-local
    /// descriptor.
    ///
    /// # Errors
    ///
    /// Whatever the real driver/devfs returns (`ENOENT`, `EBUSY`, …).
    pub fn open(&mut self, task: TaskId, path: &str, flags: OpenFlags) -> Result<u64, Errno> {
        let trace = OpTrace::new(self.trace_device(path), TraceOpKind::Open);
        let backend_handle = self
            .run_op(
                task,
                paradice_mem::GuestPhysAddr::new(0),
                0,
                None,
                WireOp::Open {
                    path: path.to_owned(),
                    flags,
                },
                trace,
            )?
            .result()? as u64;
        let fd = self.next_fd;
        self.next_fd += 1;
        self.open.insert(
            fd,
            OpenFile {
                backend_handle,
                path: path.to_owned(),
            },
        );
        self.backend_to_local.insert(backend_handle, fd);
        Ok(fd)
    }

    fn file(&self, fd: u64) -> Result<&OpenFile, Errno> {
        self.open.get(&fd).ok_or(Errno::Ebadf)
    }

    /// Closes a guest-local descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF` for unknown descriptors.
    pub fn release(&mut self, task: TaskId, fd: u64) -> Result<(), Errno> {
        let file = self.file(fd)?.clone();
        let trace = OpTrace::new(self.trace_device(&file.path), TraceOpKind::Release);
        self.run_op(
            task,
            paradice_mem::GuestPhysAddr::new(0),
            file.backend_handle,
            None,
            WireOp::Release,
            trace,
        )?
        .result()?;
        self.open.remove(&fd);
        self.backend_to_local.remove(&file.backend_handle);
        // The handle is gone: any cached declarations for its op shapes are
        // dead weight — revoke and forget them. (`run_op` drained the
        // pipeline above, so none of these refs is in flight.)
        let stale = self
            .grant_cache
            .remove_matching(|key| key.handle == file.backend_handle);
        for grant in stale {
            self.revoke(grant);
        }
        Ok(())
    }

    /// Forwards `read`: declares the buffer as a `CopyToGuest` grant first.
    ///
    /// # Errors
    ///
    /// Driver errors, or `EFAULT` if the driver strayed outside the grant.
    pub fn read(
        &mut self,
        task: TaskId,
        pt: GuestPageTables,
        fd: u64,
        addr: GuestVirtAddr,
        len: u64,
    ) -> Result<u64, Errno> {
        let file = self.file(fd)?;
        let handle = file.backend_handle;
        let trace =
            OpTrace::new(self.trace_device(&file.path), TraceOpKind::Read).range(addr.raw(), len);
        self.run_op(
            task,
            pt.root(),
            handle,
            Some(vec![MemOpGrant::CopyToGuest { addr, len }]),
            WireOp::Read { addr, len },
            trace,
        )
        .and_then(WireResponse::result)
        .map(|n| n as u64)
    }

    /// Forwards `write`: declares the buffer as a `CopyFromGuest` grant.
    ///
    /// # Errors
    ///
    /// Driver errors or grant violations.
    pub fn write(
        &mut self,
        task: TaskId,
        pt: GuestPageTables,
        fd: u64,
        addr: GuestVirtAddr,
        len: u64,
    ) -> Result<u64, Errno> {
        let file = self.file(fd)?;
        let handle = file.backend_handle;
        let trace =
            OpTrace::new(self.trace_device(&file.path), TraceOpKind::Write).range(addr.raw(), len);
        self.run_op(
            task,
            pt.root(),
            handle,
            Some(vec![MemOpGrant::CopyFromGuest { addr, len }]),
            WireOp::Write { addr, len },
            trace,
        )
        .and_then(WireResponse::result)
        .map(|n| n as u64)
    }

    /// Forwards `ioctl`: grants derived from the analyzer table (static or
    /// JIT) or the `_IOC` encoding (§4.1).
    ///
    /// # Errors
    ///
    /// Driver errors or grant violations.
    pub fn ioctl(
        &mut self,
        task: TaskId,
        pt: GuestPageTables,
        fd: u64,
        cmd: IoctlCmd,
        arg: u64,
    ) -> Result<i64, Errno> {
        let file = self.file(fd)?;
        let handle = file.backend_handle;
        let trace = OpTrace::new(self.trace_device(&file.path), TraceOpKind::Ioctl)
            .cmd(cmd.raw())
            .range(arg, u64::from(cmd.size()));
        let knowledge = self
            .knowledge
            .get(&file.path)
            .cloned()
            .unwrap_or_else(|| Rc::new(IoctlKnowledge::ioc_only()));
        let is_jit = knowledge
            .report
            .as_ref()
            .and_then(|r| r.commands.get(&cmd.raw()))
            .is_some_and(|e| !e.is_static());
        if is_jit {
            self.stats.jit_evaluations += 1;
        }
        let mut reader = ProcessReader {
            hv: self.hv.clone(),
            guest: self.guest,
            pt_root: pt.root(),
        };
        let ops = knowledge.grants_for(cmd, arg, &mut reader)?;
        self.run_op(
            task,
            pt.root(),
            handle,
            Some(ops),
            WireOp::Ioctl { cmd, arg },
            trace,
        )
        .and_then(WireResponse::result)
    }

    /// Posts an `ioctl` to the ring **without waiting for its response**
    /// (fast path): grants are derived and declared (or served from the
    /// cache) exactly as [`Frontend::ioctl`], but the request only rides the
    /// doorbell of the batch it lands in. Collect results — FIFO-ordered —
    /// with [`Frontend::flush_pipeline`]. When the ring (or the shared
    /// page's byte budget) is full, the accumulated batch is flushed first.
    ///
    /// # Errors
    ///
    /// Submission errors only; per-op driver errors surface at flush.
    pub fn ioctl_pipelined(
        &mut self,
        task: TaskId,
        pt: GuestPageTables,
        fd: u64,
        cmd: IoctlCmd,
        arg: u64,
    ) -> Result<(), Errno> {
        let file = self.file(fd)?;
        let handle = file.backend_handle;
        let trace = OpTrace::new(self.trace_device(&file.path), TraceOpKind::Ioctl)
            .cmd(cmd.raw())
            .range(arg, u64::from(cmd.size()));
        let knowledge = self
            .knowledge
            .get(&file.path)
            .cloned()
            .unwrap_or_else(|| Rc::new(IoctlKnowledge::ioc_only()));
        let is_jit = knowledge
            .report
            .as_ref()
            .and_then(|r| r.commands.get(&cmd.raw()))
            .is_some_and(|e| !e.is_static());
        if is_jit {
            self.stats.jit_evaluations += 1;
        }
        let mut reader = ProcessReader {
            hv: self.hv.clone(),
            guest: self.guest,
            pt_root: pt.root(),
        };
        let ops = knowledge.grants_for(cmd, arg, &mut reader)?;
        self.submit_op(
            task,
            pt.root(),
            handle,
            Some(ops),
            WireOp::Ioctl { cmd, arg },
            trace,
        )
    }

    /// Pending pipelined submissions not yet completed.
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline.len()
    }

    /// Completes every pipelined submission: the backend drains the request
    /// ring (one interrupt for the whole batch), then responses are matched
    /// FIFO to their submissions, each with its own watchdog delivery-lag
    /// check. Returns the per-op results in submission order, including any
    /// completed by an intermediate auto-flush.
    ///
    /// # Errors
    ///
    /// Transport-level failure (hung/corrupted driver VM): containment has
    /// run and the remaining entries are failed wholesale.
    pub fn flush_pipeline(&mut self) -> Result<Vec<Result<i64, Errno>>, Errno> {
        self.drain_pipeline()?;
        Ok(std::mem::take(&mut self.completed))
    }

    /// Queues one op on the ring without taking its response.
    fn submit_op(
        &mut self,
        task: TaskId,
        pt_root: paradice_mem::GuestPhysAddr,
        handle: u64,
        grants: Option<Vec<MemOpGrant>>,
        op: WireOp,
        trace: OpTrace,
    ) -> Result<(), Errno> {
        debug_assert!(op.is_pipelineable(), "op {} cannot be pipelined", op.name());
        if self.breaker == BreakerState::Closed
            && self
                .hv
                .borrow()
                .driver_vm_failed(self.backend.borrow().driver_vm())
        {
            self.trip_breaker();
        }
        if self.breaker != BreakerState::Closed {
            // Pipelined submissions never probe: the half-open retry must
            // be a single synchronous op so its outcome is attributable.
            return Err(Errno::Eio);
        }
        self.stats.ops_forwarded += 1;
        let enabled = self.tracer.is_enabled();
        let span = self.tracer.begin_span();
        let (start_ns, stats_before) = if enabled {
            let start_ns = self.hv.borrow().clock().now_ns();
            let stats = self.channel.borrow().stats();
            self.tracer.record(TraceEvent::OpStart {
                span,
                t_ns: start_ns,
                guest: u64::from(self.guest.0),
                task: task.0,
                handle,
                device: trace.device,
                op: trace.kind,
                cmd: trace.cmd,
                addr: trace.addr,
                len: trace.len,
            });
            (start_ns, stats)
        } else {
            (0, ChannelStats::default())
        };
        let (grant, cache_owned) = match grants {
            Some(ops) => {
                if enabled {
                    self.tracer.record(TraceEvent::Grants {
                        span,
                        grants: ops.iter().map(trace_grant).collect(),
                    });
                }
                match self.resolve_grant(handle, &op, ops, span, enabled) {
                    Ok(resolved) => resolved,
                    Err(errno) => {
                        self.trace_op_end(span, start_ns, stats_before, Err(errno));
                        return Err(errno);
                    }
                }
            }
            None => (None, false),
        };
        let request = WireRequest {
            task: task.0,
            pt_root,
            handle,
            span: span.0,
            grant,
            op,
        };
        let sent = self.channel.borrow_mut().send_request(request.clone());
        if let Err(ChannelError::SlotBusy) = sent {
            // Ring (or page budget) full: complete the accumulated batch,
            // then retry on the drained ring.
            self.drain_pipeline()?;
            self.channel
                .borrow_mut()
                .send_request(request)
                .map_err(|_| Errno::Eagain)?;
        } else if sent.is_err() {
            if let (Some(grant), false) = (grant, cache_owned) {
                self.revoke(grant);
            }
            self.trace_op_end(span, start_ns, stats_before, Err(Errno::Eagain));
            return Err(Errno::Eagain);
        }
        self.pipeline.push(PendingOp {
            span,
            start_ns,
            stats_before,
            grant,
            cache_owned,
        });
        Ok(())
    }

    /// Drains the ring through the backend and completes every pending op.
    fn drain_pipeline(&mut self) -> Result<(), Errno> {
        if self.pipeline.is_empty() {
            return Ok(());
        }
        // The backend drains the whole request backlog under one doorbell:
        // each dispatch posts its response onto the response ring, where
        // only the first delivery charges a full interrupt/poll.
        while self.channel.borrow().request_backlog() > 0 {
            self.backend
                .borrow_mut()
                .handle_request(self.guest)
                .map_err(|_| Errno::Eio)?;
        }
        let pending = std::mem::take(&mut self.pipeline);
        let mut contained = false;
        for entry in pending {
            if contained {
                // Transport anomaly earlier in the batch: containment has
                // run; the remaining responses are unattributable.
                self.trace_op_end(entry.span, entry.start_ns, entry.stats_before, Err(Errno::Eio));
                self.completed.push(Err(Errno::Eio));
                continue;
            }
            let taken = self.channel.borrow_mut().take_response();
            let result = match taken {
                Ok(response) => {
                    // Per-entry watchdog: delivery lag against the batch's
                    // last post, same semantics as the synchronous path.
                    let lag = self
                        .hv
                        .borrow()
                        .clock()
                        .now_ns()
                        .saturating_sub(self.backend.borrow().last_post_ns());
                    if lag > self.deadline_ns {
                        Err(Errno::Etimedout)
                    } else {
                        response.result()
                    }
                }
                Err(ChannelError::Empty) if self.backend.borrow().is_paused() => {
                    // A paused backend queues on purpose (test/diagnostic
                    // state); mirror the synchronous path and do not trip
                    // the watchdog.
                    Err(Errno::Eio)
                }
                Err(ChannelError::Empty) => {
                    // Fewer responses than submissions: a hung or dead
                    // driver swallowed part of the batch. Contain it.
                    let start_ns = entry.start_ns;
                    let waited = self
                        .hv
                        .borrow()
                        .clock()
                        .now_ns()
                        .saturating_sub(start_ns);
                    self.hv
                        .borrow()
                        .clock()
                        .advance(self.deadline_ns.saturating_sub(waited));
                    let driver_vm = self.backend.borrow().driver_vm();
                    let _ = self.hv.borrow_mut().mark_driver_vm_failed(driver_vm);
                    self.trip_breaker();
                    contained = true;
                    Err(Errno::Etimedout)
                }
                Err(_) => {
                    // Garbage in the response ring: corrupted driver VM.
                    let driver_vm = self.backend.borrow().driver_vm();
                    let _ = self.hv.borrow_mut().mark_driver_vm_failed(driver_vm);
                    self.trip_breaker();
                    contained = true;
                    Err(Errno::Eio)
                }
            };
            let traced = match result {
                Ok(value) => Ok(WireResponse::Value(value)),
                Err(errno) => Err(errno),
            };
            self.trace_op_end(entry.span, entry.start_ns, entry.stats_before, traced);
            if let (Some(grant), false) = (entry.grant, entry.cache_owned) {
                if !contained {
                    self.revoke(grant);
                }
            }
            self.completed.push(result);
        }
        Ok(())
    }

    /// Forwards `mmap`: pre-creates the intermediate page-table levels for
    /// the whole range (§5.2) and declares a `MapPages` grant.
    ///
    /// # Errors
    ///
    /// `EINVAL` for misaligned ranges or a missing FreeBSD hook call;
    /// driver errors otherwise.
    #[allow(clippy::too_many_arguments)]
    pub fn mmap(
        &mut self,
        task: TaskId,
        mut pt: GuestPageTables,
        fd: u64,
        va: GuestVirtAddr,
        len: u64,
        offset: u64,
        access: Access,
    ) -> Result<(), Errno> {
        if !va.is_page_aligned() || len == 0 {
            return Err(Errno::Einval);
        }
        if self.personality.needs_mmap_hook() {
            // FreeBSD's kernel does not hand the VA range to character-
            // device pagers the way Linux's `vm_area_struct` does; the
            // 12-LoC kernel hook must have recorded it (§5.1).
            match self.pending_mmap_range.take() {
                Some((hook_va, hook_len)) if hook_va == va && hook_len == len => {}
                _ => return Err(Errno::Einval),
            }
        }
        let file = self.file(fd)?;
        let handle = file.backend_handle;
        let trace =
            OpTrace::new(self.trace_device(&file.path), TraceOpKind::Mmap).range(va.raw(), len);
        let pages = len.div_ceil(PAGE_SIZE);
        {
            let mut hv = self.hv.borrow_mut();
            let mut space = hv.gpa_space(self.guest);
            for i in 0..pages {
                pt.ensure_intermediate(&mut space, va.add(i * PAGE_SIZE))
                    .map_err(|_| Errno::Enomem)?;
            }
        }
        let result = self
            .run_op(
                task,
                pt.root(),
                handle,
                Some(vec![MemOpGrant::MapPages { va, pages, access }]),
                WireOp::Mmap {
                    va,
                    len,
                    offset,
                    access,
                },
                trace,
            )
            .and_then(WireResponse::result);
        if result.is_ok() {
            self.vmas.push(Vma {
                fd,
                va,
                len,
                access,
            });
        }
        result.map(|_| ())
    }

    /// Forwards a page fault in a device mapping: the guest kernel's fault
    /// handler asks the driver to populate the faulting page (§2.1). The
    /// grant covers exactly the one page, with the access the original
    /// `mmap` was granted.
    ///
    /// # Errors
    ///
    /// `EFAULT` if the address is not inside a forwarded mapping; driver
    /// errors otherwise.
    pub fn fault(
        &mut self,
        task: TaskId,
        pt: GuestPageTables,
        fd: u64,
        va: GuestVirtAddr,
    ) -> Result<(), Errno> {
        let file = self.file(fd)?;
        let handle = file.backend_handle;
        let trace = OpTrace::new(self.trace_device(&file.path), TraceOpKind::Fault)
            .range(va.raw(), PAGE_SIZE);
        let vma = self
            .vmas
            .iter()
            .find(|vma| {
                vma.fd == fd && va.raw() >= vma.va.raw() && va.raw() < vma.va.raw() + vma.len
            })
            .copied()
            .ok_or(Errno::Efault)?;
        {
            let mut hv = self.hv.borrow_mut();
            let mut space = hv.gpa_space(self.guest);
            pt.clone()
                .ensure_intermediate(&mut space, va.page_base())
                .map_err(|_| Errno::Enomem)?;
        }
        self.run_op(
            task,
            pt.root(),
            handle,
            Some(vec![MemOpGrant::MapPages {
                va: va.page_base(),
                pages: 1,
                access: vma.access,
            }]),
            WireOp::Fault { va },
            trace,
        )
        .and_then(WireResponse::result)
        .map(|_| ())
    }

    /// Forwards `munmap`: the guest kernel destroys its own leaf mappings
    /// first, then the driver zaps; the hypervisor only tears down EPT state
    /// (§5.2).
    ///
    /// # Errors
    ///
    /// Driver errors or grant violations.
    pub fn munmap(
        &mut self,
        task: TaskId,
        pt: GuestPageTables,
        fd: u64,
        va: GuestVirtAddr,
        len: u64,
    ) -> Result<(), Errno> {
        let file = self.file(fd)?;
        let handle = file.backend_handle;
        let trace =
            OpTrace::new(self.trace_device(&file.path), TraceOpKind::Munmap).range(va.raw(), len);
        let pages = len.div_ceil(PAGE_SIZE);
        {
            let mut hv = self.hv.borrow_mut();
            let mut space = hv.gpa_space(self.guest);
            for i in 0..pages {
                pt.unmap(&mut space, va.add(i * PAGE_SIZE))
                    .map_err(|_| Errno::Efault)?;
            }
        }
        let result = self
            .run_op(
                task,
                pt.root(),
                handle,
                Some(vec![MemOpGrant::UnmapPages { va, pages }]),
                WireOp::Munmap { va, len },
                trace,
            )
            .and_then(WireResponse::result);
        if result.is_ok() {
            self.vmas
                .retain(|vma| !(vma.fd == fd && vma.va == va && vma.len == len));
        }
        result.map(|_| ())
    }

    /// Forwards `poll`.
    ///
    /// # Errors
    ///
    /// Driver errors.
    pub fn poll(&mut self, task: TaskId, fd: u64) -> Result<PollEvents, Errno> {
        let file = self.file(fd)?;
        let handle = file.backend_handle;
        let trace = OpTrace::new(self.trace_device(&file.path), TraceOpKind::Poll);
        match self.run_op(
            task,
            paradice_mem::GuestPhysAddr::new(0),
            handle,
            None,
            WireOp::Poll,
            trace,
        )? {
            WireResponse::Poll(events) => Ok(events),
            WireResponse::Err(errno) => Err(errno),
            // A conforming backend answers `poll` with the dedicated
            // variant; anything else is a protocol violation.
            WireResponse::Value(_) => Err(Errno::Eio),
        }
    }

    /// Forwards `fasync`.
    ///
    /// # Errors
    ///
    /// Driver errors.
    pub fn fasync(&mut self, task: TaskId, fd: u64, on: bool) -> Result<(), Errno> {
        let file = self.file(fd)?;
        let handle = file.backend_handle;
        let trace = OpTrace::new(self.trace_device(&file.path), TraceOpKind::Fasync);
        self.run_op(
            task,
            paradice_mem::GuestPhysAddr::new(0),
            handle,
            None,
            WireOp::Fasync { on },
            trace,
        )
        .and_then(WireResponse::result)
        .map(|_| ())
    }

    /// Drains forwarded asynchronous notifications: `(task, guest-local fd)`
    /// pairs ready for signal delivery.
    pub fn drain_notifications(&mut self) -> Vec<(TaskId, u64)> {
        let mut out = Vec::new();
        while let Some(signal) = self.channel.borrow_mut().take_notification() {
            if let Some(&fd) = self.backend_to_local.get(&signal.handle) {
                out.push((TaskId(signal.task), fd));
            }
        }
        out
    }
}
