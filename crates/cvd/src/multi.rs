//! Multi-guest execution substrates: per-guest channels through the
//! [`EngineKind`] seam.
//!
//! [`crate::exec`] drives *one* guest per engine — the differential
//! harness's shape. Scale-out needs N guests sharing one device roster,
//! and the ISSUE 10 requirement is that one guest's backlog or grant
//! churn never contends on another's fast path:
//!
//! * **Per-guest queues.** Each guest gets its own request/response
//!   channel: a virtual-time `VecDeque` pair on [`MultiVirtualEngine`],
//!   a real [`AtomicRing`] pair on [`MultiWallEngine`]. A flooding
//!   guest fills only its own queue.
//! * **Per-guest wait-queue caps.** Submission past the cap fails with
//!   [`EngineError::Backpressure`] — the engine-seam spelling of the
//!   backend's `EDQUOT` (paper §5.1, the per-guest 100-op cap): the
//!   guest's own syscall returns `EAGAIN` and *nothing is dropped or
//!   reordered* — every accepted op completes, in per-guest FIFO order.
//! * **Fair-share service.** The shared backend picks the next guest by
//!   least consumed service time ([`FairSched`], the default policy),
//!   so a light guest's op overtakes a heavy neighbor's backlog without
//!   ever starving it.
//! * **Per-guest grant shards.** Both engines validate against a
//!   [`ShardedGrantTable`] sized for the guest population — declare,
//!   validate, and revoke touch only the owning guest's shard.
//!
//! Scheduling state is deliberately thread-local: the wall backend
//! thread owns its [`FairSched`] and stamps service time with its own
//! clock reads, and the frontend owns the per-guest in-flight counts —
//! the refactor adds *zero* shared atomics beyond the rings and
//! doorbells already proved by the race checker.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use paradice_hypervisor::engine::{EngineError, EngineKind};
use paradice_hypervisor::{
    ARingError, AtomicRing, ClockSource, CostModel, Doorbell, ShardedGrantTable, SimClock,
    WallClock, ARING_CAPACITY, ARING_SLOT_BYTES,
};
use paradice_trace::TraceEvent;

use crate::exec::{dispatch, DeviceService};
use crate::fairq::{FairSched, SchedPolicy};
use crate::proto::{WireOp, WireRequest};

/// Default per-guest wait-queue cap on both substrates: the wall ring's
/// depth, mirrored by the virtual engine so backpressure kicks in at the
/// same depth on both (differential parity).
pub const MULTI_QUEUE_CAP: usize = ARING_CAPACITY;

/// One completion: which guest it belongs to plus the encoded response.
/// Per-guest FIFO: completions for a guest arrive in that guest's
/// submission order; the scheduler only interleaves *across* guests.
pub type Completion = (u32, Vec<u8>);

/// The multi-guest engine seam: [`crate::exec::CvdEngine`]'s contract
/// generalized to N guests with per-guest queues and caps.
pub trait MultiEngine {
    /// Which substrate this is.
    fn kind(&self) -> EngineKind;

    /// The engine's clock (virtual or wall).
    fn clock(&self) -> ClockSource;

    /// The shared grant table (per-guest shards).
    fn grants(&self) -> &Arc<ShardedGrantTable>;

    /// Submits `frame` on `guest`'s channel.
    ///
    /// # Errors
    ///
    /// [`EngineError::Backpressure`] when the guest's wait queue is at
    /// its cap (retry after draining completions — nothing was enqueued),
    /// [`EngineError::Oversize`] for frames over the slot size,
    /// [`EngineError::Dead`] after shutdown.
    fn submit(&mut self, guest: u32, frame: &[u8]) -> Result<(), EngineError>;

    /// Takes one completion if available.
    ///
    /// # Errors
    ///
    /// [`EngineError::Dead`] after shutdown or backend death.
    fn complete(&mut self) -> Result<Option<Completion>, EngineError>;

    /// Takes one completion, waiting for the backend if necessary.
    ///
    /// # Errors
    ///
    /// [`EngineError::Dead`] when nothing is in flight (a healthy caller
    /// never blocks on an idle engine) or the backend died.
    fn complete_blocking(&mut self) -> Result<Completion, EngineError>;

    /// Stops the substrate and takes the backend's trace events.
    fn finish(&mut self) -> Vec<TraceEvent>;
}

/// The modeled service cost of one request frame on the virtual clock:
/// dispatch overhead plus per-byte copy cost for the op's payload. This
/// is what makes a netmap batch or camera frame *heavier* than an
/// interactive ioctl in virtual time, so fairness is measurable.
fn modeled_service_ns(cost: &CostModel, frame: &[u8]) -> u64 {
    let payload = WireRequest::decode(frame).map_or(0, |request| match request.op {
        WireOp::Read { len, .. } | WireOp::Write { len, .. } => len,
        WireOp::Ioctl { .. } => 16,
        _ => 0,
    });
    cost.backend_dispatch_ns
        + cost.marshal_ns
        + payload * cost.copy_page_ns / paradice_mem::PAGE_SIZE
}

struct VirtualGuestQueue {
    /// Queued request frames with their arrival stamps (per-guest FIFO).
    pending: VecDeque<(u64, Vec<u8>)>,
    cap: usize,
}

/// N guests on the deterministic substrate: per-guest queues on one
/// [`SimClock`], the backend serving one op per [`MultiEngine::complete`]
/// in fair-share order, service time charged from the [`CostModel`].
///
/// Frontends are modeled as running on their own vCPUs: submission does
/// not advance the shared clock; only the serialized backend's service
/// does. An op's virtual latency is therefore its queueing delay plus
/// service — exactly the quantity the scheduler controls.
pub struct MultiVirtualEngine {
    clock: SimClock,
    cost: CostModel,
    service: Box<dyn DeviceService>,
    grants: Arc<ShardedGrantTable>,
    guests: Vec<VirtualGuestQueue>,
    sched: FairSched,
    arrivals: u64,
    backend_events: Vec<TraceEvent>,
    dead: bool,
}

impl MultiVirtualEngine {
    /// An engine for guests `0..guests` under `policy`, all queues capped
    /// at [`MULTI_QUEUE_CAP`].
    pub fn new(service: impl DeviceService, guests: usize, policy: SchedPolicy) -> Self {
        MultiVirtualEngine {
            clock: SimClock::new(),
            cost: CostModel::default(),
            service: Box::new(service),
            grants: Arc::new(ShardedGrantTable::with_guests(guests)),
            guests: (0..guests)
                .map(|_| VirtualGuestQueue {
                    pending: VecDeque::new(),
                    cap: MULTI_QUEUE_CAP,
                })
                .collect(),
            sched: FairSched::new(policy),
            arrivals: 0,
            backend_events: Vec::new(),
            dead: false,
        }
    }

    /// Adjusts one guest's wait-queue cap (load balancing / priorities,
    /// paper §5.1). Panics on unknown guests (host-assigned ids).
    pub fn set_queue_cap(&mut self, guest: u32, cap: usize) {
        self.guests[guest as usize].cap = cap;
    }

    /// Serves the fair-share pick's oldest queued op, advancing the
    /// clock by its modeled service time.
    fn serve_one(&mut self) -> Option<Completion> {
        let backlogged = self
            .guests
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.pending.is_empty())
            .map(|(g, q)| (g as u32, q.pending.front().expect("non-empty").0));
        let guest = self.sched.pick(backlogged)?;
        let (_, frame) = self.guests[guest as usize]
            .pending
            .pop_front()
            .expect("picked guest is backlogged");
        let service_ns = modeled_service_ns(&self.cost, &frame);
        self.clock.advance(service_ns);
        self.sched.charge(guest, service_ns);
        let response = dispatch(
            guest,
            &frame,
            self.service.as_mut(),
            &self.grants,
            self.clock.now_ns(),
            &mut self.backend_events,
        );
        Some((guest, response))
    }
}

impl MultiEngine for MultiVirtualEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Virtual
    }

    fn clock(&self) -> ClockSource {
        self.clock.clone().into()
    }

    fn grants(&self) -> &Arc<ShardedGrantTable> {
        &self.grants
    }

    fn submit(&mut self, guest: u32, frame: &[u8]) -> Result<(), EngineError> {
        if self.dead {
            return Err(EngineError::Dead("engine shut down".into()));
        }
        if frame.len() > ARING_SLOT_BYTES {
            return Err(EngineError::Oversize { len: frame.len() });
        }
        let queue = &mut self.guests[guest as usize];
        if queue.pending.len() >= queue.cap {
            return Err(EngineError::Backpressure);
        }
        queue.pending.push_back((self.arrivals, frame.to_vec()));
        self.arrivals += 1;
        Ok(())
    }

    fn complete(&mut self) -> Result<Option<Completion>, EngineError> {
        if self.dead {
            return Err(EngineError::Dead("engine shut down".into()));
        }
        Ok(self.serve_one())
    }

    fn complete_blocking(&mut self) -> Result<Completion, EngineError> {
        match self.complete()? {
            Some(done) => Ok(done),
            None => Err(EngineError::Dead("no frames in flight".into())),
        }
    }

    fn finish(&mut self) -> Vec<TraceEvent> {
        self.dead = true;
        std::mem::take(&mut self.backend_events)
    }
}

struct WallGuestChannel {
    req_ring: Arc<AtomicRing>,
    resp_ring: Arc<AtomicRing>,
    /// Frontend-local: accepted-but-uncompleted ops (the wait-queue cap).
    in_flight: usize,
    cap: usize,
}

/// N guests on the measurement substrate: one [`AtomicRing`] pair per
/// guest, one shared backend thread draining all request rings in
/// fair-share order (service time stamped with real clock reads held in
/// thread-local accounting — no shared scheduler state), shared
/// request/response doorbells.
///
/// Single-frontend discipline as in [`crate::exec::WallEngine`]: one
/// thread constructs and drives all guests' submissions (the scale bench
/// plays every guest's vCPU from its driver loop).
pub struct MultiWallEngine {
    clock: WallClock,
    guests: Vec<WallGuestChannel>,
    req_bell: Arc<Doorbell>,
    resp_bell: Arc<Doorbell>,
    stop: Arc<AtomicBool>,
    grants: Arc<ShardedGrantTable>,
    worker: Option<JoinHandle<Vec<TraceEvent>>>,
    /// Round-robin cursor for draining response rings.
    next_poll: usize,
    total_in_flight: usize,
}

impl MultiWallEngine {
    /// Spawns the shared backend thread over per-guest ring pairs.
    pub fn new(service: impl DeviceService, guests: usize, policy: SchedPolicy) -> Self {
        let clock = WallClock::new();
        let channels: Vec<WallGuestChannel> = (0..guests)
            .map(|_| WallGuestChannel {
                req_ring: Arc::new(AtomicRing::new()),
                resp_ring: Arc::new(AtomicRing::new()),
                in_flight: 0,
                cap: MULTI_QUEUE_CAP,
            })
            .collect();
        let req_bell = Arc::new(Doorbell::new());
        let resp_bell = Arc::new(Doorbell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let grants = Arc::new(ShardedGrantTable::with_guests(guests));
        resp_bell.register(); // we (the constructing thread) are the frontend

        let worker = {
            let rings: Vec<(Arc<AtomicRing>, Arc<AtomicRing>)> = channels
                .iter()
                .map(|c| (Arc::clone(&c.req_ring), Arc::clone(&c.resp_ring)))
                .collect();
            let (req_bell, resp_bell) = (Arc::clone(&req_bell), Arc::clone(&resp_bell));
            let (stop, grants) = (Arc::clone(&stop), Arc::clone(&grants));
            let mut service = service;
            std::thread::Builder::new()
                .name("cvd-mx-backend".into())
                .spawn(move || {
                    req_bell.register();
                    // Backend-thread-local scheduling state: consumed
                    // service time per guest plus backlog-arrival stamps.
                    // A guest is stamped when its ring transitions
                    // empty→non-empty and re-stamped after every served
                    // op while it stays backlogged, so the stamp tracks
                    // when the *current head* became head. The backend
                    // cannot observe per-op arrival times, so wall-side
                    // FIFO is a head-age approximation of the virtual
                    // engine's exact per-op arrival order (under the
                    // default fair-share policy stamps are only the
                    // tie-break).
                    let mut sched = FairSched::new(policy);
                    let mut arrivals: Vec<Option<u64>> = vec![None; rings.len()];
                    let mut next_stamp = 0u64;
                    let mut events = Vec::new();
                    loop {
                        for (guest, (req_ring, _)) in rings.iter().enumerate() {
                            if !req_ring.is_empty() && arrivals[guest].is_none() {
                                arrivals[guest] = Some(next_stamp);
                                next_stamp += 1;
                            }
                        }
                        let backlogged = arrivals
                            .iter()
                            .enumerate()
                            .filter_map(|(g, a)| a.map(|stamp| (g as u32, stamp)));
                        if let Some(guest) = sched.pick(backlogged) {
                            let (req_ring, resp_ring) = &rings[guest as usize];
                            if let Some(frame) = req_ring.try_pop() {
                                let started = clock.now_ns();
                                let response = dispatch(
                                    guest,
                                    &frame,
                                    &mut service,
                                    &grants,
                                    started,
                                    &mut events,
                                );
                                sched.charge(
                                    guest,
                                    clock.now_ns().saturating_sub(started).max(1),
                                );
                                loop {
                                    match resp_ring.try_push(&response) {
                                        Ok(was_empty) => {
                                            if was_empty {
                                                resp_bell.ring();
                                            }
                                            break;
                                        }
                                        Err(ARingError::Full) => std::thread::yield_now(),
                                        Err(ARingError::Oversize { len }) => {
                                            unreachable!("responses are tiny, got {len} bytes")
                                        }
                                    }
                                }
                            }
                            if req_ring.is_empty() {
                                arrivals[guest as usize] = None;
                            } else {
                                // Fresh stamp for the new head: without
                                // it a long-backlogged ring would keep
                                // its first-enqueue stamp and starve
                                // younger queues under SchedPolicy::Fifo.
                                arrivals[guest as usize] = Some(next_stamp);
                                next_stamp += 1;
                            }
                            continue;
                        }
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let rings_for_wait = rings.clone();
                        let stop_for_wait = Arc::clone(&stop);
                        req_bell.wait(move || {
                            rings_for_wait.iter().any(|(req, _)| !req.is_empty())
                                || stop_for_wait.load(Ordering::Acquire)
                        });
                    }
                    events
                })
                .expect("spawn cvd-mx-backend thread")
        };

        MultiWallEngine {
            clock,
            guests: channels,
            req_bell,
            resp_bell,
            stop,
            grants,
            worker: Some(worker),
            next_poll: 0,
            total_in_flight: 0,
        }
    }

    /// Adjusts one guest's wait-queue cap (clamped to the ring depth —
    /// the hardware queue is the hard bound).
    pub fn set_queue_cap(&mut self, guest: u32, cap: usize) {
        self.guests[guest as usize].cap = cap.min(ARING_CAPACITY);
    }

    fn backend_alive(&self) -> bool {
        self.worker.as_ref().is_some_and(|w| !w.is_finished())
    }

    fn join_backend(&mut self) -> Vec<TraceEvent> {
        self.stop.store(true, Ordering::Release);
        self.req_bell.ring();
        match self.worker.take() {
            Some(worker) => worker.join().unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

impl MultiEngine for MultiWallEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Wall
    }

    fn clock(&self) -> ClockSource {
        self.clock.into()
    }

    fn grants(&self) -> &Arc<ShardedGrantTable> {
        &self.grants
    }

    fn submit(&mut self, guest: u32, frame: &[u8]) -> Result<(), EngineError> {
        if self.worker.is_none() {
            return Err(EngineError::Dead("engine shut down".into()));
        }
        if !self.backend_alive() {
            return Err(EngineError::Dead("backend thread exited".into()));
        }
        let channel = &mut self.guests[guest as usize];
        if channel.in_flight >= channel.cap {
            return Err(EngineError::Backpressure);
        }
        match channel.req_ring.try_push(frame) {
            Ok(was_empty) => {
                if was_empty {
                    self.req_bell.ring();
                }
                channel.in_flight += 1;
                self.total_in_flight += 1;
                Ok(())
            }
            Err(ARingError::Full) => Err(EngineError::Backpressure),
            Err(ARingError::Oversize { len }) => Err(EngineError::Oversize { len }),
        }
    }

    fn complete(&mut self) -> Result<Option<Completion>, EngineError> {
        for offset in 0..self.guests.len() {
            let guest = (self.next_poll + offset) % self.guests.len();
            if let Some(frame) = self.guests[guest].resp_ring.try_pop() {
                self.guests[guest].in_flight -= 1;
                self.total_in_flight -= 1;
                self.next_poll = (guest + 1) % self.guests.len();
                return Ok(Some((guest as u32, frame)));
            }
        }
        if self.total_in_flight > 0 && !self.backend_alive() {
            return Err(EngineError::Dead("backend thread exited".into()));
        }
        Ok(None)
    }

    fn complete_blocking(&mut self) -> Result<Completion, EngineError> {
        if self.total_in_flight == 0 {
            return Err(EngineError::Dead("no frames in flight".into()));
        }
        loop {
            match self.complete()? {
                Some(done) => return Ok(done),
                None => {
                    let rings: Vec<Arc<AtomicRing>> = self
                        .guests
                        .iter()
                        .map(|c| Arc::clone(&c.resp_ring))
                        .collect();
                    self.resp_bell
                        .wait(move || rings.iter().any(|r| !r.is_empty()));
                }
            }
        }
    }

    fn finish(&mut self) -> Vec<TraceEvent> {
        self.join_backend()
    }
}

impl Drop for MultiWallEngine {
    fn drop(&mut self) {
        if self.worker.is_some() {
            let _ = self.join_backend();
        }
    }
}

/// Builds the requested substrate as a boxed [`MultiEngine`].
pub fn build_multi(
    kind: EngineKind,
    service: impl DeviceService,
    guests: usize,
    policy: SchedPolicy,
) -> Box<dyn MultiEngine> {
    match kind {
        EngineKind::Virtual => Box::new(MultiVirtualEngine::new(service, guests, policy)),
        EngineKind::Wall => Box::new(MultiWallEngine::new(service, guests, policy)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ScriptedService;
    use crate::proto::WireResponse;
    use paradice_devfs::ioc::io;
    use paradice_hypervisor::{GrantRef, MemOpGrant};
    use paradice_mem::{GuestPhysAddr, GuestVirtAddr};

    fn ioctl_frame(guest: u32, grant: Option<GrantRef>, arg: u64) -> Vec<u8> {
        WireRequest {
            task: u64::from(guest) + 1,
            pt_root: GuestPhysAddr::new(0x4000),
            handle: 1,
            span: 0,
            grant,
            op: WireOp::Ioctl { cmd: io(b'T', 1), arg },
        }
        .encode()
    }

    fn granted_ioctl(engine: &mut dyn MultiEngine, guest: u32, arg: u64) -> Vec<u8> {
        let grant = engine
            .grants()
            .declare(
                guest,
                vec![
                    MemOpGrant::CopyFromGuest { addr: GuestVirtAddr::new(arg), len: 8 },
                    MemOpGrant::CopyToGuest { addr: GuestVirtAddr::new(arg), len: 8 },
                ],
            )
            .expect("declare");
        ioctl_frame(guest, Some(grant), arg)
    }

    #[test]
    fn completions_carry_the_owning_guest_on_both_substrates() {
        for kind in [EngineKind::Virtual, EngineKind::Wall] {
            let (service, _) = ScriptedService::new();
            let mut engine = build_multi(kind, service, 4, SchedPolicy::FairShare);
            for guest in 0..4u32 {
                let frame = granted_ioctl(engine.as_mut(), guest, 0x1000 + u64::from(guest) * 64);
                engine.submit(guest, &frame).expect("submit");
            }
            let mut seen = Vec::new();
            for _ in 0..4 {
                let (guest, frame) = engine.complete_blocking().expect("complete");
                assert_eq!(
                    WireResponse::decode(&frame).expect("decodes"),
                    WireResponse::Value(0),
                    "{kind}: granted ioctl must succeed"
                );
                seen.push(guest);
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3], "{kind}: one completion per guest");
            engine.finish();
        }
    }

    #[test]
    fn cross_guest_grants_fault_on_both_substrates() {
        for kind in [EngineKind::Virtual, EngineKind::Wall] {
            let (service, _) = ScriptedService::new();
            let mut engine = build_multi(kind, service, 2, SchedPolicy::FairShare);
            // Guest 1 declares; guest 0 spends the (valid!) foreign ref.
            let grant = engine
                .grants()
                .declare(
                    1,
                    vec![
                        MemOpGrant::CopyFromGuest { addr: GuestVirtAddr::new(0x2000), len: 8 },
                        MemOpGrant::CopyToGuest { addr: GuestVirtAddr::new(0x2000), len: 8 },
                    ],
                )
                .expect("declare");
            engine
                .submit(0, &ioctl_frame(0, Some(grant), 0x2000))
                .expect("submit");
            let (guest, frame) = engine.complete_blocking().expect("complete");
            assert_eq!(guest, 0);
            assert_eq!(
                WireResponse::decode(&frame).expect("decodes"),
                WireResponse::Err(paradice_devfs::Errno::Efault),
                "{kind}: foreign grant must fault"
            );
            engine.finish();
        }
    }

    #[test]
    fn cap_overflow_backpressures_and_drops_nothing() {
        for kind in [EngineKind::Virtual, EngineKind::Wall] {
            let (service, _) = ScriptedService::new();
            let mut engine = build_multi(kind, service, 2, SchedPolicy::FairShare);
            let mut accepted = 0usize;
            let mut rejected = 0usize;
            for i in 0..MULTI_QUEUE_CAP + 4 {
                let frame = granted_ioctl(engine.as_mut(), 0, 0x1000 + i as u64 * 64);
                match engine.submit(0, &frame) {
                    Ok(()) => accepted += 1,
                    Err(EngineError::Backpressure) => rejected += 1,
                    Err(e) => panic!("{kind}: unexpected {e:?}"),
                }
            }
            assert!(rejected > 0, "{kind}: the cap must backpressure");
            // Every accepted op completes, none dropped; the neighbor is
            // untouched throughout.
            let mut drained = 0usize;
            while drained < accepted {
                let (guest, _) = engine.complete_blocking().expect("drain");
                assert_eq!(guest, 0);
                drained += 1;
            }
            assert!(matches!(engine.complete(), Ok(None)), "{kind}: drained dry");
            engine.finish();
        }
    }

    #[test]
    fn virtual_fair_share_lets_the_light_guest_overtake() {
        let (service, _) = ScriptedService::new();
        let mut engine = MultiVirtualEngine::new(service, 2, SchedPolicy::FairShare);
        // Guest 0 floods heavy 4-KiB writes; guest 1 queues one ioctl last.
        for i in 0..8u64 {
            let grant = engine
                .grants()
                .declare(
                    0,
                    vec![MemOpGrant::CopyFromGuest {
                        addr: GuestVirtAddr::new(0x10_000 + i * 0x1000),
                        len: 4096,
                    }],
                )
                .expect("declare");
            let frame = WireRequest {
                task: 1,
                pt_root: GuestPhysAddr::new(0x4000),
                handle: 1,
                span: 0,
                grant: Some(grant),
                op: WireOp::Write {
                    addr: GuestVirtAddr::new(0x10_000 + i * 0x1000),
                    len: 4096,
                },
            }
            .encode();
            engine.submit(0, &frame).expect("submit heavy");
        }
        let light = granted_ioctl(&mut engine, 1, 0x9000);
        engine.submit(1, &light).expect("submit light");
        // The very first service goes to guest 0 (already backlogged when
        // nothing was consumed); the light guest must be served within the
        // next pick — not behind the whole flood.
        let (first, _) = engine.complete_blocking().expect("first");
        let (second, _) = engine.complete_blocking().expect("second");
        assert!(
            first == 1 || second == 1,
            "light guest served within two picks, got {first} then {second}"
        );
    }
}
