//! The two execution substrates behind one [`Engine`] seam.
//!
//! [`VirtualEngine`] is the deterministic step function: requests travel
//! the existing cost-charged [`Channel`] on the [`SimClock`], the backend
//! is stepped inline, and the run is bit-reproducible — the correctness
//! oracle. [`WallEngine`] is the measurement substrate: the backend runs
//! on a real OS thread, frames cross an [`AtomicRing`] pair
//! (acquire/release slot publication, park/unpark [`Doorbell`]), and
//! grants are validated through the lock-free-read [`ShardedGrantTable`].
//!
//! Both engines funnel every request through the *same* dispatch function
//! against the *same* grant-table semantics, which is what makes the
//! cross-mode differential gate (`tests/wallclock.rs`) meaningful: for
//! one workload, both substrates must produce byte-identical encoded
//! responses and replay-lint-clean traces.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use paradice_devfs::Errno;
use paradice_hypervisor::engine::{Engine, EngineError, EngineKind};
use paradice_hypervisor::{
    ARingError, AtomicRing, Channel, ChannelError, ClockSource, CostModel, Doorbell, GrantRef,
    MemOpGrant, MemOpRequest, ShardedGrantTable, SimClock, TransportMode, WallClock,
    ARING_SLOT_BYTES,
};
use paradice_mem::GuestPhysAddr;
use paradice_trace::{SpanId, TraceEvent, TraceGrant, TraceMemOpKind, TraceOpKind, WireDelta};

use crate::proto::{WireOp, WireRequest, WireResponse};

/// Ring depth both engines pipeline at (the fast path's depth-8 ring).
pub const EXEC_RING_DEPTH: usize = 8;

/// The guest id the single-guest engines run as. The grant table is
/// guest-qualified (per-guest shards since ISSUE 10); a frame's guest
/// identity comes from the channel it arrived on, never from the wire —
/// the multi-guest engines in [`crate::multi`] route per-guest rings.
pub const EXEC_GUEST: u32 = 1;

/// A deterministic device model serving decoded wire requests.
///
/// `serve` returns the response *and* the memory operations the driver
/// performed for this request; the engine validates each against the
/// grant table (blocked operations turn the response into `EFAULT`,
/// mirroring the hypervisor refusing the hypercall). Must be `Send`: the
/// wall engine runs it on the backend thread.
pub trait DeviceService: Send + 'static {
    /// Serves one request.
    fn serve(&mut self, req: &WireRequest) -> (WireResponse, Vec<MemOpRequest>);
}

impl<F> DeviceService for F
where
    F: FnMut(&WireRequest) -> (WireResponse, Vec<MemOpRequest>) + Send + 'static,
{
    fn serve(&mut self, req: &WireRequest) -> (WireResponse, Vec<MemOpRequest>) {
        self(req)
    }
}

fn memop_trace_fields(request: &MemOpRequest) -> (TraceMemOpKind, u64, u64) {
    match *request {
        MemOpRequest::CopyFromGuest { addr, len } => {
            (TraceMemOpKind::CopyFromGuest, addr.raw(), len)
        }
        MemOpRequest::CopyToGuest { addr, len } => (TraceMemOpKind::CopyToGuest, addr.raw(), len),
        MemOpRequest::MapPage { va, .. } => {
            (TraceMemOpKind::MapPage, va.raw(), paradice_mem::PAGE_SIZE)
        }
        MemOpRequest::UnmapPage { va } => {
            (TraceMemOpKind::UnmapPage, va.raw(), paradice_mem::PAGE_SIZE)
        }
    }
}

fn trace_grant(grant: &MemOpGrant) -> TraceGrant {
    match *grant {
        MemOpGrant::CopyFromGuest { addr, len } => TraceGrant::CopyFromGuest {
            addr: addr.raw(),
            len,
        },
        MemOpGrant::CopyToGuest { addr, len } => TraceGrant::CopyToGuest {
            addr: addr.raw(),
            len,
        },
        MemOpGrant::MapPages { va, pages, access } => TraceGrant::MapPages {
            va: va.raw(),
            pages,
            access: access.bits(),
        },
        MemOpGrant::UnmapPages { va, pages } => TraceGrant::UnmapPages {
            va: va.raw(),
            pages,
        },
    }
}

/// The one backend step both substrates share: decode, serve, validate
/// every memory operation against the grant table, record the outcome.
/// A blocked operation (no grant attached, or the grant does not cover
/// it) turns the response into `EFAULT` — the hypervisor refused the
/// hypercall, so the driver's operation failed.
pub(crate) fn dispatch(
    guest: u32,
    frame: &[u8],
    service: &mut dyn DeviceService,
    grants: &ShardedGrantTable,
    now_ns: u64,
    events: &mut Vec<TraceEvent>,
) -> Vec<u8> {
    let Ok(request) = WireRequest::decode(frame) else {
        return WireResponse::Err(Errno::Einval).encode();
    };
    let (response, memops) = service.serve(&request);
    let mut blocked = false;
    for memop in &memops {
        let ok = match request.grant {
            Some(grant) => grants.validate(guest, grant, memop).is_ok(),
            None => false,
        };
        blocked |= !ok;
        if request.span != 0 {
            let (kind, addr, len) = memop_trace_fields(memop);
            events.push(TraceEvent::MemOp {
                span: SpanId(request.span),
                t_ns: now_ns,
                kind,
                addr,
                len,
                ok,
            });
        }
    }
    let response = if blocked {
        WireResponse::Err(Errno::Efault)
    } else {
        response
    };
    response.encode()
}

/// Engines the differential harness can drive: the [`Engine`] byte
/// contract plus access to the grant table (the frontend side declares
/// into it) and the backend's recorded trace events.
pub trait CvdEngine: Engine {
    /// The grant table requests are validated against.
    fn grants(&self) -> &Arc<ShardedGrantTable>;

    /// Stops the substrate and takes the backend's `MemOp` trace events.
    fn finish(&mut self) -> Vec<TraceEvent>;
}

/// The deterministic substrate: the cost-charged byte [`Channel`] on the
/// virtual clock, backend stepped inline on [`Engine::complete`].
pub struct VirtualEngine {
    clock: SimClock,
    channel: Channel,
    service: Box<dyn DeviceService>,
    grants: Arc<ShardedGrantTable>,
    backend_events: Vec<TraceEvent>,
    dead: bool,
}

impl VirtualEngine {
    /// A virtual engine in the paper's polling mode at fast-path depth.
    pub fn new(service: impl DeviceService) -> Self {
        let clock = SimClock::new();
        let mut channel = Channel::new(
            TransportMode::polling_default(),
            clock.clone(),
            CostModel::default(),
        );
        channel.set_ring_depth(EXEC_RING_DEPTH);
        VirtualEngine {
            clock,
            channel,
            service: Box::new(service),
            grants: Arc::new(ShardedGrantTable::new()),
            backend_events: Vec::new(),
            dead: false,
        }
    }

    /// Steps the backend once: serves the oldest queued request, if any.
    /// Returns `true` if a request was dispatched.
    fn step_backend(&mut self) -> bool {
        match self.channel.take_request() {
            Ok(frame) => {
                let response = dispatch(
                    EXEC_GUEST,
                    &frame,
                    self.service.as_mut(),
                    &self.grants,
                    self.clock.now_ns(),
                    &mut self.backend_events,
                );
                self.channel
                    .send_response(response)
                    .expect("response ring has room: stepped one-for-one");
                true
            }
            Err(_) => false,
        }
    }
}

impl Engine for VirtualEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Virtual
    }

    fn clock(&self) -> ClockSource {
        self.clock.clone().into()
    }

    fn submit(&mut self, frame: &[u8]) -> Result<(), EngineError> {
        if self.dead {
            return Err(EngineError::Dead("engine shut down".into()));
        }
        // Slot-size parity with the wall engine: both substrates reject
        // the same frames.
        if frame.len() > ARING_SLOT_BYTES {
            return Err(EngineError::Oversize { len: frame.len() });
        }
        match self.channel.send_request(frame.to_vec()) {
            Ok(()) => Ok(()),
            Err(ChannelError::SlotBusy) => Err(EngineError::Backpressure),
            Err(ChannelError::TooLarge { len }) => Err(EngineError::Oversize { len }),
            Err(e) => Err(EngineError::Dead(e.to_string())),
        }
    }

    fn complete(&mut self) -> Result<Option<Vec<u8>>, EngineError> {
        if self.dead {
            return Err(EngineError::Dead("engine shut down".into()));
        }
        if let Ok(frame) = self.channel.take_response() {
            return Ok(Some(frame));
        }
        if self.step_backend() {
            return Ok(self.channel.take_response().ok());
        }
        Ok(None)
    }

    fn complete_blocking(&mut self) -> Result<Vec<u8>, EngineError> {
        match self.complete()? {
            Some(frame) => Ok(frame),
            None => Err(EngineError::Dead("no frames in flight".into())),
        }
    }

    fn shutdown(&mut self) {
        self.dead = true;
    }
}

impl CvdEngine for VirtualEngine {
    fn grants(&self) -> &Arc<ShardedGrantTable> {
        &self.grants
    }

    fn finish(&mut self) -> Vec<TraceEvent> {
        self.shutdown();
        std::mem::take(&mut self.backend_events)
    }
}

/// The measurement substrate: backend on a real OS thread, frames over
/// an [`AtomicRing`] pair, park/unpark doorbells, lock-free grant reads.
///
/// Single-frontend discipline: construct and drive it from one thread
/// (the constructor registers that thread as the response doorbell's
/// waiter).
pub struct WallEngine {
    clock: WallClock,
    req_ring: Arc<AtomicRing>,
    resp_ring: Arc<AtomicRing>,
    req_bell: Arc<Doorbell>,
    resp_bell: Arc<Doorbell>,
    stop: Arc<AtomicBool>,
    grants: Arc<ShardedGrantTable>,
    worker: Option<JoinHandle<Vec<TraceEvent>>>,
    in_flight: usize,
}

impl WallEngine {
    /// Spawns the backend thread and wires up rings and doorbells.
    pub fn new(service: impl DeviceService) -> Self {
        let clock = WallClock::new();
        let req_ring = Arc::new(AtomicRing::new());
        let resp_ring = Arc::new(AtomicRing::new());
        let req_bell = Arc::new(Doorbell::new());
        let resp_bell = Arc::new(Doorbell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let grants = Arc::new(ShardedGrantTable::new());
        resp_bell.register(); // we (the constructing thread) are the frontend

        let worker = {
            let (req_ring, resp_ring) = (Arc::clone(&req_ring), Arc::clone(&resp_ring));
            let (req_bell, resp_bell) = (Arc::clone(&req_bell), Arc::clone(&resp_bell));
            let (stop, grants) = (Arc::clone(&stop), Arc::clone(&grants));
            let mut service = service;
            std::thread::Builder::new()
                .name("cvd-backend".into())
                .spawn(move || {
                    req_bell.register();
                    let mut events = Vec::new();
                    loop {
                        if let Some(frame) = req_ring.try_pop() {
                            let response = dispatch(
                                EXEC_GUEST,
                                &frame,
                                &mut service,
                                &grants,
                                clock.now_ns(),
                                &mut events,
                            );
                            loop {
                                match resp_ring.try_push(&response) {
                                    Ok(was_empty) => {
                                        if was_empty {
                                            resp_bell.ring();
                                        }
                                        break;
                                    }
                                    Err(ARingError::Full) => std::thread::yield_now(),
                                    Err(ARingError::Oversize { len }) => {
                                        unreachable!("responses are tiny, got {len} bytes")
                                    }
                                }
                            }
                            continue;
                        }
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        req_bell
                            .wait(|| !req_ring.is_empty() || stop.load(Ordering::Acquire));
                    }
                    events
                })
                .expect("spawn cvd-backend thread")
        };

        WallEngine {
            clock,
            req_ring,
            resp_ring,
            req_bell,
            resp_bell,
            stop,
            grants,
            worker: Some(worker),
            in_flight: 0,
        }
    }

    fn backend_alive(&self) -> bool {
        self.worker.as_ref().is_some_and(|w| !w.is_finished())
    }

    /// Stops the backend thread and returns its recorded events.
    fn join_backend(&mut self) -> Vec<TraceEvent> {
        self.stop.store(true, Ordering::Release);
        self.req_bell.ring();
        match self.worker.take() {
            Some(worker) => worker.join().unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

impl Engine for WallEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Wall
    }

    fn clock(&self) -> ClockSource {
        self.clock.into()
    }

    fn submit(&mut self, frame: &[u8]) -> Result<(), EngineError> {
        if self.worker.is_none() {
            return Err(EngineError::Dead("engine shut down".into()));
        }
        if !self.backend_alive() {
            return Err(EngineError::Dead("backend thread exited".into()));
        }
        match self.req_ring.try_push(frame) {
            Ok(was_empty) => {
                if was_empty {
                    self.req_bell.ring();
                }
                self.in_flight += 1;
                Ok(())
            }
            Err(ARingError::Full) => Err(EngineError::Backpressure),
            Err(ARingError::Oversize { len }) => Err(EngineError::Oversize { len }),
        }
    }

    fn complete(&mut self) -> Result<Option<Vec<u8>>, EngineError> {
        match self.resp_ring.try_pop() {
            Some(frame) => {
                self.in_flight -= 1;
                Ok(Some(frame))
            }
            None => {
                if self.in_flight > 0 && !self.backend_alive() && self.resp_ring.is_empty() {
                    return Err(EngineError::Dead("backend thread exited".into()));
                }
                Ok(None)
            }
        }
    }

    fn complete_blocking(&mut self) -> Result<Vec<u8>, EngineError> {
        if self.in_flight == 0 {
            return Err(EngineError::Dead("no frames in flight".into()));
        }
        loop {
            match self.complete()? {
                Some(frame) => return Ok(frame),
                None => {
                    let resp_ring = Arc::clone(&self.resp_ring);
                    self.resp_bell.wait(move || !resp_ring.is_empty());
                }
            }
        }
    }

    fn shutdown(&mut self) {
        let _ = self.join_backend();
    }
}

impl CvdEngine for WallEngine {
    fn grants(&self) -> &Arc<ShardedGrantTable> {
        &self.grants
    }

    fn finish(&mut self) -> Vec<TraceEvent> {
        self.join_backend()
    }
}

impl Drop for WallEngine {
    fn drop(&mut self) {
        if self.worker.is_some() {
            let _ = self.join_backend();
        }
    }
}

/// One workload item: a wire operation plus the grants its frontend
/// declares for it (empty for operations touching no process memory).
#[derive(Debug, Clone)]
pub struct WorkloadOp {
    /// The file operation to forward.
    pub op: WireOp,
    /// Grants covering the memory operations the driver will perform.
    pub grants: Vec<MemOpGrant>,
}

/// What one engine produced for one workload.
#[derive(Debug)]
pub struct ExecRun {
    /// Which substrate ran.
    pub kind: EngineKind,
    /// Encoded response frames, in submission order — the byte-identity
    /// side of the differential gate.
    pub responses: Vec<Vec<u8>>,
    /// The assembled per-span trace (frontend `OpStart`/`Grants`/`OpEnd`
    /// around the backend's `MemOp`s) — the replay-lint side of the gate.
    pub trace: Vec<TraceEvent>,
    /// Total time on the engine's own clock: virtual ns for the virtual
    /// engine, real ns for the wall engine.
    pub elapsed_ns: u64,
}

fn op_start(span: u64, t_ns: u64, device: &str, op: &WireOp) -> TraceEvent {
    let (kind, cmd, addr, len) = match op {
        WireOp::Open { .. } => (TraceOpKind::Open, None, None, None),
        WireOp::Release => (TraceOpKind::Release, None, None, None),
        WireOp::Read { addr, len } => (TraceOpKind::Read, None, Some(addr.raw()), Some(*len)),
        WireOp::Write { addr, len } => (TraceOpKind::Write, None, Some(addr.raw()), Some(*len)),
        WireOp::Ioctl { cmd, arg } => (TraceOpKind::Ioctl, Some(cmd.raw()), Some(*arg), None),
        WireOp::Mmap { va, len, .. } => (TraceOpKind::Mmap, None, Some(va.raw()), Some(*len)),
        WireOp::Munmap { va, len } => (TraceOpKind::Munmap, None, Some(va.raw()), Some(*len)),
        WireOp::Fault { va } => (TraceOpKind::Fault, None, Some(va.raw()), None),
        WireOp::Poll => (TraceOpKind::Poll, None, None, None),
        WireOp::Fasync { .. } => (TraceOpKind::Fasync, None, None, None),
    };
    TraceEvent::OpStart {
        span: SpanId(span),
        t_ns,
        guest: 1,
        task: 1,
        handle: 1,
        device: device.to_string(),
        op: kind,
        cmd,
        addr,
        len,
    }
}

/// Drives `ops` through `engine` at the fast path's pipeline depth and
/// assembles the differential artifacts: ordered encoded responses plus a
/// replayable trace. The engine is finished (backend stopped) on return.
///
/// # Errors
///
/// Propagates engine failures ([`EngineError::Dead`] et al.); a healthy
/// run never errors.
pub fn run_workload(
    engine: &mut dyn CvdEngine,
    device: &str,
    ops: &[WorkloadOp],
) -> Result<ExecRun, EngineError> {
    struct SpanLog {
        start: TraceEvent,
        grants: Option<TraceEvent>,
        end: Option<TraceEvent>,
        started_ns: u64,
        request_bytes: u64,
    }

    let clock = engine.clock();
    let started_ns = clock.now_ns();
    let mut spans: Vec<SpanLog> = Vec::with_capacity(ops.len());
    let mut pending: VecDeque<(usize, Option<GrantRef>)> = VecDeque::new();
    let mut responses: Vec<Vec<u8>> = Vec::with_capacity(ops.len());

    let drain_one = |engine: &mut dyn CvdEngine,
                         pending: &mut VecDeque<(usize, Option<GrantRef>)>,
                         spans: &mut Vec<SpanLog>,
                         responses: &mut Vec<Vec<u8>>|
     -> Result<(), EngineError> {
        let frame = engine.complete_blocking()?;
        let (index, grant) = pending
            .pop_front()
            .expect("completion without a pending span");
        if let Some(grant) = grant {
            engine.grants().revoke(EXEC_GUEST, grant);
        }
        let now = engine.clock().now_ns();
        let (ok, value) = match WireResponse::decode(&frame) {
            Ok(WireResponse::Value(v)) => (true, v),
            Ok(WireResponse::Poll(events)) => (true, i64::from(events.bits())),
            Ok(WireResponse::Err(errno)) => (false, -i64::from(errno.code())),
            Err(_) => (false, -i64::from(Errno::Einval.code())),
        };
        let log = &mut spans[index];
        log.end = Some(TraceEvent::OpEnd {
            span: SpanId(index as u64 + 1),
            t_ns: now,
            ok,
            value,
            duration_ns: now.saturating_sub(log.started_ns),
            wire: WireDelta {
                bytes_out: log.request_bytes,
                bytes_in: frame.len() as u64,
                deliveries: 2,
            },
        });
        responses.push(frame);
        Ok(())
    };

    for (index, item) in ops.iter().enumerate() {
        let span = index as u64 + 1;
        let grant = if item.grants.is_empty() {
            None
        } else {
            Some(
                engine
                    .grants()
                    .declare(EXEC_GUEST, item.grants.clone())
                    .expect("workload stays under grant capacity"),
            )
        };
        let request = WireRequest {
            task: 1,
            pt_root: GuestPhysAddr::new(0x4000),
            handle: 1,
            span,
            grant,
            op: item.op.clone(),
        };
        let frame = request.encode();
        let now = clock.now_ns();
        spans.push(SpanLog {
            start: op_start(span, now, device, &item.op),
            grants: (!item.grants.is_empty()).then(|| TraceEvent::Grants {
                span: SpanId(span),
                grants: item.grants.iter().map(trace_grant).collect(),
            }),
            end: None,
            started_ns: now,
            request_bytes: frame.len() as u64,
        });
        loop {
            match engine.submit(&frame) {
                Ok(()) => break,
                Err(EngineError::Backpressure) => {
                    drain_one(engine, &mut pending, &mut spans, &mut responses)?;
                }
                Err(e) => return Err(e),
            }
        }
        pending.push_back((index, grant));
        while pending.len() >= EXEC_RING_DEPTH {
            drain_one(engine, &mut pending, &mut spans, &mut responses)?;
        }
    }
    while !pending.is_empty() {
        drain_one(engine, &mut pending, &mut spans, &mut responses)?;
    }
    let elapsed_ns = engine.clock().now_ns().saturating_sub(started_ns);

    // Backend MemOp events, grouped per span for the assembled trace.
    let backend = engine.finish();
    let mut by_span: Vec<Vec<TraceEvent>> = vec![Vec::new(); ops.len()];
    for event in backend {
        if let TraceEvent::MemOp { span, .. } = &event {
            let index = (span.0 - 1) as usize;
            if index < by_span.len() {
                by_span[index].push(event);
            }
        }
    }
    let mut trace = Vec::new();
    for (index, log) in spans.into_iter().enumerate() {
        trace.push(log.start);
        if let Some(grants) = log.grants {
            trace.push(grants);
        }
        trace.append(&mut by_span[index]);
        trace.push(log.end.expect("all spans drained"));
    }

    Ok(ExecRun {
        kind: engine.kind(),
        responses,
        trace,
        elapsed_ns,
    })
}

/// Shared scripted device model for benches and the differential test: a
/// deterministic function of the request, so both substrates must agree.
///
/// * `Ioctl` — reads 8 bytes at `arg` and writes 8 bytes back (the
///   interactive `RADEON_INFO` shape); `arg == u64::MAX` marks a
///   *rogue* ioctl whose read lands outside any grant (negative
///   differential case).
/// * `Write` — netmap-TX shape: one read of the descriptor range.
/// * everything else — `Value(0)`, no memory operations.
pub struct ScriptedService {
    ops_served: Arc<Mutex<u64>>,
}

impl ScriptedService {
    /// A fresh service; the counter is shared with the caller.
    pub fn new() -> (Self, Arc<Mutex<u64>>) {
        let counter = Arc::new(Mutex::new(0));
        (
            ScriptedService {
                ops_served: Arc::clone(&counter),
            },
            counter,
        )
    }
}

impl DeviceService for ScriptedService {
    fn serve(&mut self, req: &WireRequest) -> (WireResponse, Vec<MemOpRequest>) {
        *self.ops_served.lock().expect("counter") += 1;
        match &req.op {
            WireOp::Ioctl { arg, .. } if *arg == u64::MAX => (
                WireResponse::Value(0),
                vec![MemOpRequest::CopyFromGuest {
                    addr: paradice_mem::GuestVirtAddr::new(0xdead_0000),
                    len: 8,
                }],
            ),
            WireOp::Ioctl { arg, .. } => (
                WireResponse::Value(0),
                vec![
                    MemOpRequest::CopyFromGuest {
                        addr: paradice_mem::GuestVirtAddr::new(*arg),
                        len: 8,
                    },
                    MemOpRequest::CopyToGuest {
                        addr: paradice_mem::GuestVirtAddr::new(*arg),
                        len: 8,
                    },
                ],
            ),
            WireOp::Write { addr, len } => (
                WireResponse::Value(*len as i64),
                vec![MemOpRequest::CopyFromGuest {
                    addr: *addr,
                    len: *len,
                }],
            ),
            _ => (WireResponse::Value(0), Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradice_devfs::ioc::{io, IoctlCmd};
    use paradice_mem::GuestVirtAddr;

    fn cmd() -> IoctlCmd {
        io(b'T', 1)
    }

    fn interactive_ops(n: usize) -> Vec<WorkloadOp> {
        (0..n)
            .map(|i| {
                let arg = 0x1_0000 + (i as u64) * 16;
                WorkloadOp {
                    op: WireOp::Ioctl { cmd: cmd(), arg },
                    grants: vec![
                        MemOpGrant::CopyFromGuest {
                            addr: GuestVirtAddr::new(arg),
                            len: 8,
                        },
                        MemOpGrant::CopyToGuest {
                            addr: GuestVirtAddr::new(arg),
                            len: 8,
                        },
                    ],
                }
            })
            .collect()
    }

    fn run(kind: EngineKind, ops: &[WorkloadOp]) -> ExecRun {
        let (service, _) = ScriptedService::new();
        match kind {
            EngineKind::Virtual => {
                let mut engine = VirtualEngine::new(service);
                run_workload(&mut engine, "/dev/test0", ops).expect("run")
            }
            EngineKind::Wall => {
                let mut engine = WallEngine::new(service);
                run_workload(&mut engine, "/dev/test0", ops).expect("run")
            }
        }
    }

    #[test]
    fn both_engines_serve_and_agree_byte_for_byte() {
        let ops = interactive_ops(100);
        let virt = run(EngineKind::Virtual, &ops);
        let wall = run(EngineKind::Wall, &ops);
        assert_eq!(virt.responses.len(), 100);
        assert_eq!(virt.responses, wall.responses);
        assert!(virt.elapsed_ns > 0, "virtual time was charged");
    }

    #[test]
    fn ungranted_memop_faults_identically_in_both_modes() {
        let rogue = WorkloadOp {
            op: WireOp::Ioctl {
                cmd: cmd(),
                arg: u64::MAX,
            },
            grants: vec![MemOpGrant::CopyFromGuest {
                addr: GuestVirtAddr::new(0x1000),
                len: 8,
            }],
        };
        let virt = run(EngineKind::Virtual, std::slice::from_ref(&rogue));
        let wall = run(EngineKind::Wall, std::slice::from_ref(&rogue));
        assert_eq!(virt.responses, wall.responses);
        let response = WireResponse::decode(&virt.responses[0]).expect("decodes");
        assert_eq!(response, WireResponse::Err(Errno::Efault));
        let blocked = virt.trace.iter().any(
            |e| matches!(e, TraceEvent::MemOp { ok, .. } if !ok),
        );
        assert!(blocked, "blocked memop must be recorded");
    }

    #[test]
    fn traces_are_span_coherent_in_both_modes() {
        let ops = interactive_ops(20);
        for kind in [EngineKind::Virtual, EngineKind::Wall] {
            let run = run(kind, &ops);
            // 20 spans × (OpStart + Grants + 2 MemOps + OpEnd).
            assert_eq!(run.trace.len(), 20 * 5, "{kind}: assembled trace shape");
            for chunk in run.trace.chunks(5) {
                assert!(matches!(chunk[0], TraceEvent::OpStart { .. }));
                assert!(matches!(chunk[1], TraceEvent::Grants { .. }));
                assert!(matches!(chunk[2], TraceEvent::MemOp { ok: true, .. }));
                assert!(matches!(chunk[3], TraceEvent::MemOp { ok: true, .. }));
                assert!(matches!(chunk[4], TraceEvent::OpEnd { ok: true, .. }));
            }
        }
    }

    #[test]
    fn wall_engine_survives_shutdown_and_reports_dead() {
        let (service, _) = ScriptedService::new();
        let mut engine = WallEngine::new(service);
        engine.shutdown();
        assert!(matches!(
            engine.submit(b"junk"),
            Err(EngineError::Dead(_))
        ));
    }

    #[test]
    fn malformed_frames_get_einval_not_a_crash() {
        let (service, _) = ScriptedService::new();
        let mut engine = VirtualEngine::new(service);
        engine.submit(b"not a wire request").expect("submit");
        let frame = engine.complete_blocking().expect("complete");
        assert_eq!(
            WireResponse::decode(&frame).expect("decodes"),
            WireResponse::Err(Errno::Einval)
        );
    }
}
